//! Pluggable per-row hash backends for the sketches.
//!
//! Every sketch row needs the same two primitives: a bucket map
//! `h : u64 → [0, columns)` and a sign map `σ : u64 → {−1, +1}`.  The
//! workspace ships two interchangeable implementations:
//!
//! * [`HashBackend::Polynomial`] — the provable default: one polynomial per
//!   row drawn from the 4-wise independent family over `GF(2^61 − 1)` (the
//!   independence the CountSketch/AMS variance analyses require).
//! * [`HashBackend::Tabulation`] — Pătraşcu–Thorup simple tabulation: eight
//!   table lookups and xors per evaluation, no multiplications.  Only 3-wise
//!   independent, but known to behave like a fully random function for
//!   hashing-based sketches; measurably faster on the ingestion hot path.
//!
//! Both backends reduce hash values into `[0, columns)` with a division-free
//! multiply-shift (Lemire) reduction — the hardware `%` the sketches used to
//! pay per row per update is gone.  [`RowHasher::column_sign`] derives the
//! bucket (high bits, multiply-shift) and the sign (low bit) from a *single*
//! hash evaluation, so the ingestion loop obtains `(column, sign)` for a row
//! from one pass over the key per row state.

use crate::kwise::KWiseHash;
use crate::prime::{mul, reduce, reduce128};
use crate::tabulation::TabulationHash;

/// Block size for the batched tabulation kernel: enough independent lookup
/// chains in flight to hide table-load latency, small enough that the
/// accumulator array lives in registers / L1.
const TAB_BLOCK: usize = 16;

/// Which hash family a sketch draws its per-row bucket and sign hashes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HashBackend {
    /// Polynomial hashing over `GF(2^61 − 1)`: pairwise independent buckets,
    /// 4-wise independent signs.  The provable default.
    #[default]
    Polynomial,
    /// Simple tabulation hashing (Pătraşcu–Thorup): 3-wise independent,
    /// multiplication-free, fastest per evaluation.
    Tabulation,
}

impl HashBackend {
    /// A short stable name (used by benchmark reports and config dumps).
    pub fn name(self) -> &'static str {
        match self {
            HashBackend::Polynomial => "polynomial",
            HashBackend::Tabulation => "tabulation",
        }
    }

    /// A stable single-byte tag for binary encodings (checkpoint format).
    /// Tags are append-only: existing values never change meaning.
    pub fn tag(self) -> u8 {
        match self {
            HashBackend::Polynomial => 0,
            HashBackend::Tabulation => 1,
        }
    }

    /// Decode a backend from its [`tag`](Self::tag); `None` for unknown tags
    /// (e.g. a checkpoint written by a newer version, or corrupt bytes).
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(HashBackend::Polynomial),
            1 => Some(HashBackend::Tabulation),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum RowState {
    Polynomial(KWiseHash),
    Tabulation(TabulationHash),
}

/// One sketch row's hashing state: a bucket hash into `[0, columns)` and a
/// sign hash into `{−1, +1}`, derived from a *single* hash evaluation per
/// key, drawn from the chosen [`HashBackend`].
///
/// The bucket is the multiply-shift (Lemire) reduction of the hash value —
/// its high bits — and the sign is the hash value's lowest bit, so
/// [`column_sign`](Self::column_sign) really is one fused pass: one
/// polynomial evaluation (3 field multiplies for the 4-wise family) or one
/// tabulation lookup chain (8 table reads) yields both outputs.
///
/// Independence: the polynomial backend draws from the 4-wise family, so the
/// sign (low bit) is 4-wise independent — what the CountSketch/AMS variance
/// analyses need — and the bucket (a projection of the same values) is at
/// least pairwise.  Per key, bucket and sign come from disjoint ends of one
/// field value; over any bucket's ~`p/columns`-sized preimage interval the
/// low bit balances to within `columns/2^61`, a bias far below the sketches'
/// error terms.
#[derive(Debug, Clone, PartialEq)]
pub struct RowHasher {
    state: RowState,
    columns: u64,
    /// The seed the row state was expanded from.  Kept so the row is
    /// reconstructible from `(backend, columns, seed)` alone — the whole
    /// hashing state of a sketch row checkpoints as three integers instead of
    /// an opaque coefficient/table dump.
    seed: u64,
}

impl RowHasher {
    /// Build a row's hash state from a seed.
    ///
    /// # Panics
    /// Panics if `columns == 0`.
    pub fn new(backend: HashBackend, columns: u64, seed: u64) -> Self {
        assert!(columns > 0, "column count must be positive");
        let state = match backend {
            HashBackend::Polynomial => RowState::Polynomial(KWiseHash::new(4, seed)),
            HashBackend::Tabulation => RowState::Tabulation(TabulationHash::new(seed)),
        };
        Self {
            state,
            columns,
            seed,
        }
    }

    /// The backend this row was drawn from.
    pub fn backend(&self) -> HashBackend {
        match self.state {
            RowState::Polynomial(_) => HashBackend::Polynomial,
            RowState::Tabulation(_) => HashBackend::Tabulation,
        }
    }

    /// Number of columns `b` the bucket hash maps into.
    pub fn columns(&self) -> u64 {
        self.columns
    }

    /// The seed this row's state was expanded from.
    /// `RowHasher::new(self.backend(), self.columns(), self.seed())`
    /// reconstructs an identical row.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw hash value and the width (in bits) of its uniform range:
    /// 61 for the polynomial field `[0, 2^61 − 1)`, 64 for tabulation.
    #[inline]
    fn raw(&self, key: u64) -> (u64, u32) {
        match &self.state {
            RowState::Polynomial(h) => (h.hash(key), 61),
            RowState::Tabulation(h) => (h.hash(key), 64),
        }
    }

    #[inline]
    fn reduce(&self, value: u64, bits: u32) -> u64 {
        (((value as u128) * (self.columns as u128)) >> bits) as u64
    }

    /// The row's bucket for a key, in `[0, columns)` — division-free.
    #[inline]
    pub fn column(&self, key: u64) -> u64 {
        let (value, bits) = self.raw(key);
        self.reduce(value, bits)
    }

    /// The row's sign for a key: `+1` or `−1`.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        let (value, _) = self.raw(key);
        if value & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Fused evaluation: `(column, sign)` for a key from one hash pass.
    #[inline]
    pub fn column_sign(&self, key: u64) -> (u64, i64) {
        let (value, bits) = self.raw(key);
        let sign = if value & 1 == 1 { 1 } else { -1 };
        (self.reduce(value, bits), sign)
    }

    /// Batched fused evaluation: `(column, sign)` for every key in a slice,
    /// appended to `cols_out`/`signs_out` (both cleared first).
    ///
    /// This is the hash-stage kernel the sketches' coalesced ingestion loops
    /// call once per row per batch, replacing a per-distinct-item
    /// [`column_sign`](Self::column_sign) call.  The backend dispatch and the
    /// polynomial coefficients (or table base pointers) are hoisted out of
    /// the key loop:
    ///
    /// * **Polynomial** — the 4-wise polynomial is evaluated over the slice
    ///   in structure-of-arrays shape (`x, x², x³` then one fused
    ///   sum-of-products per key), the same proven-bit-identical evaluation
    ///   order as [`crate::SignHashBank::eval_with`], with the division-free
    ///   Lemire bucketing inlined in the same pass.
    /// * **Tabulation** — keys are processed in blocks of `TAB_BLOCK` so
    ///   the eight data-dependent table lookups of neighbouring keys
    ///   pipeline instead of serializing per call.
    ///
    /// Both paths produce exactly the per-key outputs: the same canonical
    /// field value / XOR accumulation, the same `(value · columns) >> bits`
    /// bucket and the same low-bit sign, so batched and per-key ingestion
    /// are bit-identical (proptested in `tests/batch_equivalence.rs`).
    ///
    /// Columns are emitted as `u32` — the sketches' column-index scratch
    /// width; rows are constructed with far fewer than `2^32` columns.
    pub fn column_sign_batch(
        &self,
        keys: &[u64],
        cols_out: &mut Vec<u32>,
        signs_out: &mut Vec<i64>,
    ) {
        debug_assert!(self.columns <= u32::MAX as u64 + 1);
        cols_out.clear();
        signs_out.clear();
        cols_out.reserve(keys.len());
        signs_out.reserve(keys.len());
        let columns = self.columns as u128;
        match &self.state {
            RowState::Polynomial(h) => {
                if let [c0, c1, c2, c3] = *h.coefficients() {
                    for &key in keys {
                        let x = reduce(key);
                        let x2 = mul(x, x);
                        let x3 = mul(x2, x);
                        let value = reduce128(
                            (c3 as u128) * (x3 as u128)
                                + (c2 as u128) * (x2 as u128)
                                + (c1 as u128) * (x as u128)
                                + c0 as u128,
                        );
                        cols_out.push((((value as u128) * columns) >> 61) as u32);
                        signs_out.push(((value & 1) as i64) * 2 - 1);
                    }
                } else {
                    for &key in keys {
                        let value = h.hash(key);
                        cols_out.push((((value as u128) * columns) >> 61) as u32);
                        signs_out.push(((value & 1) as i64) * 2 - 1);
                    }
                }
            }
            RowState::Tabulation(h) => {
                let mut chunks = keys.chunks_exact(TAB_BLOCK);
                for block in chunks.by_ref() {
                    let mut values = [0u64; TAB_BLOCK];
                    h.hash_into(block, &mut values);
                    for &value in &values {
                        cols_out.push((((value as u128) * columns) >> 64) as u32);
                        signs_out.push(((value & 1) as i64) * 2 - 1);
                    }
                }
                for &key in chunks.remainder() {
                    let value = h.hash(key);
                    cols_out.push((((value as u128) * columns) >> 64) as u32);
                    signs_out.push(((value & 1) as i64) * 2 - 1);
                }
            }
        }
    }

    /// Batched bucket-only evaluation: the column for every key in a slice,
    /// appended to `cols_out` (cleared first).  The Count-Min variant of
    /// [`column_sign_batch`](Self::column_sign_batch) — same kernels, no
    /// sign extraction — and likewise bit-identical to per-key
    /// [`column`](Self::column).
    pub fn column_batch(&self, keys: &[u64], cols_out: &mut Vec<u32>) {
        debug_assert!(self.columns <= u32::MAX as u64 + 1);
        cols_out.clear();
        cols_out.reserve(keys.len());
        let columns = self.columns as u128;
        match &self.state {
            RowState::Polynomial(h) => {
                if let [c0, c1, c2, c3] = *h.coefficients() {
                    for &key in keys {
                        let x = reduce(key);
                        let x2 = mul(x, x);
                        let x3 = mul(x2, x);
                        let value = reduce128(
                            (c3 as u128) * (x3 as u128)
                                + (c2 as u128) * (x2 as u128)
                                + (c1 as u128) * (x as u128)
                                + c0 as u128,
                        );
                        cols_out.push((((value as u128) * columns) >> 61) as u32);
                    }
                } else {
                    for &key in keys {
                        cols_out.push((((h.hash(key) as u128) * columns) >> 61) as u32);
                    }
                }
            }
            RowState::Tabulation(h) => {
                let mut chunks = keys.chunks_exact(TAB_BLOCK);
                for block in chunks.by_ref() {
                    let mut values = [0u64; TAB_BLOCK];
                    h.hash_into(block, &mut values);
                    for &value in &values {
                        cols_out.push((((value as u128) * columns) >> 64) as u32);
                    }
                }
                for &key in chunks.remainder() {
                    cols_out.push((((h.hash(key) as u128) * columns) >> 64) as u32);
                }
            }
        }
    }

    /// Rough size of the row state in 64-bit words (for space accounting).
    pub fn space_words(&self) -> usize {
        match &self.state {
            // 4 polynomial coefficients plus the column count.
            RowState::Polynomial(_) => 5,
            // One 8 × 256 table of u64 plus the column count.
            RowState::Tabulation(_) => 8 * 256 + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seeds() {
        for backend in [HashBackend::Polynomial, HashBackend::Tabulation] {
            let a = RowHasher::new(backend, 64, 1);
            let b = RowHasher::new(backend, 64, 1);
            for key in 0..512u64 {
                assert_eq!(a.column_sign(key), b.column_sign(key));
            }
            assert_eq!(a.backend(), backend);
            assert_eq!(a.columns(), 64);
        }
    }

    #[test]
    fn columns_in_range_and_signs_valid() {
        for backend in [HashBackend::Polynomial, HashBackend::Tabulation] {
            for columns in [1u64, 2, 7, 64, 1000] {
                let h = RowHasher::new(backend, columns, 99);
                for key in 0..2000u64 {
                    let (col, sign) = h.column_sign(key);
                    assert!(col < columns);
                    assert!(sign == 1 || sign == -1);
                    assert_eq!(col, h.column(key));
                    assert_eq!(sign, h.sign(key));
                }
            }
        }
    }

    #[test]
    fn batch_kernels_match_per_key_exactly() {
        // Duplicates, key 0, max-key and field-boundary keys, plus lengths
        // that are not a multiple of the tabulation block size.
        let keys: Vec<u64> = (0..533u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .chain([
                0,
                0,
                1,
                7,
                7,
                u64::MAX,
                u64::MAX - 1,
                (1 << 61) - 1,
                1 << 61,
            ])
            .collect();
        let mut cols = Vec::new();
        let mut signs = Vec::new();
        for backend in [HashBackend::Polynomial, HashBackend::Tabulation] {
            for columns in [1u64, 2, 64, 1000, 1 << 20] {
                let h = RowHasher::new(backend, columns, 0xBEE5);
                for len in [0usize, 1, 15, 16, 17, keys.len()] {
                    let slice = &keys[..len];
                    h.column_sign_batch(slice, &mut cols, &mut signs);
                    assert_eq!(cols.len(), len);
                    assert_eq!(signs.len(), len);
                    for (i, &key) in slice.iter().enumerate() {
                        let (col, sign) = h.column_sign(key);
                        assert_eq!(cols[i] as u64, col, "{}: col mismatch", backend.name());
                        assert_eq!(signs[i], sign, "{}: sign mismatch", backend.name());
                    }
                    h.column_batch(slice, &mut cols);
                    assert_eq!(cols.len(), len);
                    for (i, &key) in slice.iter().enumerate() {
                        assert_eq!(cols[i] as u64, h.column(key));
                    }
                }
            }
        }
    }

    #[test]
    fn buckets_roughly_balanced_both_backends() {
        for backend in [HashBackend::Polynomial, HashBackend::Tabulation] {
            let columns = 16u64;
            let h = RowHasher::new(backend, columns, 4242);
            let n = 64_000u64;
            let mut counts = vec![0usize; columns as usize];
            for key in 0..n {
                counts[h.column(key) as usize] += 1;
            }
            let expect = n as f64 / columns as f64;
            for &c in &counts {
                assert!(
                    (c as f64 - expect).abs() < 0.1 * expect,
                    "{}: bucket {c} deviates from {expect}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn signs_roughly_balanced_both_backends() {
        for backend in [HashBackend::Polynomial, HashBackend::Tabulation] {
            let h = RowHasher::new(backend, 8, 2025);
            let sum: i64 = (0..100_000u64).map(|k| h.sign(k)).sum();
            assert!(sum.abs() < 2000, "{}: sign sum {sum}", backend.name());
        }
    }

    #[test]
    fn backends_differ() {
        let p = RowHasher::new(HashBackend::Polynomial, 1024, 3);
        let t = RowHasher::new(HashBackend::Tabulation, 1024, 3);
        let same = (0..256u64).filter(|&k| p.column(k) == t.column(k)).count();
        assert!(same < 32, "backends should hash differently ({same} agree)");
    }

    #[test]
    fn backend_names() {
        assert_eq!(HashBackend::Polynomial.name(), "polynomial");
        assert_eq!(HashBackend::Tabulation.name(), "tabulation");
        assert_eq!(HashBackend::default(), HashBackend::Polynomial);
    }

    #[test]
    fn backend_tags_roundtrip_and_unknown_tags_fail() {
        for backend in [HashBackend::Polynomial, HashBackend::Tabulation] {
            assert_eq!(HashBackend::from_tag(backend.tag()), Some(backend));
        }
        assert_eq!(HashBackend::from_tag(2), None);
        assert_eq!(HashBackend::from_tag(255), None);
    }

    #[test]
    fn reconstructible_from_seed() {
        for backend in [HashBackend::Polynomial, HashBackend::Tabulation] {
            let original = RowHasher::new(backend, 128, 0xDEAD_BEEF);
            assert_eq!(original.seed(), 0xDEAD_BEEF);
            let rebuilt = RowHasher::new(original.backend(), original.columns(), original.seed());
            assert_eq!(original, rebuilt);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_columns_panics() {
        let _ = RowHasher::new(HashBackend::Polynomial, 0, 1);
    }

    #[test]
    fn space_words_positive() {
        assert!(RowHasher::new(HashBackend::Polynomial, 4, 0).space_words() >= 5);
        assert!(RowHasher::new(HashBackend::Tabulation, 4, 0).space_words() >= 2048);
    }
}
