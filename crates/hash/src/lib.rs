//! # gsum-hash
//!
//! Hashing and pseudo-randomness substrate for the `zerolaw` workspace.
//!
//! Every sketch in the paper (CountSketch, the AMS F₂ sketch, the recursive
//! sketch, the `g_np` low-bit algorithm and the `(a,b,c)`-DIST counter
//! algorithm) needs limited-independence hash functions:
//!
//! * **k-wise independent hash families** evaluated as degree-`(k-1)`
//!   polynomials over the Mersenne-prime field `GF(2^61 - 1)`
//!   ([`KWiseHash`], [`prime`]).
//! * **Sign hashes** mapping items to `{-1, +1}` with 4-wise independence
//!   ([`SignHash`]), as required by CountSketch and AMS.
//! * **Bucket hashes** mapping items to `[b]` ([`BucketHash`]), used to split
//!   a stream into substreams (recursive sketch levels, the `g_np` algorithm,
//!   the DIST counter algorithm).
//! * **Pluggable row backends** ([`HashBackend`], [`RowHasher`]): the fused
//!   per-row `(bucket, sign)` evaluation the sketches' ingestion hot path is
//!   written against, selectable between the polynomial family and
//!   [`TabulationHash`], both with division-free multiply-shift reduction.
//! * A small, fully deterministic PRNG ([`rng::SplitMix64`] /
//!   [`rng::Xoshiro256`]) used to derive seeds, so that every sketch in the
//!   workspace is reproducible from a single `u64` seed without depending on
//!   the `rand` crate.
//!
//! The crate is `no_std`-friendly in spirit (no allocation beyond small
//! `Vec`s of coefficients) and has no external dependencies.

pub mod backend;
pub mod bucket;
pub mod kwise;
pub mod prime;
pub mod rng;
pub mod sign;
pub mod tabulation;

pub use backend::{HashBackend, RowHasher};
pub use bucket::BucketHash;
pub use kwise::KWiseHash;
pub use prime::MERSENNE_PRIME_61;
pub use rng::{SeedSequence, SplitMix64, Xoshiro256};
pub use sign::{
    signed_sum_f64_packed, signed_sum_i64_packed, signed_sums_block_i64, SignBank, SignFamily,
    SignHash, SignHashBank, TabSignBank, SIGN_BLOCK,
};
pub use tabulation::TabulationHash;

/// Convenience: derive a family of `count` independent seeds from a master
/// seed. Used throughout the workspace when a data structure needs several
/// internal hash functions ("rows" of a CountSketch, levels of a recursive
/// sketch, ...).
pub fn derive_seeds(master: u64, count: usize) -> Vec<u64> {
    let mut seq = SeedSequence::new(master);
    (0..count).map(|_| seq.next_seed()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seeds_distinct_and_deterministic() {
        let a = derive_seeds(42, 16);
        let b = derive_seeds(42, 16);
        assert_eq!(a, b);
        for i in 0..a.len() {
            for j in 0..i {
                assert_ne!(a[i], a[j], "seeds {i} and {j} collide");
            }
        }
    }

    #[test]
    fn derive_seeds_depends_on_master() {
        assert_ne!(derive_seeds(1, 8), derive_seeds(2, 8));
    }

    #[test]
    fn derive_seeds_zero_count() {
        assert!(derive_seeds(7, 0).is_empty());
    }
}
