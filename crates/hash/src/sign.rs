//! Sign hashes: independent maps from keys to `{-1, +1}`.
//!
//! CountSketch and the AMS F₂ ("tug of war") estimator both need sign hashes
//! whose limited independence makes the variance analysis go through.
//!
//! [`SignHashBank`] is the batched form: the AMS sketch evaluates *hundreds*
//! of independent sign hashes per item, and doing that through a
//! `Vec<SignHash>` chases a heap-allocated coefficient vector per hash per
//! key.  The bank transposes the degree-3 polynomials into
//! structure-of-arrays coefficient columns and shares the key powers
//! `x, x², x³` across every hash — same field values, bit for bit, as the
//! Horner evaluation [`SignHash`] performs.
//!
//! # The item-outer block kernel
//!
//! [`SignHashBank::eval_block`] is the hot-path shape: instead of walking
//! counters in the outer loop and re-evaluating the key powers' products per
//! counter, it takes the whole batch of precomputed key powers and fills a
//! transposed `items × counters` **sign matrix**, packed eight sign bits per
//! byte ([`SIGN_BLOCK`]).  The per-item powers amortize across all counters
//! and the per-counter coefficient loads amortize across the item block; the
//! ± applies then run over the packed matrix with no field arithmetic left
//! in them ([`signed_sum_i64_packed`] / [`signed_sum_f64_packed`]).
//!
//! The kernel keeps PR 8's lazy-`u128` trick — the dot product
//! `c₀ + c₁x + c₂x² + c₃x³` accumulates unreduced and is folded once — and
//! only ever extracts the *parity of the canonical representative*.  Since
//! canonical representatives in `GF(2^61 − 1)` are unique, any exact fold
//! sequence yields the same parity, which is what lets two interchangeable
//! lowerings coexist bit-identically:
//!
//! * a scalar path (the portable default), folding `u128 → u64 → u64` and
//!   correcting the parity for the final conditional subtract with
//!   `(f₂ ≥ p)` instead of materializing the subtract; and
//! * an AVX-512 path (runtime-detected on x86-64), which splits the 61-bit
//!   operands into 31/30-bit limbs so `vpmuludq` covers every partial
//!   product, eight counters per vector, and reads the parity bits straight
//!   out of mask registers.  Measured ≈2× the round-3 counter-outer kernel
//!   on the AMS shape.
//!
//! # Sign families
//!
//! [`SignFamily`] selects where the sign bits come from (mirroring
//! [`crate::HashBackend`] for the row hashes):
//!
//! * [`SignFamily::Polynomial4`] — the provable default: one degree-3
//!   polynomial over `GF(2^61 − 1)` per counter, 4-wise independent, which is
//!   exactly the independence the AMS variance bound
//!   `Var[Z²] ≤ 2 F₂²` consumes (the fourth moment `E[σ(a)σ(b)σ(c)σ(d)]`
//!   must vanish for distinct keys).
//! * [`SignFamily::Tabulation`] — Pătraşcu–Thorup simple tabulation
//!   ([`TabSignBank`]): each 64-bit table word yields 64 *mutually
//!   independent* sign hashes (bit `j` of the XOR of eight random table
//!   entries is itself a simple tabulation hash into `{0, 1}`), so a bank of
//!   `⌈counters/64⌉` tables serves the whole sketch at a few table lookups
//!   per item.  Only **3-wise** independent: `E[Z²] = F₂` still holds
//!   exactly (pairwise suffices), but the `Var[Z²]` bound is heuristic —
//!   simple tabulation is known to behave fully randomly for such moment
//!   estimates, yet the paper's constant is no longer a theorem.  Sketches
//!   built from different families refuse to merge, and checkpoints carry
//!   the family tag.

use crate::kwise::KWiseHash;
use crate::prime::{mul, reduce, reduce128, MERSENNE_PRIME_61};
use crate::tabulation::TabulationHash;

/// Sign hashes per packed sign-matrix byte: `eval_block` kernels emit the
/// sign bits of `SIGN_BLOCK` consecutive hashes into one byte per item.
pub const SIGN_BLOCK: usize = 8;

/// Which family a sketch's sign hashes are drawn from.  The sign-hash
/// analogue of [`crate::HashBackend`]: same selection, naming and
/// checkpoint-tag discipline, applied to the AMS tug-of-war bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SignFamily {
    /// Degree-3 polynomials over `GF(2^61 − 1)`: 4-wise independent — the
    /// independence the AMS variance bound is proved from.  The default.
    #[default]
    Polynomial4,
    /// Simple tabulation word banks: 3-wise independent, multiplication-free,
    /// fastest per evaluation; the `F₂` variance constant becomes heuristic.
    Tabulation,
}

impl SignFamily {
    /// A short stable name (used by benchmark reports and config dumps).
    pub fn name(self) -> &'static str {
        match self {
            SignFamily::Polynomial4 => "polynomial4",
            SignFamily::Tabulation => "tabulation",
        }
    }

    /// A stable single-byte tag for binary encodings (checkpoint format).
    /// Tags are append-only: existing values never change meaning.
    pub fn tag(self) -> u8 {
        match self {
            SignFamily::Polynomial4 => 0,
            SignFamily::Tabulation => 1,
        }
    }

    /// Decode a family from its [`tag`](Self::tag); `None` for unknown tags
    /// (e.g. a checkpoint written by a newer version, or corrupt bytes).
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SignFamily::Polynomial4),
            1 => Some(SignFamily::Tabulation),
            _ => None,
        }
    }
}

/// A sign hash `σ : u64 → {-1, +1}` drawn from a k-wise independent family
/// (k = 4 by default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignHash {
    inner: KWiseHash,
}

impl SignHash {
    /// Draw a 4-wise independent sign hash.
    pub fn new(seed: u64) -> Self {
        Self::with_independence(4, seed)
    }

    /// Draw a sign hash from a `k`-wise independent family.
    pub fn with_independence(k: usize, seed: u64) -> Self {
        Self {
            inner: KWiseHash::new(k, seed),
        }
    }

    /// Evaluate the sign of a key: `+1` or `-1`.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        if self.inner.hash(key) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Evaluate as an `f64` (convenience for floating-point accumulators).
    #[inline]
    pub fn sign_f64(&self, key: u64) -> f64 {
        self.sign(key) as f64
    }
}

/// A bank of independent 4-wise sign hashes evaluated together.
///
/// Semantically identical to `Vec<SignHash>` built from the same seeds: for
/// every index `i` and key `x`, `bank.sign_at(i, powers)` equals
/// `SignHash::new(seeds[i]).sign(x)` — both compute the canonical reduced
/// field element `c₀ + c₁x + c₂x² + c₃x³` over `GF(2^61 − 1)` and take its
/// low bit, so the agreement is exact, not approximate.  The layout is what
/// differs: coefficients live in contiguous columns (one per degree, plus
/// 31/30-bit limb splits of the padded columns for the vector kernel)
/// instead of one heap vector per hash, and the key powers are computed once
/// per key instead of once per hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignHashBank {
    /// Transposed coefficients: `cN[i]` is hash `i`'s degree-`N` coefficient.
    c0: Vec<u64>,
    c1: Vec<u64>,
    c2: Vec<u64>,
    c3: Vec<u64>,
    /// The same columns zero-padded to `blocks() * SIGN_BLOCK`, so the block
    /// kernels always run whole blocks (padding lanes produce bits no apply
    /// ever reads).
    c0p: Vec<u64>,
    c1p: Vec<u64>,
    c2p: Vec<u64>,
    c3p: Vec<u64>,
    /// 31-bit low / 30-bit high limb splits of the padded degree-1..3
    /// columns: every `vpmuludq` partial product in the AVX-512 kernel takes
    /// two sub-32-bit operands.
    c1l: Vec<u64>,
    c1h: Vec<u64>,
    c2l: Vec<u64>,
    c2h: Vec<u64>,
    c3l: Vec<u64>,
    c3h: Vec<u64>,
}

/// Low-limb mask for the 31/30-bit coefficient split.
const LIMB_MASK: u64 = (1 << 31) - 1;

impl SignHashBank {
    /// Build the bank from per-hash seeds, drawing each polynomial exactly as
    /// `SignHash::new(seed)` does.
    pub fn from_seeds(seeds: &[u64]) -> Self {
        let padded = seeds.len().div_ceil(SIGN_BLOCK) * SIGN_BLOCK;
        let mut bank = Self {
            c0: Vec::with_capacity(seeds.len()),
            c1: Vec::with_capacity(seeds.len()),
            c2: Vec::with_capacity(seeds.len()),
            c3: Vec::with_capacity(seeds.len()),
            c0p: vec![0; padded],
            c1p: vec![0; padded],
            c2p: vec![0; padded],
            c3p: vec![0; padded],
            c1l: vec![0; padded],
            c1h: vec![0; padded],
            c2l: vec![0; padded],
            c2h: vec![0; padded],
            c3l: vec![0; padded],
            c3h: vec![0; padded],
        };
        for (i, &seed) in seeds.iter().enumerate() {
            let poly = KWiseHash::new(4, seed);
            let c = poly.coefficients();
            bank.c0.push(c[0]);
            bank.c1.push(c[1]);
            bank.c2.push(c[2]);
            bank.c3.push(c[3]);
            bank.c0p[i] = c[0];
            bank.c1p[i] = c[1];
            bank.c2p[i] = c[2];
            bank.c3p[i] = c[3];
            bank.c1l[i] = c[1] & LIMB_MASK;
            bank.c1h[i] = c[1] >> 31;
            bank.c2l[i] = c[2] & LIMB_MASK;
            bank.c2h[i] = c[2] >> 31;
            bank.c3l[i] = c[3] & LIMB_MASK;
            bank.c3h[i] = c[3] >> 31;
        }
        bank
    }

    /// Number of sign hashes in the bank.
    pub fn len(&self) -> usize {
        self.c0.len()
    }

    /// Whether the bank holds no hashes.
    pub fn is_empty(&self) -> bool {
        self.c0.is_empty()
    }

    /// Number of [`SIGN_BLOCK`]-wide blocks the packed sign matrix has per
    /// item: `ceil(len / SIGN_BLOCK)`.
    pub fn blocks(&self) -> usize {
        self.len().div_ceil(SIGN_BLOCK)
    }

    /// The reduced key powers `(x, x², x³)` shared by every hash in the bank
    /// — compute once per key, reuse across all `len()` evaluations.
    #[inline]
    pub fn key_powers(key: u64) -> (u64, u64, u64) {
        let x = reduce(key);
        let x2 = mul(x, x);
        let x3 = mul(x2, x);
        (x, x2, x3)
    }

    /// Hash `i`'s coefficients `[c₀, c₁, c₂, c₃]`, for callers that hoist the
    /// loads out of a per-key inner loop.
    #[inline]
    pub fn coefficients_at(&self, i: usize) -> [u64; 4] {
        [self.c0[i], self.c1[i], self.c2[i], self.c3[i]]
    }

    /// Evaluate one degree-3 polynomial on precomputed key powers.  The
    /// result is the same canonical field element Horner evaluation yields:
    /// the whole dot product `c₀ + c₁x + c₂x² + c₃x³` is accumulated in
    /// `u128` (three products below `p²` plus `c₀` stay under `2^124`) and
    /// reduced **once**, instead of reducing after every multiply and add.
    /// Canonical representatives are unique, so the single lazy reduction
    /// yields the identical `u64`.
    #[inline]
    pub fn eval_with(coeffs: [u64; 4], powers: (u64, u64, u64)) -> u64 {
        let (x, x2, x3) = powers;
        reduce128(
            (coeffs[3] as u128) * (x3 as u128)
                + (coeffs[2] as u128) * (x2 as u128)
                + (coeffs[1] as u128) * (x as u128)
                + coeffs[0] as u128,
        )
    }

    /// Hash `i`'s sign (`+1` / `-1`) on precomputed key powers.
    #[inline]
    pub fn sign_at(&self, i: usize, powers: (u64, u64, u64)) -> i64 {
        if Self::eval_with(self.coefficients_at(i), powers) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Hash `i`'s sign as an `f64` (convenience for floating accumulators).
    #[inline]
    pub fn sign_f64_at(&self, i: usize, powers: (u64, u64, u64)) -> f64 {
        self.sign_at(i, powers) as f64
    }

    /// The item-outer block kernel: evaluate **every** hash in the bank on
    /// **every** item of a batch of precomputed key-power columns
    /// (`x1[t], x2[t], x3[t]` = the [`key_powers`](Self::key_powers) of item
    /// `t`), and pack the sign bits into the transposed sign matrix
    /// `sign_bytes`.
    ///
    /// Layout: `sign_bytes[b * n + t]` holds, in bit `j`, the sign bit of
    /// hash `b * SIGN_BLOCK + j` on item `t` (`1` ⇔ `+1`), with
    /// `n = x1.len()` and `b < blocks()`.  Each block's row of `n` bytes is
    /// contiguous, so the per-counter applies stream it.
    ///
    /// The sign bit is the parity of the canonical field element — exactly
    /// `eval_with(..) & 1`, proven equal by canonical-representative
    /// uniqueness and asserted by the equivalence proptests.  Dispatches to
    /// the AVX-512 limb kernel when the CPU has it, otherwise to the scalar
    /// block kernel; both produce identical bytes in the unpadded lanes.
    pub fn eval_block(&self, x1: &[u64], x2: &[u64], x3: &[u64], sign_bytes: &mut Vec<u8>) {
        let n = x1.len();
        debug_assert_eq!(n, x2.len());
        debug_assert_eq!(n, x3.len());
        let blocks = self.blocks();
        sign_bytes.clear();
        sign_bytes.resize(blocks * n, 0);
        if n == 0 || blocks == 0 {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
        {
            // SAFETY: feature detection above guarantees the target features
            // the kernel is compiled with; slice lengths are checked inside.
            unsafe { self.eval_block_avx512(x1, x2, x3, sign_bytes) };
            return;
        }
        self.eval_block_scalar(x1, x2, x3, sign_bytes);
    }

    /// Portable lowering of [`eval_block`](Self::eval_block): block-outer /
    /// item-inner with the block's eight coefficient quadruples hoisted into
    /// locals, lazy-`u128` accumulation, and the two-fold parity extraction
    /// (`bit = (f₂ ⊕ [f₂ ≥ p]) & 1` — the conditional subtract of the
    /// canonical fold only flips parity, `p` being odd).
    fn eval_block_scalar(&self, x1: &[u64], x2: &[u64], x3: &[u64], sign_bytes: &mut [u8]) {
        let n = x1.len();
        let p = MERSENNE_PRIME_61;
        for (b, out) in sign_bytes.chunks_exact_mut(n).enumerate() {
            let base = b * SIGN_BLOCK;
            let a0: &[u64] = &self.c0p[base..base + SIGN_BLOCK];
            let a1: &[u64] = &self.c1p[base..base + SIGN_BLOCK];
            let a2: &[u64] = &self.c2p[base..base + SIGN_BLOCK];
            let a3: &[u64] = &self.c3p[base..base + SIGN_BLOCK];
            for t in 0..n {
                let (p1, p2, p3) = (x1[t], x2[t], x3[t]);
                let mut kb = 0u8;
                for j in 0..SIGN_BLOCK {
                    let v = (a3[j] as u128) * (p3 as u128)
                        + (a2[j] as u128) * (p2 as u128)
                        + (a1[j] as u128) * (p1 as u128)
                        + a0[j] as u128;
                    let f1 = ((v as u64) & p) + ((v >> 61) as u64);
                    let f2 = (f1 & p) + (f1 >> 61);
                    let bit = (f2 ^ u64::from(f2 >= p)) & 1;
                    kb |= (bit as u8) << j;
                }
                out[t] = kb;
            }
        }
    }

    /// AVX-512 lowering of [`eval_block`](Self::eval_block): eight counters
    /// per vector, item-inner.  The 61-bit modmuls decompose into 31/30-bit
    /// limbs (`a·x = aL·xL + (aH·xL + aL·xH)·2³¹ + aH·xH·2⁶²`) so `vpmuludq`
    /// covers every partial product; the congruences `2⁶¹ ≡ 1` and `2⁶² ≡ 2`
    /// fold the limb sums back under 64 bits without carries, and the parity
    /// of the canonical residue comes out of mask registers
    /// (`vptestmq ⊕ vpcmpuq`).  Exact modular arithmetic throughout, so the
    /// bits match the scalar kernel everywhere.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512dq")]
    unsafe fn eval_block_avx512(&self, x1: &[u64], x2: &[u64], x3: &[u64], sign_bytes: &mut [u8]) {
        use std::arch::x86_64::*;
        let n = x1.len();
        let p = _mm512_set1_epi64(MERSENNE_PRIME_61 as i64);
        let mask30 = _mm512_set1_epi64(((1u64 << 30) - 1) as i64);
        let one = _mm512_set1_epi64(1);
        for (b, out) in sign_bytes.chunks_exact_mut(n).enumerate() {
            let base = b * SIGN_BLOCK;
            let a0 = _mm512_loadu_si512(self.c0p.as_ptr().add(base) as *const _);
            let a1l = _mm512_loadu_si512(self.c1l.as_ptr().add(base) as *const _);
            let a1h = _mm512_loadu_si512(self.c1h.as_ptr().add(base) as *const _);
            let a2l = _mm512_loadu_si512(self.c2l.as_ptr().add(base) as *const _);
            let a2h = _mm512_loadu_si512(self.c2h.as_ptr().add(base) as *const _);
            let a3l = _mm512_loadu_si512(self.c3l.as_ptr().add(base) as *const _);
            let a3h = _mm512_loadu_si512(self.c3h.as_ptr().add(base) as *const _);
            for t in 0..n {
                let x1l = _mm512_set1_epi64((x1[t] & LIMB_MASK) as i64);
                let x1h = _mm512_set1_epi64((x1[t] >> 31) as i64);
                let x2l = _mm512_set1_epi64((x2[t] & LIMB_MASK) as i64);
                let x2h = _mm512_set1_epi64((x2[t] >> 31) as i64);
                let x3l = _mm512_set1_epi64((x3[t] & LIMB_MASK) as i64);
                let x3h = _mm512_set1_epi64((x3[t] >> 31) as i64);
                // Limb partial products, summed across the three powers.
                // Bounds (limbs < 2³¹, highs < 2³⁰): each `lo`/`mid` term
                // < 2⁶², sums of three < 2⁶⁴; `hi` sums < 2⁶¹.
                let lo = _mm512_add_epi64(
                    _mm512_add_epi64(_mm512_mul_epu32(a1l, x1l), _mm512_mul_epu32(a2l, x2l)),
                    _mm512_mul_epu32(a3l, x3l),
                );
                let mid = _mm512_add_epi64(
                    _mm512_add_epi64(
                        _mm512_add_epi64(_mm512_mul_epu32(a1h, x1l), _mm512_mul_epu32(a1l, x1h)),
                        _mm512_add_epi64(_mm512_mul_epu32(a2h, x2l), _mm512_mul_epu32(a2l, x2h)),
                    ),
                    _mm512_add_epi64(_mm512_mul_epu32(a3h, x3l), _mm512_mul_epu32(a3l, x3h)),
                );
                let hi = _mm512_add_epi64(
                    _mm512_add_epi64(_mm512_mul_epu32(a1h, x1h), _mm512_mul_epu32(a2h, x2h)),
                    _mm512_mul_epu32(a3h, x3h),
                );
                // value ≡ lo + mid·2³¹ + hi·2⁶² + c₀ (mod p).  Fold `lo`
                // first so the five-term sum stays under 2⁶⁴, then use
                // mid·2³¹ = (mid >> 30)·2⁶¹ + (mid & mask30)·2³¹
                //         ≡ (mid >> 30) + (mid & mask30) << 31,
                // and 2⁶² ≡ 2.
                let lo_f = _mm512_add_epi64(_mm512_and_si512(lo, p), _mm512_srli_epi64(lo, 61));
                let t_sum = _mm512_add_epi64(
                    _mm512_add_epi64(
                        _mm512_add_epi64(lo_f, _mm512_srli_epi64(mid, 30)),
                        _mm512_add_epi64(
                            _mm512_slli_epi64(_mm512_and_si512(mid, mask30), 31),
                            _mm512_slli_epi64(hi, 1),
                        ),
                    ),
                    a0,
                );
                // Two folds bring the lazy sum to f₂ ≤ p + 1; the canonical
                // value is f₂ − p when f₂ ≥ p, which only flips parity.
                let f1 = _mm512_add_epi64(_mm512_and_si512(t_sum, p), _mm512_srli_epi64(t_sum, 61));
                let f2 = _mm512_add_epi64(_mm512_and_si512(f1, p), _mm512_srli_epi64(f1, 61));
                let k_bit = _mm512_test_epi64_mask(f2, one);
                let k_ge = _mm512_cmpge_epu64_mask(f2, p);
                *out.get_unchecked_mut(t) = k_bit ^ k_ge;
            }
        }
    }
}

/// A bank of sign hashes drawn from simple tabulation word tables.
///
/// One [`TabulationHash`] with 64-bit entries yields 64 mutually independent
/// sign hashes — bit `j` of `h(key)` is the XOR of bit `j` of eight random
/// table entries, i.e. an independent simple tabulation hash into `{0, 1}` —
/// so `⌈len/64⌉` tables cover the whole bank and an item's entire sign row
/// costs a handful of table lookups instead of one polynomial per counter.
/// 3-wise independent (the limit of simple tabulation), see the module docs
/// for what that does to the AMS variance bound.
#[derive(Debug, Clone, PartialEq)]
pub struct TabSignBank {
    tabs: Vec<TabulationHash>,
    len: usize,
}

/// Sign hashes per tabulation word.
const WORD_BITS: usize = 64;

impl TabSignBank {
    /// Build `len` sign hashes from a master seed (one derived seed per
    /// 64-hash word table).
    pub fn from_seed(master: u64, len: usize) -> Self {
        let words = len.div_ceil(WORD_BITS);
        let tabs = crate::derive_seeds(master, words)
            .into_iter()
            .map(TabulationHash::new)
            .collect();
        Self { tabs, len }
    }

    /// Number of sign hashes in the bank.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bank holds no hashes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of [`SIGN_BLOCK`]-wide blocks the packed sign matrix has per
    /// item.
    pub fn blocks(&self) -> usize {
        self.len.div_ceil(SIGN_BLOCK)
    }

    /// Hash `i`'s sign (`+1` / `-1`) for a key.
    #[inline]
    pub fn sign_at(&self, i: usize, key: u64) -> i64 {
        debug_assert!(i < self.len);
        let word = self.tabs[i / WORD_BITS].hash(key);
        (((word >> (i % WORD_BITS)) & 1) as i64) * 2 - 1
    }

    /// The block kernel: evaluate every sign hash on every key and pack the
    /// bits into the same `sign_bytes` layout as
    /// [`SignHashBank::eval_block`] (`sign_bytes[b * n + t]`, bit `j` =
    /// hash `b * SIGN_BLOCK + j` on item `t`).  `hv` is reused scratch for
    /// the per-table word values.
    pub fn eval_block(&self, keys: &[u64], hv: &mut Vec<u64>, sign_bytes: &mut Vec<u8>) {
        let n = keys.len();
        let blocks = self.blocks();
        sign_bytes.clear();
        sign_bytes.resize(blocks * n, 0);
        if n == 0 || blocks == 0 {
            return;
        }
        hv.clear();
        hv.resize(n, 0);
        for (w, tab) in self.tabs.iter().enumerate() {
            hv.iter_mut().for_each(|v| *v = 0);
            tab.hash_into(keys, hv);
            let first_block = w * (WORD_BITS / SIGN_BLOCK);
            let word_blocks = (blocks - first_block).min(WORD_BITS / SIGN_BLOCK);
            for (jb, row) in sign_bytes[first_block * n..]
                .chunks_exact_mut(n)
                .take(word_blocks)
                .enumerate()
            {
                let shift = (jb * SIGN_BLOCK) as u32;
                for (dst, &word) in row.iter_mut().zip(hv.iter()) {
                    *dst = (word >> shift) as u8;
                }
            }
        }
    }

    /// Rough size of the bank in 64-bit words (for space accounting).
    pub fn space_words(&self) -> usize {
        self.tabs.len() * 8 * 256
    }
}

/// A family-dispatched sign bank: the per-counter sign source of the AMS
/// sketch, selectable between [`SignFamily::Polynomial4`]
/// ([`SignHashBank`]) and [`SignFamily::Tabulation`] ([`TabSignBank`]).
/// Both variants fill the identical packed sign-matrix layout, so the ±
/// applies downstream are family-agnostic.
// The polynomial variant holds the transposed coefficient vectors inline on
// purpose: the bank lives once per sketch and is read on every eval, so the
// size asymmetry is not worth a pointer chase on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum SignBank {
    /// Degree-3 polynomial bank (4-wise independent).
    Polynomial(SignHashBank),
    /// Simple tabulation word bank (3-wise independent).
    Tabulation(TabSignBank),
}

impl SignBank {
    /// Build a bank of `len` sign hashes of the given family from a master
    /// seed.  The polynomial family derives one seed per hash (exactly the
    /// legacy `SignHashBank` derivation, so defaults are bit-compatible);
    /// tabulation derives one seed per 64-hash word table.
    pub fn from_seed(family: SignFamily, master: u64, len: usize) -> Self {
        match family {
            SignFamily::Polynomial4 => {
                SignBank::Polynomial(SignHashBank::from_seeds(&crate::derive_seeds(master, len)))
            }
            SignFamily::Tabulation => SignBank::Tabulation(TabSignBank::from_seed(master, len)),
        }
    }

    /// The family this bank was drawn from.
    pub fn family(&self) -> SignFamily {
        match self {
            SignBank::Polynomial(_) => SignFamily::Polynomial4,
            SignBank::Tabulation(_) => SignFamily::Tabulation,
        }
    }

    /// Number of sign hashes in the bank.
    pub fn len(&self) -> usize {
        match self {
            SignBank::Polynomial(b) => b.len(),
            SignBank::Tabulation(b) => b.len(),
        }
    }

    /// Whether the bank holds no hashes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of [`SIGN_BLOCK`]-wide blocks the packed sign matrix has per
    /// item.
    pub fn blocks(&self) -> usize {
        self.len().div_ceil(SIGN_BLOCK)
    }

    /// Hash `i`'s sign (`+1` / `-1`) for a key — the one-off query path;
    /// batch ingestion goes through the block kernels.
    #[inline]
    pub fn sign_at_key(&self, i: usize, key: u64) -> i64 {
        match self {
            SignBank::Polynomial(b) => b.sign_at(i, SignHashBank::key_powers(key)),
            SignBank::Tabulation(b) => b.sign_at(i, key),
        }
    }

    /// Rough size of the bank in 64-bit words (for space accounting).
    pub fn space_words(&self) -> usize {
        match self {
            SignBank::Polynomial(b) => 4 * b.len(),
            SignBank::Tabulation(b) => b.space_words(),
        }
    }
}

/// Batched tug-of-war accumulation over one packed sign-matrix row:
/// `Σ_t σ(t) · δ_t` in `i64`, where `σ(t)` is bit `bit` of `row[t]`
/// (`1` ⇔ `+1`) — the apply stage matching the
/// [`SignHashBank::eval_block`] layout.  The ± select is branchless
/// (`m` is `0` for `+δ` and `-1` for `-δ`, and `(δ ^ m) - m` is
/// two's-complement negation when `m = -1`), so a fair-coin sign bit costs
/// no mispredicts.  Callers must ensure the sum cannot overflow — the
/// sketches gate this on `max|δ| · n < 2^52`, which also rules out
/// `i64::MIN` deltas.
#[inline]
pub fn signed_sum_i64_packed(row: &[u8], bit: u32, deltas: &[i64]) -> i64 {
    debug_assert_eq!(row.len(), deltas.len());
    let mut acc = 0i64;
    for (&kb, &d) in row.iter().zip(deltas) {
        let m = (((kb >> bit) & 1) as i64) - 1;
        acc += (d ^ m) - m;
    }
    acc
}

/// Batched tug-of-war accumulation over one packed sign-matrix row in `f64`
/// — the overflow-safe fallback for extreme deltas.  Same accumulation order
/// as [`signed_sum_i64_packed`] (`acc += ±1.0 · δ as f64`, item order), so
/// the gated paths agree bit for bit whenever both are exact.
#[inline]
pub fn signed_sum_f64_packed(row: &[u8], bit: u32, deltas: &[i64]) -> f64 {
    debug_assert_eq!(row.len(), deltas.len());
    let mut acc = 0.0f64;
    for (&kb, &d) in row.iter().zip(deltas) {
        let sign = if (kb >> bit) & 1 == 1 { 1.0 } else { -1.0 };
        acc += sign * d as f64;
    }
    acc
}

/// Whole-block apply stage: the eight tug-of-war sums
/// `sums[j] = Σ_t σ_j(t) · δ_t` of one packed sign-matrix row at once,
/// where `σ_j(t)` is bit `j` of `row[t]` (`1` ⇔ `+1`).
///
/// All eight counters of a [`SIGN_BLOCK`] share the same byte row and the
/// same deltas, so one fused pass loads each byte and delta once instead of
/// eight times (the per-counter [`signed_sum_i64_packed`] walk re-reads
/// them per bit).  The sums are exact `i64` arithmetic under the callers'
/// `max|δ| · n < 2^52` gate, hence independent of accumulation order —
/// the AVX-512 lane-parallel reduction and the scalar item-order walk
/// return identical values, and converting each sum to `f64` once matches
/// the per-counter path bit for bit.
#[inline]
pub fn signed_sums_block_i64(row: &[u8], deltas: &[i64]) -> [i64; SIGN_BLOCK] {
    debug_assert_eq!(row.len(), deltas.len());
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512dq")
    {
        // SAFETY: feature detection above guarantees the target features the
        // kernel is compiled with; lengths are equal per the debug assert
        // and the kernel only indexes below `row.len()`.
        return unsafe { signed_sums_block_avx512(row, deltas) };
    }
    signed_sums_block_scalar(row, deltas)
}

/// Portable lowering of [`signed_sums_block_i64`]: item-outer with eight
/// branchless ± accumulators (`m` is `0` for `+δ`, `-1` for `-δ`).
fn signed_sums_block_scalar(row: &[u8], deltas: &[i64]) -> [i64; SIGN_BLOCK] {
    let mut sums = [0i64; SIGN_BLOCK];
    for (&kb, &d) in row.iter().zip(deltas) {
        for (j, sum) in sums.iter_mut().enumerate() {
            let m = (((kb >> j) & 1) as i64) - 1;
            *sum += (d ^ m) - m;
        }
    }
    sums
}

/// AVX-512 lowering of [`signed_sums_block_i64`]: eight items per vector.
/// Each step zero-extends eight row bytes into qword lanes and loads the
/// matching eight deltas once; per sign bit, `vptestmq` against `1 << j`
/// yields the lane mask and a masked blend between `δ` and `-δ` feeds a
/// per-bit accumulator — 8 × 64 signed adds from one byte/delta load pair.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn signed_sums_block_avx512(row: &[u8], deltas: &[i64]) -> [i64; SIGN_BLOCK] {
    use std::arch::x86_64::*;
    let n = row.len();
    let zero = _mm512_setzero_si512();
    let bits: [__m512i; SIGN_BLOCK] = std::array::from_fn(|j| _mm512_set1_epi64(1i64 << j));
    let mut acc = [zero; SIGN_BLOCK];
    let mut t = 0usize;
    while t + 8 <= n {
        let bytes = _mm_loadl_epi64(row.as_ptr().add(t) as *const _);
        let bv = _mm512_cvtepu8_epi64(bytes);
        let d = _mm512_loadu_si512(deltas.as_ptr().add(t) as *const _);
        let neg_d = _mm512_sub_epi64(zero, d);
        for j in 0..SIGN_BLOCK {
            let k = _mm512_test_epi64_mask(bv, bits[j]);
            acc[j] = _mm512_add_epi64(acc[j], _mm512_mask_blend_epi64(k, neg_d, d));
        }
        t += 8;
    }
    let mut sums: [i64; SIGN_BLOCK] = std::array::from_fn(|j| _mm512_reduce_add_epi64(acc[j]));
    // Scalar tail for the last n mod 8 items.
    for (&kb, &d) in row[t..].iter().zip(&deltas[t..]) {
        for (j, sum) in sums.iter_mut().enumerate() {
            let m = (((kb >> j) & 1) as i64) - 1;
            *sum += (d ^ m) - m;
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_are_plus_or_minus_one() {
        let s = SignHash::new(3);
        for key in 0..1000u64 {
            let v = s.sign(key);
            assert!(v == 1 || v == -1);
            assert_eq!(v as f64, s.sign_f64(key));
        }
    }

    #[test]
    fn deterministic() {
        let a = SignHash::new(17);
        let b = SignHash::new(17);
        for key in 0..256u64 {
            assert_eq!(a.sign(key), b.sign(key));
        }
    }

    #[test]
    fn balanced_over_keys() {
        let s = SignHash::new(1234);
        let sum: i64 = (0..100_000u64).map(|k| s.sign(k)).sum();
        // Standard deviation is sqrt(100000) ≈ 316; allow 6 sigma.
        assert!(sum.abs() < 2000, "sign sum {sum} too biased");
    }

    #[test]
    fn pair_products_have_near_zero_mean_across_seeds() {
        // E[σ(a)σ(b)] = 0 for a ≠ b under pairwise independence.
        let trials = 4000;
        let mut sum = 0i64;
        for seed in 0..trials {
            let s = SignHash::new(seed as u64);
            sum += s.sign(10) * s.sign(20);
        }
        let mean = sum as f64 / trials as f64;
        assert!(mean.abs() < 0.06, "pair product mean {mean} not near 0");
    }

    #[test]
    fn bank_matches_individual_sign_hashes_bit_for_bit() {
        let seeds: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9) ^ 7)
            .collect();
        let bank = SignHashBank::from_seeds(&seeds);
        let singles: Vec<SignHash> = seeds.iter().map(|&s| SignHash::new(s)).collect();
        assert_eq!(bank.len(), singles.len());
        assert!(!bank.is_empty());
        for key in (0..50_000u64)
            .step_by(97)
            .chain([u64::MAX, u64::MAX - 1, 0])
        {
            let powers = SignHashBank::key_powers(key);
            for (i, single) in singles.iter().enumerate() {
                assert_eq!(
                    bank.sign_at(i, powers),
                    single.sign(key),
                    "bank/single mismatch at hash {i}, key {key}"
                );
                assert_eq!(
                    bank.sign_f64_at(i, powers).to_bits(),
                    single.sign_f64(key).to_bits()
                );
            }
        }
    }

    #[test]
    fn bank_eval_matches_kwise_hash_values() {
        // Stronger than sign equality: the full field element must match the
        // Horner evaluation, since the fast paths key off the low bit of
        // exactly this value.
        for seed in [0u64, 1, 42, u64::MAX] {
            let poly = KWiseHash::new(4, seed);
            let bank = SignHashBank::from_seeds(&[seed]);
            for key in (0..10_000u64).step_by(53) {
                let powers = SignHashBank::key_powers(key);
                assert_eq!(
                    SignHashBank::eval_with(bank.coefficients_at(0), powers),
                    poly.hash(key),
                    "field value mismatch for seed {seed}, key {key}"
                );
            }
        }
    }

    /// Pack key powers for a slice of keys (test helper mirroring what the
    /// AMS batch path does).
    fn powers_of(keys: &[u64]) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let (mut x1, mut x2, mut x3) = (Vec::new(), Vec::new(), Vec::new());
        for &k in keys {
            let (a, b, c) = SignHashBank::key_powers(k);
            x1.push(a);
            x2.push(b);
            x3.push(c);
        }
        (x1, x2, x3)
    }

    /// The block kernel agrees bit for bit with per-item `sign_at` for every
    /// hash and key — adversarial keys, bank sizes off the block boundary,
    /// and batch lengths from one to odd non-powers-of-two.  This covers
    /// whichever lowering (scalar or AVX-512) the host dispatches to.
    #[test]
    fn eval_block_matches_per_item_signs() {
        let keys: Vec<u64> = (0..97u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .chain([
                0,
                0,
                1,
                u64::MAX,
                u64::MAX - 1,
                (1 << 61) - 1,
                1 << 61,
                1 << 63,
            ])
            .collect();
        let (x1, x2, x3) = powers_of(&keys);
        let mut sign_bytes = Vec::new();
        for bank_len in [1usize, 7, 8, 9, 64, 320] {
            let seeds: Vec<u64> = (0..bank_len as u64).map(|i| i ^ 0xF00D).collect();
            let bank = SignHashBank::from_seeds(&seeds);
            assert_eq!(bank.blocks(), bank_len.div_ceil(SIGN_BLOCK));
            for n in [1usize, 2, 7, 16, 33, keys.len()] {
                bank.eval_block(&x1[..n], &x2[..n], &x3[..n], &mut sign_bytes);
                assert_eq!(sign_bytes.len(), bank.blocks() * n);
                for i in 0..bank_len {
                    let row = &sign_bytes[(i / SIGN_BLOCK) * n..(i / SIGN_BLOCK) * n + n];
                    for (t, &key) in keys[..n].iter().enumerate() {
                        let expected = bank.sign_at(i, SignHashBank::key_powers(key));
                        let got = (((row[t] >> (i % SIGN_BLOCK)) & 1) as i64) * 2 - 1;
                        assert_eq!(got, expected, "hash {i}, item {t} (key {key}), n={n}");
                    }
                }
            }
        }
    }

    /// The scalar lowering is the semantic reference: on hosts that dispatch
    /// to AVX-512, this pins the two lowerings to identical bytes.
    #[test]
    fn scalar_and_dispatched_lowerings_agree() {
        let keys: Vec<u64> = (0..513u64)
            .map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95) ^ (i << 55))
            .collect();
        let (x1, x2, x3) = powers_of(&keys);
        let bank = SignHashBank::from_seeds(&crate::derive_seeds(0xA115, 320));
        let mut dispatched = Vec::new();
        bank.eval_block(&x1, &x2, &x3, &mut dispatched);
        let mut scalar = vec![0u8; bank.blocks() * keys.len()];
        bank.eval_block_scalar(&x1, &x2, &x3, &mut scalar);
        assert_eq!(dispatched, scalar);
    }

    #[test]
    fn packed_signed_sums_match_scalar_accumulation() {
        let seeds = [3u64, 99, u64::MAX];
        let bank = SignHashBank::from_seeds(&seeds);
        let keys: Vec<u64> = (0..200u64)
            .map(|i| i.wrapping_mul(0x517C_C1B7) ^ 5)
            .collect();
        let deltas: Vec<i64> = (0..200i64).map(|i| (i * 37 - 2000) % 911).collect();
        let (x1, x2, x3) = powers_of(&keys);
        let mut sign_bytes = Vec::new();
        bank.eval_block(&x1, &x2, &x3, &mut sign_bytes);
        let n = keys.len();
        for i in 0..bank.len() {
            let mut scalar_i = 0i64;
            let mut scalar_f = 0.0f64;
            for (t, &k) in keys.iter().enumerate() {
                let powers = SignHashBank::key_powers(k);
                scalar_i += bank.sign_at(i, powers) * deltas[t];
                scalar_f += bank.sign_f64_at(i, powers) * deltas[t] as f64;
            }
            let row = &sign_bytes[(i / SIGN_BLOCK) * n..(i / SIGN_BLOCK) * n + n];
            let bit = (i % SIGN_BLOCK) as u32;
            assert_eq!(signed_sum_i64_packed(row, bit, &deltas), scalar_i);
            assert_eq!(
                signed_sum_f64_packed(row, bit, &deltas).to_bits(),
                scalar_f.to_bits()
            );
        }
    }

    #[test]
    fn block_signed_sums_match_per_bit_sums() {
        // The fused whole-block apply must agree with eight per-bit walks —
        // on the dispatched lowering, the scalar lowering, and across tail
        // lengths that exercise the vector kernel's n mod 8 remainder.
        for n in [0usize, 1, 7, 8, 9, 64, 157] {
            let row: Vec<u8> = (0..n).map(|t| (t as u8).wrapping_mul(37) ^ 0xA5).collect();
            let deltas: Vec<i64> = (0..n as i64).map(|t| (t * 73 - 1000) % 517).collect();
            let expected: [i64; SIGN_BLOCK] =
                std::array::from_fn(|j| signed_sum_i64_packed(&row, j as u32, &deltas));
            assert_eq!(signed_sums_block_i64(&row, &deltas), expected);
            assert_eq!(signed_sums_block_scalar(&row, &deltas), expected);
        }
    }

    #[test]
    fn four_way_products_have_near_zero_mean_across_seeds() {
        // E[σ(a)σ(b)σ(c)σ(d)] = 0 for distinct keys under 4-wise independence.
        let trials = 6000;
        let mut sum = 0i64;
        for seed in 0..trials {
            let s = SignHash::new(seed as u64 + 5_000);
            sum += s.sign(1) * s.sign(2) * s.sign(3) * s.sign(4);
        }
        let mean = sum as f64 / trials as f64;
        assert!(mean.abs() < 0.06, "4-way product mean {mean} not near 0");
    }

    #[test]
    fn sign_family_names_tags_and_default() {
        assert_eq!(SignFamily::Polynomial4.name(), "polynomial4");
        assert_eq!(SignFamily::Tabulation.name(), "tabulation");
        assert_eq!(SignFamily::default(), SignFamily::Polynomial4);
        for family in [SignFamily::Polynomial4, SignFamily::Tabulation] {
            assert_eq!(SignFamily::from_tag(family.tag()), Some(family));
        }
        assert_eq!(SignFamily::from_tag(2), None);
        assert_eq!(SignFamily::from_tag(255), None);
    }

    #[test]
    fn tab_bank_block_kernel_matches_per_item_signs() {
        let keys: Vec<u64> = (0..131u64)
            .map(|i| i.wrapping_mul(0x2545_F491_4F6C_DD1D))
            .chain([0, 0, u64::MAX, 1 << 63])
            .collect();
        let mut hv = Vec::new();
        let mut sign_bytes = Vec::new();
        for len in [1usize, 63, 64, 65, 320] {
            let bank = TabSignBank::from_seed(0xBEEF, len);
            assert_eq!(bank.len(), len);
            assert!(!bank.is_empty());
            for n in [1usize, 5, 16, keys.len()] {
                bank.eval_block(&keys[..n], &mut hv, &mut sign_bytes);
                assert_eq!(sign_bytes.len(), bank.blocks() * n);
                for i in 0..len {
                    let row = &sign_bytes[(i / SIGN_BLOCK) * n..(i / SIGN_BLOCK) * n + n];
                    for (t, &key) in keys[..n].iter().enumerate() {
                        let got = (((row[t] >> (i % SIGN_BLOCK)) & 1) as i64) * 2 - 1;
                        assert_eq!(got, bank.sign_at(i, key), "hash {i}, key {key}, n={n}");
                    }
                }
            }
        }
    }

    #[test]
    fn tab_bank_signs_balanced_and_pairwise_clean() {
        let bank = TabSignBank::from_seed(77, 128);
        for i in [0usize, 63, 64, 127] {
            let sum: i64 = (0..50_000u64).map(|k| bank.sign_at(i, k)).sum();
            assert!(sum.abs() < 1500, "hash {i} sign sum {sum} too biased");
        }
        // Distinct word-bank bits must be (empirically) uncorrelated.
        let cross: i64 = (0..50_000u64)
            .map(|k| bank.sign_at(3, k) * bank.sign_at(70, k))
            .sum();
        assert!(cross.abs() < 1500, "cross-bit correlation {cross}");
    }

    #[test]
    fn sign_bank_dispatch_and_identity() {
        for family in [SignFamily::Polynomial4, SignFamily::Tabulation] {
            let bank = SignBank::from_seed(family, 0xA11CE, 40);
            assert_eq!(bank.family(), family);
            assert_eq!(bank.len(), 40);
            assert!(!bank.is_empty());
            assert_eq!(bank.blocks(), 5);
            assert!(bank.space_words() > 0);
            for i in [0usize, 7, 39] {
                for key in [0u64, 1, u64::MAX] {
                    let s = bank.sign_at_key(i, key);
                    assert!(s == 1 || s == -1);
                }
            }
        }
        // The polynomial variant is bit-compatible with the legacy
        // seed-per-hash derivation.
        let legacy = SignHashBank::from_seeds(&crate::derive_seeds(0xA11CE, 40));
        let bank = SignBank::from_seed(SignFamily::Polynomial4, 0xA11CE, 40);
        for key in (0..5_000u64).step_by(41) {
            for i in 0..40 {
                assert_eq!(
                    bank.sign_at_key(i, key),
                    legacy.sign_at(i, SignHashBank::key_powers(key))
                );
            }
        }
    }
}
