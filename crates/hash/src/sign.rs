//! Sign hashes: 4-wise independent maps from keys to `{-1, +1}`.
//!
//! CountSketch and the AMS F₂ ("tug of war") estimator both need sign hashes
//! whose 4-wise independence makes the variance analysis go through.
//!
//! [`SignHashBank`] is the batched form: the AMS sketch evaluates *hundreds*
//! of independent sign hashes per item, and doing that through a
//! `Vec<SignHash>` chases a heap-allocated coefficient vector per hash per
//! key.  The bank transposes the degree-3 polynomials into
//! structure-of-arrays coefficient columns and shares the key powers
//! `x, x², x³` across every hash, so the per-hash work is three
//! multiply-reduces over contiguous memory — same field values, bit for bit,
//! as the Horner evaluation [`SignHash`] performs.

use crate::kwise::KWiseHash;
use crate::prime::{add, mul, reduce};

/// A sign hash `σ : u64 → {-1, +1}` drawn from a k-wise independent family
/// (k = 4 by default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignHash {
    inner: KWiseHash,
}

impl SignHash {
    /// Draw a 4-wise independent sign hash.
    pub fn new(seed: u64) -> Self {
        Self::with_independence(4, seed)
    }

    /// Draw a sign hash from a `k`-wise independent family.
    pub fn with_independence(k: usize, seed: u64) -> Self {
        Self {
            inner: KWiseHash::new(k, seed),
        }
    }

    /// Evaluate the sign of a key: `+1` or `-1`.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        if self.inner.hash(key) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Evaluate as an `f64` (convenience for floating-point accumulators).
    #[inline]
    pub fn sign_f64(&self, key: u64) -> f64 {
        self.sign(key) as f64
    }
}

/// A bank of independent 4-wise sign hashes evaluated together.
///
/// Semantically identical to `Vec<SignHash>` built from the same seeds: for
/// every index `i` and key `x`, `bank.sign_at(i, powers)` equals
/// `SignHash::new(seeds[i]).sign(x)` — both compute the canonical reduced
/// field element `c₀ + c₁x + c₂x² + c₃x³` over `GF(2^61 − 1)` and take its
/// low bit, so the agreement is exact, not approximate.  The layout is what
/// differs: coefficients live in four contiguous columns (one per degree)
/// instead of one heap vector per hash, and the key powers are computed once
/// per key instead of once per hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignHashBank {
    /// Transposed coefficients: `cN[i]` is hash `i`'s degree-`N` coefficient.
    c0: Vec<u64>,
    c1: Vec<u64>,
    c2: Vec<u64>,
    c3: Vec<u64>,
}

impl SignHashBank {
    /// Build the bank from per-hash seeds, drawing each polynomial exactly as
    /// `SignHash::new(seed)` does.
    pub fn from_seeds(seeds: &[u64]) -> Self {
        let mut bank = Self {
            c0: Vec::with_capacity(seeds.len()),
            c1: Vec::with_capacity(seeds.len()),
            c2: Vec::with_capacity(seeds.len()),
            c3: Vec::with_capacity(seeds.len()),
        };
        for &seed in seeds {
            let poly = KWiseHash::new(4, seed);
            let c = poly.coefficients();
            bank.c0.push(c[0]);
            bank.c1.push(c[1]);
            bank.c2.push(c[2]);
            bank.c3.push(c[3]);
        }
        bank
    }

    /// Number of sign hashes in the bank.
    pub fn len(&self) -> usize {
        self.c0.len()
    }

    /// Whether the bank holds no hashes.
    pub fn is_empty(&self) -> bool {
        self.c0.is_empty()
    }

    /// The reduced key powers `(x, x², x³)` shared by every hash in the bank
    /// — compute once per key, reuse across all `len()` evaluations.
    #[inline]
    pub fn key_powers(key: u64) -> (u64, u64, u64) {
        let x = reduce(key);
        let x2 = mul(x, x);
        let x3 = mul(x2, x);
        (x, x2, x3)
    }

    /// Hash `i`'s coefficients `[c₀, c₁, c₂, c₃]`, for callers that hoist the
    /// loads out of a per-key inner loop.
    #[inline]
    pub fn coefficients_at(&self, i: usize) -> [u64; 4] {
        [self.c0[i], self.c1[i], self.c2[i], self.c3[i]]
    }

    /// Evaluate one degree-3 polynomial on precomputed key powers.  The
    /// result is the same canonical field element Horner evaluation yields
    /// (every operand is fully reduced and `add`/`mul` are exact field ops),
    /// so its low bit is exactly the [`SignHash`] sign bit.
    #[inline]
    pub fn eval_with(coeffs: [u64; 4], powers: (u64, u64, u64)) -> u64 {
        let (x, x2, x3) = powers;
        add(
            add(
                add(mul(coeffs[3], x3), mul(coeffs[2], x2)),
                mul(coeffs[1], x),
            ),
            coeffs[0],
        )
    }

    /// Hash `i`'s sign (`+1` / `-1`) on precomputed key powers.
    #[inline]
    pub fn sign_at(&self, i: usize, powers: (u64, u64, u64)) -> i64 {
        if Self::eval_with(self.coefficients_at(i), powers) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Hash `i`'s sign as an `f64` (convenience for floating accumulators).
    #[inline]
    pub fn sign_f64_at(&self, i: usize, powers: (u64, u64, u64)) -> f64 {
        self.sign_at(i, powers) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_are_plus_or_minus_one() {
        let s = SignHash::new(3);
        for key in 0..1000u64 {
            let v = s.sign(key);
            assert!(v == 1 || v == -1);
            assert_eq!(v as f64, s.sign_f64(key));
        }
    }

    #[test]
    fn deterministic() {
        let a = SignHash::new(17);
        let b = SignHash::new(17);
        for key in 0..256u64 {
            assert_eq!(a.sign(key), b.sign(key));
        }
    }

    #[test]
    fn balanced_over_keys() {
        let s = SignHash::new(1234);
        let sum: i64 = (0..100_000u64).map(|k| s.sign(k)).sum();
        // Standard deviation is sqrt(100000) ≈ 316; allow 6 sigma.
        assert!(sum.abs() < 2000, "sign sum {sum} too biased");
    }

    #[test]
    fn pair_products_have_near_zero_mean_across_seeds() {
        // E[σ(a)σ(b)] = 0 for a ≠ b under pairwise independence.
        let trials = 4000;
        let mut sum = 0i64;
        for seed in 0..trials {
            let s = SignHash::new(seed as u64);
            sum += s.sign(10) * s.sign(20);
        }
        let mean = sum as f64 / trials as f64;
        assert!(mean.abs() < 0.06, "pair product mean {mean} not near 0");
    }

    #[test]
    fn bank_matches_individual_sign_hashes_bit_for_bit() {
        let seeds: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9) ^ 7)
            .collect();
        let bank = SignHashBank::from_seeds(&seeds);
        let singles: Vec<SignHash> = seeds.iter().map(|&s| SignHash::new(s)).collect();
        assert_eq!(bank.len(), singles.len());
        assert!(!bank.is_empty());
        for key in (0..50_000u64)
            .step_by(97)
            .chain([u64::MAX, u64::MAX - 1, 0])
        {
            let powers = SignHashBank::key_powers(key);
            for (i, single) in singles.iter().enumerate() {
                assert_eq!(
                    bank.sign_at(i, powers),
                    single.sign(key),
                    "bank/single mismatch at hash {i}, key {key}"
                );
                assert_eq!(
                    bank.sign_f64_at(i, powers).to_bits(),
                    single.sign_f64(key).to_bits()
                );
            }
        }
    }

    #[test]
    fn bank_eval_matches_kwise_hash_values() {
        // Stronger than sign equality: the full field element must match the
        // Horner evaluation, since the i64 fast paths key off the low bit of
        // exactly this value.
        for seed in [0u64, 1, 42, u64::MAX] {
            let poly = KWiseHash::new(4, seed);
            let bank = SignHashBank::from_seeds(&[seed]);
            for key in (0..10_000u64).step_by(53) {
                let powers = SignHashBank::key_powers(key);
                assert_eq!(
                    SignHashBank::eval_with(bank.coefficients_at(0), powers),
                    poly.hash(key),
                    "field value mismatch for seed {seed}, key {key}"
                );
            }
        }
    }

    #[test]
    fn four_way_products_have_near_zero_mean_across_seeds() {
        // E[σ(a)σ(b)σ(c)σ(d)] = 0 for distinct keys under 4-wise independence.
        let trials = 6000;
        let mut sum = 0i64;
        for seed in 0..trials {
            let s = SignHash::new(seed as u64 + 5_000);
            sum += s.sign(1) * s.sign(2) * s.sign(3) * s.sign(4);
        }
        let mean = sum as f64 / trials as f64;
        assert!(mean.abs() < 0.06, "4-way product mean {mean} not near 0");
    }
}
