//! Sign hashes: 4-wise independent maps from keys to `{-1, +1}`.
//!
//! CountSketch and the AMS F₂ ("tug of war") estimator both need sign hashes
//! whose 4-wise independence makes the variance analysis go through.

use crate::kwise::KWiseHash;

/// A sign hash `σ : u64 → {-1, +1}` drawn from a k-wise independent family
/// (k = 4 by default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignHash {
    inner: KWiseHash,
}

impl SignHash {
    /// Draw a 4-wise independent sign hash.
    pub fn new(seed: u64) -> Self {
        Self::with_independence(4, seed)
    }

    /// Draw a sign hash from a `k`-wise independent family.
    pub fn with_independence(k: usize, seed: u64) -> Self {
        Self {
            inner: KWiseHash::new(k, seed),
        }
    }

    /// Evaluate the sign of a key: `+1` or `-1`.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        if self.inner.hash(key) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Evaluate as an `f64` (convenience for floating-point accumulators).
    #[inline]
    pub fn sign_f64(&self, key: u64) -> f64 {
        self.sign(key) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_are_plus_or_minus_one() {
        let s = SignHash::new(3);
        for key in 0..1000u64 {
            let v = s.sign(key);
            assert!(v == 1 || v == -1);
            assert_eq!(v as f64, s.sign_f64(key));
        }
    }

    #[test]
    fn deterministic() {
        let a = SignHash::new(17);
        let b = SignHash::new(17);
        for key in 0..256u64 {
            assert_eq!(a.sign(key), b.sign(key));
        }
    }

    #[test]
    fn balanced_over_keys() {
        let s = SignHash::new(1234);
        let sum: i64 = (0..100_000u64).map(|k| s.sign(k)).sum();
        // Standard deviation is sqrt(100000) ≈ 316; allow 6 sigma.
        assert!(sum.abs() < 2000, "sign sum {sum} too biased");
    }

    #[test]
    fn pair_products_have_near_zero_mean_across_seeds() {
        // E[σ(a)σ(b)] = 0 for a ≠ b under pairwise independence.
        let trials = 4000;
        let mut sum = 0i64;
        for seed in 0..trials {
            let s = SignHash::new(seed as u64);
            sum += s.sign(10) * s.sign(20);
        }
        let mean = sum as f64 / trials as f64;
        assert!(mean.abs() < 0.06, "pair product mean {mean} not near 0");
    }

    #[test]
    fn four_way_products_have_near_zero_mean_across_seeds() {
        // E[σ(a)σ(b)σ(c)σ(d)] = 0 for distinct keys under 4-wise independence.
        let trials = 6000;
        let mut sum = 0i64;
        for seed in 0..trials {
            let s = SignHash::new(seed as u64 + 5_000);
            sum += s.sign(1) * s.sign(2) * s.sign(3) * s.sign(4);
        }
        let mean = sum as f64 / trials as f64;
        assert!(mean.abs() < 0.06, "4-way product mean {mean} not near 0");
    }
}
