//! Sign hashes: 4-wise independent maps from keys to `{-1, +1}`.
//!
//! CountSketch and the AMS F₂ ("tug of war") estimator both need sign hashes
//! whose 4-wise independence makes the variance analysis go through.
//!
//! [`SignHashBank`] is the batched form: the AMS sketch evaluates *hundreds*
//! of independent sign hashes per item, and doing that through a
//! `Vec<SignHash>` chases a heap-allocated coefficient vector per hash per
//! key.  The bank transposes the degree-3 polynomials into
//! structure-of-arrays coefficient columns and shares the key powers
//! `x, x², x³` across every hash, so the per-hash work is three
//! multiply-reduces over contiguous memory — same field values, bit for bit,
//! as the Horner evaluation [`SignHash`] performs.

use crate::kwise::KWiseHash;
use crate::prime::{mul, reduce, reduce128};

/// A sign hash `σ : u64 → {-1, +1}` drawn from a k-wise independent family
/// (k = 4 by default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignHash {
    inner: KWiseHash,
}

impl SignHash {
    /// Draw a 4-wise independent sign hash.
    pub fn new(seed: u64) -> Self {
        Self::with_independence(4, seed)
    }

    /// Draw a sign hash from a `k`-wise independent family.
    pub fn with_independence(k: usize, seed: u64) -> Self {
        Self {
            inner: KWiseHash::new(k, seed),
        }
    }

    /// Evaluate the sign of a key: `+1` or `-1`.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        if self.inner.hash(key) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Evaluate as an `f64` (convenience for floating-point accumulators).
    #[inline]
    pub fn sign_f64(&self, key: u64) -> f64 {
        self.sign(key) as f64
    }
}

/// A bank of independent 4-wise sign hashes evaluated together.
///
/// Semantically identical to `Vec<SignHash>` built from the same seeds: for
/// every index `i` and key `x`, `bank.sign_at(i, powers)` equals
/// `SignHash::new(seeds[i]).sign(x)` — both compute the canonical reduced
/// field element `c₀ + c₁x + c₂x² + c₃x³` over `GF(2^61 − 1)` and take its
/// low bit, so the agreement is exact, not approximate.  The layout is what
/// differs: coefficients live in four contiguous columns (one per degree)
/// instead of one heap vector per hash, and the key powers are computed once
/// per key instead of once per hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignHashBank {
    /// Transposed coefficients: `cN[i]` is hash `i`'s degree-`N` coefficient.
    c0: Vec<u64>,
    c1: Vec<u64>,
    c2: Vec<u64>,
    c3: Vec<u64>,
}

impl SignHashBank {
    /// Build the bank from per-hash seeds, drawing each polynomial exactly as
    /// `SignHash::new(seed)` does.
    pub fn from_seeds(seeds: &[u64]) -> Self {
        let mut bank = Self {
            c0: Vec::with_capacity(seeds.len()),
            c1: Vec::with_capacity(seeds.len()),
            c2: Vec::with_capacity(seeds.len()),
            c3: Vec::with_capacity(seeds.len()),
        };
        for &seed in seeds {
            let poly = KWiseHash::new(4, seed);
            let c = poly.coefficients();
            bank.c0.push(c[0]);
            bank.c1.push(c[1]);
            bank.c2.push(c[2]);
            bank.c3.push(c[3]);
        }
        bank
    }

    /// Number of sign hashes in the bank.
    pub fn len(&self) -> usize {
        self.c0.len()
    }

    /// Whether the bank holds no hashes.
    pub fn is_empty(&self) -> bool {
        self.c0.is_empty()
    }

    /// The reduced key powers `(x, x², x³)` shared by every hash in the bank
    /// — compute once per key, reuse across all `len()` evaluations.
    #[inline]
    pub fn key_powers(key: u64) -> (u64, u64, u64) {
        let x = reduce(key);
        let x2 = mul(x, x);
        let x3 = mul(x2, x);
        (x, x2, x3)
    }

    /// Hash `i`'s coefficients `[c₀, c₁, c₂, c₃]`, for callers that hoist the
    /// loads out of a per-key inner loop.
    #[inline]
    pub fn coefficients_at(&self, i: usize) -> [u64; 4] {
        [self.c0[i], self.c1[i], self.c2[i], self.c3[i]]
    }

    /// Evaluate one degree-3 polynomial on precomputed key powers.  The
    /// result is the same canonical field element Horner evaluation yields:
    /// the whole dot product `c₀ + c₁x + c₂x² + c₃x³` is accumulated in
    /// `u128` (three products below `p²` plus `c₀` stay under `2^124`) and
    /// reduced **once**, instead of reducing after every multiply and add.
    /// Canonical representatives are unique, so the single lazy reduction
    /// yields the identical `u64` — while dropping two 128-bit folds and
    /// three conditional subtractions from the hottest loop in the AMS
    /// sketch.
    #[inline]
    pub fn eval_with(coeffs: [u64; 4], powers: (u64, u64, u64)) -> u64 {
        let (x, x2, x3) = powers;
        reduce128(
            (coeffs[3] as u128) * (x3 as u128)
                + (coeffs[2] as u128) * (x2 as u128)
                + (coeffs[1] as u128) * (x as u128)
                + coeffs[0] as u128,
        )
    }

    /// Hash `i`'s sign (`+1` / `-1`) on precomputed key powers.
    #[inline]
    pub fn sign_at(&self, i: usize, powers: (u64, u64, u64)) -> i64 {
        if Self::eval_with(self.coefficients_at(i), powers) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Hash `i`'s sign as an `f64` (convenience for floating accumulators).
    #[inline]
    pub fn sign_f64_at(&self, i: usize, powers: (u64, u64, u64)) -> f64 {
        self.sign_at(i, powers) as f64
    }

    /// Batched tug-of-war accumulation for hash `i`: `Σ_t σ_i(key_t) · δ_t`
    /// in `i64`, over precomputed key-power columns (`x1[t], x2[t], x3[t]` =
    /// the [`key_powers`](Self::key_powers) of key `t`).
    ///
    /// Hash `i`'s coefficients are loaded once and the per-key evaluation is
    /// the exact [`eval_with`](Self::eval_with) field value; the ± select is
    /// branchless (`m` is `0` for `+δ` and `-1` for `-δ`, and `(δ ^ m) - m`
    /// is two's-complement negation when `m = -1`), so a fair-coin sign bit
    /// costs no mispredicts.  Callers must ensure the sum cannot overflow —
    /// the sketches gate this on `max|δ| · n < 2^52`, which also rules out
    /// `i64::MIN` deltas.
    #[inline]
    pub fn signed_sum_i64(
        &self,
        i: usize,
        x1: &[u64],
        x2: &[u64],
        x3: &[u64],
        deltas: &[i64],
    ) -> i64 {
        let coeffs = self.coefficients_at(i);
        let mut acc = 0i64;
        for t in 0..deltas.len() {
            let h = Self::eval_with(coeffs, (x1[t], x2[t], x3[t]));
            let m = ((h & 1) as i64) - 1;
            acc += (deltas[t] ^ m) - m;
        }
        acc
    }

    /// Batched tug-of-war accumulation for hash `i` in `f64` — the overflow-
    /// safe fallback for extreme deltas.  Same evaluation order as the
    /// per-update path (`acc += ±1.0 · δ as f64`, key order), so it
    /// reproduces the f64 accumulation bit for bit.
    #[inline]
    pub fn signed_sum_f64(
        &self,
        i: usize,
        x1: &[u64],
        x2: &[u64],
        x3: &[u64],
        deltas: &[i64],
    ) -> f64 {
        let coeffs = self.coefficients_at(i);
        let mut acc = 0.0f64;
        for t in 0..deltas.len() {
            let h = Self::eval_with(coeffs, (x1[t], x2[t], x3[t]));
            let sign = if h & 1 == 1 { 1.0 } else { -1.0 };
            acc += sign * deltas[t] as f64;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_are_plus_or_minus_one() {
        let s = SignHash::new(3);
        for key in 0..1000u64 {
            let v = s.sign(key);
            assert!(v == 1 || v == -1);
            assert_eq!(v as f64, s.sign_f64(key));
        }
    }

    #[test]
    fn deterministic() {
        let a = SignHash::new(17);
        let b = SignHash::new(17);
        for key in 0..256u64 {
            assert_eq!(a.sign(key), b.sign(key));
        }
    }

    #[test]
    fn balanced_over_keys() {
        let s = SignHash::new(1234);
        let sum: i64 = (0..100_000u64).map(|k| s.sign(k)).sum();
        // Standard deviation is sqrt(100000) ≈ 316; allow 6 sigma.
        assert!(sum.abs() < 2000, "sign sum {sum} too biased");
    }

    #[test]
    fn pair_products_have_near_zero_mean_across_seeds() {
        // E[σ(a)σ(b)] = 0 for a ≠ b under pairwise independence.
        let trials = 4000;
        let mut sum = 0i64;
        for seed in 0..trials {
            let s = SignHash::new(seed as u64);
            sum += s.sign(10) * s.sign(20);
        }
        let mean = sum as f64 / trials as f64;
        assert!(mean.abs() < 0.06, "pair product mean {mean} not near 0");
    }

    #[test]
    fn bank_matches_individual_sign_hashes_bit_for_bit() {
        let seeds: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9) ^ 7)
            .collect();
        let bank = SignHashBank::from_seeds(&seeds);
        let singles: Vec<SignHash> = seeds.iter().map(|&s| SignHash::new(s)).collect();
        assert_eq!(bank.len(), singles.len());
        assert!(!bank.is_empty());
        for key in (0..50_000u64)
            .step_by(97)
            .chain([u64::MAX, u64::MAX - 1, 0])
        {
            let powers = SignHashBank::key_powers(key);
            for (i, single) in singles.iter().enumerate() {
                assert_eq!(
                    bank.sign_at(i, powers),
                    single.sign(key),
                    "bank/single mismatch at hash {i}, key {key}"
                );
                assert_eq!(
                    bank.sign_f64_at(i, powers).to_bits(),
                    single.sign_f64(key).to_bits()
                );
            }
        }
    }

    #[test]
    fn bank_eval_matches_kwise_hash_values() {
        // Stronger than sign equality: the full field element must match the
        // Horner evaluation, since the i64 fast paths key off the low bit of
        // exactly this value.
        for seed in [0u64, 1, 42, u64::MAX] {
            let poly = KWiseHash::new(4, seed);
            let bank = SignHashBank::from_seeds(&[seed]);
            for key in (0..10_000u64).step_by(53) {
                let powers = SignHashBank::key_powers(key);
                assert_eq!(
                    SignHashBank::eval_with(bank.coefficients_at(0), powers),
                    poly.hash(key),
                    "field value mismatch for seed {seed}, key {key}"
                );
            }
        }
    }

    #[test]
    fn signed_sums_match_scalar_accumulation() {
        let bank = SignHashBank::from_seeds(&[3, 99, u64::MAX]);
        let keys: Vec<u64> = (0..200u64)
            .map(|i| i.wrapping_mul(0x517C_C1B7) ^ 5)
            .collect();
        let deltas: Vec<i64> = (0..200i64).map(|i| (i * 37 - 2000) % 911).collect();
        let (mut x1, mut x2, mut x3) = (Vec::new(), Vec::new(), Vec::new());
        for &k in &keys {
            let (a, b, c) = SignHashBank::key_powers(k);
            x1.push(a);
            x2.push(b);
            x3.push(c);
        }
        for i in 0..bank.len() {
            let mut scalar_i = 0i64;
            let mut scalar_f = 0.0f64;
            for (t, &k) in keys.iter().enumerate() {
                let powers = SignHashBank::key_powers(k);
                scalar_i += bank.sign_at(i, powers) * deltas[t];
                scalar_f += bank.sign_f64_at(i, powers) * deltas[t] as f64;
            }
            assert_eq!(bank.signed_sum_i64(i, &x1, &x2, &x3, &deltas), scalar_i);
            assert_eq!(
                bank.signed_sum_f64(i, &x1, &x2, &x3, &deltas).to_bits(),
                scalar_f.to_bits()
            );
        }
    }

    #[test]
    fn four_way_products_have_near_zero_mean_across_seeds() {
        // E[σ(a)σ(b)σ(c)σ(d)] = 0 for distinct keys under 4-wise independence.
        let trials = 6000;
        let mut sum = 0i64;
        for seed in 0..trials {
            let s = SignHash::new(seed as u64 + 5_000);
            sum += s.sign(1) * s.sign(2) * s.sign(3) * s.sign(4);
        }
        let mean = sum as f64 / trials as f64;
        assert!(mean.abs() < 0.06, "4-way product mean {mean} not near 0");
    }
}
