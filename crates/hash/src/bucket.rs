//! Bucket hashes: limited-independence maps from keys into `[0, b)`.
//!
//! Used to split a stream into substreams: CountSketch rows, the recursive
//! sketch's level-wise subsampling, the `g_np` algorithm's `O(λ^{-2})`-way
//! split, and the `(a,b,c)`-DIST counter algorithm's contiguous pieces.

use crate::kwise::KWiseHash;

/// A hash function mapping `u64` keys into `[0, buckets)`, drawn from a
/// k-wise independent family (pairwise by default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketHash {
    inner: KWiseHash,
    buckets: u64,
}

impl BucketHash {
    /// Draw a pairwise-independent bucket hash with the given number of
    /// buckets.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn new(buckets: u64, seed: u64) -> Self {
        Self::with_independence(2, buckets, seed)
    }

    /// Draw a bucket hash from a `k`-wise independent family.
    pub fn with_independence(k: usize, buckets: u64, seed: u64) -> Self {
        assert!(buckets > 0, "bucket count must be positive");
        Self {
            inner: KWiseHash::new(k, seed),
            buckets,
        }
    }

    /// Number of buckets `b`.
    pub fn buckets(&self) -> u64 {
        self.buckets
    }

    /// Map a key to its bucket in `[0, b)`.
    #[inline]
    pub fn bucket(&self, key: u64) -> u64 {
        self.inner.hash_to_range(key, self.buckets)
    }

    /// Map a slice of keys to their buckets, appending one bucket per key to
    /// `out` (cleared first).  The polynomial is evaluated with hoisted
    /// coefficients ([`KWiseHash::hash_many`]) and reduced with the same
    /// multiply-shift as [`bucket`](Self::bucket), so the output agrees with
    /// the per-key path bit for bit.
    pub fn bucket_many(&self, keys: &[u64], out: &mut Vec<u64>) {
        self.inner.hash_many(keys, out);
        let buckets = self.buckets as u128;
        for v in out.iter_mut() {
            *v = (((*v as u128) * buckets) >> 61) as u64;
        }
    }

    /// Subsampling predicate: `true` for keys that fall in bucket 0.
    /// With `b = 2^level` this keeps each key independently-ish with
    /// probability `2^{-level}`, which is exactly the level-`level`
    /// subsampling used by the recursive sketch.
    #[inline]
    pub fn selects(&self, key: u64) -> bool {
        self.bucket(key) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_bucket_count() {
        for buckets in [1u64, 2, 7, 64, 1023] {
            let h = BucketHash::new(buckets, 5);
            for key in 0..2000u64 {
                assert!(h.bucket(key) < buckets);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_buckets_panics() {
        let _ = BucketHash::new(0, 1);
    }

    #[test]
    fn deterministic() {
        let a = BucketHash::new(32, 8);
        let b = BucketHash::new(32, 8);
        for key in 0..512u64 {
            assert_eq!(a.bucket(key), b.bucket(key));
        }
    }

    #[test]
    fn bucket_many_matches_per_key() {
        let keys: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9))
            .chain([0, u64::MAX, 3, 3, 3])
            .collect();
        let mut out = Vec::new();
        for k in [2usize, 4] {
            for buckets in [1u64, 2, 7, 1023] {
                let h = BucketHash::with_independence(k, buckets, 77);
                h.bucket_many(&keys, &mut out);
                assert_eq!(out.len(), keys.len());
                for (i, &key) in keys.iter().enumerate() {
                    assert_eq!(out[i], h.bucket(key), "k={k} buckets={buckets} key={key}");
                }
            }
        }
    }

    #[test]
    fn single_bucket_maps_everything_to_zero() {
        let h = BucketHash::new(1, 99);
        for key in 0..100u64 {
            assert_eq!(h.bucket(key), 0);
            assert!(h.selects(key));
        }
    }

    #[test]
    fn selects_rate_close_to_one_over_b() {
        let buckets = 8u64;
        let h = BucketHash::new(buckets, 321);
        let n = 40_000u64;
        let kept = (0..n).filter(|&k| h.selects(k)).count();
        let expect = n as f64 / buckets as f64;
        assert!(
            (kept as f64 - expect).abs() < 0.1 * expect,
            "kept {kept}, expected about {expect}"
        );
    }

    #[test]
    fn distribution_roughly_uniform() {
        let buckets = 10u64;
        let h = BucketHash::new(buckets, 2024);
        let n = 50_000u64;
        let mut counts = vec![0usize; buckets as usize];
        for key in 0..n {
            counts[h.bucket(key) as usize] += 1;
        }
        let expect = n as f64 / buckets as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < 0.1 * expect);
        }
    }
}
