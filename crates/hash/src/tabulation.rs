//! Simple tabulation hashing.
//!
//! Tabulation hashing splits a 64-bit key into 8 bytes and xors together one
//! random table entry per byte.  It is 3-wise independent, extremely fast
//! (eight table lookups, no multiplications), and is known to behave like a
//! fully random function for many algorithms (Pătraşcu–Thorup).
//!
//! The sketches select their hash family through
//! [`HashBackend`](crate::HashBackend) /[`RowHasher`](crate::RowHasher):
//! `HashBackend::Tabulation` plugs this implementation into CountSketch and
//! Count-Min via `CountSketchConfig::with_backend` /
//! `CountMinConfig::with_backend` (and from there into the whole g-SUM
//! estimator stack through `GSumConfig::with_hash_backend`).  The benchmark
//! crate's `bench_ingest` uses the same switch for the hashing-cost ablation.

use crate::rng::SplitMix64;

const BYTES: usize = 8;
const TABLE_SIZE: usize = 256;

/// A simple tabulation hash over 64-bit keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TabulationHash {
    tables: Box<[[u64; TABLE_SIZE]; BYTES]>,
}

impl TabulationHash {
    /// Build the 8 × 256 random tables from a seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut tables = Box::new([[0u64; TABLE_SIZE]; BYTES]);
        for table in tables.iter_mut() {
            for slot in table.iter_mut() {
                *slot = rng.next_u64();
            }
        }
        Self { tables }
    }

    /// Hash a key to a 64-bit value.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        let mut acc = 0u64;
        let bytes = key.to_le_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            acc ^= self.tables[i][b as usize];
        }
        acc
    }

    /// Hash a slice of keys into an equal-length output slice, walking the
    /// byte position in the *outer* loop: all of `out` accumulates table 0,
    /// then table 1, and so on.  The eight data-dependent table loads for
    /// different keys are independent, so they pipeline instead of
    /// serializing per call, and each 2 KiB table stays hot while it is
    /// walked.  XOR is commutative and associative, so the accumulated value
    /// is bit-identical to [`hash`](Self::hash) per key.
    ///
    /// `out` must be zeroed by the caller (values are XOR-accumulated).
    ///
    /// # Panics
    /// Panics if `keys` and `out` have different lengths.
    #[inline]
    pub fn hash_into(&self, keys: &[u64], out: &mut [u64]) {
        assert_eq!(keys.len(), out.len(), "key/output length mismatch");
        for (i, table) in self.tables.iter().enumerate() {
            let shift = 8 * i as u32;
            for (acc, &key) in out.iter_mut().zip(keys) {
                *acc ^= table[((key >> shift) & 0xFF) as usize];
            }
        }
    }

    /// Hash into `[0, range)`.
    #[inline]
    pub fn hash_to_range(&self, key: u64, range: u64) -> u64 {
        assert!(range > 0, "range must be positive");
        // Multiply-shift to avoid the slight modulo bias and the division.
        (((self.hash(key) as u128) * (range as u128)) >> 64) as u64
    }

    /// Sign in `{-1, +1}` derived from the hash parity.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        if self.hash(key) & 1 == 1 {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = TabulationHash::new(12);
        let b = TabulationHash::new(12);
        for key in 0..1000u64 {
            assert_eq!(a.hash(key), b.hash(key));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TabulationHash::new(1);
        let b = TabulationHash::new(2);
        let same = (0..256u64).filter(|&k| a.hash(k) == b.hash(k)).count();
        assert!(same < 4);
    }

    #[test]
    fn hash_into_matches_per_key() {
        let h = TabulationHash::new(99);
        let keys: Vec<u64> = (0..257u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .chain([0, 1, u64::MAX, u64::MAX - 1, 0])
            .collect();
        let mut out = vec![0u64; keys.len()];
        h.hash_into(&keys, &mut out);
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(out[i], h.hash(key), "mismatch at index {i}, key {key}");
        }
        // Empty slices are a no-op, not a panic.
        h.hash_into(&[], &mut []);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn hash_into_length_mismatch_panics() {
        let h = TabulationHash::new(1);
        let mut out = vec![0u64; 2];
        h.hash_into(&[1, 2, 3], &mut out);
    }

    #[test]
    fn range_hash_in_range() {
        let h = TabulationHash::new(3);
        for range in [1u64, 5, 100, 4096] {
            for key in 0..1000u64 {
                assert!(h.hash_to_range(key, range) < range);
            }
        }
    }

    #[test]
    fn buckets_roughly_balanced() {
        let h = TabulationHash::new(777);
        let range = 16u64;
        let n = 64_000u64;
        let mut counts = vec![0usize; range as usize];
        for key in 0..n {
            counts[h.hash_to_range(key, range) as usize] += 1;
        }
        let expect = n as f64 / range as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < 0.1 * expect);
        }
    }

    #[test]
    fn signs_balanced() {
        let h = TabulationHash::new(2025);
        let sum: i64 = (0..100_000u64).map(|k| h.sign(k)).sum();
        assert!(sum.abs() < 2000);
    }
}
