//! Simple tabulation hashing.
//!
//! Tabulation hashing splits a 64-bit key into 8 bytes and xors together one
//! random table entry per byte.  It is 3-wise independent, extremely fast
//! (eight table lookups, no multiplications), and is known to behave like a
//! fully random function for many algorithms (Pătraşcu–Thorup).
//!
//! The sketches select their hash family through
//! [`HashBackend`](crate::HashBackend) /[`RowHasher`](crate::RowHasher):
//! `HashBackend::Tabulation` plugs this implementation into CountSketch and
//! Count-Min via `CountSketchConfig::with_backend` /
//! `CountMinConfig::with_backend` (and from there into the whole g-SUM
//! estimator stack through `GSumConfig::with_hash_backend`).  The benchmark
//! crate's `bench_ingest` uses the same switch for the hashing-cost ablation.

use crate::rng::SplitMix64;

const BYTES: usize = 8;
const TABLE_SIZE: usize = 256;

/// A simple tabulation hash over 64-bit keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TabulationHash {
    tables: Box<[[u64; TABLE_SIZE]; BYTES]>,
}

impl TabulationHash {
    /// Build the 8 × 256 random tables from a seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut tables = Box::new([[0u64; TABLE_SIZE]; BYTES]);
        for table in tables.iter_mut() {
            for slot in table.iter_mut() {
                *slot = rng.next_u64();
            }
        }
        Self { tables }
    }

    /// Hash a key to a 64-bit value.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        let mut acc = 0u64;
        let bytes = key.to_le_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            acc ^= self.tables[i][b as usize];
        }
        acc
    }

    /// Hash into `[0, range)`.
    #[inline]
    pub fn hash_to_range(&self, key: u64, range: u64) -> u64 {
        assert!(range > 0, "range must be positive");
        // Multiply-shift to avoid the slight modulo bias and the division.
        (((self.hash(key) as u128) * (range as u128)) >> 64) as u64
    }

    /// Sign in `{-1, +1}` derived from the hash parity.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        if self.hash(key) & 1 == 1 {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = TabulationHash::new(12);
        let b = TabulationHash::new(12);
        for key in 0..1000u64 {
            assert_eq!(a.hash(key), b.hash(key));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TabulationHash::new(1);
        let b = TabulationHash::new(2);
        let same = (0..256u64).filter(|&k| a.hash(k) == b.hash(k)).count();
        assert!(same < 4);
    }

    #[test]
    fn range_hash_in_range() {
        let h = TabulationHash::new(3);
        for range in [1u64, 5, 100, 4096] {
            for key in 0..1000u64 {
                assert!(h.hash_to_range(key, range) < range);
            }
        }
    }

    #[test]
    fn buckets_roughly_balanced() {
        let h = TabulationHash::new(777);
        let range = 16u64;
        let n = 64_000u64;
        let mut counts = vec![0usize; range as usize];
        for key in 0..n {
            counts[h.hash_to_range(key, range) as usize] += 1;
        }
        let expect = n as f64 / range as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < 0.1 * expect);
        }
    }

    #[test]
    fn signs_balanced() {
        let h = TabulationHash::new(2025);
        let sum: i64 = (0..100_000u64).map(|k| h.sign(k)).sum();
        assert!(sum.abs() < 2000);
    }
}
