//! Small deterministic PRNGs used to derive hash-function coefficients.
//!
//! The sketches must be reproducible from a single `u64` seed, and the core
//! crates deliberately avoid a dependency on the `rand` crate so that the
//! data-structure behaviour is pinned down by this workspace alone.  Workload
//! generation (which benefits from `rand`'s distributions) lives in
//! `gsum-streams` instead.

/// SplitMix64: the standard seeding generator.  One multiplication and a few
/// xors per output; passes BigCrush when used as a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

/// xoshiro256** — a fast general-purpose generator, seeded via SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Create a generator whose 256-bit state is expanded from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // Guard against the (astronomically unlikely) all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// A Bernoulli(1/2) coin.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A seed sequence: hands out an unbounded stream of well-separated seeds
/// derived from a master seed. Thin wrapper over SplitMix64 with an index
/// mixed in, so that sequences derived from different masters never
/// accidentally collide even for small master values.
#[derive(Debug, Clone)]
pub struct SeedSequence {
    inner: SplitMix64,
    counter: u64,
}

impl SeedSequence {
    /// Create a sequence from a master seed.
    pub fn new(master: u64) -> Self {
        Self {
            inner: SplitMix64::new(master ^ 0xA076_1D64_78BD_642F),
            counter: 0,
        }
    }

    /// Next derived seed.
    pub fn next_seed(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        self.inner.next_u64() ^ self.counter.wrapping_mul(0xD6E8_FEB8_6659_FD93)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 (cross-checked against the published
        // SplitMix64 reference implementation).
        let mut rng = SplitMix64::new(0);
        let outs: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            outs,
            vec![
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F
            ]
        );
    }

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut rng = Xoshiro256::new(123);
        let bound = 8u64;
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.next_below(bound) as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < 0.05 * expect,
                "bucket count {c} far from expectation {expect}"
            );
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn xoshiro_differs_from_splitmix_stream() {
        let mut a = Xoshiro256::new(1);
        let mut b = SplitMix64::new(1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn seed_sequence_no_duplicates() {
        let mut seq = SeedSequence::new(0);
        let seeds: Vec<u64> = (0..1000).map(|_| seq.next_seed()).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len());
    }
}
