//! Arithmetic over the Mersenne-prime field `GF(p)` with `p = 2^61 - 1`.
//!
//! Polynomial hashing over a Mersenne prime is the standard way to obtain
//! k-wise independent hash families with `O(k)` words of state and `O(k)`
//! multiply/reduce operations per evaluation.  Reduction modulo `2^61 - 1`
//! never needs a division: `x mod p = (x & p) + (x >> 61)` followed by one
//! conditional subtraction.

/// The Mersenne prime `2^61 - 1`.
pub const MERSENNE_PRIME_61: u64 = (1u64 << 61) - 1;

/// Reduce a value in `[0, 2^64)` modulo `2^61 - 1`.
///
/// The result is fully reduced (strictly less than the prime).
#[inline]
pub fn reduce(x: u64) -> u64 {
    let p = MERSENNE_PRIME_61;
    // x = hi * 2^61 + lo, and 2^61 ≡ 1 (mod p).
    let folded = (x & p) + (x >> 61);
    if folded >= p {
        folded - p
    } else {
        folded
    }
}

/// Reduce a 128-bit value modulo `2^61 - 1`.
///
/// Accepts the **full** `u128` range, not just single products: the first
/// fold brings any input under `2^68`, the second under `2p`, and the
/// conditional subtraction canonicalizes.  Batch kernels rely on this to
/// accumulate a whole polynomial dot product lazily in `u128` and reduce
/// once — the canonical representative is unique, so the result is
/// bit-identical to reducing after every operation.
#[inline]
pub fn reduce128(x: u128) -> u64 {
    let p = MERSENNE_PRIME_61 as u128;
    // Fold twice: 128 -> ~67 bits -> 61 bits.
    let folded = (x & p) + (x >> 61);
    let folded = (folded & p) + (folded >> 61);
    let folded = folded as u64;
    if folded >= MERSENNE_PRIME_61 {
        folded - MERSENNE_PRIME_61
    } else {
        folded
    }
}

/// Modular addition in `GF(2^61 - 1)`. Inputs must already be reduced.
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    debug_assert!(a < MERSENNE_PRIME_61 && b < MERSENNE_PRIME_61);
    let s = a + b;
    if s >= MERSENNE_PRIME_61 {
        s - MERSENNE_PRIME_61
    } else {
        s
    }
}

/// Modular multiplication in `GF(2^61 - 1)`. Inputs must already be reduced.
#[inline]
pub fn mul(a: u64, b: u64) -> u64 {
    debug_assert!(a < MERSENNE_PRIME_61 && b < MERSENNE_PRIME_61);
    reduce128((a as u128) * (b as u128))
}

/// Horner evaluation of the polynomial `c[0] + c[1]*x + ... + c[d]*x^d`
/// over `GF(2^61 - 1)`.
#[inline]
pub fn poly_eval(coeffs: &[u64], x: u64) -> u64 {
    let x = reduce(x);
    let mut acc = 0u64;
    for &c in coeffs.iter().rev() {
        acc = add(mul(acc, x), reduce(c));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_small_values_untouched() {
        for v in [0u64, 1, 2, 12345, MERSENNE_PRIME_61 - 1] {
            assert_eq!(reduce(v), v);
        }
    }

    #[test]
    fn reduce_wraps_prime_to_zero() {
        assert_eq!(reduce(MERSENNE_PRIME_61), 0);
        assert_eq!(reduce(MERSENNE_PRIME_61 + 5), 5);
    }

    #[test]
    fn reduce_max_u64() {
        // u64::MAX = 2^64 - 1 = 8 * (2^61 - 1) + 7, so the remainder is 7.
        assert_eq!(reduce(u64::MAX), (u64::MAX) % MERSENNE_PRIME_61);
    }

    #[test]
    fn reduce128_matches_naive() {
        let cases: [u128; 6] = [
            0,
            1,
            (MERSENNE_PRIME_61 as u128) * 3 + 17,
            u64::MAX as u128,
            (u64::MAX as u128) * (u64::MAX as u128),
            ((MERSENNE_PRIME_61 - 1) as u128) * ((MERSENNE_PRIME_61 - 1) as u128),
        ];
        for &c in &cases {
            assert_eq!(reduce128(c) as u128, c % (MERSENNE_PRIME_61 as u128));
        }
    }

    #[test]
    fn add_and_mul_agree_with_u128_arithmetic() {
        let p = MERSENNE_PRIME_61 as u128;
        let xs = [0u64, 1, 2, 999_999_937, MERSENNE_PRIME_61 - 1, 1 << 60];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(add(a, b) as u128, (a as u128 + b as u128) % p);
                assert_eq!(mul(a, b) as u128, (a as u128 * b as u128) % p);
            }
        }
    }

    #[test]
    fn poly_eval_matches_naive_horner() {
        let coeffs = [3u64, 141, 59, 26, 535];
        let p = MERSENNE_PRIME_61 as u128;
        for x in [0u64, 1, 7, 1 << 40, MERSENNE_PRIME_61 - 2] {
            let mut expect: u128 = 0;
            let mut pow: u128 = 1;
            for &c in &coeffs {
                expect = (expect + (c as u128) * pow) % p;
                pow = (pow * (x as u128)) % p;
            }
            assert_eq!(poly_eval(&coeffs, x) as u128, expect);
        }
    }

    #[test]
    fn poly_eval_constant_polynomial() {
        assert_eq!(poly_eval(&[42], 123456), 42);
        assert_eq!(poly_eval(&[], 5), 0);
    }
}
