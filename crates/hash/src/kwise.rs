//! k-wise independent hash families via polynomial hashing over
//! `GF(2^61 - 1)`.
//!
//! A uniformly random polynomial of degree `k-1` over a prime field defines a
//! k-wise independent family: for any `k` distinct keys the hash values are
//! independent and uniform on the field.  CountSketch needs pairwise
//! independent bucket hashes and 4-wise independent sign hashes; the AMS F₂
//! estimator needs 4-wise independent signs; the `g_np` single-heavy-hitter
//! algorithm of Appendix D.1 needs pairwise independent Bernoulli variables.

use crate::prime::{mul, poly_eval, reduce, reduce128, MERSENNE_PRIME_61};
use crate::rng::SplitMix64;

/// A hash function drawn from a k-wise independent family, mapping `u64`
/// keys to the field `[0, 2^61 - 1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseHash {
    /// Polynomial coefficients `c_0 .. c_{k-1}`, all reduced mod p.
    coeffs: Vec<u64>,
}

impl KWiseHash {
    /// Draw a hash function from the `k`-wise independent family, using the
    /// given seed to pick the polynomial coefficients.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "independence parameter k must be at least 1");
        let mut rng = SplitMix64::new(seed);
        let mut coeffs = Vec::with_capacity(k);
        for i in 0..k {
            let mut c = reduce(rng.next_u64());
            // Keep the leading coefficient non-zero so that the polynomial
            // genuinely has degree k-1 (a cosmetic choice; independence holds
            // either way, but it makes degenerate collisions less likely for
            // tiny k).
            if i == k - 1 && k > 1 && c == 0 {
                c = 1;
            }
            coeffs.push(c);
        }
        Self { coeffs }
    }

    /// Independence parameter `k` of the family this function was drawn from.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// The polynomial coefficients `c_0 .. c_{k-1}`, all fully reduced into
    /// `[0, p)`.  Exposed so batched evaluators (e.g. [`crate::SignHashBank`])
    /// can transpose many polynomials into structure-of-arrays form and still
    /// reproduce [`hash`](Self::hash) bit for bit.
    pub fn coefficients(&self) -> &[u64] {
        &self.coeffs
    }

    /// Evaluate the hash on a key; output is uniform on `[0, p)` with
    /// `p = 2^61 - 1`.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        poly_eval(&self.coeffs, key)
    }

    /// Evaluate the hash over a slice of keys, appending one field value per
    /// key to `out` (which is cleared first).
    ///
    /// This is the batched form of [`hash`](Self::hash): coefficients are
    /// hoisted out of the key loop, and the pairwise (`k = 2`) and 4-wise
    /// (`k = 4`) families — the only degrees on the sketches' hot paths —
    /// get straight-line kernels with no per-key Horner loop.  The whole
    /// polynomial dot product accumulates lazily in `u128` (products stay
    /// below `p² < 2^122`, so even the degree-3 sum fits) and is reduced
    /// once by [`reduce128`], whose canonical output is the identical field
    /// element [`hash`](Self::hash) computes with per-operation reductions
    /// — **bit for bit**, for every key (proptested in the workspace's
    /// batch equivalence suites).
    pub fn hash_many(&self, keys: &[u64], out: &mut Vec<u64>) {
        out.clear();
        out.reserve(keys.len());
        match *self.coeffs.as_slice() {
            [c0, c1] => {
                for &key in keys {
                    let x = reduce(key);
                    out.push(reduce128((c1 as u128) * (x as u128) + c0 as u128));
                }
            }
            [c0, c1, c2, c3] => {
                for &key in keys {
                    let x = reduce(key);
                    let x2 = mul(x, x);
                    let x3 = mul(x2, x);
                    out.push(reduce128(
                        (c3 as u128) * (x3 as u128)
                            + (c2 as u128) * (x2 as u128)
                            + (c1 as u128) * (x as u128)
                            + c0 as u128,
                    ));
                }
            }
            _ => {
                for &key in keys {
                    out.push(poly_eval(&self.coeffs, key));
                }
            }
        }
    }

    /// Hash into `[0, range)` with a division-free multiply-shift (Lemire)
    /// reduction: the field value is uniform on `[0, p)` with `p = 2^61 - 1`,
    /// so `(hash · range) >> 61` is near-uniform on `[0, range)`.
    ///
    /// The reduction bias is at most `range / p < 2^-40` for ranges below
    /// 2^21 — the same negligible bias a modulo reduction would have, minus
    /// the hardware division it would cost on every sketch row of every
    /// update.
    #[inline]
    pub fn hash_to_range(&self, key: u64, range: u64) -> u64 {
        assert!(range > 0, "range must be positive");
        // hash < 2^61, so the product fits comfortably in u128 and the
        // result is strictly below `range`.
        (((self.hash(key) as u128) * (range as u128)) >> 61) as u64
    }

    /// A pairwise-independent Bernoulli(1/2) variable derived from the hash
    /// value (its lowest bit).  Used by the `g_np` algorithm of Appendix D.1,
    /// which only requires pairwise independence.
    #[inline]
    pub fn hash_to_bool(&self, key: u64) -> bool {
        self.hash(key) & 1 == 1
    }

    /// The field modulus.
    pub const fn modulus() -> u64 {
        MERSENNE_PRIME_61
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_given_seed() {
        let h1 = KWiseHash::new(4, 11);
        let h2 = KWiseHash::new(4, 11);
        for key in 0..100u64 {
            assert_eq!(h1.hash(key), h2.hash(key));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let h1 = KWiseHash::new(4, 1);
        let h2 = KWiseHash::new(4, 2);
        let same = (0..64u64).filter(|&k| h1.hash(k) == h2.hash(k)).count();
        assert!(same < 4);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_independence_panics() {
        let _ = KWiseHash::new(0, 3);
    }

    #[test]
    fn hash_many_matches_per_key_for_every_degree() {
        // Covers the specialized pairwise and 4-wise kernels and the generic
        // fallback, including the field-boundary keys the reduction folds.
        let keys: Vec<u64> = (0..300u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .chain([0, 1, MERSENNE_PRIME_61 - 1, MERSENNE_PRIME_61, u64::MAX])
            .chain([7, 7, 7]) // duplicates must hash identically
            .collect();
        let mut out = Vec::new();
        for k in 1..=5usize {
            for seed in [0u64, 1, 42, u64::MAX] {
                let h = KWiseHash::new(k, seed);
                h.hash_many(&keys, &mut out);
                assert_eq!(out.len(), keys.len());
                for (i, &key) in keys.iter().enumerate() {
                    assert_eq!(
                        out[i],
                        h.hash(key),
                        "k={k} seed={seed} mismatch at key {key}"
                    );
                }
            }
        }
        KWiseHash::new(4, 9).hash_many(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn output_below_modulus() {
        let h = KWiseHash::new(5, 77);
        for key in (0..10_000u64).step_by(37) {
            assert!(h.hash(key) < MERSENNE_PRIME_61);
        }
    }

    #[test]
    fn range_hash_respects_range() {
        let h = KWiseHash::new(2, 9);
        for range in [1u64, 2, 3, 17, 1024] {
            for key in 0..500u64 {
                assert!(h.hash_to_range(key, range) < range);
            }
        }
    }

    #[test]
    fn buckets_roughly_balanced() {
        // Pairwise independence gives near-uniform marginals; check the
        // empirical distribution over 16 buckets.
        let h = KWiseHash::new(2, 4242);
        let range = 16u64;
        let n = 64_000u64;
        let mut counts = vec![0usize; range as usize];
        for key in 0..n {
            counts[h.hash_to_range(key, range) as usize] += 1;
        }
        let expect = n as f64 / range as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < 0.1 * expect,
                "bucket {c} deviates from {expect}"
            );
        }
    }

    #[test]
    fn pairwise_collision_rate_close_to_uniform() {
        // For a pairwise independent family mapped onto b buckets, the
        // probability that two fixed distinct keys collide is ~1/b. Estimate
        // it over many independently seeded functions.
        let trials = 4000;
        let buckets = 8u64;
        let mut collisions = 0usize;
        for seed in 0..trials {
            let h = KWiseHash::new(2, seed as u64);
            if h.hash_to_range(123, buckets) == h.hash_to_range(987, buckets) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let expect = 1.0 / buckets as f64;
        assert!(
            (rate - expect).abs() < 0.5 * expect + 0.01,
            "collision rate {rate} far from {expect}"
        );
    }

    #[test]
    fn bool_hash_balanced_across_seeds() {
        let mut ones = 0usize;
        let trials = 2000;
        for seed in 0..trials {
            let h = KWiseHash::new(2, seed as u64);
            if h.hash_to_bool(55) {
                ones += 1;
            }
        }
        let frac = ones as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.05, "bool hash biased: {frac}");
    }

    #[test]
    fn four_wise_joint_distribution_is_uniform_on_pairs() {
        // A sanity check of joint uniformity over pairs of keys when hashed
        // to 2 buckets: all 4 combinations should appear ~1/4 of the time.
        let trials = 4000;
        let mut table: HashMap<(u64, u64), usize> = HashMap::new();
        for seed in 0..trials {
            let h = KWiseHash::new(4, seed as u64 + 10_000);
            let a = h.hash_to_range(3, 2);
            let b = h.hash_to_range(71, 2);
            *table.entry((a, b)).or_insert(0) += 1;
        }
        assert_eq!(table.len(), 4);
        for (&pair, &count) in &table {
            let frac = count as f64 / trials as f64;
            assert!(
                (frac - 0.25).abs() < 0.05,
                "pair {pair:?} frequency {frac} far from 0.25"
            );
        }
    }
}
