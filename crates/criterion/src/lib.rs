//! A minimal, dependency-free stand-in for the [criterion](https://docs.rs/criterion)
//! benchmark harness, implementing the subset of its API used by this
//! workspace's benches.
//!
//! The build environment for this repository has no network access, so the
//! real crate cannot be fetched; this shim keeps the bench targets compiling
//! and producing useful wall-clock numbers (`cargo bench`).  Measurements are
//! simple mean-of-iterations timings without criterion's statistical
//! machinery — adequate for the relative comparisons the benches make.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How the per-iteration input of [`Bencher::iter_batched`] is grouped.
/// The shim runs every batch size the same way; the variants exist for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation for a benchmark group (accepted, reported alongside
/// the timing when set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs closures repeatedly and records the mean iteration time.
pub struct Bencher {
    /// Target measurement budget.
    budget: Duration,
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Self {
            budget,
            mean_ns: 0.0,
            iterations: 0,
        }
    }

    /// Time a closure: a couple of warm-up runs, then as many measured runs
    /// as fit in the budget (at least 5).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iterations = 0u64;
        while iterations < 5 || (start.elapsed() < self.budget && iterations < 1_000_000) {
            black_box(routine());
            iterations += 1;
        }
        let total = start.elapsed();
        self.iterations = iterations;
        self.mean_ns = total.as_nanos() as f64 / iterations as f64;
    }

    /// Time a closure with a per-iteration setup whose cost is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let mut iterations = 0u64;
        let start = Instant::now();
        while iterations < 5 || (start.elapsed() < self.budget && iterations < 1_000_000) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            iterations += 1;
        }
        self.iterations = iterations;
        self.mean_ns = measured.as_nanos() as f64 / iterations as f64;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The top-level harness handle.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Override the per-benchmark measurement budget.
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Configure the (ignored) sample count, for API compatibility.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(&name.into(), None, &b);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

fn report(name: &str, throughput: Option<Throughput>, b: &Bencher) {
    let mut line = format!(
        "{name:<48} {:>12}/iter  ({} iterations)",
        format_ns(b.mean_ns),
        b.iterations
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if b.mean_ns > 0.0 {
            let per_sec = count as f64 / (b.mean_ns / 1e9);
            line.push_str(&format!("  {per_sec:.3e} {unit}/s"));
        }
    }
    println!("{line}");
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name.into()),
            self.throughput,
            &b,
        );
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.mean_ns > 0.0);
        assert!(b.iterations >= 5);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(
            || vec![1u64; 16],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.iterations >= 5);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(2));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_function("inner", |b| b.iter(|| 2 * 2));
        g.finish();
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
