//! The merge coordinator: fold completed client states into the long-lived
//! serving state, snapshot every K merged updates.
//!
//! Every client connection feeds its own clone-with-shared-seeds sketch;
//! linearity guarantees that folding those per-client states into the
//! serving sketch — in *any* order, from any number of threads — lands in
//! exactly the single-threaded state of the concatenated streams, bit for
//! bit (integer-valued `f64` counters add exactly).  The coordinator is the
//! one place that fold happens: it owns the serving sketch behind a lock,
//! applies the durable-count accounting, honors the configured
//! [`ServePolicy`] for partially-delivered streams, and publishes a
//! [`CheckpointEnvelope`] snapshot every `checkpoint_every` merged updates
//! (atomic temp-file + rename).
//!
//! The coordinator is deliberately transport-free: the TCP server drives it
//! with socket-backed [`FrameReader`]s, the property tests drive it with
//! in-memory byte slices, and a cross-machine deployment can fold
//! [`ParkedState`] checkpoint bytes that arrived from another process —
//! all three paths converge on the same [`fold`](MergeCoordinator::fold).

use crate::checkpoint_envelope::CheckpointEnvelope;
use crate::error::{ServeConfigError, ServeError};
use crate::policy::ServePolicy;
use crate::ServableSketch;
use gsum_streams::wire::WireProgress;
use gsum_streams::{FrameReader, ParkedState, PipelineError, PipelinedIngest, WireError};
use std::io::Read;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What happened to one fold request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldOutcome {
    /// The client state was merged; the serving state is now durable
    /// through this many updates.
    Merged {
        /// The durable update count after the fold.
        durable: u64,
    },
    /// The fault-injection crash point was reached: the state was *not*
    /// merged and the coordinator refuses all further folds — exactly like
    /// a SIGKILL between persistence points.
    CrashInjected,
}

/// Counters describing a coordinator's lifetime so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Updates durably merged into the serving state.
    pub durable_count: u64,
    /// Client streams folded to clean completion (end-of-stream frame seen).
    pub streams_completed: u64,
    /// Client streams that died before their end-of-stream frame.  Under
    /// [`ServePolicy::MergeCompleted`] their completed slices were kept;
    /// under [`ServePolicy::DiscardPartial`] they contributed nothing.
    pub streams_failed: u64,
    /// Updates decoded from clients but dropped by the failure policy.
    pub updates_discarded: u64,
    /// Checkpoint envelopes published to disk.
    pub snapshots_written: u64,
}

/// How one client stream ended, as reported by
/// [`MergeCoordinator::ingest_stream`].
#[derive(Debug)]
pub struct StreamOutcome {
    /// Updates from this stream folded into the serving state.
    pub merged_updates: u64,
    /// Updates decoded from this stream but dropped by the failure policy.
    pub discarded_updates: u64,
    /// The serving state's durable count after this stream's folds.
    pub durable_count: u64,
    /// The wire reader's final progress counters (how far the stream got).
    pub progress: WireProgress,
    /// Why the stream did not complete, when it didn't.  Stream-level
    /// failures are policy events, not server errors.
    pub failure: Option<PipelineError>,
    /// Whether the fault-injection crash point was reached while serving
    /// this stream.
    pub crashed: bool,
}

impl StreamOutcome {
    /// Whether the stream was ingested through its end-of-stream frame and
    /// fully folded.
    pub fn completed(&self) -> bool {
        self.failure.is_none() && !self.crashed
    }
}

struct CoordinatorState<S> {
    sketch: S,
    durable_count: u64,
    since_snapshot: usize,
    stats: ServeStats,
}

/// Tracks the durable count of the last envelope written to disk, so
/// concurrent publishers keep the on-disk checkpoint monotone.
struct SnapshotPublisher {
    last_published: Option<u64>,
}

/// The serving state's single point of mutation — see the module docs.
pub struct MergeCoordinator<S> {
    inner: Mutex<CoordinatorState<S>>,
    publisher: Mutex<SnapshotPublisher>,
    checkpoint_every: usize,
    checkpoint_path: Option<PathBuf>,
    crash_after: Option<u64>,
    crashed: AtomicBool,
}

impl<S: ServableSketch> MergeCoordinator<S> {
    /// Build a coordinator around an initial serving state (a fresh
    /// prototype clone, or a sketch restored from a checkpoint envelope)
    /// already durable through `durable_count` updates.
    ///
    /// `checkpoint_every` is both the snapshot cadence (a
    /// [`CheckpointEnvelope`] is published once at least that many updates
    /// merged since the last snapshot) and the slice granularity
    /// [`ingest_stream`](Self::ingest_stream) pipelines at.  `crash_after`
    /// is the fault-injection hook for crash-recovery tests: once merging
    /// one more state would push the durable count past it, the coordinator
    /// refuses the fold and every one after, and the server dies without a
    /// final checkpoint.
    pub fn new(
        initial: S,
        durable_count: u64,
        checkpoint_every: usize,
        checkpoint_path: Option<PathBuf>,
        crash_after: Option<u64>,
    ) -> Result<Self, ServeError> {
        if checkpoint_every == 0 {
            return Err(ServeConfigError::ZeroCheckpointEvery.into());
        }
        Ok(Self {
            inner: Mutex::new(CoordinatorState {
                sketch: initial,
                durable_count,
                since_snapshot: 0,
                stats: ServeStats {
                    durable_count,
                    ..ServeStats::default()
                },
            }),
            publisher: Mutex::new(SnapshotPublisher {
                last_published: None,
            }),
            checkpoint_every,
            checkpoint_path,
            crash_after,
            crashed: AtomicBool::new(false),
        })
    }

    /// Whether the fault-injection crash point has been reached.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// The current g-SUM estimate of the serving state (the default
    /// function).
    pub fn estimate(&self) -> f64 {
        self.lock().sketch.estimate()
    }

    /// The estimate under a named registered function, or `None` for an
    /// unknown name (see [`ServableSketch::estimate_named`]).
    pub fn estimate_named(&self, name: &str) -> Option<f64> {
        self.lock().sketch.estimate_named(name)
    }

    /// The function names the serving state answers for, default first.
    pub fn function_names(&self) -> Vec<String> {
        self.lock().sketch.function_names()
    }

    /// Updates durably merged so far.
    pub fn durable_count(&self) -> u64 {
        self.lock().durable_count
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServeStats {
        self.lock().stats
    }

    /// Fold one client state (which absorbed `updates` updates) into the
    /// serving state, snapshotting if the cadence came due.  Thread-safe:
    /// concurrent folds serialize on the state lock, and linearity makes
    /// their order irrelevant to the resulting bytes.
    pub fn fold(&self, client: &S, updates: u64) -> Result<FoldOutcome, ServeError> {
        let mut st = self.lock();
        if self.crashed() {
            return Ok(FoldOutcome::CrashInjected);
        }
        if let Some(limit) = self.crash_after {
            if st.durable_count + updates > limit {
                self.crashed.store(true, Ordering::SeqCst);
                return Ok(FoldOutcome::CrashInjected);
            }
        }
        st.sketch.merge(client)?;
        st.durable_count += updates;
        st.stats.durable_count = st.durable_count;
        st.since_snapshot += updates as usize;
        let durable = st.durable_count;
        let due = if st.since_snapshot >= self.checkpoint_every {
            st.since_snapshot = 0;
            // Serialize under the lock (memory-only) so the envelope is a
            // consistent cut; the disk write happens after the lock drops.
            self.checkpoint_path
                .is_some()
                .then(|| CheckpointEnvelope::park(durable, &st.sketch))
                .transpose()?
        } else {
            None
        };
        drop(st);
        if let Some(envelope) = due {
            self.publish(&envelope)?;
        }
        Ok(FoldOutcome::Merged { durable })
    }

    /// Record a client stream folded to clean completion.  The reactor
    /// serving path decodes and folds outside
    /// [`ingest_stream`](Self::ingest_stream) (per-worker shards, per-
    /// connection accumulators), so stream bookkeeping is exposed as its
    /// own step; `ingest_stream` keeps doing its own accounting.
    pub fn note_stream_completed(&self) {
        self.lock().stats.streams_completed += 1;
    }

    /// Record a client stream that died before its end-of-stream frame,
    /// with `discarded` decoded-but-dropped updates (zero under
    /// [`ServePolicy::MergeCompleted`], which keeps the decoded prefix).
    pub fn note_stream_failed(&self, discarded: u64) {
        let mut st = self.lock();
        st.stats.streams_failed += 1;
        st.stats.updates_discarded += discarded;
    }

    /// Fold a [`ParkedState`] — client state that traveled as checkpoint
    /// bytes, e.g. from an ingest tier on another machine.  Equivalent to
    /// rehydrating and [`fold`](Self::fold)ing: the bytes *are* a mergeable
    /// handle.
    pub fn fold_parked(&self, parked: &ParkedState) -> Result<FoldOutcome, ServeError> {
        let restored: S = parked.restore()?;
        self.fold(&restored, parked.updates())
    }

    /// Publish a snapshot now, regardless of cadence, and return the
    /// envelope.  Used for the final checkpoint of a clean shutdown and by
    /// tests that compare serving-state bytes.
    pub fn snapshot(&self) -> Result<CheckpointEnvelope, ServeError> {
        let env = {
            let mut st = self.lock();
            st.since_snapshot = 0;
            CheckpointEnvelope::park(st.durable_count, &st.sketch)?
        };
        if self.checkpoint_path.is_some() {
            self.publish(&env)?;
        }
        Ok(env)
    }

    /// Write an envelope to the checkpoint path, holding only the publisher
    /// lock — folds and queries proceed during the disk I/O.  Concurrent
    /// publishers race benignly: the durable-count check keeps the on-disk
    /// envelope monotone, so a stale snapshot can never overwrite a newer
    /// one.
    fn publish(&self, envelope: &CheckpointEnvelope) -> Result<(), ServeError> {
        let path = self
            .checkpoint_path
            .as_deref()
            .expect("publish is only called with a checkpoint path configured");
        let mut publisher = self
            .publisher
            .lock()
            .expect("snapshot publisher lock poisoned");
        if publisher
            .last_published
            .is_some_and(|last| envelope.durable_count() < last)
        {
            return Ok(());
        }
        envelope.save_atomic(path)?;
        publisher.last_published = Some(envelope.durable_count());
        drop(publisher);
        self.lock().stats.snapshots_written += 1;
        Ok(())
    }

    /// Drive one framed client stream to its end: pipeline-ingest it in
    /// `checkpoint_every`-sized slices into clones of `prototype`, folding
    /// according to `policy` (every completed slice immediately, or the
    /// whole stream at its end frame — see [`ServePolicy`]).  Stream-level
    /// failures (truncation, corruption, a crafted overflow batch) are
    /// resolved by the policy and reported in the [`StreamOutcome`]; only
    /// faults of the serving process itself are `Err`s.
    pub fn ingest_stream<R: Read>(
        &self,
        prototype: &S,
        pipeline: &PipelinedIngest,
        policy: ServePolicy,
        frames: &mut FrameReader<R>,
    ) -> Result<StreamOutcome, ServeError> {
        // The whole-stream accumulator for the all-or-nothing policy.
        let mut pending = (!policy.folds_mid_stream()).then(|| prototype.clone());
        let mut decoded: u64 = 0;
        let mut merged: u64 = 0;
        let mut crashed = false;
        let mut failure: Option<PipelineError> = None;

        loop {
            if self.crashed() {
                crashed = true;
                break;
            }
            let (slice, consumed) =
                match pipeline.ingest_limited(frames, prototype, self.checkpoint_every) {
                    Ok(v) => v,
                    Err(e @ PipelineError::DeltaOverflow { .. }) => {
                        // A hostile or model-violating batch: a stream-level
                        // failure the policy absorbs, not a server fault.
                        failure = Some(e);
                        break;
                    }
                    // Merging worker clones of one prototype cannot fail;
                    // if it does, that is a configuration bug, not traffic.
                    Err(e) => return Err(e.into()),
                };
            if consumed == 0 {
                break;
            }
            decoded += consumed as u64;
            if policy.folds_mid_stream() {
                match self.fold(&slice, consumed as u64)? {
                    FoldOutcome::Merged { .. } => merged += consumed as u64,
                    FoldOutcome::CrashInjected => {
                        crashed = true;
                        break;
                    }
                }
            } else {
                pending
                    .as_mut()
                    .expect("pending state exists for the all-or-nothing policy")
                    .merge(&slice)?;
            }
        }

        // Resolve how the wire stream ended: a parked decode error, a clean
        // end frame, or bytes that just stopped (truncation).
        if failure.is_none() && !crashed {
            if let Some(e) = frames.take_error() {
                failure = Some(PipelineError::Wire(e));
            } else if !frames.finished() {
                failure = Some(PipelineError::Wire(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "wire stream closed before its end-of-stream frame",
                ))));
            }
        }

        if failure.is_none() && !crashed {
            if let Some(whole) = pending.as_ref() {
                match self.fold(whole, decoded)? {
                    FoldOutcome::Merged { .. } => merged = decoded,
                    FoldOutcome::CrashInjected => crashed = true,
                }
            }
        }

        let discarded = decoded - merged;
        if !crashed {
            // No bookkeeping when the server is dying mid-crash.
            let mut st = self.lock();
            if failure.is_none() {
                st.stats.streams_completed += 1;
            } else {
                st.stats.streams_failed += 1;
                st.stats.updates_discarded += discarded;
            }
        }

        Ok(StreamOutcome {
            merged_updates: merged,
            discarded_updates: discarded,
            durable_count: self.durable_count(),
            progress: frames.progress(),
            failure,
            crashed,
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CoordinatorState<S>> {
        self.inner.lock().expect("serving state lock poisoned")
    }
}
