//! The concurrent TCP serving loop.
//!
//! [`GsumServer`] is the production shape of what PR 4 prototyped as a
//! 380-line example: an accept loop that hands **each connection its own
//! thread**, so N clients stream framed updates simultaneously — each into
//! its own clone-with-shared-seeds sketch, pipelined with backpressure —
//! while the [`MergeCoordinator`] folds completed states into the
//! long-lived serving state and point queries answer from it at any
//! moment.  A second client no longer waits in `accept`.

use crate::checkpoint_envelope::CheckpointEnvelope;
use crate::coordinator::MergeCoordinator;
use crate::coordinator::ServeStats;
use crate::error::ServeError;
use crate::policy::ServePolicy;
use crate::protocol::{Command, Response};
use crate::ServableSketch;
use gsum_streams::wire::WIRE_MAGIC;
use gsum_streams::{FrameReader, PipelinedIngest};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

/// Configuration for a [`GsumServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    policy: ServePolicy,
    checkpoint_every: usize,
    pipeline: PipelinedIngest,
    crash_after: Option<u64>,
    client_read_timeout: Option<std::time::Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeConfig {
    /// The default configuration: [`ServePolicy::DiscardPartial`], a
    /// snapshot every 512 merged updates, a 2-worker pipeline, a 30-second
    /// client read timeout.
    pub fn new() -> Self {
        Self {
            policy: ServePolicy::default(),
            checkpoint_every: 512,
            pipeline: PipelinedIngest::new(2),
            crash_after: None,
            client_read_timeout: Some(std::time::Duration::from_secs(30)),
        }
    }

    /// Choose the failure policy for partially-delivered streams.
    pub fn with_policy(mut self, policy: ServePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Snapshot cadence and ingest-slice granularity, in updates.
    ///
    /// # Panics
    /// Panics if `every == 0`; use
    /// [`try_with_checkpoint_every`](Self::try_with_checkpoint_every) for a
    /// fallible builder.
    pub fn with_checkpoint_every(self, every: usize) -> Self {
        self.try_with_checkpoint_every(every)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible builder: rejects `every == 0`.
    pub fn try_with_checkpoint_every(mut self, every: usize) -> Result<Self, ServeError> {
        if every == 0 {
            return Err(crate::error::ServeConfigError::ZeroCheckpointEvery.into());
        }
        self.checkpoint_every = every;
        Ok(self)
    }

    /// The pipelined-ingest topology each client stream runs through.
    pub fn with_pipeline(mut self, pipeline: PipelinedIngest) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Fault-injection hook for crash-recovery tests: once merging one more
    /// client state would push the durable count past `updates`, the server
    /// dies without a final checkpoint — exactly like a SIGKILL between
    /// persistence points.  Never set this in production.
    pub fn with_crash_after(mut self, updates: u64) -> Self {
        self.crash_after = Some(updates);
        self
    }

    /// How long a connection may sit idle (no bytes arriving) before the
    /// server gives up on it.  The timeout is what keeps one stalled client
    /// from pinning a handler thread forever — and, since a clean shutdown
    /// drains in-flight handlers, from wedging `QUIT` indefinitely.  `None`
    /// disables it (a stalled client then holds its thread until the peer
    /// closes; use only on trusted networks).  The timeout bounds *idle*
    /// time, not stream length: a slow stream that keeps trickling bytes is
    /// never cut off, and server-side backpressure blocks the *client's*
    /// writes, not the server's reads.
    pub fn with_client_read_timeout(mut self, timeout: Option<std::time::Duration>) -> Self {
        self.client_read_timeout = timeout;
        self
    }

    /// The configured failure policy.
    pub fn policy(&self) -> ServePolicy {
        self.policy
    }

    /// The configured snapshot cadence.
    pub fn checkpoint_every(&self) -> usize {
        self.checkpoint_every
    }

    /// The configured pipeline topology.
    pub fn pipeline(&self) -> PipelinedIngest {
        self.pipeline
    }
}

/// How a [`GsumServer::serve`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// `true` for a `QUIT`-triggered shutdown (final snapshot written when
    /// a checkpoint path is configured); `false` when the fault-injection
    /// crash point was reached (no final snapshot — only previously
    /// published envelopes survive).
    pub clean_shutdown: bool,
    /// The coordinator's lifetime counters at shutdown.
    pub stats: ServeStats,
}

enum ConnectionVerdict {
    KeepServing,
    Shutdown,
    Crashed,
}

/// A long-lived serving process: concurrent framed ingest with
/// merge-on-completion fan-in, point queries, and durable checkpointing.
pub struct GsumServer<S> {
    prototype: S,
    config: ServeConfig,
    coordinator: MergeCoordinator<S>,
}

impl<S: ServableSketch> GsumServer<S> {
    /// Boot a server around `prototype` (the serving sketch, reconstructed
    /// identically on every boot: same function, same configuration, same
    /// seed).  When `checkpoint_path` holds a previous incarnation's
    /// [`CheckpointEnvelope`], the serving state restores from it — a
    /// checkpoint taken by one incarnation resumes seamlessly, and
    /// bit-exactly, in the next.
    pub fn boot(
        prototype: S,
        config: ServeConfig,
        checkpoint_path: Option<PathBuf>,
    ) -> Result<Self, ServeError> {
        let restored = match checkpoint_path.as_deref() {
            Some(path) => CheckpointEnvelope::load(path)?
                .map(|env| Ok::<_, ServeError>((env.restore_state::<S>()?, env.durable_count())))
                .transpose()?,
            None => None,
        };
        let (initial, durable) = restored.unwrap_or_else(|| (prototype.clone(), 0));
        let coordinator = MergeCoordinator::new(
            initial,
            durable,
            config.checkpoint_every,
            checkpoint_path,
            config.crash_after,
        )?;
        Ok(Self {
            prototype,
            config,
            coordinator,
        })
    }

    /// Updates durably merged so far (non-zero after a checkpoint restore).
    pub fn durable_count(&self) -> u64 {
        self.coordinator.durable_count()
    }

    /// The current estimate of the serving state.
    pub fn estimate(&self) -> f64 {
        self.coordinator.estimate()
    }

    /// The coordinator, for direct (non-TCP) fan-in: folding
    /// [`ParkedState`](gsum_streams::ParkedState) bytes from another
    /// machine, or driving in-memory streams in tests.
    pub fn coordinator(&self) -> &MergeCoordinator<S> {
        &self.coordinator
    }

    /// Accept connections until a `QUIT` command (or the fault-injection
    /// crash point).  Every connection gets its own thread: framed streams
    /// ingest concurrently and fold through the coordinator; command lines
    /// answer from the serving state.  In-flight streams run to completion
    /// before a clean shutdown returns, and a final snapshot is published.
    pub fn serve(&self, listener: TcpListener) -> Result<ServeSummary, ServeError> {
        let wakeup_addr = Self::wakeup_addr(listener.local_addr()?);
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) || self.coordinator.crashed() {
                    break;
                }
                let stream = match conn {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("[gsum-serve] accept failed: {e}");
                        continue;
                    }
                };
                if let Some(timeout) = self.config.client_read_timeout {
                    // Best effort: a socket that refuses the option still
                    // gets served, just without the stall bound.
                    let _ = stream.set_read_timeout(Some(timeout));
                }
                let shutdown = &shutdown;
                scope.spawn(move || match self.handle_connection(stream) {
                    Ok(ConnectionVerdict::KeepServing) => {}
                    Ok(ConnectionVerdict::Shutdown) | Ok(ConnectionVerdict::Crashed) => {
                        shutdown.store(true, Ordering::SeqCst);
                        // Unblock the accept loop so it observes the flag.
                        // A failed wakeup is worth shouting about: the loop
                        // then only notices the flag on the next organic
                        // connection.
                        if let Err(e) = TcpStream::connect(wakeup_addr) {
                            eprintln!(
                                "[gsum-serve] shutdown wakeup connect to {wakeup_addr} \
                                 failed ({e}); the accept loop will exit on the next \
                                 incoming connection"
                            );
                        }
                    }
                    Err(e) => eprintln!("[gsum-serve] connection error: {e}"),
                });
            }
        });
        let crashed = self.coordinator.crashed();
        if !crashed {
            self.coordinator.snapshot()?;
        }
        Ok(ServeSummary {
            clean_shutdown: !crashed,
            stats: self.coordinator.stats(),
        })
    }

    /// The address the shutdown path connects to in order to unblock the
    /// accept loop.  A listener bound to the unspecified address
    /// (`0.0.0.0` / `::`) is not connectable on every platform, so the
    /// wakeup targets the loopback of the same family instead.
    fn wakeup_addr(local: std::net::SocketAddr) -> std::net::SocketAddr {
        let mut addr = local;
        if addr.ip().is_unspecified() {
            addr.set_ip(match addr {
                std::net::SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                std::net::SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        addr
    }

    /// One connection: sniff 4 bytes to tell a framed wire stream from a
    /// command line, then dispatch.
    fn handle_connection(&self, stream: TcpStream) -> Result<ConnectionVerdict, ServeError> {
        let mut reply = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);

        let mut head = [0u8; 4];
        reader.read_exact(&mut head)?;
        if head == WIRE_MAGIC {
            return self.handle_ingest(head, reader, reply);
        }

        let mut line = head.to_vec();
        if !line.contains(&b'\n') {
            let mut rest = Vec::new();
            reader.read_until(b'\n', &mut rest)?;
            line.extend_from_slice(&rest);
        }
        let (response, verdict) = match Command::parse(&String::from_utf8_lossy(&line)) {
            Ok(Command::Est) => (
                Response::Est {
                    bits: self.coordinator.estimate().to_bits(),
                },
                ConnectionVerdict::KeepServing,
            ),
            Ok(Command::Count) => (
                Response::Count(self.coordinator.durable_count()),
                ConnectionVerdict::KeepServing,
            ),
            Ok(Command::Quit) => (Response::Bye, ConnectionVerdict::Shutdown),
            Err(e) => (Response::Err(e.to_string()), ConnectionVerdict::KeepServing),
        };
        writeln!(reply, "{response}")?;
        reply.flush()?;
        Ok(verdict)
    }

    /// One framed client stream: validate the header against the serving
    /// domain (out-of-domain traffic dies at decode, never at apply), then
    /// hand the reader to the coordinator.
    fn handle_ingest(
        &self,
        magic: [u8; 4],
        reader: BufReader<TcpStream>,
        mut reply: BufWriter<TcpStream>,
    ) -> Result<ConnectionVerdict, ServeError> {
        let mut frames = match FrameReader::new((&magic[..]).chain(reader))
            .and_then(|f| f.with_expected_domain(self.prototype.domain()))
        {
            Ok(f) => f,
            Err(e) => {
                // Header-level rejection: the peer is still listening.
                writeln!(reply, "{}", Response::Err(e.to_string()))?;
                reply.flush()?;
                return Ok(ConnectionVerdict::KeepServing);
            }
        };
        let outcome = self.coordinator.ingest_stream(
            &self.prototype,
            &self.config.pipeline,
            self.config.policy,
            &mut frames,
        )?;
        if outcome.crashed {
            // Die like a SIGKILL: no reply, no final checkpoint.
            return Ok(ConnectionVerdict::Crashed);
        }
        let response = match &outcome.failure {
            None => Response::Ok(outcome.durable_count),
            Some(e) => Response::Err(e.to_string()),
        };
        // A failed stream usually means the peer is gone; a dead reply
        // socket must not take the server thread down with it.
        let _ = writeln!(reply, "{response}");
        let _ = reply.flush();
        Ok(ConnectionVerdict::KeepServing)
    }
}
