//! The concurrent TCP serving loop.
//!
//! [`GsumServer`] is the serving front-end over the workspace's linear
//! sketches.  Since PR 7 it runs on a **reactor + bounded worker pool**
//! (the private `reactor` module — previously each connection got its
//! own thread): one readiness loop owns the non-blocking listener and every
//! connection, decoding framed streams incrementally and answering point
//! queries, while a fixed pool of fold workers absorbs decoded batches
//! into per-worker shard sketches that fold into the published serving
//! state on query, checkpoint cadence, or stream completion.  Concurrency
//! is now a knob ([`ServeConfig::with_workers`]) instead of a function of
//! client count, and connections past [`ServeConfig::with_max_connections`]
//! are shed with a typed [`Response::Busy`](crate::Response::Busy) refusal
//! instead of queueing unboundedly.

use crate::checkpoint_envelope::CheckpointEnvelope;
use crate::coordinator::MergeCoordinator;
use crate::coordinator::ServeStats;
use crate::error::ServeError;
use crate::observer::{default_observer, ServeEvent, ServeObserver};
use crate::policy::ServePolicy;
use crate::reactor;
use crate::ServableSketch;
use gsum_streams::PipelinedIngest;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;

/// Configuration for a [`GsumServer`].
#[derive(Clone)]
pub struct ServeConfig {
    policy: ServePolicy,
    checkpoint_every: usize,
    pipeline: PipelinedIngest,
    crash_after: Option<u64>,
    client_read_timeout: Option<std::time::Duration>,
    workers: usize,
    max_connections: usize,
    observer: ServeObserver,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("policy", &self.policy)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("pipeline", &self.pipeline)
            .field("crash_after", &self.crash_after)
            .field("client_read_timeout", &self.client_read_timeout)
            .field("workers", &self.workers)
            .field("max_connections", &self.max_connections)
            .finish_non_exhaustive() // the observer callback is not Debug
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeConfig {
    /// The default configuration: [`ServePolicy::DiscardPartial`], a
    /// snapshot every 512 merged updates, a 2-worker pipeline, a 30-second
    /// client read timeout, 2 fold workers, a 256-connection cap.
    pub fn new() -> Self {
        Self {
            policy: ServePolicy::default(),
            checkpoint_every: 512,
            pipeline: PipelinedIngest::new(2),
            crash_after: None,
            client_read_timeout: Some(std::time::Duration::from_secs(30)),
            workers: 2,
            max_connections: 256,
            observer: default_observer(),
        }
    }

    /// Choose the failure policy for partially-delivered streams.
    pub fn with_policy(mut self, policy: ServePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Snapshot cadence and ingest-slice granularity, in updates.
    ///
    /// # Panics
    /// Panics if `every == 0`; use
    /// [`try_with_checkpoint_every`](Self::try_with_checkpoint_every) for a
    /// fallible builder.
    pub fn with_checkpoint_every(self, every: usize) -> Self {
        self.try_with_checkpoint_every(every)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible builder: rejects `every == 0`.
    pub fn try_with_checkpoint_every(mut self, every: usize) -> Result<Self, ServeError> {
        if every == 0 {
            return Err(crate::error::ServeConfigError::ZeroCheckpointEvery.into());
        }
        self.checkpoint_every = every;
        Ok(self)
    }

    /// The pipelined-ingest topology each client stream runs through.  The
    /// reactor reuses its batch size as the dispatch granularity (decoded
    /// updates per worker message) and its channel depth as each fold
    /// worker's queue bound.
    pub fn with_pipeline(mut self, pipeline: PipelinedIngest) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Size of the fold-worker pool: how many threads absorb decoded
    /// batches concurrently.  Connections are routed to workers round-robin
    /// and stick to one worker for their lifetime.  Worth raising toward
    /// the core count on multi-core ingest-heavy hosts; the default of 2
    /// keeps a decode/fold overlap even on small machines.
    ///
    /// # Panics
    /// Panics if `workers == 0`; use
    /// [`try_with_workers`](Self::try_with_workers) for a fallible builder.
    pub fn with_workers(self, workers: usize) -> Self {
        self.try_with_workers(workers)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible builder: rejects `workers == 0`.
    pub fn try_with_workers(mut self, workers: usize) -> Result<Self, ServeError> {
        if workers == 0 {
            return Err(crate::error::ServeConfigError::ZeroWorkers.into());
        }
        self.workers = workers;
        Ok(self)
    }

    /// Load-shedding cap: connections accepted while this many are already
    /// being served receive a typed `BUSY <max>` refusal and are closed —
    /// a signal the client can retry on, instead of an unbounded accept
    /// queue hiding the overload.
    ///
    /// # Panics
    /// Panics if `max == 0`; use
    /// [`try_with_max_connections`](Self::try_with_max_connections) for a
    /// fallible builder.
    pub fn with_max_connections(self, max: usize) -> Self {
        self.try_with_max_connections(max)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible builder: rejects `max == 0`.
    pub fn try_with_max_connections(mut self, max: usize) -> Result<Self, ServeError> {
        if max == 0 {
            return Err(crate::error::ServeConfigError::ZeroMaxConnections.into());
        }
        self.max_connections = max;
        Ok(self)
    }

    /// Route serving-loop events ([`ServeEvent`]) through `observer`
    /// instead of the default stderr printer.  The callback runs on the
    /// reactor thread: count, forward, return — never block.
    pub fn with_observer(mut self, observer: impl Fn(&ServeEvent) + Send + Sync + 'static) -> Self {
        self.observer = Arc::new(observer);
        self
    }

    /// Fault-injection hook for crash-recovery tests: once merging one more
    /// client state would push the durable count past `updates`, the server
    /// dies without a final checkpoint — exactly like a SIGKILL between
    /// persistence points.  Never set this in production.
    pub fn with_crash_after(mut self, updates: u64) -> Self {
        self.crash_after = Some(updates);
        self
    }

    /// How long a connection may sit idle (no bytes arriving) before the
    /// server gives up on it.  The timeout is what keeps one stalled client
    /// from pinning a connection slot forever — and, since a clean shutdown
    /// drains in-flight streams, from wedging `QUIT` indefinitely.  `None`
    /// disables it (a stalled client then holds its slot until the peer
    /// closes; use only on trusted networks).  The timeout bounds *idle*
    /// time, not stream length: a slow stream that keeps trickling bytes is
    /// never cut off, and server-side backpressure blocks the *client's*
    /// writes, not the server's reads.
    pub fn with_client_read_timeout(mut self, timeout: Option<std::time::Duration>) -> Self {
        self.client_read_timeout = timeout;
        self
    }

    /// The configured failure policy.
    pub fn policy(&self) -> ServePolicy {
        self.policy
    }

    /// The configured snapshot cadence.
    pub fn checkpoint_every(&self) -> usize {
        self.checkpoint_every
    }

    /// The configured pipeline topology.
    pub fn pipeline(&self) -> PipelinedIngest {
        self.pipeline
    }

    /// The configured fold-worker pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured load-shedding connection cap.
    pub fn max_connections(&self) -> usize {
        self.max_connections
    }

    /// The configured idle timeout.
    pub fn client_read_timeout(&self) -> Option<std::time::Duration> {
        self.client_read_timeout
    }

    /// The configured fault-injection crash point.
    pub fn crash_after(&self) -> Option<u64> {
        self.crash_after
    }

    pub(crate) fn emit(&self, event: &ServeEvent) {
        (self.observer)(event);
    }
}

/// How a [`GsumServer::serve`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// `true` for a `QUIT`-triggered shutdown (final snapshot written when
    /// a checkpoint path is configured); `false` when the fault-injection
    /// crash point was reached (no final snapshot — only previously
    /// published envelopes survive).
    pub clean_shutdown: bool,
    /// The coordinator's lifetime counters at shutdown.
    pub stats: ServeStats,
}

/// A long-lived serving process: concurrent framed ingest with sharded
/// fan-in, point queries, load shedding, and durable checkpointing.
pub struct GsumServer<S> {
    prototype: S,
    config: ServeConfig,
    coordinator: MergeCoordinator<S>,
}

impl<S: ServableSketch> GsumServer<S> {
    /// Boot a server around `prototype` (the serving sketch, reconstructed
    /// identically on every boot: same function, same configuration, same
    /// seed).  When `checkpoint_path` holds a previous incarnation's
    /// [`CheckpointEnvelope`], the serving state restores from it — a
    /// checkpoint taken by one incarnation resumes seamlessly, and
    /// bit-exactly, in the next.
    pub fn boot(
        prototype: S,
        config: ServeConfig,
        checkpoint_path: Option<PathBuf>,
    ) -> Result<Self, ServeError> {
        let restored = match checkpoint_path.as_deref() {
            Some(path) => CheckpointEnvelope::load(path)?
                .map(|env| Ok::<_, ServeError>((env.restore_state::<S>()?, env.durable_count())))
                .transpose()?,
            None => None,
        };
        let (initial, durable) = restored.unwrap_or_else(|| (prototype.clone(), 0));
        let coordinator = MergeCoordinator::new(
            initial,
            durable,
            config.checkpoint_every,
            checkpoint_path,
            config.crash_after,
        )?;
        Ok(Self {
            prototype,
            config,
            coordinator,
        })
    }

    /// Updates durably merged so far (non-zero after a checkpoint restore).
    pub fn durable_count(&self) -> u64 {
        self.coordinator.durable_count()
    }

    /// The current estimate of the serving state (the default function).
    pub fn estimate(&self) -> f64 {
        self.coordinator.estimate()
    }

    /// The estimate under a named registered function, or `None` for an
    /// unknown name — what an `EST <function>` query answers.
    pub fn estimate_named(&self, name: &str) -> Option<f64> {
        self.coordinator.estimate_named(name)
    }

    /// The function names the serving state answers for, default first —
    /// what a `FUNCS` query lists.
    pub fn function_names(&self) -> Vec<String> {
        self.coordinator.function_names()
    }

    /// The coordinator, for direct (non-TCP) fan-in: folding
    /// [`ParkedState`](gsum_streams::ParkedState) bytes from another
    /// machine, or driving in-memory streams in tests.
    pub fn coordinator(&self) -> &MergeCoordinator<S> {
        &self.coordinator
    }

    /// Accept connections until a `QUIT` command (or the fault-injection
    /// crash point).  A single reactor thread multiplexes every connection
    /// — framed streams decode incrementally as bytes arrive and their
    /// batches fan out to the bounded fold-worker pool; command lines
    /// answer from the published serving state.  In-flight streams run to
    /// completion before a clean shutdown returns, and a final snapshot is
    /// published.
    pub fn serve(&self, listener: TcpListener) -> Result<ServeSummary, ServeError> {
        let crashed = reactor::run(&self.prototype, &self.config, &self.coordinator, listener)?;
        if !crashed {
            self.coordinator.snapshot()?;
        }
        Ok(ServeSummary {
            clean_shutdown: !crashed,
            stats: self.coordinator.stats(),
        })
    }
}
