//! Observable serving-loop events.
//!
//! The accept loop and the per-connection state machines emit structured
//! [`ServeEvent`]s through a pluggable callback on
//! [`ServeConfig`](crate::ServeConfig) instead of writing bare lines to
//! stderr: `bench_serve` counts sheds and drops, tests assert on exact
//! event streams, and an operator can route them into real telemetry —
//! nobody scrapes stderr.  The default observer preserves the historical
//! behavior: accept failures and connection errors go to stderr with the
//! `[gsum-serve]` prefix; load sheds, idle timeouts and stream failures
//! are routine events and stay silent.

use std::fmt;
use std::sync::Arc;

/// One observable event from the serving loop.
///
/// Events are diagnostics, not control flow: the server behaves identically
/// whatever the observer does, and the callback runs on the reactor thread,
/// so it should return quickly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeEvent {
    /// `accept` itself failed; the listener keeps running.
    AcceptFailed {
        /// The accept error, rendered.
        reason: String,
    },
    /// A connection arrived while the server was at `max_connections`; it
    /// was refused with a typed `BUSY` reply instead of waiting in the
    /// accept queue.
    ConnectionShed {
        /// Connections being served at the moment of the shed.
        active: usize,
        /// The configured connection cap.
        max_connections: usize,
    },
    /// A connection died of an I/O error (read or write failed with
    /// something other than `WouldBlock`).
    ConnectionError {
        /// The I/O error, rendered.
        reason: String,
    },
    /// A connection sat idle past the configured client read timeout and
    /// was dropped.
    ConnectionTimedOut {
        /// How long the connection was idle, in milliseconds.
        idle_ms: u64,
    },
    /// A client stream ended without its end-of-stream frame (truncation,
    /// a decode error, an idle timeout mid-stream).  What the stream keeps
    /// is the [`ServePolicy`](crate::ServePolicy)'s call; this event is the
    /// count-without-scraping-stderr hook.
    StreamFailed {
        /// Why the stream failed, rendered.
        reason: String,
    },
}

impl fmt::Display for ServeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeEvent::AcceptFailed { reason } => write!(f, "accept failed: {reason}"),
            ServeEvent::ConnectionShed {
                active,
                max_connections,
            } => write!(
                f,
                "connection shed: {active} active at the cap of {max_connections}"
            ),
            ServeEvent::ConnectionError { reason } => write!(f, "connection error: {reason}"),
            ServeEvent::ConnectionTimedOut { idle_ms } => {
                write!(f, "connection idle for {idle_ms}ms, dropped")
            }
            ServeEvent::StreamFailed { reason } => write!(f, "stream failed: {reason}"),
        }
    }
}

/// The observer callback type carried by [`ServeConfig`](crate::ServeConfig).
pub type ServeObserver = Arc<dyn Fn(&ServeEvent) + Send + Sync>;

/// The default observer: accept failures and connection errors to stderr
/// (exactly the two conditions the pre-reactor server printed), everything
/// else silent.
pub(crate) fn default_observer() -> ServeObserver {
    Arc::new(|event| match event {
        ServeEvent::AcceptFailed { .. } | ServeEvent::ConnectionError { .. } => {
            eprintln!("[gsum-serve] {event}");
        }
        _ => {}
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServeEvent::AcceptFailed {
            reason: "fd limit".into()
        }
        .to_string()
        .contains("fd limit"));
        let shed = ServeEvent::ConnectionShed {
            active: 4,
            max_connections: 4,
        };
        assert!(shed.to_string().contains('4'));
        assert!(ServeEvent::ConnectionTimedOut { idle_ms: 250 }
            .to_string()
            .contains("250"));
        assert!(ServeEvent::StreamFailed {
            reason: "truncated".into()
        }
        .to_string()
        .contains("truncated"));
    }
}
