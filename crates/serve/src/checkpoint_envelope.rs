//! The durable-offset checkpoint envelope: serving-state bytes plus the
//! update count they are durable through.
//!
//! A serving deployment's checkpoint is more than sketch state — clients
//! need to know *how much* of the traffic the snapshot covers, so that
//! after a crash an offset-replay producer resends exactly the non-durable
//! suffix.  The envelope binds the two together in one atomically-published
//! file:
//!
//! ```text
//! envelope = magic version durable_count state
//! magic    = b"ZLSV"         4 bytes ("ZeroLaw SerVing state")
//! version  = u16 LE          envelope format version (currently 1)
//! durable  = u64 LE          updates merged into the enclosed state
//! state    = bytes           a checkpoint (see gsum_streams::checkpoint)
//! ```
//!
//! [`save_atomic`](CheckpointEnvelope::save_atomic) publishes via a temp
//! file renamed over the target, so a crash mid-write can never leave a
//! torn checkpoint — the discipline the PR 4 ingest-server example
//! established, now a library guarantee instead of example code.

use crate::error::ServeError;
use gsum_streams::checkpoint::{read_u16, read_u64, write_u16, write_u64};
use gsum_streams::{Checkpoint, CheckpointError, ParkedState};
use std::io::{Read, Write};
use std::path::Path;

/// The 4-byte magic prefix of every serving-state envelope.
pub const ENVELOPE_MAGIC: [u8; 4] = *b"ZLSV";

/// The current envelope format version.
pub const ENVELOPE_VERSION: u16 = 1;

/// Serving-state checkpoint bytes bound to the update count they are
/// durable through.
///
/// The in-memory half is exactly a [`ParkedState`] — the mergeable
/// bytes-plus-count handle the checkpoint layer defines — so an envelope
/// loaded from disk can be handed straight to a fan-in coordinator
/// ([`parked`](Self::parked)).  What the envelope adds is the durable
/// *file* discipline: the magic/version header and the atomic publish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointEnvelope {
    inner: ParkedState,
}

impl CheckpointEnvelope {
    /// Envelope a live sketch: serialize it and record the update count it
    /// has durably absorbed.
    pub fn park<S: Checkpoint>(durable_count: u64, state: &S) -> Result<Self, CheckpointError> {
        Ok(Self {
            inner: ParkedState::park(state, durable_count)?,
        })
    }

    /// Reassemble an envelope from parts that traveled separately.
    pub fn from_parts(durable_count: u64, state: Vec<u8>) -> Self {
        Self {
            inner: ParkedState::from_parts(state, durable_count),
        }
    }

    /// The number of updates merged into the enclosed state — the replay
    /// offset the server acknowledges to offset-replay clients.
    pub fn durable_count(&self) -> u64 {
        self.inner.updates()
    }

    /// The enclosed checkpoint bytes.
    pub fn state_bytes(&self) -> &[u8] {
        self.inner.bytes()
    }

    /// The envelope's payload as the mergeable handle it is: fold it into a
    /// live serving state via
    /// [`MergeCoordinator::fold_parked`](crate::MergeCoordinator::fold_parked).
    pub fn parked(&self) -> &ParkedState {
        &self.inner
    }

    /// Rehydrate the enclosed sketch.
    pub fn restore_state<S: Checkpoint>(&self) -> Result<S, CheckpointError> {
        self.inner.restore()
    }

    /// Serialize the envelope (header, durable count, state bytes).
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        w.write_all(&ENVELOPE_MAGIC).map_err(CheckpointError::Io)?;
        write_u16(w, ENVELOPE_VERSION)?;
        write_u64(w, self.durable_count())?;
        w.write_all(self.state_bytes())
            .map_err(CheckpointError::Io)?;
        Ok(())
    }

    /// Deserialize an envelope, validating magic and version.  The state
    /// bytes run to the end of the input; their own integrity is checked
    /// when [`restore_state`](Self::restore_state) decodes them.
    pub fn read_from(r: &mut impl Read) -> Result<Self, CheckpointError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).map_err(CheckpointError::Io)?;
        if magic != ENVELOPE_MAGIC {
            return Err(CheckpointError::Corrupt(
                "not a serving-state envelope (bad magic)".into(),
            ));
        }
        let version = read_u16(r)?;
        if version != ENVELOPE_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let durable_count = read_u64(r)?;
        let mut state = Vec::new();
        r.read_to_end(&mut state).map_err(CheckpointError::Io)?;
        Ok(Self::from_parts(durable_count, state))
    }

    /// Publish the envelope to `path` atomically: write a sibling temp file,
    /// then rename over the target.  A crash mid-write leaves the previous
    /// checkpoint intact, never a torn one.
    pub fn save_atomic(&self, path: &Path) -> Result<(), ServeError> {
        let mut bytes = Vec::with_capacity(self.state_bytes().len() + 16);
        self.write_to(&mut bytes)?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load the envelope at `path`.  Returns `Ok(None)` when no checkpoint
    /// exists yet (a fresh boot), an error when one exists but cannot be
    /// decoded — a torn or foreign file must never silently boot fresh and
    /// forget durable state.
    pub fn load(path: &Path) -> Result<Option<Self>, ServeError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Ok(Some(Self::read_from(&mut bytes.as_slice())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "gsum_serve_envelope_{tag}_{}.ckpt",
            std::process::id()
        ))
    }

    #[test]
    fn roundtrips_through_bytes() {
        let env = CheckpointEnvelope::from_parts(12_345, vec![1, 2, 3, 4, 5]);
        let mut bytes = Vec::new();
        env.write_to(&mut bytes).unwrap();
        let back = CheckpointEnvelope::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, env);
        assert_eq!(back.durable_count(), 12_345);
        assert_eq!(back.state_bytes(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn bad_magic_version_and_truncation_are_typed_errors() {
        let env = CheckpointEnvelope::from_parts(7, vec![9; 8]);
        let mut bytes = Vec::new();
        env.write_to(&mut bytes).unwrap();

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            CheckpointEnvelope::read_from(&mut bad_magic.as_slice()),
            Err(CheckpointError::Corrupt(_))
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            CheckpointEnvelope::read_from(&mut bad_version.as_slice()),
            Err(CheckpointError::UnsupportedVersion { .. })
        ));

        // Truncating inside the fixed header is an I/O (EOF) error; the
        // variable-length state tail legitimately runs to EOF.
        for cut in 0..14 {
            assert!(
                CheckpointEnvelope::read_from(&mut &bytes[..cut]).is_err(),
                "header cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn save_atomic_then_load_roundtrips_and_missing_is_none() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        assert!(CheckpointEnvelope::load(&path).unwrap().is_none());

        let env = CheckpointEnvelope::from_parts(42, vec![0xAB; 32]);
        env.save_atomic(&path).unwrap();
        assert_eq!(CheckpointEnvelope::load(&path).unwrap(), Some(env.clone()));

        // Overwrite is atomic-publish too: the new envelope fully replaces
        // the old one.
        let newer = CheckpointEnvelope::from_parts(43, vec![0xCD; 16]);
        newer.save_atomic(&path).unwrap();
        assert_eq!(CheckpointEnvelope::load(&path).unwrap(), Some(newer));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_torn_file_is_an_error_not_a_fresh_boot() {
        let path = temp_path("torn");
        std::fs::write(&path, b"ZL").unwrap();
        assert!(CheckpointEnvelope::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
