//! The serving layer's error taxonomy.

use gsum_streams::{CheckpointError, MergeError, PipelineError, WireError};
use std::fmt;
use std::io;

/// A rejected serving configuration value, mirroring the ingestion layer's
/// [`IngestConfigError`](gsum_streams::IngestConfigError) style: validated,
/// typed, never asserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeConfigError {
    /// `checkpoint_every == 0`: the serving state must become durable in
    /// positive-size slices.
    ZeroCheckpointEvery,
    /// `workers == 0`: the reactor needs at least one fold worker.
    ZeroWorkers,
    /// `max_connections == 0`: a server that sheds every connection serves
    /// nobody.
    ZeroMaxConnections,
}

impl fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeConfigError::ZeroCheckpointEvery => {
                write!(f, "checkpoint interval must be positive")
            }
            ServeConfigError::ZeroWorkers => {
                write!(f, "worker pool size must be positive")
            }
            ServeConfigError::ZeroMaxConnections => {
                write!(f, "connection cap must be positive")
            }
        }
    }
}

impl std::error::Error for ServeConfigError {}

/// Error raised by the serving layer.
///
/// Stream-level failures (a client that dies mid-frame, a crafted overflow
/// batch) are *not* errors at this level — they are routine events the
/// configured [`ServePolicy`](crate::ServePolicy) absorbs, reported per
/// stream in a [`StreamOutcome`](crate::StreamOutcome).  `ServeError` is for
/// faults of the serving process itself: a socket that cannot be accepted,
/// a checkpoint that cannot be written, a merge that should be impossible
/// for clones of one prototype.
#[derive(Debug)]
pub enum ServeError {
    /// An underlying I/O failure (socket accept/read/write, checkpoint
    /// file I/O).
    Io(io::Error),
    /// The framed wire layer rejected a stream header (bad magic on a
    /// connection sniffed as wire, unsupported version, domain mismatch).
    Wire(WireError),
    /// The pipelined ingest path failed in a way the failure policy does
    /// not cover (a merge between worker clones — a configuration bug,
    /// never routine traffic).
    Pipeline(PipelineError),
    /// Folding a client state into the serving state failed: the states
    /// were not built from the same prototype (seeds/shape/phase mismatch).
    Merge(MergeError),
    /// Saving or restoring the serving-state checkpoint envelope failed.
    Checkpoint(CheckpointError),
    /// A serving configuration value was rejected.
    Config(ServeConfigError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::Wire(e) => write!(f, "serve wire error: {e}"),
            ServeError::Pipeline(e) => write!(f, "serve pipeline error: {e}"),
            ServeError::Merge(e) => write!(f, "serve merge error: {e}"),
            ServeError::Checkpoint(e) => write!(f, "serve checkpoint error: {e}"),
            ServeError::Config(e) => write!(f, "serve configuration error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            ServeError::Pipeline(e) => Some(e),
            ServeError::Merge(e) => Some(e),
            ServeError::Checkpoint(e) => Some(e),
            ServeError::Config(e) => Some(e),
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}

impl From<MergeError> for ServeError {
    fn from(e: MergeError) -> Self {
        ServeError::Merge(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

impl From<ServeConfigError> for ServeError {
    fn from(e: ServeConfigError) -> Self {
        ServeError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServeConfigError::ZeroCheckpointEvery
            .to_string()
            .contains("positive"));
        assert!(ServeConfigError::ZeroWorkers.to_string().contains("worker"));
        assert!(ServeConfigError::ZeroMaxConnections
            .to_string()
            .contains("connection cap"));
        assert!(ServeError::Config(ServeConfigError::ZeroCheckpointEvery)
            .to_string()
            .contains("configuration"));
        assert!(ServeError::Merge(MergeError::new("seed mismatch"))
            .to_string()
            .contains("seed mismatch"));
        let io = ServeError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "gone"));
        assert!(io.to_string().contains("gone"));
    }
}
