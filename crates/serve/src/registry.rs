//! The estimator registry: many G functions served from one ingest path.
//!
//! The one-pass sketch's ingest path never evaluates its function — the
//! absorbed state is pure frequency structure (CountSketch counters, AMS
//! counters, reverse hints), and `g` enters only at query time inside the
//! per-level covers ([`OnePassGSumSketch::estimate_with`]) and at
//! checkpoint time as encoded parameters
//! ([`OnePassGSumSketch::save_with_params`]).  A [`SketchRegistry`]
//! exploits exactly that: it keeps one **substrate** sketch per distinct
//! [`GSumConfig`] (dimensions + seeds, the substrate key) and any number
//! of **estimators** — named [`DynG`] functions — on top of it.  Every
//! decoded batch is routed to each substrate exactly once, no matter how
//! many functions are registered; per-function estimates and per-function
//! checkpoint bytes come out bit-identical to a single-function sketch of
//! the same configuration replaying the same stream.
//!
//! The registry implements the full [`ServableSketch`]
//! contract, so a [`GsumServer`](crate::GsumServer) serves it unchanged:
//! `EST <function>` answers any registered estimator, `FUNCS` lists them,
//! and the registry state checkpoints as one versioned composite
//! ([`kind::SKETCH_REGISTRY`]).

use crate::{ServableSketch, ServableSubstrate};
use gsum_core::{GSumConfig, OnePassGSumSketch};
use gsum_gfunc::{DynFunction, DynG, FunctionCodec, GFunction};
use gsum_streams::checkpoint::{self, kind, Checkpoint, CheckpointError};
use gsum_streams::{MergeError, MergeableSketch, StreamSink, Update};
use std::fmt;
use std::io::{Read, Write};

/// Why a registration was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// A function with this name is already registered (names are the
    /// query keys of the `EST <function>` protocol, so they must be
    /// unique).
    DuplicateFunction(String),
    /// The configuration's domain differs from the registry's: one server
    /// ingests one wire stream, and wire headers declare a single domain.
    DomainMismatch {
        /// The domain every already-registered substrate serves.
        expected: u64,
        /// The domain the rejected configuration asked for.
        got: u64,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateFunction(name) => {
                write!(f, "function {name:?} is already registered")
            }
            RegistryError::DomainMismatch { expected, got } => write!(
                f,
                "registry serves domain {expected} but the configuration declares domain {got}"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One shared ingest substrate: a function-agnostic one-pass sketch plus
/// the configuration that is its dedup key.
#[derive(Debug, Clone)]
struct Substrate {
    config: GSumConfig,
    sketch: OnePassGSumSketch<DynG>,
}

/// One registered estimator: a named function bound to a substrate.
#[derive(Debug, Clone)]
struct Estimator {
    name: String,
    function: DynG,
    substrate: usize,
}

/// A set of named g-SUM estimators sharing ingest substrates — see the
/// module docs.  The first registered function is the **default**: the one
/// a bare `EST` query answers.
#[derive(Debug, Clone, Default)]
pub struct SketchRegistry {
    substrates: Vec<Substrate>,
    estimators: Vec<Estimator>,
}

impl SketchRegistry {
    /// An empty registry.  Register at least one function before serving —
    /// an empty registry estimates `0.0` over domain `0` and rejects every
    /// wire stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `function` under configuration `config` (the substrate
    /// seed is `config.seed`).  Returns the estimator's index; index 0 is
    /// the default estimator.
    ///
    /// Substrates dedup on the whole configuration: a second function
    /// registered with an identical `GSumConfig` (dimensions, backend,
    /// *and* seed) shares the first one's sketch, so ingest cost is per
    /// distinct configuration, not per function.
    pub fn register<F: DynFunction + 'static>(
        &mut self,
        function: F,
        config: &GSumConfig,
    ) -> Result<usize, RegistryError> {
        self.register_dyn(DynG::new(function), config)
    }

    /// [`register`](Self::register) for an already type-erased function.
    pub fn register_dyn(
        &mut self,
        function: DynG,
        config: &GSumConfig,
    ) -> Result<usize, RegistryError> {
        let name = function.name();
        if self.estimators.iter().any(|e| e.name == name) {
            return Err(RegistryError::DuplicateFunction(name));
        }
        if let Some(first) = self.substrates.first() {
            if first.config.domain != config.domain {
                return Err(RegistryError::DomainMismatch {
                    expected: first.config.domain,
                    got: config.domain,
                });
            }
        }
        let substrate = match self.substrates.iter().position(|s| s.config == *config) {
            Some(i) => i,
            None => {
                self.substrates.push(Substrate {
                    config: config.clone(),
                    sketch: OnePassGSumSketch::with_seed(function.clone(), config, config.seed),
                });
                self.substrates.len() - 1
            }
        };
        self.estimators.push(Estimator {
            name,
            function,
            substrate,
        });
        Ok(self.estimators.len() - 1)
    }

    /// Number of registered estimators.
    pub fn len(&self) -> usize {
        self.estimators.len()
    }

    /// Whether no function is registered yet.
    pub fn is_empty(&self) -> bool {
        self.estimators.is_empty()
    }

    /// Number of distinct ingest substrates backing the estimators (`≤`
    /// [`len`](Self::len); equal only when no two estimators share a
    /// configuration).
    pub fn substrate_count(&self) -> usize {
        self.substrates.len()
    }

    /// Registered function names, registration order (first = default).
    pub fn function_names(&self) -> Vec<String> {
        self.estimators.iter().map(|e| e.name.clone()).collect()
    }

    /// The estimate for a registered function at the current prefix, or
    /// `None` for an unknown name.
    pub fn estimate_for(&self, name: &str) -> Option<f64> {
        let est = self.estimators.iter().find(|e| e.name == name)?;
        Some(
            self.substrates[est.substrate]
                .sketch
                .estimate_with(&est.function),
        )
    }

    /// Checkpoint bytes for one registered function, or `None` for an
    /// unknown name.
    ///
    /// The bytes are exactly what a **single-function**
    /// `OnePassGSumSketch` built with that function (same configuration,
    /// same seed) would write after absorbing the same stream — the
    /// substrate state is function-independent, so only the encoded
    /// parameters differ between estimators sharing a substrate.  The
    /// workspace's bit-exactness suites compare these bytes directly.
    pub fn checkpoint_for(&self, name: &str) -> Option<Result<Vec<u8>, CheckpointError>> {
        let est = self.estimators.iter().find(|e| e.name == name)?;
        let mut bytes = Vec::new();
        Some(
            self.substrates[est.substrate]
                .sketch
                .save_with_params(&mut bytes, &est.function.encode_params())
                .map(|()| bytes),
        )
    }

    fn save_config(w: &mut impl Write, config: &GSumConfig) -> Result<(), CheckpointError> {
        checkpoint::write_u64(w, config.domain)?;
        checkpoint::write_f64(w, config.epsilon)?;
        checkpoint::write_f64(w, config.delta)?;
        checkpoint::write_f64(w, config.envelope_factor)?;
        checkpoint::write_len(w, config.levels)?;
        checkpoint::write_len(w, config.countsketch_columns)?;
        checkpoint::write_len(w, config.countsketch_rows)?;
        checkpoint::write_len(w, config.candidates_per_level)?;
        checkpoint::write_backend(w, config.hash_backend)?;
        checkpoint::write_sign_family(w, config.sign_family)?;
        checkpoint::write_len(w, config.hint_cap)?;
        checkpoint::write_u64(w, config.seed)
    }

    fn restore_config(r: &mut impl Read) -> Result<GSumConfig, CheckpointError> {
        Ok(GSumConfig {
            domain: checkpoint::read_u64(r)?,
            epsilon: checkpoint::read_f64(r)?,
            delta: checkpoint::read_f64(r)?,
            envelope_factor: checkpoint::read_f64(r)?,
            levels: checkpoint::read_len(r)?,
            countsketch_columns: checkpoint::read_len(r)?,
            countsketch_rows: checkpoint::read_len(r)?,
            candidates_per_level: checkpoint::read_len(r)?,
            hash_backend: checkpoint::read_backend(r)?,
            sign_family: checkpoint::read_sign_family(r)?,
            hint_cap: checkpoint::read_len(r)?,
            seed: checkpoint::read_u64(r)?,
        })
    }
}

impl StreamSink for SketchRegistry {
    fn update(&mut self, update: Update) {
        for substrate in &mut self.substrates {
            substrate.sketch.update(update);
        }
    }

    /// Route the batch to each substrate exactly once — ingest cost scales
    /// with distinct configurations, never with registered functions.
    fn update_batch(&mut self, updates: &[Update]) {
        for substrate in &mut self.substrates {
            substrate.sketch.update_batch(updates);
        }
    }
}

impl MergeableSketch for SketchRegistry {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.estimators.len() != other.estimators.len()
            || self.substrates.len() != other.substrates.len()
        {
            return Err(MergeError::new(
                "registries register different estimator sets",
            ));
        }
        for (a, b) in self.estimators.iter().zip(&other.estimators) {
            if a.name != b.name || a.substrate != b.substrate {
                return Err(MergeError::new(
                    "registries register different estimator sets",
                ));
            }
        }
        for (a, b) in self.substrates.iter().zip(&other.substrates) {
            if a.config != b.config {
                return Err(MergeError::new(
                    "registry substrates were built with different configurations",
                ));
            }
        }
        for (a, b) in self.substrates.iter_mut().zip(&other.substrates) {
            a.sketch.merge(&b.sketch)?;
        }
        Ok(())
    }
}

/// The registry checkpoints as a versioned composite
/// ([`kind::SKETCH_REGISTRY`]): each substrate's configuration and nested
/// sketch checkpoint, then the estimator table as encoded function
/// parameters plus substrate indices.
impl Checkpoint for SketchRegistry {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::SKETCH_REGISTRY)?;
        checkpoint::write_len(w, self.substrates.len())?;
        for substrate in &self.substrates {
            Self::save_config(w, &substrate.config)?;
            substrate.sketch.save(w)?;
        }
        checkpoint::write_len(w, self.estimators.len())?;
        for est in &self.estimators {
            checkpoint::write_bytes(w, &est.function.encode_params())?;
            checkpoint::write_len(w, est.substrate)?;
        }
        Ok(())
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        checkpoint::read_header(r, kind::SKETCH_REGISTRY)?;
        let substrate_count = checkpoint::read_len(r)?;
        let mut substrates = Vec::with_capacity(substrate_count.min(1 << 10));
        for _ in 0..substrate_count {
            let config = Self::restore_config(r)?;
            let sketch = OnePassGSumSketch::<DynG>::restore(r)?;
            substrates.push(Substrate { config, sketch });
        }
        let estimator_count = checkpoint::read_len(r)?;
        let mut estimators = Vec::with_capacity(estimator_count.min(1 << 10));
        for _ in 0..estimator_count {
            let params = checkpoint::read_bounded_bytes(r, 1 << 16, "function parameters")?;
            let function = DynG::decode_params(&params)
                .ok_or_else(|| CheckpointError::Corrupt("invalid function parameters".into()))?;
            let substrate = checkpoint::read_len(r)?;
            if substrate >= substrates.len() {
                return Err(CheckpointError::Corrupt(
                    "estimator references a substrate past the table".into(),
                ));
            }
            estimators.push(Estimator {
                name: function.name(),
                function,
                substrate,
            });
        }
        Ok(Self {
            substrates,
            estimators,
        })
    }
}

impl ServableSubstrate for SketchRegistry {
    fn domain(&self) -> u64 {
        self.substrates.first().map_or(0, |s| s.config.domain)
    }
}

impl ServableSketch for SketchRegistry {
    /// The default estimator's estimate (first registered function); `0.0`
    /// for an empty registry.
    fn estimate(&self) -> f64 {
        self.estimators.first().map_or(0.0, |est| {
            self.substrates[est.substrate]
                .sketch
                .estimate_with(&est.function)
        })
    }

    fn estimate_named(&self, name: &str) -> Option<f64> {
        self.estimate_for(name)
    }

    fn function_names(&self) -> Vec<String> {
        SketchRegistry::function_names(self)
    }
}
