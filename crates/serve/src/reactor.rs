//! The readiness loop and bounded worker pool behind [`GsumServer::serve`].
//!
//! Thread-per-connection pays a thread spawn per client and funnels every
//! decoded batch through the serving-state lock.  This module replaces both
//! costs with a std-only reactor shape:
//!
//! * **One reactor thread** owns the non-blocking listener and every
//!   non-blocking connection.  It accepts, sheds past `max_connections`
//!   with a typed [`Response::Busy`] refusal, reads whatever bytes are
//!   ready, and advances a per-connection state machine (sniff → command
//!   line or framed ingest via the resumable
//!   [`FrameDecoder`](gsum_streams::FrameDecoder), which picks up
//!   mid-frame exactly where the previous readiness event stopped).
//! * **A bounded pool of fold workers** receives decoded update batches
//!   over bounded channels (depth = the pipeline config's channel depth) —
//!   a flooding client backpressures the reactor's reads, never memory.
//!   Connections are sticky (`conn_id % workers`), so each stream's
//!   batches arrive at one worker in order.
//! * **Per-worker shards**: under [`ServePolicy::MergeCompleted`] each
//!   worker absorbs batches into its own accumulator sketch and folds into
//!   the published serving state only on query, checkpoint cadence, or
//!   stream completion (the `OK` ack must carry a durable count that
//!   includes the stream).  Linearity licenses the sharding: integer-valued
//!   `f64` counters add exactly, so shards folded in any order land on the
//!   single-threaded concat-replay state bit for bit —
//!   `tests/serve_reactor.rs` proptests exactly that claim, load shedding
//!   included.  [`ServePolicy::DiscardPartial`] is all-or-nothing, so there
//!   is nothing to share mid-stream: the per-connection accumulator *is*
//!   the shard, folded once at the end frame or dropped on failure.
//!
//! Fault injection (`crash_after`) keeps the PR 4/5 kill/resume contract
//! bit for bit: with a crash point armed, `MergeCompleted` streams bypass
//! the shards and fold in exact `checkpoint_every`-sized slices, so the
//! durable count still moves in K-slices and the crash lands between the
//! same persistence points as the pre-reactor server.

use crate::coordinator::{FoldOutcome, MergeCoordinator};
use crate::error::ServeError;
use crate::observer::ServeEvent;
use crate::protocol::{Command, Response};
use crate::server::ServeConfig;
use crate::ServableSketch;
use gsum_streams::wire::WIRE_MAGIC;
use gsum_streams::{FrameDecoder, Update};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Longest accepted command line, in bytes.  Real commands are ≤ 6 bytes;
/// anything beyond this is garbage and earns a typed rejection instead of
/// unbounded buffering.
const MAX_COMMAND_BYTES: usize = 256;

/// Bytes read from a socket per `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// Reads per connection per reactor tick — bounds how long one firehose
/// connection can monopolize the loop.
const READS_PER_TICK: usize = 4;

/// Reactor sleep when a full tick made no progress (nothing readable,
/// writable, or pending).
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// How decoded updates become durable serving state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FoldMode {
    /// `MergeCompleted`, no crash point: batches absorb into the owning
    /// worker's shard; the shard folds on cadence, query, or stream end.
    Shard,
    /// `MergeCompleted` with `crash_after` armed: per-connection
    /// accumulator folded in exact `checkpoint_every`-sized slices, so
    /// crash points stay deterministic (the kill/resume contract).
    ExactSlices,
    /// `DiscardPartial`: per-connection accumulator folded once at the end
    /// frame, dropped on failure.
    WholeStream,
}

/// A fold worker's shard: the accumulator sketch plus how many updates it
/// holds that the published serving state does not.
struct Shard<S> {
    sketch: S,
    pending: u64,
}

/// What the reactor sends a fold worker.  All messages for one connection
/// go to one worker (sticky routing), in order.
enum WorkerMsg {
    /// Decoded updates from one connection's stream.
    Batch { conn: u64, updates: Vec<Update> },
    /// The connection's stream reached its end-of-stream frame; fold, then
    /// acknowledge with `OK <durable>`.
    End { conn: u64 },
    /// The connection's stream died (truncation, decode error, idle
    /// timeout).  Resolve per policy, then reply `ERR <reason>`.
    Fail { conn: u64, reason: String },
}

/// Where a connection is in its current request.
enum Phase {
    /// Sniffing / accumulating: bytes so far are either a wire-magic
    /// prefix (→ `Ingest`) or part of a command line.
    Text,
    /// Mid framed stream; the decoder resumes wherever the last readiness
    /// event stopped.
    Ingest(Box<FrameDecoder>),
    /// The worker owes this connection a reply; input is left buffered (a
    /// pipelined next request) until the reply is on the wire.
    AwaitReply,
}

struct Conn {
    id: u64,
    stream: TcpStream,
    worker: usize,
    phase: Phase,
    /// Bytes read but not yet consumed by the state machine.
    inbuf: Vec<u8>,
    /// Bytes owed to the peer.
    outbuf: Vec<u8>,
    /// Decoded updates not yet dispatched to the worker.
    batch: Vec<Update>,
    last_activity: Instant,
    close_after_flush: bool,
    eof: bool,
    dead: bool,
}

impl Conn {
    fn new(id: u64, stream: TcpStream, worker: usize, now: Instant) -> Self {
        Self {
            id,
            stream,
            worker,
            phase: Phase::Text,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            batch: Vec::new(),
            last_activity: now,
            close_after_flush: false,
            eof: false,
            dead: false,
        }
    }

    fn mid_request(&self) -> bool {
        matches!(self.phase, Phase::Ingest(_) | Phase::AwaitReply)
    }
}

/// Run the serving loop: spawn the worker pool, drive the reactor until a
/// clean `QUIT` drain or the fault-injection crash point, then fold any
/// shard remainders.  Returns whether the crash point was reached (the
/// caller decides about the final snapshot).
pub(crate) fn run<S: ServableSketch>(
    prototype: &S,
    config: &ServeConfig,
    coordinator: &MergeCoordinator<S>,
    listener: TcpListener,
) -> Result<bool, ServeError> {
    listener.set_nonblocking(true)?;
    let workers = config.workers();
    let mode = if config.policy().folds_mid_stream() {
        if config.crash_after().is_none() {
            FoldMode::Shard
        } else {
            FoldMode::ExactSlices
        }
    } else {
        FoldMode::WholeStream
    };
    let shards: Vec<Arc<Mutex<Shard<S>>>> = if mode == FoldMode::Shard {
        (0..workers)
            .map(|_| {
                Arc::new(Mutex::new(Shard {
                    sketch: prototype.clone(),
                    pending: 0,
                }))
            })
            .collect()
    } else {
        Vec::new()
    };

    let (reply_tx, reply_rx) = mpsc::channel::<(u64, Response)>();
    let crashed = std::thread::scope(|scope| {
        let mut txs = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::sync_channel::<WorkerMsg>(config.pipeline().channel_depth());
            txs.push(tx);
            let replies = reply_tx.clone();
            let shard = shards.get(w).cloned();
            let every = config.checkpoint_every();
            scope.spawn(move || {
                worker_loop(rx, replies, shard, mode, prototype, coordinator, every)
            });
        }
        drop(reply_tx);
        let mut reactor = Reactor {
            prototype,
            config,
            coordinator,
            txs: &txs,
            shards: &shards,
            dispatch_at: config.pipeline().batch_size().max(1),
            domain: prototype.domain(),
            draining: false,
        };
        reactor.serve_loop(&listener, &reply_rx)
        // `txs` drops here: the workers drain their queues and exit, and
        // the scope joins them before anything below runs.
    })?;

    if !crashed {
        // Shard remainders exist only for streams that failed mid-flight
        // (completed streams flush at their end frame); fold them before
        // the caller takes the final snapshot.
        for shard in &shards {
            flush_shard(shard, prototype, coordinator)?;
        }
    }
    Ok(crashed)
}

/// Take a shard's accumulator (swapping in a fresh prototype clone) and
/// fold it into the published serving state.  The fold happens outside the
/// shard lock, so the owning worker keeps absorbing while the fold runs.
fn flush_shard<S: ServableSketch>(
    shard: &Mutex<Shard<S>>,
    prototype: &S,
    coordinator: &MergeCoordinator<S>,
) -> Result<(), ServeError> {
    let (taken, pending) = {
        let mut guard = shard.lock().expect("shard lock poisoned");
        if guard.pending == 0 {
            return Ok(());
        }
        let taken = std::mem::replace(&mut guard.sketch, prototype.clone());
        let pending = std::mem::take(&mut guard.pending);
        (taken, pending)
    };
    // Shard mode never arms a crash point, so the outcome is always Merged.
    coordinator.fold(&taken, pending)?;
    Ok(())
}

/// One fold worker: absorb batches, resolve stream ends and failures per
/// [`FoldMode`], send replies back to the reactor.  Exits when the reactor
/// drops the sending half.
fn worker_loop<S: ServableSketch>(
    rx: Receiver<WorkerMsg>,
    replies: mpsc::Sender<(u64, Response)>,
    shard: Option<Arc<Mutex<Shard<S>>>>,
    mode: FoldMode,
    prototype: &S,
    coordinator: &MergeCoordinator<S>,
    checkpoint_every: usize,
) {
    // Per-connection accumulators (ExactSlices / WholeStream modes).
    struct ConnAcc<S> {
        acc: S,
        count: u64,
    }
    let fresh = || ConnAcc {
        acc: prototype.clone(),
        count: 0,
    };
    let mut conns: HashMap<u64, ConnAcc<S>> = HashMap::new();
    let k = checkpoint_every as u64;

    while let Ok(msg) = rx.recv() {
        if coordinator.crashed() {
            // The server is dying mid-crash: no folds, no replies, no
            // bookkeeping — exactly like a SIGKILL between persistence
            // points.
            if let WorkerMsg::End { conn } | WorkerMsg::Fail { conn, .. } = msg {
                conns.remove(&conn);
            }
            continue;
        }
        match msg {
            WorkerMsg::Batch { conn, updates } => match mode {
                FoldMode::Shard => {
                    let shard = shard.as_ref().expect("shard mode has a shard");
                    let due = {
                        let mut guard = shard.lock().expect("shard lock poisoned");
                        guard.sketch.update_batch(&updates);
                        guard.pending += updates.len() as u64;
                        guard.pending >= k
                    };
                    if due {
                        if let Err(e) = flush_shard(shard, prototype, coordinator) {
                            let _ = replies.send((conn, Response::Err(e.to_string())));
                        }
                    }
                }
                FoldMode::ExactSlices => {
                    let mut st = conns.remove(&conn).unwrap_or_else(fresh);
                    let mut off = 0usize;
                    let mut alive = true;
                    while off < updates.len() {
                        let take = ((k - st.count) as usize).min(updates.len() - off);
                        st.acc.update_batch(&updates[off..off + take]);
                        st.count += take as u64;
                        off += take;
                        if st.count == k {
                            match coordinator.fold(&st.acc, k) {
                                Ok(FoldOutcome::Merged { .. }) => {
                                    st.acc = prototype.clone();
                                    st.count = 0;
                                }
                                Ok(FoldOutcome::CrashInjected) => {
                                    alive = false;
                                    break;
                                }
                                Err(e) => {
                                    let _ = replies.send((conn, Response::Err(e.to_string())));
                                    alive = false;
                                    break;
                                }
                            }
                        }
                    }
                    if alive {
                        conns.insert(conn, st);
                    }
                }
                FoldMode::WholeStream => {
                    let st = conns.entry(conn).or_insert_with(fresh);
                    st.acc.update_batch(&updates);
                    st.count += updates.len() as u64;
                }
            },
            WorkerMsg::End { conn } => {
                let folded: Result<Option<u64>, ServeError> = match mode {
                    FoldMode::Shard => {
                        flush_shard(shard.as_ref().expect("shard"), prototype, coordinator)
                            .map(|()| Some(coordinator.durable_count()))
                    }
                    FoldMode::ExactSlices => match conns.remove(&conn) {
                        Some(st) if st.count > 0 => match coordinator.fold(&st.acc, st.count) {
                            Ok(FoldOutcome::Merged { durable }) => Ok(Some(durable)),
                            Ok(FoldOutcome::CrashInjected) => Ok(None),
                            Err(e) => Err(e),
                        },
                        // The stream ended exactly on a slice boundary.
                        _ => Ok(Some(coordinator.durable_count())),
                    },
                    FoldMode::WholeStream => {
                        let st = conns.remove(&conn).unwrap_or_else(fresh);
                        match coordinator.fold(&st.acc, st.count) {
                            Ok(FoldOutcome::Merged { durable }) => Ok(Some(durable)),
                            Ok(FoldOutcome::CrashInjected) => Ok(None),
                            Err(e) => Err(e),
                        }
                    }
                };
                match folded {
                    Ok(Some(durable)) => {
                        coordinator.note_stream_completed();
                        let _ = replies.send((conn, Response::Ok(durable)));
                    }
                    // Crash injected: die without a reply, like a SIGKILL.
                    Ok(None) => {}
                    Err(e) => {
                        let _ = replies.send((conn, Response::Err(e.to_string())));
                    }
                }
            }
            WorkerMsg::Fail { conn, reason } => {
                let mut discarded = 0u64;
                let mut crash_silent = false;
                match mode {
                    // MergeCompleted keeps the full decoded prefix; in
                    // shard mode it is already absorbed and will fold on
                    // the next flush.
                    FoldMode::Shard => {}
                    FoldMode::ExactSlices => {
                        // The sub-slice remainder is part of the decoded
                        // prefix: fold it too.
                        if let Some(st) = conns.remove(&conn) {
                            if st.count > 0 {
                                match coordinator.fold(&st.acc, st.count) {
                                    Ok(FoldOutcome::Merged { .. }) => {}
                                    Ok(FoldOutcome::CrashInjected) => crash_silent = true,
                                    Err(_) => discarded = st.count,
                                }
                            }
                        }
                    }
                    FoldMode::WholeStream => {
                        discarded = conns.remove(&conn).map_or(0, |st| st.count);
                    }
                }
                if !crash_silent {
                    coordinator.note_stream_failed(discarded);
                    let _ = replies.send((conn, Response::Err(reason)));
                }
            }
        }
    }
}

/// What [`Reactor::advance`] decided a connection needs next; actions are
/// applied after the phase borrow ends.
enum Act {
    /// Nothing (or nothing more) to do this tick.
    Wait,
    /// The sniffed prefix is the wire magic: start a framed stream.
    StartIngest,
    /// A complete command line arrived.
    Command(String),
    /// The accumulated line exceeds [`MAX_COMMAND_BYTES`].
    Oversized,
    /// The stream decoder parked an error.
    StreamError(String),
    /// The stream reached its end-of-stream frame.
    StreamEnd,
    /// Mid-stream: dispatch the buffered batch if it is large enough.
    StreamFlow,
}

struct Reactor<'a, S: ServableSketch> {
    prototype: &'a S,
    config: &'a ServeConfig,
    coordinator: &'a MergeCoordinator<S>,
    txs: &'a [SyncSender<WorkerMsg>],
    shards: &'a [Arc<Mutex<Shard<S>>>],
    dispatch_at: usize,
    domain: u64,
    draining: bool,
}

impl<S: ServableSketch> Reactor<'_, S> {
    /// The readiness loop.  Returns `Ok(true)` when the fault-injection
    /// crash point was reached, `Ok(false)` on a clean `QUIT` drain.
    fn serve_loop(
        &mut self,
        listener: &TcpListener,
        replies: &Receiver<(u64, Response)>,
    ) -> Result<bool, ServeError> {
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_id: u64 = 0;
        let timeout = self.config.client_read_timeout();
        let max_connections = self.config.max_connections();

        loop {
            if self.coordinator.crashed() {
                // Die like a SIGKILL: every connection drops unanswered,
                // no shard flush, no final snapshot.
                return Ok(true);
            }
            let mut progress = false;
            let now = Instant::now();

            // Accept everything pending: register, shed, or (while
            // draining) refuse silently.
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progress = true;
                        if self.draining {
                            drop(stream);
                        } else if conns.len() >= max_connections {
                            self.config.emit(&ServeEvent::ConnectionShed {
                                active: conns.len(),
                                max_connections,
                            });
                            // Typed refusal, best effort.  Accepted sockets
                            // are blocking (they do not inherit the
                            // listener's non-blocking flag on the platforms
                            // we target), and a fresh socket's send buffer
                            // swallows this short line without blocking.
                            let mut stream = stream;
                            let _ = writeln!(stream, "{}", Response::Busy(max_connections as u64));
                        } else if let Err(e) = stream.set_nonblocking(true) {
                            self.config.emit(&ServeEvent::ConnectionError {
                                reason: e.to_string(),
                            });
                        } else {
                            let id = next_id;
                            next_id += 1;
                            let worker = (id as usize) % self.txs.len();
                            conns.insert(id, Conn::new(id, stream, worker, now));
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => {
                        self.config.emit(&ServeEvent::AcceptFailed {
                            reason: e.to_string(),
                        });
                        break;
                    }
                }
            }

            // Route worker replies into their connections' write buffers.
            while let Ok((id, response)) = replies.try_recv() {
                progress = true;
                if let Some(conn) = conns.get_mut(&id) {
                    if matches!(response, Response::Err(_)) {
                        // A failed request poisons the connection: the
                        // framing can no longer be trusted.
                        conn.close_after_flush = true;
                    }
                    conn.outbuf
                        .extend_from_slice(response.to_string().as_bytes());
                    conn.outbuf.push(b'\n');
                    if matches!(conn.phase, Phase::AwaitReply) {
                        // Persistent connection: the next request (possibly
                        // already buffered in inbuf) may proceed.
                        conn.phase = Phase::Text;
                    }
                }
            }

            // Per-connection I/O and state machines.
            for conn in conns.values_mut() {
                progress |= self.step_conn(conn, now, timeout)?;
            }
            conns.retain(|_, c| !c.dead);

            if self.draining {
                // Keep only connections in the middle of a request (their
                // streams drain to completion) or with unflushed replies;
                // idle and stalled connections drop immediately, so one
                // silent peer cannot wedge a clean shutdown.
                conns.retain(|_, c| c.mid_request() || !c.outbuf.is_empty());
                if conns.is_empty() {
                    return Ok(false);
                }
            }

            if !progress {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }

    /// Advance one connection: flush owed bytes, read ready bytes, run the
    /// request state machine, resolve EOF, apply the idle timeout.
    fn step_conn(
        &mut self,
        conn: &mut Conn,
        now: Instant,
        timeout: Option<Duration>,
    ) -> Result<bool, ServeError> {
        let mut progress = false;

        // Flush owed bytes.
        while !conn.outbuf.is_empty() {
            match conn.stream.write(&conn.outbuf) {
                Ok(0) => {
                    conn.dead = true;
                    return Ok(true);
                }
                Ok(n) => {
                    conn.outbuf.drain(..n);
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.config.emit(&ServeEvent::ConnectionError {
                        reason: e.to_string(),
                    });
                    self.abort_conn(conn);
                    return Ok(true);
                }
            }
        }
        if conn.close_after_flush
            && conn.outbuf.is_empty()
            && !matches!(conn.phase, Phase::AwaitReply)
        {
            conn.dead = true;
            return Ok(true);
        }

        // Read ready bytes — unless a reply is owed (ordering: buffered
        // pipelined requests wait their turn) or the connection is closing.
        if !conn.eof && !conn.close_after_flush && !matches!(conn.phase, Phase::AwaitReply) {
            let mut buf = [0u8; READ_CHUNK];
            let mut reads = 0;
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.eof = true;
                        progress = true;
                        break;
                    }
                    Ok(n) => {
                        conn.inbuf.extend_from_slice(&buf[..n]);
                        conn.last_activity = now;
                        progress = true;
                        reads += 1;
                        if n < buf.len() || reads >= READS_PER_TICK {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => {
                        self.config.emit(&ServeEvent::ConnectionError {
                            reason: e.to_string(),
                        });
                        self.abort_conn(conn);
                        return Ok(true);
                    }
                }
            }
        }

        progress |= self.advance(conn)?;

        // EOF resolution, once the state machine has consumed what it can.
        if conn.eof && !conn.close_after_flush && !conn.dead {
            match conn.phase {
                Phase::AwaitReply => conn.close_after_flush = true,
                Phase::Ingest(_) => {
                    self.fail_ingest(
                        conn,
                        "wire stream closed before its end-of-stream frame".to_string(),
                    );
                    progress = true;
                }
                Phase::Text => {
                    if conn.inbuf.is_empty() {
                        if conn.outbuf.is_empty() {
                            conn.dead = true;
                            progress = true;
                        } else {
                            conn.close_after_flush = true;
                        }
                    } else {
                        // A final line the peer never newline-terminated.
                        let line = std::mem::take(&mut conn.inbuf);
                        let line = String::from_utf8_lossy(&line).to_string();
                        self.handle_command(conn, &line)?;
                        conn.close_after_flush = true;
                        progress = true;
                    }
                }
            }
        }

        // Idle timeout (never while a reply is owed — that wait is ours).
        if let Some(t) = timeout {
            if !conn.dead
                && !matches!(conn.phase, Phase::AwaitReply)
                && now.duration_since(conn.last_activity) > t
            {
                let idle_ms = now.duration_since(conn.last_activity).as_millis() as u64;
                self.config
                    .emit(&ServeEvent::ConnectionTimedOut { idle_ms });
                if matches!(conn.phase, Phase::Ingest(_)) {
                    self.fail_ingest(conn, format!("client idle for {idle_ms}ms mid-stream"));
                } else {
                    conn.dead = true;
                }
                progress = true;
            }
        }

        Ok(progress)
    }

    /// Run the request state machine over whatever `inbuf` holds.
    fn advance(&mut self, conn: &mut Conn) -> Result<bool, ServeError> {
        let mut progress = false;
        loop {
            let act = match &mut conn.phase {
                Phase::Text => {
                    if conn.close_after_flush {
                        Act::Wait
                    } else if conn.inbuf.len() >= WIRE_MAGIC.len()
                        && conn.inbuf[..WIRE_MAGIC.len()] == WIRE_MAGIC
                    {
                        Act::StartIngest
                    } else if let Some(pos) = conn.inbuf.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = conn.inbuf.drain(..=pos).collect();
                        Act::Command(String::from_utf8_lossy(&line[..pos]).to_string())
                    } else if conn.inbuf.len() > MAX_COMMAND_BYTES {
                        Act::Oversized
                    } else {
                        Act::Wait
                    }
                }
                Phase::Ingest(decoder) => {
                    let consumed = decoder.feed(&conn.inbuf);
                    if consumed > 0 {
                        conn.inbuf.drain(..consumed);
                        progress = true;
                    }
                    if decoder.drain_into(&mut conn.batch) > 0 {
                        progress = true;
                    }
                    if let Some(e) = decoder.take_error() {
                        Act::StreamError(e.to_string())
                    } else if decoder.finished() {
                        Act::StreamEnd
                    } else {
                        Act::StreamFlow
                    }
                }
                Phase::AwaitReply => Act::Wait,
            };
            match act {
                Act::Wait => break,
                Act::StartIngest => {
                    conn.phase = Phase::Ingest(Box::new(
                        FrameDecoder::new().with_expected_domain(self.domain),
                    ));
                    progress = true;
                }
                Act::Command(line) => {
                    self.handle_command(conn, &line)?;
                    progress = true;
                }
                Act::Oversized => {
                    self.reply(conn, &Response::Err("command line too long".into()));
                    conn.inbuf.clear();
                    conn.close_after_flush = true;
                    progress = true;
                    break;
                }
                Act::StreamError(reason) => {
                    self.fail_ingest(conn, reason);
                    progress = true;
                    break;
                }
                Act::StreamEnd => {
                    self.dispatch_batch(conn);
                    self.send(conn.worker, WorkerMsg::End { conn: conn.id });
                    conn.phase = Phase::AwaitReply;
                    progress = true;
                    break;
                }
                Act::StreamFlow => {
                    if conn.batch.len() >= self.dispatch_at {
                        self.dispatch_batch(conn);
                        progress = true;
                    }
                    break;
                }
            }
        }
        Ok(progress)
    }

    /// Answer one command line on the reactor thread.  Queries fold the
    /// shards first: "published state" means *everything decoded and
    /// acknowledged so far*, exactly as the pre-reactor server answered
    /// from its single serving sketch.
    fn handle_command(&mut self, conn: &mut Conn, line: &str) -> Result<(), ServeError> {
        match Command::parse(line) {
            Ok(Command::Est { function }) => {
                self.flush_serving_state()?;
                let estimate = match &function {
                    None => Some(self.coordinator.estimate()),
                    Some(name) => self.coordinator.estimate_named(name),
                };
                match estimate {
                    Some(value) => self.reply(
                        conn,
                        &Response::Est {
                            bits: value.to_bits(),
                        },
                    ),
                    None => {
                        // A well-formed query for a function the registry
                        // does not hold: a typed refusal, but the line
                        // framing is intact — the connection stays usable
                        // (`FUNCS` tells the client what is registered).
                        let name = function.expect("bare EST always answers");
                        self.reply(conn, &Response::Err(format!("unknown function {name:?}")));
                    }
                }
            }
            Ok(Command::Funcs) => {
                // Names are registration-time configuration, not absorbed
                // state: no shard flush needed.
                self.reply(conn, &Response::Funcs(self.coordinator.function_names()));
            }
            Ok(Command::Count) => {
                self.flush_serving_state()?;
                self.reply(conn, &Response::Count(self.coordinator.durable_count()));
            }
            Ok(Command::Quit) => {
                self.reply(conn, &Response::Bye);
                conn.close_after_flush = true;
                self.draining = true;
            }
            Err(e) => {
                self.reply(conn, &Response::Err(e.to_string()));
                conn.close_after_flush = true;
            }
        }
        Ok(())
    }

    /// Fold every worker shard into the published serving state.
    fn flush_serving_state(&self) -> Result<(), ServeError> {
        for shard in self.shards {
            flush_shard(shard, self.prototype, self.coordinator)?;
        }
        Ok(())
    }

    /// A stream died on the reactor's side of the fence (decode error,
    /// truncation, idle timeout): ship the decoded remainder plus the
    /// failure to the worker, which resolves it per policy and replies.
    fn fail_ingest(&mut self, conn: &mut Conn, reason: String) {
        self.config.emit(&ServeEvent::StreamFailed {
            reason: reason.clone(),
        });
        self.dispatch_batch(conn);
        self.send(
            conn.worker,
            WorkerMsg::Fail {
                conn: conn.id,
                reason,
            },
        );
        conn.phase = Phase::AwaitReply;
        conn.close_after_flush = true;
    }

    /// The connection itself died (I/O error): no reply is deliverable,
    /// but the worker still needs the failure for policy + bookkeeping.
    fn abort_conn(&mut self, conn: &mut Conn) {
        if matches!(conn.phase, Phase::Ingest(_)) {
            let reason = "connection lost mid-stream".to_string();
            self.config.emit(&ServeEvent::StreamFailed {
                reason: reason.clone(),
            });
            self.dispatch_batch(conn);
            self.send(
                conn.worker,
                WorkerMsg::Fail {
                    conn: conn.id,
                    reason,
                },
            );
        }
        conn.dead = true;
    }

    fn dispatch_batch(&self, conn: &mut Conn) {
        if conn.batch.is_empty() {
            return;
        }
        let updates = std::mem::take(&mut conn.batch);
        self.send(
            conn.worker,
            WorkerMsg::Batch {
                conn: conn.id,
                updates,
            },
        );
    }

    /// Blocking send: a full worker queue backpressures the reactor (and
    /// through unread sockets, the clients) instead of growing a buffer.
    /// Workers never wait on the reactor, so this cannot deadlock.
    fn send(&self, worker: usize, msg: WorkerMsg) {
        // An Err means the worker is gone, which only happens during
        // crash-point shutdown; the message's stream dies with the server.
        let _ = self.txs[worker].send(msg);
    }

    fn reply(&self, conn: &mut Conn, response: &Response) {
        conn.outbuf
            .extend_from_slice(response.to_string().as_bytes());
        conn.outbuf.push(b'\n');
    }
}
