//! The text point-query protocol served next to framed ingest streams.
//!
//! One TCP connection carries either a framed wire stream (recognized by
//! the 4-byte wire magic) or a single ASCII command line.  This module is
//! the command/response grammar — parsing and formatting live in one
//! place, unit-tested, instead of being scattered through a serving loop:
//!
//! | client sends | server replies                                         |
//! |--------------|--------------------------------------------------------|
//! | `EST\n`      | `EST <f64-bits> <estimate>\n`                          |
//! | `COUNT\n`    | `COUNT <durable-count>\n`                              |
//! | `QUIT\n`     | `BYE\n`, then the server shuts down cleanly            |
//!
//! A completed ingest stream is acknowledged with `OK <durable-count>\n`;
//! protocol violations are answered with `ERR <reason>\n`.  A connection
//! refused by load shedding (the server is at its `max_connections` cap)
//! receives `BUSY <max-connections>\n` and is closed — a typed refusal the
//! client can retry on, never a hung accept queue.  The estimate reply
//! carries both the exact bit pattern (`f64::to_bits`, the form the
//! bit-exactness proofs compare) and the human-readable value.

use std::fmt;

/// A parsed client command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Query the current g-SUM estimate of the serving state.
    Est,
    /// Query the durable update count (the offset-replay contract: after a
    /// crash, an offset-replay client resends its stream from here).
    Count,
    /// Shut the server down cleanly (final checkpoint, then exit).
    Quit,
}

/// A protocol violation: a command or response line that does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The command line is not one of `EST` / `COUNT` / `QUIT`.
    UnknownCommand(String),
    /// A response line does not match the reply grammar.
    MalformedResponse(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownCommand(line) => write!(f, "unknown command {line:?}"),
            ProtocolError::MalformedResponse(line) => write!(f, "malformed response {line:?}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl Command {
    /// Parse a command line (surrounding whitespace and the trailing
    /// newline are ignored).
    pub fn parse(line: &str) -> Result<Self, ProtocolError> {
        match line.trim() {
            "EST" => Ok(Command::Est),
            "COUNT" => Ok(Command::Count),
            "QUIT" => Ok(Command::Quit),
            other => Err(ProtocolError::UnknownCommand(other.to_string())),
        }
    }

    /// The wire form of the command (no trailing newline).
    pub fn as_str(&self) -> &'static str {
        match self {
            Command::Est => "EST",
            Command::Count => "COUNT",
            Command::Quit => "QUIT",
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A server reply line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `EST <bits> <value>` — the current estimate, bit pattern first.
    Est {
        /// `estimate.to_bits()` — the exact representation bit-exactness
        /// assertions compare.
        bits: u64,
    },
    /// `COUNT <durable>` — the durable update count.
    Count(u64),
    /// `OK <durable>` — a framed stream was ingested through its
    /// end-of-stream frame; the server's durable count afterwards.
    Ok(u64),
    /// `BYE` — clean-shutdown acknowledgement to `QUIT`.
    Bye,
    /// `BUSY <max-connections>` — the connection was load-shed: the server
    /// is at its connection cap.  Nothing was ingested; retry later.
    Busy(u64),
    /// `ERR <reason>` — the request failed.
    Err(String),
}

impl Response {
    /// The estimate a parsed `EST` reply carries (reconstructed from the
    /// exact bit pattern, not the lossy decimal rendering).
    pub fn estimate(&self) -> Option<f64> {
        match self {
            Response::Est { bits } => Some(f64::from_bits(*bits)),
            _ => None,
        }
    }

    /// Parse a response line (surrounding whitespace ignored).
    pub fn parse(line: &str) -> Result<Self, ProtocolError> {
        let malformed = || ProtocolError::MalformedResponse(line.trim().to_string());
        let trimmed = line.trim();
        if trimmed == "BYE" {
            return Ok(Response::Bye);
        }
        if let Some(reason) = trimmed.strip_prefix("ERR ") {
            return Ok(Response::Err(reason.to_string()));
        }
        if let Some(rest) = trimmed.strip_prefix("EST ") {
            let bits = rest
                .split_whitespace()
                .next()
                .and_then(|w| w.parse::<u64>().ok())
                .ok_or_else(malformed)?;
            return Ok(Response::Est { bits });
        }
        if let Some(rest) = trimmed.strip_prefix("COUNT ") {
            return rest.parse().map(Response::Count).map_err(|_| malformed());
        }
        if let Some(rest) = trimmed.strip_prefix("OK ") {
            return rest.parse().map(Response::Ok).map_err(|_| malformed());
        }
        if let Some(rest) = trimmed.strip_prefix("BUSY ") {
            return rest.parse().map(Response::Busy).map_err(|_| malformed());
        }
        Err(malformed())
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Est { bits } => {
                write!(f, "EST {bits} {}", f64::from_bits(*bits))
            }
            Response::Count(n) => write!(f, "COUNT {n}"),
            Response::Ok(n) => write!(f, "OK {n}"),
            Response::Bye => f.write_str("BYE"),
            Response::Busy(max) => write!(f, "BUSY {max}"),
            Response::Err(reason) => write!(f, "ERR {reason}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse_with_whitespace_tolerance() {
        assert_eq!(Command::parse("EST\n"), Ok(Command::Est));
        assert_eq!(Command::parse("  COUNT  "), Ok(Command::Count));
        assert_eq!(Command::parse("QUIT"), Ok(Command::Quit));
        for c in [Command::Est, Command::Count, Command::Quit] {
            assert_eq!(Command::parse(c.as_str()), Ok(c));
            assert_eq!(Command::parse(&c.to_string()), Ok(c));
        }
    }

    #[test]
    fn unknown_commands_are_typed_errors() {
        for bad in ["", "est", "STOP", "EST now", "COUNTER"] {
            assert!(
                matches!(Command::parse(bad), Err(ProtocolError::UnknownCommand(_))),
                "{bad:?} must not parse"
            );
        }
        assert!(ProtocolError::UnknownCommand("STOP".into())
            .to_string()
            .contains("STOP"));
    }

    #[test]
    fn responses_roundtrip_through_their_wire_form() {
        let est = Response::Est {
            bits: 4_611_686_018_427_387_904, // 2.0
        };
        let cases = [
            est.clone(),
            Response::Count(0),
            Response::Count(u64::MAX),
            Response::Ok(9_000),
            Response::Bye,
            Response::Busy(64),
            Response::Err("stream declares domain 8 but the receiver serves domain 64".into()),
        ];
        for case in cases {
            let line = case.to_string();
            assert_eq!(Response::parse(&line), Ok(case.clone()), "line {line:?}");
            assert_eq!(Response::parse(&format!("{line}\n")), Ok(case));
        }
        assert_eq!(est.estimate(), Some(2.0));
        assert_eq!(Response::Bye.estimate(), None);
    }

    #[test]
    fn est_reply_preserves_the_exact_bit_pattern() {
        // A value whose decimal rendering is lossy: the bits column is the
        // authoritative channel.
        let value = 0.1f64 + 0.2f64;
        let resp = Response::Est {
            bits: value.to_bits(),
        };
        let parsed = Response::parse(&resp.to_string()).unwrap();
        assert_eq!(parsed.estimate().unwrap().to_bits(), value.to_bits());
    }

    #[test]
    fn malformed_responses_are_typed_errors() {
        for bad in [
            "EST",
            "EST x y",
            "COUNT ten",
            "OK",
            "NOPE 3",
            "BYEBYE",
            "BUSY",
            "BUSY no",
        ] {
            assert!(
                matches!(
                    Response::parse(bad),
                    Err(ProtocolError::MalformedResponse(_))
                ),
                "{bad:?} must not parse"
            );
        }
    }
}
