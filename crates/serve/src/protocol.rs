//! The text point-query protocol served next to framed ingest streams.
//!
//! One TCP connection carries either a framed wire stream (recognized by
//! the 4-byte wire magic) or a single ASCII command line.  This module is
//! the command/response grammar — parsing and formatting live in one
//! place, unit-tested, instead of being scattered through a serving loop:
//!
//! | client sends        | server replies                                  |
//! |---------------------|-------------------------------------------------|
//! | `EST\n`             | `EST <f64-bits> <estimate>\n` (default function)|
//! | `EST <function>\n`  | `EST <f64-bits> <estimate>\n` for that function |
//! | `FUNCS\n`           | `FUNCS <name>\|<name>\|…\n`                     |
//! | `COUNT\n`           | `COUNT <durable-count>\n`                       |
//! | `QUIT\n`            | `BYE\n`, then the server shuts down cleanly     |
//!
//! The `EST` argument is the rest of the line (function names such as
//! `min(x, 100)` contain spaces), and the `FUNCS` reply separates names
//! with `|` for the same reason.  A completed ingest stream is
//! acknowledged with `OK <durable-count>\n`; protocol violations are
//! answered with `ERR <reason>\n`.  A connection refused by load shedding
//! (the server is at its `max_connections` cap) receives
//! `BUSY <max-connections>\n` and is closed — a typed refusal the client
//! can retry on, never a hung accept queue.  The estimate reply carries
//! both the exact bit pattern (`f64::to_bits`, the form the bit-exactness
//! proofs compare) and the human-readable value.

use std::fmt;

/// Separator used in the `FUNCS` reply: function names contain spaces and
/// commas (`min(x, 100)`), so neither can delimit the list.
pub const FUNCS_SEPARATOR: char = '|';

/// A parsed client command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Query the current g-SUM estimate of the serving state.  `function`
    /// selects a registered estimator by name; `None` asks for the
    /// server's default function.
    Est {
        /// Registered function name (the rest of the command line), or
        /// `None` for the default estimator.
        function: Option<String>,
    },
    /// List the registered function names (first = default).
    Funcs,
    /// Query the durable update count (the offset-replay contract: after a
    /// crash, an offset-replay client resends its stream from here).
    Count,
    /// Shut the server down cleanly (final checkpoint, then exit).
    Quit,
}

impl Command {
    /// `EST` with the default function — the pre-registry query form.
    pub fn est() -> Self {
        Command::Est { function: None }
    }

    /// `EST <function>` for a named estimator.
    pub fn est_named(function: impl Into<String>) -> Self {
        Command::Est {
            function: Some(function.into()),
        }
    }
}

/// A protocol violation: a command or response line that does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The command verb is not one of `EST` / `FUNCS` / `COUNT` / `QUIT`.
    UnknownCommand(String),
    /// The verb is known but its argument list is wrong (e.g. `COUNT 5`:
    /// `COUNT` takes no arguments).
    BadArguments {
        /// The recognized command verb.
        verb: &'static str,
        /// The offending argument text.
        arguments: String,
    },
    /// A response line does not match the reply grammar.
    MalformedResponse(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownCommand(line) => write!(f, "unknown command {line:?}"),
            ProtocolError::BadArguments { verb, arguments } => {
                write!(f, "bad arguments for {verb}: {arguments:?}")
            }
            ProtocolError::MalformedResponse(line) => write!(f, "malformed response {line:?}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl Command {
    /// Parse a command line (surrounding whitespace and the trailing
    /// newline are ignored).  Everything after `EST ` is the function
    /// name, verbatim — names like `min(x, 100)` contain spaces.
    pub fn parse(line: &str) -> Result<Self, ProtocolError> {
        let trimmed = line.trim();
        let (verb, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((verb, rest)) => (verb, rest.trim()),
            None => (trimmed, ""),
        };
        let no_arguments = |verb: &'static str, cmd: Command| {
            if rest.is_empty() {
                Ok(cmd)
            } else {
                Err(ProtocolError::BadArguments {
                    verb,
                    arguments: rest.to_string(),
                })
            }
        };
        match verb {
            "EST" => Ok(Command::Est {
                function: (!rest.is_empty()).then(|| rest.to_string()),
            }),
            "FUNCS" => no_arguments("FUNCS", Command::Funcs),
            "COUNT" => no_arguments("COUNT", Command::Count),
            "QUIT" => no_arguments("QUIT", Command::Quit),
            _ => Err(ProtocolError::UnknownCommand(trimmed.to_string())),
        }
    }
}

impl fmt::Display for Command {
    /// The wire form of the command (no trailing newline).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Est { function: None } => f.write_str("EST"),
            Command::Est {
                function: Some(name),
            } => write!(f, "EST {name}"),
            Command::Funcs => f.write_str("FUNCS"),
            Command::Count => f.write_str("COUNT"),
            Command::Quit => f.write_str("QUIT"),
        }
    }
}

/// A server reply line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `EST <bits> <value>` — the current estimate, bit pattern first.
    Est {
        /// `estimate.to_bits()` — the exact representation bit-exactness
        /// assertions compare.
        bits: u64,
    },
    /// `FUNCS <name>|<name>|…` — the registered function names, default
    /// first.
    Funcs(Vec<String>),
    /// `COUNT <durable>` — the durable update count.
    Count(u64),
    /// `OK <durable>` — a framed stream was ingested through its
    /// end-of-stream frame; the server's durable count afterwards.
    Ok(u64),
    /// `BYE` — clean-shutdown acknowledgement to `QUIT`.
    Bye,
    /// `BUSY <max-connections>` — the connection was load-shed: the server
    /// is at its connection cap.  Nothing was ingested; retry later.
    Busy(u64),
    /// `ERR <reason>` — the request failed.
    Err(String),
}

impl Response {
    /// The estimate a parsed `EST` reply carries (reconstructed from the
    /// exact bit pattern, not the lossy decimal rendering).
    pub fn estimate(&self) -> Option<f64> {
        match self {
            Response::Est { bits } => Some(f64::from_bits(*bits)),
            _ => None,
        }
    }

    /// Parse a response line (surrounding whitespace ignored).
    pub fn parse(line: &str) -> Result<Self, ProtocolError> {
        let malformed = || ProtocolError::MalformedResponse(line.trim().to_string());
        let trimmed = line.trim();
        if trimmed == "BYE" {
            return Ok(Response::Bye);
        }
        if trimmed == "FUNCS" {
            return Ok(Response::Funcs(Vec::new()));
        }
        if let Some(reason) = trimmed.strip_prefix("ERR ") {
            return Ok(Response::Err(reason.to_string()));
        }
        if let Some(rest) = trimmed.strip_prefix("FUNCS ") {
            return Ok(Response::Funcs(
                rest.split(FUNCS_SEPARATOR).map(str::to_string).collect(),
            ));
        }
        if let Some(rest) = trimmed.strip_prefix("EST ") {
            let bits = rest
                .split_whitespace()
                .next()
                .and_then(|w| w.parse::<u64>().ok())
                .ok_or_else(malformed)?;
            return Ok(Response::Est { bits });
        }
        if let Some(rest) = trimmed.strip_prefix("COUNT ") {
            return rest.parse().map(Response::Count).map_err(|_| malformed());
        }
        if let Some(rest) = trimmed.strip_prefix("OK ") {
            return rest.parse().map(Response::Ok).map_err(|_| malformed());
        }
        if let Some(rest) = trimmed.strip_prefix("BUSY ") {
            return rest.parse().map(Response::Busy).map_err(|_| malformed());
        }
        Err(malformed())
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Est { bits } => {
                write!(f, "EST {bits} {}", f64::from_bits(*bits))
            }
            Response::Funcs(names) => {
                f.write_str("FUNCS")?;
                for (i, name) in names.iter().enumerate() {
                    let sep = if i == 0 { ' ' } else { FUNCS_SEPARATOR };
                    write!(f, "{sep}{name}")?;
                }
                Ok(())
            }
            Response::Count(n) => write!(f, "COUNT {n}"),
            Response::Ok(n) => write!(f, "OK {n}"),
            Response::Bye => f.write_str("BYE"),
            Response::Busy(max) => write!(f, "BUSY {max}"),
            Response::Err(reason) => write!(f, "ERR {reason}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse_with_whitespace_tolerance() {
        assert_eq!(Command::parse("EST\n"), Ok(Command::est()));
        assert_eq!(Command::parse("  COUNT  "), Ok(Command::Count));
        assert_eq!(Command::parse("QUIT"), Ok(Command::Quit));
        assert_eq!(Command::parse("FUNCS\n"), Ok(Command::Funcs));
        for c in [
            Command::est(),
            Command::est_named("x^2"),
            Command::est_named("min(x, 100)"),
            Command::Funcs,
            Command::Count,
            Command::Quit,
        ] {
            assert_eq!(Command::parse(&c.to_string()), Ok(c));
        }
    }

    #[test]
    fn est_takes_the_rest_of_the_line_as_the_function_name() {
        assert_eq!(Command::parse("EST x^2"), Ok(Command::est_named("x^2")));
        assert_eq!(
            Command::parse("EST min(x, 100)\n"),
            Ok(Command::est_named("min(x, 100)")),
        );
        // Interior whitespace is preserved; surrounding whitespace is not.
        assert_eq!(
            Command::parse("  EST   (2+sin x)x^2  "),
            Ok(Command::est_named("(2+sin x)x^2")),
        );
    }

    #[test]
    fn unknown_commands_are_typed_errors() {
        for bad in ["", "est", "STOP", "COUNTER", "FUNC"] {
            assert!(
                matches!(Command::parse(bad), Err(ProtocolError::UnknownCommand(_))),
                "{bad:?} must not parse"
            );
        }
        assert!(ProtocolError::UnknownCommand("STOP".into())
            .to_string()
            .contains("STOP"));
    }

    #[test]
    fn known_verbs_with_stray_arguments_are_bad_arguments() {
        for (line, verb) in [
            ("COUNT 5", "COUNT"),
            ("QUIT now", "QUIT"),
            ("FUNCS all", "FUNCS"),
        ] {
            match Command::parse(line) {
                Err(ProtocolError::BadArguments { verb: v, .. }) => assert_eq!(v, verb),
                other => panic!("{line:?} parsed to {other:?}"),
            }
        }
        let err = Command::parse("COUNT 5").unwrap_err();
        assert!(err.to_string().contains("COUNT"));
        assert!(err.to_string().contains('5'));
        // ...and they are distinct from unknown verbs.
        assert!(matches!(
            Command::parse("STOP 5"),
            Err(ProtocolError::UnknownCommand(_))
        ));
    }

    #[test]
    fn responses_roundtrip_through_their_wire_form() {
        let est = Response::Est {
            bits: 4_611_686_018_427_387_904, // 2.0
        };
        let cases = [
            est.clone(),
            Response::Funcs(vec!["x^2".into()]),
            Response::Funcs(vec!["x^2".into(), "min(x, 100)".into(), "ln(1+x)".into()]),
            Response::Count(0),
            Response::Count(u64::MAX),
            Response::Ok(9_000),
            Response::Bye,
            Response::Busy(64),
            Response::Err("stream declares domain 8 but the receiver serves domain 64".into()),
            Response::Err("unknown function \"x^9\"".into()),
        ];
        for case in cases {
            let line = case.to_string();
            assert_eq!(Response::parse(&line), Ok(case.clone()), "line {line:?}");
            assert_eq!(Response::parse(&format!("{line}\n")), Ok(case));
        }
        assert_eq!(est.estimate(), Some(2.0));
        assert_eq!(Response::Bye.estimate(), None);
    }

    #[test]
    fn funcs_reply_survives_names_with_spaces_and_commas() {
        let names = vec![
            "min(x, 100)".to_string(),
            "(2+sin x)x^2".to_string(),
            "x^2".to_string(),
        ];
        let reply = Response::Funcs(names.clone());
        assert_eq!(reply.to_string(), "FUNCS min(x, 100)|(2+sin x)x^2|x^2");
        assert_eq!(Response::parse(&reply.to_string()), Ok(reply));
        assert_eq!(Response::parse("FUNCS"), Ok(Response::Funcs(Vec::new())));
    }

    #[test]
    fn est_reply_preserves_the_exact_bit_pattern() {
        // A value whose decimal rendering is lossy: the bits column is the
        // authoritative channel.
        let value = 0.1f64 + 0.2f64;
        let resp = Response::Est {
            bits: value.to_bits(),
        };
        let parsed = Response::parse(&resp.to_string()).unwrap();
        assert_eq!(parsed.estimate().unwrap().to_bits(), value.to_bits());
    }

    #[test]
    fn malformed_responses_are_typed_errors() {
        for bad in [
            "EST",
            "EST x y",
            "COUNT ten",
            "OK",
            "NOPE 3",
            "BYEBYE",
            "BUSY",
            "BUSY no",
        ] {
            assert!(
                matches!(
                    Response::parse(bad),
                    Err(ProtocolError::MalformedResponse(_))
                ),
                "{bad:?} must not parse"
            );
        }
    }
}
