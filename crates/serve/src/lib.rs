//! # gsum-serve
//!
//! The serving layer: a concurrent multi-client TCP front-end over the
//! workspace's linear sketches.
//!
//! The paper's sketches are **linear**, so independently-built per-client
//! states merge into exactly the single-threaded state — the property the
//! sharded ingest (PR 1/2), the checkpoint layer (PR 3) and the pipelined
//! wire ingest (PR 4) all exploit.  This crate turns that property into a
//! serving topology (the standard mergeable-sketch fan-in, cf. the
//! universal-sketch line of work): a single **reactor** thread multiplexes
//! every connection over a non-blocking listener, decoding framed streams
//! incrementally through the resumable
//! [`FrameDecoder`](gsum_streams::FrameDecoder), and fans decoded batches
//! out to a **bounded pool of fold workers** whose per-worker shard
//! sketches fold into the long-lived serving state on query, checkpoint
//! cadence, or stream completion — in any order, with a **bit-identical**
//! result (integer-valued `f64` counters add exactly;
//! `tests/serve_fan_in.rs` proptests the fan-in permutation invariance,
//! `tests/serve_reactor.rs` proptests sharded serving ≡ single-threaded
//! concat replay — load shedding included — and
//! `examples/multi_client.rs` demonstrates it over real concurrent
//! sockets).
//!
//! The pieces:
//!
//! * [`GsumServer`] / [`ServeConfig`] — the TCP serving loop: reactor-
//!   multiplexed framed ingest over a bounded worker pool,
//!   `EST`/`EST <function>`/`FUNCS`/`COUNT`/`QUIT` point queries, `BUSY`
//!   load shedding past the connection cap, clean shutdown with a final
//!   snapshot.
//! * [`ServableSubstrate`] / [`ServableSketch`] — the served-state
//!   contract, split along the ingest/query seam: the substrate half is
//!   everything fan-in needs (push, merge, checkpoint — never a G
//!   evaluation), the sketch half answers named estimate queries.
//! * [`SketchRegistry`] — many named G functions served from one ingest
//!   path: estimators registered with an identical configuration share
//!   one substrate sketch, every decoded batch is routed to each
//!   substrate exactly once, and per-function estimates and checkpoint
//!   bytes are bit-identical to single-function replays
//!   (`tests/serve_registry.rs` proptests this over real sockets).
//! * [`ServeEvent`] / [`ServeConfig::with_observer`] — structured
//!   serving-loop telemetry (sheds, timeouts, stream failures) through a
//!   pluggable callback instead of stderr.
//! * [`MergeCoordinator`] — the transport-free fan-in core: fold live
//!   states, fold [`ParkedState`](gsum_streams::ParkedState) checkpoint
//!   bytes from another machine, drive in-memory streams in tests.
//! * [`ServePolicy`] — what a stream that dies mid-frame keeps: nothing
//!   ([`DiscardPartial`](ServePolicy::DiscardPartial), the no-double-count
//!   default) or its completed slices
//!   ([`MergeCompleted`](ServePolicy::MergeCompleted), the offset-replay
//!   contract).
//! * [`CheckpointEnvelope`] — serving-state bytes bound to the durable
//!   update count, published atomically (temp-file + rename).
//! * [`protocol`] — the text query grammar, parsed and formatted in one
//!   unit-tested place.
//! * [`ServeError`] — the typed error taxonomy; stream-level failures are
//!   policy events reported per stream ([`StreamOutcome`]), never `Err`s.

pub mod checkpoint_envelope;
pub mod coordinator;
pub mod error;
pub mod observer;
pub mod policy;
pub mod protocol;
mod reactor;
pub mod registry;
pub mod server;

pub use checkpoint_envelope::{CheckpointEnvelope, ENVELOPE_MAGIC, ENVELOPE_VERSION};
pub use coordinator::{FoldOutcome, MergeCoordinator, ServeStats, StreamOutcome};
pub use error::{ServeConfigError, ServeError};
pub use observer::{ServeEvent, ServeObserver};
pub use policy::ServePolicy;
pub use protocol::{Command, ProtocolError, Response};
pub use registry::{RegistryError, SketchRegistry};
pub use server::{GsumServer, ServeConfig, ServeSummary};

use gsum_core::OnePassGSumSketch;
use gsum_gfunc::{FunctionCodec, GFunction};
use gsum_streams::{Checkpoint, MergeableSketch, StreamSink};

/// The ingest-facing half of a servable state: push-ingestible, linear
/// (mergeable across per-client clones), and checkpointable (for durable
/// snapshots and parked-state fan-in).
///
/// This is everything the fan-in machinery — the reactor's shards, the
/// [`MergeCoordinator`]'s folds, the [`CheckpointEnvelope`] snapshots —
/// needs; none of it ever evaluates a G function.  Query-facing estimation
/// lives in the [`ServableSketch`] extension.
pub trait ServableSubstrate:
    StreamSink + MergeableSketch + Checkpoint + Clone + Send + Sync
{
    /// The domain size the state serves; incoming wire streams must
    /// declare exactly this domain (validated at header decode).
    fn domain(&self) -> u64;
}

/// The query-facing half: a [`ServableSubstrate`] that answers estimate
/// queries for one or more named G functions.
///
/// Implemented for [`OnePassGSumSketch`] (one function) and
/// [`SketchRegistry`] (any number of registered functions over shared
/// substrates) out of the box; any long-lived estimator state satisfying
/// the bounds can implement it and be served unchanged.
pub trait ServableSketch: ServableSubstrate {
    /// The default estimate of the absorbed prefix (the first — for a
    /// single-function sketch, the only — registered function).
    fn estimate(&self) -> f64;

    /// The estimate under the named function, or `None` if no estimator
    /// with that name is registered.  The default answers exactly the
    /// names in [`function_names`](Self::function_names) with the default
    /// estimate — correct for any single-function state.
    fn estimate_named(&self, name: &str) -> Option<f64> {
        self.function_names()
            .iter()
            .any(|n| n == name)
            .then(|| self.estimate())
    }

    /// The names this state answers [`estimate_named`](Self::estimate_named)
    /// for, default first.  This is what the `FUNCS` protocol reply lists.
    fn function_names(&self) -> Vec<String>;
}

impl<G> ServableSubstrate for OnePassGSumSketch<G>
where
    G: GFunction + Clone + FunctionCodec + Send + Sync,
{
    fn domain(&self) -> u64 {
        OnePassGSumSketch::domain(self)
    }
}

impl<G> ServableSketch for OnePassGSumSketch<G>
where
    G: GFunction + Clone + FunctionCodec + Send + Sync,
{
    fn estimate(&self) -> f64 {
        OnePassGSumSketch::estimate(self)
    }

    fn function_names(&self) -> Vec<String> {
        vec![self.function().name()]
    }
}
