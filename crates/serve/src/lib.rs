//! # gsum-serve
//!
//! The serving layer: a concurrent multi-client TCP front-end over the
//! workspace's linear sketches.
//!
//! The paper's sketches are **linear**, so independently-built per-client
//! states merge into exactly the single-threaded state — the property the
//! sharded ingest (PR 1/2), the checkpoint layer (PR 3) and the pipelined
//! wire ingest (PR 4) all exploit.  This crate turns that property into a
//! serving topology (the standard mergeable-sketch fan-in, cf. the
//! universal-sketch line of work): a single **reactor** thread multiplexes
//! every connection over a non-blocking listener, decoding framed streams
//! incrementally through the resumable
//! [`FrameDecoder`](gsum_streams::FrameDecoder), and fans decoded batches
//! out to a **bounded pool of fold workers** whose per-worker shard
//! sketches fold into the long-lived serving state on query, checkpoint
//! cadence, or stream completion — in any order, with a **bit-identical**
//! result (integer-valued `f64` counters add exactly;
//! `tests/serve_fan_in.rs` proptests the fan-in permutation invariance,
//! `tests/serve_reactor.rs` proptests sharded serving ≡ single-threaded
//! concat replay — load shedding included — and
//! `examples/multi_client.rs` demonstrates it over real concurrent
//! sockets).
//!
//! The pieces:
//!
//! * [`GsumServer`] / [`ServeConfig`] — the TCP serving loop: reactor-
//!   multiplexed framed ingest over a bounded worker pool,
//!   `EST`/`COUNT`/`QUIT` point queries, `BUSY` load shedding past the
//!   connection cap, clean shutdown with a final snapshot.
//! * [`ServeEvent`] / [`ServeConfig::with_observer`] — structured
//!   serving-loop telemetry (sheds, timeouts, stream failures) through a
//!   pluggable callback instead of stderr.
//! * [`MergeCoordinator`] — the transport-free fan-in core: fold live
//!   states, fold [`ParkedState`](gsum_streams::ParkedState) checkpoint
//!   bytes from another machine, drive in-memory streams in tests.
//! * [`ServePolicy`] — what a stream that dies mid-frame keeps: nothing
//!   ([`DiscardPartial`](ServePolicy::DiscardPartial), the no-double-count
//!   default) or its completed slices
//!   ([`MergeCompleted`](ServePolicy::MergeCompleted), the offset-replay
//!   contract).
//! * [`CheckpointEnvelope`] — serving-state bytes bound to the durable
//!   update count, published atomically (temp-file + rename).
//! * [`protocol`] — the text query grammar, parsed and formatted in one
//!   unit-tested place.
//! * [`ServeError`] — the typed error taxonomy; stream-level failures are
//!   policy events reported per stream ([`StreamOutcome`]), never `Err`s.

pub mod checkpoint_envelope;
pub mod coordinator;
pub mod error;
pub mod observer;
pub mod policy;
pub mod protocol;
mod reactor;
pub mod server;

pub use checkpoint_envelope::{CheckpointEnvelope, ENVELOPE_MAGIC, ENVELOPE_VERSION};
pub use coordinator::{FoldOutcome, MergeCoordinator, ServeStats, StreamOutcome};
pub use error::{ServeConfigError, ServeError};
pub use observer::{ServeEvent, ServeObserver};
pub use policy::ServePolicy;
pub use protocol::{Command, ProtocolError, Response};
pub use server::{GsumServer, ServeConfig, ServeSummary};

use gsum_core::OnePassGSumSketch;
use gsum_gfunc::{FunctionCodec, GFunction};
use gsum_streams::{Checkpoint, MergeableSketch, StreamSink};

/// A sketch a [`GsumServer`] can serve: push-ingestible, linear (mergeable
/// across per-client clones), checkpointable (for durable snapshots and
/// parked-state fan-in), and queryable for a scalar estimate.
///
/// Implemented for [`OnePassGSumSketch`] out of the box; any long-lived
/// estimator state satisfying the bounds can implement it and be served
/// unchanged.
pub trait ServableSketch: StreamSink + MergeableSketch + Checkpoint + Clone + Send + Sync {
    /// The current estimate of the absorbed prefix.
    fn estimate(&self) -> f64;

    /// The domain size the sketch serves; incoming wire streams must
    /// declare exactly this domain (validated at header decode).
    fn domain(&self) -> u64;
}

impl<G> ServableSketch for OnePassGSumSketch<G>
where
    G: GFunction + Clone + FunctionCodec + Send + Sync,
{
    fn estimate(&self) -> f64 {
        OnePassGSumSketch::estimate(self)
    }

    fn domain(&self) -> u64 {
        OnePassGSumSketch::domain(self)
    }
}
