//! The failure policy for partially-delivered client streams.

/// What the serving state keeps from a client stream that dies before its
/// explicit end-of-stream frame (connection reset, producer crash, a
/// mid-stream decode error).
///
/// Linearity makes both choices exact: every client's contribution is a
/// per-client clone with the serving prototype's seeds, so whatever subset
/// of it the policy folds in, the serving state equals a single-threaded
/// sketch of exactly the kept updates — bit for bit, in any fold order.
///
/// The policies differ in *when* a client's updates become part of the
/// serving state, which is also what decides their fate on failure:
///
/// | policy             | fold granularity        | a dead stream keeps      |
/// |--------------------|-------------------------|--------------------------|
/// | `DiscardPartial`   | whole stream, at its end frame | nothing           |
/// | `MergeCompleted`   | every completed slice   | all completed slices     |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServePolicy {
    /// All-or-nothing streams: a client's updates accumulate in its
    /// per-client sketch and fold into the serving state only when the
    /// end-of-stream frame arrives.  A stream that dies mid-flight is
    /// discarded whole.
    ///
    /// This is the safe default for **at-least-once** producers: a client
    /// that retries its entire stream after a failure can never double-count
    /// updates, because the failed attempt contributed nothing.
    #[default]
    DiscardPartial,
    /// Slice-streaming durability: every completed ingest slice folds into
    /// the serving state immediately, so a stream that dies mid-frame is
    /// merged up to its last completed slice (and the serving state
    /// checkpoints mid-stream — the PR 4 kill/resume contract, where a
    /// single writer replays only the non-durable suffix from the
    /// acknowledged offset).
    ///
    /// Suits **offset-replay** producers (replay from the durable count, not
    /// from zero) and at-most-once producers that never retry; a client that
    /// blindly resends a whole failed stream under this policy would
    /// double-count its completed slices.
    MergeCompleted,
}

impl ServePolicy {
    /// Whether completed slices fold into the serving state while the
    /// stream is still in flight.
    pub fn folds_mid_stream(self) -> bool {
        matches!(self, ServePolicy::MergeCompleted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_no_double_count_policy() {
        assert_eq!(ServePolicy::default(), ServePolicy::DiscardPartial);
        assert!(!ServePolicy::DiscardPartial.folds_mid_stream());
        assert!(ServePolicy::MergeCompleted.folds_mid_stream());
    }
}
