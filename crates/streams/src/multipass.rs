//! Multi-pass driver.
//!
//! The paper distinguishes 1-pass and `p`-pass algorithms (Theorems 2 and 3).
//! Both are exercised through the same trait-based driver: a pass consists of
//! feeding every update in order; the algorithm is told when a pass ends and
//! how many passes remain so a 2-pass algorithm can switch from its
//! CountSketch phase to its exact-tabulation phase.

use crate::stream::TurnstileStream;
use crate::update::Update;

/// A streaming algorithm that uses exactly one pass.
pub trait OnePassAlgorithm {
    /// The output produced after the pass completes.
    type Output;

    /// Process one update.
    fn process(&mut self, update: Update);

    /// Produce the output after the stream has been fully consumed.
    fn finish(self) -> Self::Output;
}

/// A streaming algorithm that uses a fixed number of passes over the stream.
pub trait MultiPassAlgorithm {
    /// The output produced after the final pass completes.
    type Output;

    /// Total number of passes the algorithm requires.
    fn passes(&self) -> usize;

    /// Process one update during pass `pass` (0-indexed).
    fn process(&mut self, pass: usize, update: Update);

    /// Called after pass `pass` completes (0-indexed). The algorithm may
    /// reorganize its state between passes (e.g. fix the candidate set whose
    /// frequencies the second pass will tabulate exactly).
    fn end_pass(&mut self, pass: usize);

    /// Produce the output after the final pass.
    fn finish(self) -> Self::Output;
}

/// Run a one-pass algorithm over a stream.
pub fn run_one_pass<A: OnePassAlgorithm>(mut algo: A, stream: &TurnstileStream) -> A::Output {
    for &u in stream.iter() {
        algo.process(u);
    }
    algo.finish()
}

/// Run a multi-pass algorithm over a stream, replaying the stream once per
/// pass in the original order.
pub fn run_multi_pass<A: MultiPassAlgorithm>(mut algo: A, stream: &TurnstileStream) -> A::Output {
    let passes = algo.passes();
    for pass in 0..passes {
        for &u in stream.iter() {
            algo.process(pass, u);
        }
        algo.end_pass(pass);
    }
    algo.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts total |delta| seen.
    struct AbsSum {
        total: i64,
    }

    impl OnePassAlgorithm for AbsSum {
        type Output = i64;
        fn process(&mut self, update: Update) {
            self.total += update.delta.abs();
        }
        fn finish(self) -> i64 {
            self.total
        }
    }

    /// Two passes: first counts updates, second sums deltas; output is a pair.
    struct TwoPassProbe {
        pass_updates: [usize; 2],
        delta_sum: i64,
        pass_end_calls: Vec<usize>,
    }

    impl MultiPassAlgorithm for TwoPassProbe {
        type Output = (usize, usize, i64, Vec<usize>);
        fn passes(&self) -> usize {
            2
        }
        fn process(&mut self, pass: usize, update: Update) {
            self.pass_updates[pass] += 1;
            if pass == 1 {
                self.delta_sum += update.delta;
            }
        }
        fn end_pass(&mut self, pass: usize) {
            self.pass_end_calls.push(pass);
        }
        fn finish(self) -> Self::Output {
            (
                self.pass_updates[0],
                self.pass_updates[1],
                self.delta_sum,
                self.pass_end_calls,
            )
        }
    }

    fn stream() -> TurnstileStream {
        let mut s = TurnstileStream::new(4);
        s.push_delta(0, 3);
        s.push_delta(1, -2);
        s.push_delta(2, 5);
        s
    }

    #[test]
    fn one_pass_driver_visits_every_update() {
        let out = run_one_pass(AbsSum { total: 0 }, &stream());
        assert_eq!(out, 10);
    }

    #[test]
    fn multi_pass_driver_replays_stream_per_pass() {
        let probe = TwoPassProbe {
            pass_updates: [0, 0],
            delta_sum: 0,
            pass_end_calls: vec![],
        };
        let (p0, p1, sum, ends) = run_multi_pass(probe, &stream());
        assert_eq!(p0, 3);
        assert_eq!(p1, 3);
        assert_eq!(sum, 6);
        assert_eq!(ends, vec![0, 1]);
    }

    #[test]
    fn empty_stream_still_finishes() {
        let s = TurnstileStream::new(4);
        assert_eq!(run_one_pass(AbsSum { total: 0 }, &s), 0);
    }
}
