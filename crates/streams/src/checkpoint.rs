//! Versioned snapshot/restore for sketch state.
//!
//! The paper's algorithms are linear sketches, and linearity means a sketch's
//! entire state is *seeds + counters + phase*: the hash functions are
//! re-derivable from their seeds, the counters are a linear function of the
//! frequency vector, and the only non-linear bit of state (the two-pass
//! algorithms' frozen candidate sets) is a small explicit map.  This module
//! makes that state explicit: the [`Checkpoint`] trait serializes a sketch to
//! a compact little-endian binary format and rehydrates it bit-for-bit, so
//! that
//!
//! * a long ingestion can be stopped and resumed from bytes on disk
//!   ([`crate::ShardedIngest::resume`]),
//! * frozen two-pass state can be redistributed to phase-2 shard workers
//!   ([`crate::ShardedTwoPassCoordinator`]),
//! * a serving deployment can snapshot its queryable state for fault
//!   tolerance.
//!
//! ## Format
//!
//! Every checkpoint starts with the same header:
//!
//! ```text
//! magic   b"ZLCK"          4 bytes
//! version u16 LE           format version (currently 1)
//! kind    u16 LE           state-kind tag (one per checkpointable type)
//! ```
//!
//! followed by a kind-specific payload.  All integers are little-endian;
//! `f64` counters are serialized via [`f64::to_bits`] so restore is
//! bit-exact; sequences are length-prefixed (`u64` count).  Restoring never
//! panics on malformed input: truncated bytes, an unknown magic/version/kind,
//! an unknown hash-backend tag or inconsistent dimensions all surface as
//! [`CheckpointError`]s.

use crate::sink::MergeError;
use std::fmt;
use std::io::{self, Read, Write};

/// The 4-byte magic prefix of every checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"ZLCK";

/// The current checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// State-kind tags, one per checkpointable type.  Append-only: a tag's
/// meaning never changes across versions.
pub mod kind {
    /// [`gsum_hash::RowHasher`].
    pub const ROW_HASHER: u16 = 1;
    /// `gsum_sketch::CountSketch`.
    pub const COUNT_SKETCH: u16 = 2;
    /// `gsum_sketch::CountMinSketch`.
    pub const COUNT_MIN: u16 = 3;
    /// `gsum_sketch::AmsF2Sketch`.
    pub const AMS_F2: u16 = 4;
    /// `gsum_sketch::ExactFrequencies`.
    pub const EXACT_FREQUENCIES: u16 = 5;
    /// `gsum_sketch::SamplingEstimator`.
    pub const SAMPLING: u16 = 6;
    /// `gsum_core::DistCounter`.
    pub const DIST_COUNTER: u16 = 7;
    /// `gsum_core::GnpHeavyHitter`.
    pub const GNP_HEAVY_HITTER: u16 = 8;
    /// `gsum_core::RecursiveSketch` (levels carry their own nested kinds).
    pub const RECURSIVE_SKETCH: u16 = 9;
    /// `gsum_core::OnePassHeavyHitter`.
    pub const ONE_PASS_HEAVY_HITTER: u16 = 10;
    /// `gsum_core::TwoPassHeavyHitter`.
    pub const TWO_PASS_HEAVY_HITTER: u16 = 11;
    /// `gsum_core::OnePassGSumSketch`.
    pub const ONE_PASS_GSUM: u16 = 12;
    /// `gsum_core::TwoPassGSumSketch`.
    pub const TWO_PASS_GSUM: u16 = 13;
    /// `gsum_serve::SketchRegistry` (composite: shared substrates plus the
    /// estimator table).
    pub const SKETCH_REGISTRY: u16 = 14;
}

/// Error raised while saving or restoring a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// An underlying I/O failure (including truncated input: restoring past
    /// the end of the bytes surfaces as `UnexpectedEof`).
    Io(io::Error),
    /// The bytes do not start with the checkpoint magic.
    BadMagic,
    /// The checkpoint was written with a format version this build does not
    /// understand.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The checkpoint holds a different kind of state than the one being
    /// restored (e.g. Count-Min bytes handed to a CountSketch).
    WrongKind {
        /// The kind tag the restoring type expected.
        expected: u16,
        /// The kind tag found in the header.
        found: u16,
    },
    /// The payload is structurally invalid: unknown hash-backend tag,
    /// inconsistent dimensions, counter array of the wrong length, ...
    Corrupt(String),
    /// A merge performed while resuming or coordinating failed (seed, shape
    /// or phase mismatch between the checkpoint and the live state).
    Merge(MergeError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint format version {found} (this build reads {CHECKPOINT_VERSION})"
                )
            }
            CheckpointError::WrongKind { expected, found } => {
                write!(
                    f,
                    "checkpoint holds state kind {found}, expected kind {expected}"
                )
            }
            CheckpointError::Corrupt(reason) => write!(f, "corrupt checkpoint: {reason}"),
            CheckpointError::Merge(e) => write!(f, "checkpoint merge failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Merge(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<MergeError> for CheckpointError {
    fn from(e: MergeError) -> Self {
        CheckpointError::Merge(e)
    }
}

/// Snapshot/restore of a sketch's state.
///
/// The contract is *bit-exactness*: `save` at an arbitrary stream prefix,
/// `restore`, and replay of the suffix must leave the sketch in exactly the
/// state an uninterrupted run reaches — identical counters, identical
/// estimates, identical merge behaviour.  Every estimator state object in
/// the workspace implements this trait; the property tests in
/// `tests/checkpoint_roundtrip.rs` enforce the contract for each of them
/// under both hash backends.
pub trait Checkpoint: Sized {
    /// Serialize the complete state (header + seeds + counters + phase).
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError>;

    /// Rehydrate a state from bytes written by [`save`](Checkpoint::save).
    /// Hash functions are re-derived from their encoded seeds through the
    /// same code path the fresh constructors use.
    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError>;

    /// Convenience: serialize into a fresh byte vector.
    fn to_checkpoint_bytes(&self) -> Result<Vec<u8>, CheckpointError> {
        let mut bytes = Vec::new();
        self.save(&mut bytes)?;
        Ok(bytes)
    }

    /// Convenience: restore from an in-memory byte slice.
    fn from_checkpoint_bytes(mut bytes: &[u8]) -> Result<Self, CheckpointError> {
        Self::restore(&mut bytes)
    }
}

// ---------------------------------------------------------------------------
// Little-endian codec helpers shared by every `Checkpoint` implementation.
// ---------------------------------------------------------------------------

/// Write the common header (magic, format version, state kind).
pub fn write_header(w: &mut impl Write, kind: u16) -> Result<(), CheckpointError> {
    w.write_all(&CHECKPOINT_MAGIC)?;
    write_u16(w, CHECKPOINT_VERSION)?;
    write_u16(w, kind)?;
    Ok(())
}

/// Read and validate the common header, expecting the given state kind.
/// Returns the format version (currently always [`CHECKPOINT_VERSION`]).
pub fn read_header(r: &mut impl Read, expected_kind: u16) -> Result<u16, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = read_u16(r)?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion { found: version });
    }
    let found = read_u16(r)?;
    if found != expected_kind {
        return Err(CheckpointError::WrongKind {
            expected: expected_kind,
            found,
        });
    }
    Ok(version)
}

/// Write a single byte.
pub fn write_u8(w: &mut impl Write, v: u8) -> Result<(), CheckpointError> {
    w.write_all(&[v])?;
    Ok(())
}

/// Read a single byte.
pub fn read_u8(r: &mut impl Read) -> Result<u8, CheckpointError> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

/// Write a `u16` little-endian.
pub fn write_u16(w: &mut impl Write, v: u16) -> Result<(), CheckpointError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

/// Read a `u16` little-endian.
pub fn read_u16(r: &mut impl Read) -> Result<u16, CheckpointError> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

/// Write a `u64` little-endian.
pub fn write_u64(w: &mut impl Write, v: u64) -> Result<(), CheckpointError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

/// Read a `u64` little-endian.
pub fn read_u64(r: &mut impl Read) -> Result<u64, CheckpointError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Write an `i64` little-endian.
pub fn write_i64(w: &mut impl Write, v: i64) -> Result<(), CheckpointError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

/// Read an `i64` little-endian.
pub fn read_i64(r: &mut impl Read) -> Result<i64, CheckpointError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(i64::from_le_bytes(buf))
}

/// Write an `f64` as its bit pattern (restore is bit-exact, NaNs included).
pub fn write_f64(w: &mut impl Write, v: f64) -> Result<(), CheckpointError> {
    write_u64(w, v.to_bits())
}

/// Read an `f64` from its bit pattern.
pub fn read_f64(r: &mut impl Read) -> Result<f64, CheckpointError> {
    Ok(f64::from_bits(read_u64(r)?))
}

/// Write a `usize` as `u64` (checkpoints are portable across word sizes).
pub fn write_len(w: &mut impl Write, v: usize) -> Result<(), CheckpointError> {
    write_u64(w, v as u64)
}

/// Read a length written by [`write_len`], rejecting values that do not fit
/// the platform's `usize`.
pub fn read_len(r: &mut impl Read) -> Result<usize, CheckpointError> {
    let v = read_u64(r)?;
    usize::try_from(v).map_err(|_| CheckpointError::Corrupt(format!("length {v} overflows usize")))
}

/// Read a length and validate it against an expected value derived from the
/// checkpoint's own dimensions (counter arrays, per-row structures, ...).
pub fn read_exact_len(
    r: &mut impl Read,
    expected: usize,
    what: &str,
) -> Result<(), CheckpointError> {
    let len = read_len(r)?;
    if len != expected {
        return Err(CheckpointError::Corrupt(format!(
            "{what}: expected {expected} entries, found {len}"
        )));
    }
    Ok(())
}

/// Write a slice of `f64` counters, length-prefixed.
pub fn write_f64_slice(w: &mut impl Write, values: &[f64]) -> Result<(), CheckpointError> {
    write_len(w, values.len())?;
    for &v in values {
        write_f64(w, v)?;
    }
    Ok(())
}

/// Read a counter array whose length must equal `expected` (derived from the
/// dimensions read earlier — a mismatch means corrupt bytes, not a panic).
pub fn read_f64_counters(
    r: &mut impl Read,
    expected: usize,
    what: &str,
) -> Result<Vec<f64>, CheckpointError> {
    read_exact_len(r, expected, what)?;
    let mut out = Vec::with_capacity(expected.min(1 << 20));
    for _ in 0..expected {
        out.push(read_f64(r)?);
    }
    Ok(out)
}

/// Write a slice of `i64` counters, length-prefixed.
pub fn write_i64_slice(w: &mut impl Write, values: &[i64]) -> Result<(), CheckpointError> {
    write_len(w, values.len())?;
    for &v in values {
        write_i64(w, v)?;
    }
    Ok(())
}

/// Read an `i64` counter array of exactly `expected` entries.
pub fn read_i64_counters(
    r: &mut impl Read,
    expected: usize,
    what: &str,
) -> Result<Vec<i64>, CheckpointError> {
    read_exact_len(r, expected, what)?;
    let mut out = Vec::with_capacity(expected.min(1 << 20));
    for _ in 0..expected {
        out.push(read_i64(r)?);
    }
    Ok(out)
}

/// Write a length-prefixed byte block (e.g. encoded function parameters).
pub fn write_bytes(w: &mut impl Write, bytes: &[u8]) -> Result<(), CheckpointError> {
    write_len(w, bytes.len())?;
    w.write_all(bytes)?;
    Ok(())
}

/// Read a length-prefixed byte block written by [`write_bytes`], rejecting
/// blocks larger than `max` (corrupt lengths must not drive allocation).
pub fn read_bounded_bytes(
    r: &mut impl Read,
    max: usize,
    what: &str,
) -> Result<Vec<u8>, CheckpointError> {
    let len = read_len(r)?;
    if len > max {
        return Err(CheckpointError::Corrupt(format!(
            "{what}: {len}-byte block exceeds the {max}-byte bound"
        )));
    }
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)?;
    Ok(bytes)
}

/// Write a hash backend as its stable tag.
pub fn write_backend(
    w: &mut impl Write,
    backend: gsum_hash::HashBackend,
) -> Result<(), CheckpointError> {
    write_u8(w, backend.tag())
}

/// Read a hash backend tag, failing on unknown tags instead of guessing.
pub fn read_backend(r: &mut impl Read) -> Result<gsum_hash::HashBackend, CheckpointError> {
    let tag = read_u8(r)?;
    gsum_hash::HashBackend::from_tag(tag)
        .ok_or_else(|| CheckpointError::Corrupt(format!("unknown hash-backend tag {tag}")))
}

/// Write an AMS sign family as its stable tag.
pub fn write_sign_family(
    w: &mut impl Write,
    family: gsum_hash::SignFamily,
) -> Result<(), CheckpointError> {
    write_u8(w, family.tag())
}

/// Read a sign-family tag, failing on unknown tags instead of guessing.
pub fn read_sign_family(r: &mut impl Read) -> Result<gsum_hash::SignFamily, CheckpointError> {
    let tag = read_u8(r)?;
    gsum_hash::SignFamily::from_tag(tag)
        .ok_or_else(|| CheckpointError::Corrupt(format!("unknown sign-family tag {tag}")))
}

/// A parked, mergeable sketch state: checkpoint bytes plus the number of
/// updates the state absorbed.
///
/// Linearity means a sketch serialized at any prefix can later be folded
/// into any live sketch built with the same configuration and seeds — the
/// checkpoint bytes *are* a mergeable handle.  `ParkedState` makes that
/// pattern first-class for fan-in topologies: a serving coordinator parks a
/// completed client's state (possibly received from another machine — the
/// bytes travel), and [`merge_into`](Self::merge_into) folds it into the
/// long-lived serving state without the caller juggling restore, merge and
/// error mapping by hand.  The update count rides along so durable-offset
/// accounting survives the park.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParkedState {
    bytes: Vec<u8>,
    updates: u64,
}

impl ParkedState {
    /// Park a sketch state: serialize it and record how many updates it
    /// absorbed.
    pub fn park<S: Checkpoint>(state: &S, updates: u64) -> Result<Self, CheckpointError> {
        Ok(Self {
            bytes: state.to_checkpoint_bytes()?,
            updates,
        })
    }

    /// Reassemble a parked state from bytes that traveled (a socket, disk).
    pub fn from_parts(bytes: Vec<u8>, updates: u64) -> Self {
        Self { bytes, updates }
    }

    /// The checkpoint bytes of the parked state.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of updates the parked state absorbed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Rehydrate the parked sketch.
    pub fn restore<S: Checkpoint>(&self) -> Result<S, CheckpointError> {
        S::from_checkpoint_bytes(&self.bytes)
    }

    /// Fold the parked state into a live sketch.  Fails with the checkpoint
    /// layer's taxonomy: corrupt bytes surface as their decode error, and a
    /// seed/shape/phase mismatch with the target surfaces as
    /// [`CheckpointError::Merge`].
    pub fn merge_into<S>(&self, target: &mut S) -> Result<(), CheckpointError>
    where
        S: Checkpoint + crate::sink::MergeableSketch,
    {
        let restored: S = self.restore()?;
        target.merge(&restored).map_err(CheckpointError::Merge)
    }
}

/// A [`RowHasher`](gsum_hash::RowHasher) checkpoints as exactly the triple it
/// is reconstructible from: backend tag, column count, seed.  No coefficient
/// or table dump — the state is re-expanded through `RowHasher::new`, the
/// same code path fresh construction uses.
impl Checkpoint for gsum_hash::RowHasher {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        write_header(w, kind::ROW_HASHER)?;
        write_backend(w, self.backend())?;
        write_u64(w, self.columns())?;
        write_u64(w, self.seed())?;
        Ok(())
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        read_header(r, kind::ROW_HASHER)?;
        let backend = read_backend(r)?;
        let columns = read_u64(r)?;
        let seed = read_u64(r)?;
        if columns == 0 {
            return Err(CheckpointError::Corrupt(
                "row hasher with zero columns".into(),
            ));
        }
        Ok(gsum_hash::RowHasher::new(backend, columns, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_hash::{HashBackend, RowHasher};

    /// A frequency-counting sink that checkpoints through the exact-
    /// frequencies codec helpers — just enough state to exercise
    /// `ParkedState` end to end inside this crate.
    #[derive(Debug, Clone, PartialEq)]
    struct TallySink {
        domain: u64,
        counts: Vec<i64>,
    }

    impl TallySink {
        fn new(domain: u64) -> Self {
            Self {
                domain,
                counts: vec![0; domain as usize],
            }
        }
    }

    impl crate::sink::StreamSink for TallySink {
        fn update(&mut self, u: crate::update::Update) {
            self.counts[u.item as usize] += u.delta;
        }
    }

    impl crate::sink::MergeableSketch for TallySink {
        fn merge(&mut self, other: &Self) -> Result<(), crate::sink::MergeError> {
            if self.domain != other.domain {
                return Err(crate::sink::MergeError::new("domain mismatch"));
            }
            for (c, o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
            Ok(())
        }
    }

    impl Checkpoint for TallySink {
        fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
            write_header(w, kind::EXACT_FREQUENCIES)?;
            write_u64(w, self.domain)?;
            write_i64_slice(w, &self.counts)?;
            Ok(())
        }

        fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
            read_header(r, kind::EXACT_FREQUENCIES)?;
            let domain = read_u64(r)?;
            let counts = read_i64_counters(r, domain as usize, "tally")?;
            Ok(Self { domain, counts })
        }
    }

    #[test]
    fn parked_state_folds_into_a_live_sketch() {
        use crate::sink::StreamSink;

        let mut client = TallySink::new(8);
        client.update(crate::update::Update::new(3, 5));
        client.update(crate::update::Update::new(7, -2));
        let parked = ParkedState::park(&client, 2).unwrap();
        assert_eq!(parked.updates(), 2);

        // The bytes travel (clone simulates a socket hop), then fold.
        let wired = ParkedState::from_parts(parked.bytes().to_vec(), parked.updates());
        let mut serving = TallySink::new(8);
        serving.update(crate::update::Update::new(3, 1));
        wired.merge_into(&mut serving).unwrap();
        assert_eq!(serving.counts[3], 6);
        assert_eq!(serving.counts[7], -2);

        // Restore alone reproduces the parked sketch exactly.
        let restored: TallySink = parked.restore().unwrap();
        assert_eq!(restored, client);
    }

    #[test]
    fn parked_state_surfaces_decode_and_merge_failures() {
        let parked = ParkedState::park(&TallySink::new(4), 0).unwrap();

        // Corrupt bytes: the decode error comes through.
        let corrupt = ParkedState::from_parts(parked.bytes()[..3].to_vec(), 0);
        let mut target = TallySink::new(4);
        assert!(corrupt.merge_into(&mut target).is_err());

        // Shape mismatch: surfaces as CheckpointError::Merge.
        let mut wrong_domain = TallySink::new(16);
        assert!(matches!(
            parked.merge_into(&mut wrong_domain),
            Err(CheckpointError::Merge(_))
        ));
    }

    #[test]
    fn row_hasher_roundtrip_both_backends() {
        for backend in [HashBackend::Polynomial, HashBackend::Tabulation] {
            let original = RowHasher::new(backend, 64, 1234);
            let bytes = original.to_checkpoint_bytes().unwrap();
            let restored = RowHasher::from_checkpoint_bytes(&bytes).unwrap();
            assert_eq!(original, restored);
            for key in 0..512u64 {
                assert_eq!(original.column_sign(key), restored.column_sign(key));
            }
        }
    }

    #[test]
    fn truncated_bytes_error_instead_of_panicking() {
        let bytes = RowHasher::new(HashBackend::Polynomial, 8, 7)
            .to_checkpoint_bytes()
            .unwrap();
        for cut in 0..bytes.len() {
            let err = RowHasher::from_checkpoint_bytes(&bytes[..cut]);
            assert!(err.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn bad_magic_and_version_and_kind_are_rejected() {
        let good = RowHasher::new(HashBackend::Polynomial, 8, 7)
            .to_checkpoint_bytes()
            .unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            RowHasher::from_checkpoint_bytes(&bad_magic),
            Err(CheckpointError::BadMagic)
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            RowHasher::from_checkpoint_bytes(&bad_version),
            Err(CheckpointError::UnsupportedVersion { .. })
        ));

        let mut bad_kind = good.clone();
        bad_kind[6] = 0xEE;
        assert!(matches!(
            RowHasher::from_checkpoint_bytes(&bad_kind),
            Err(CheckpointError::WrongKind { .. })
        ));
    }

    #[test]
    fn unknown_backend_tag_is_corrupt() {
        let mut bytes = RowHasher::new(HashBackend::Tabulation, 8, 7)
            .to_checkpoint_bytes()
            .unwrap();
        bytes[8] = 99; // the backend tag byte, straight after the header
        assert!(matches!(
            RowHasher::from_checkpoint_bytes(&bytes),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn codec_roundtrips() {
        let mut buf = Vec::new();
        write_u8(&mut buf, 250).unwrap();
        write_u16(&mut buf, 65_000).unwrap();
        write_u64(&mut buf, u64::MAX - 1).unwrap();
        write_i64(&mut buf, i64::MIN).unwrap();
        write_f64(&mut buf, -0.0).unwrap();
        write_f64_slice(&mut buf, &[1.5, f64::NAN]).unwrap();
        write_i64_slice(&mut buf, &[-3, 9]).unwrap();

        let r = &mut buf.as_slice();
        assert_eq!(read_u8(r).unwrap(), 250);
        assert_eq!(read_u16(r).unwrap(), 65_000);
        assert_eq!(read_u64(r).unwrap(), u64::MAX - 1);
        assert_eq!(read_i64(r).unwrap(), i64::MIN);
        assert_eq!(read_f64(r).unwrap().to_bits(), (-0.0f64).to_bits());
        let floats = read_f64_counters(r, 2, "floats").unwrap();
        assert_eq!(floats[0], 1.5);
        assert!(floats[1].is_nan());
        assert_eq!(read_i64_counters(r, 2, "ints").unwrap(), vec![-3, 9]);
    }

    #[test]
    fn length_mismatches_are_corrupt() {
        let mut buf = Vec::new();
        write_f64_slice(&mut buf, &[1.0, 2.0]).unwrap();
        let err = read_f64_counters(&mut buf.as_slice(), 3, "counters");
        assert!(matches!(err, Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::UnsupportedVersion { found: 9 }
            .to_string()
            .contains('9'));
        assert!(CheckpointError::WrongKind {
            expected: 2,
            found: 3
        }
        .to_string()
        .contains('3'));
        assert!(CheckpointError::Corrupt("bad tag".into())
            .to_string()
            .contains("bad tag"));
        assert!(
            CheckpointError::Merge(crate::MergeError::new("seed mismatch"))
                .to_string()
                .contains("seed mismatch")
        );
    }
}
