//! Exact frequency vectors and the statistics the paper's analyses refer to.

use std::collections::HashMap;

/// The exact frequency vector `V(D) ∈ Z^n` of a stream, stored sparsely.
///
/// The g-SUM exact baseline, the heavy-hitter ground truth and the tail-mass
/// bounds that CountSketch's guarantee refers to are all computed from this
/// structure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrequencyVector {
    /// Domain size `n`.
    domain: u64,
    /// Sparse map item → frequency; zero frequencies are never stored.
    counts: HashMap<u64, i64>,
}

impl FrequencyVector {
    /// Create an all-zero frequency vector over the domain `[0, n)`.
    pub fn new(domain: u64) -> Self {
        Self {
            domain,
            counts: HashMap::new(),
        }
    }

    /// Domain size `n`.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// Apply an additive update to item `i`.
    pub fn apply(&mut self, item: u64, delta: i64) {
        debug_assert!(item < self.domain, "item outside domain");
        let entry = self.counts.entry(item).or_insert(0);
        *entry += delta;
        if *entry == 0 {
            self.counts.remove(&item);
        }
    }

    /// Frequency of item `i` (zero if never touched).
    pub fn get(&self, item: u64) -> i64 {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    /// Number of items with non-zero frequency (`F_0` of the support).
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// Iterate over `(item, frequency)` pairs with non-zero frequency, in an
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.counts.iter().map(|(&i, &v)| (i, v))
    }

    /// Iterate over non-zero frequencies sorted by item identifier
    /// (deterministic order; used by tests and the experiment harness).
    pub fn sorted_entries(&self) -> Vec<(u64, i64)> {
        let mut entries: Vec<(u64, i64)> = self.iter().collect();
        entries.sort_unstable_by_key(|&(i, _)| i);
        entries
    }

    /// The largest absolute frequency `max_i |v_i|` (zero for an empty vector).
    pub fn max_abs_frequency(&self) -> i64 {
        self.counts.values().map(|v| v.abs()).max().unwrap_or(0)
    }

    /// First moment `F_1 = Σ |v_i|`.
    pub fn f1(&self) -> f64 {
        self.counts.values().map(|&v| v.abs() as f64).sum()
    }

    /// Second moment `F_2 = Σ v_i²`.
    pub fn f2(&self) -> f64 {
        self.counts.values().map(|&v| (v as f64) * (v as f64)).sum()
    }

    /// `k`-th frequency moment `F_k = Σ |v_i|^k` (for `k ≥ 0`; items with zero
    /// frequency contribute nothing, matching the paper's `g(0) = 0`
    /// normalization).
    pub fn moment(&self, k: f64) -> f64 {
        self.counts
            .values()
            .map(|&v| (v.abs() as f64).powf(k))
            .sum()
    }

    /// Residual second moment after removing the `k` largest (in magnitude)
    /// frequencies: `Σ_{j > k} v̄_j²` where `v̄` is sorted by decreasing
    /// magnitude.  This is the tail quantity in CountSketch's guarantee.
    pub fn residual_f2(&self, k: usize) -> f64 {
        let mut mags: Vec<f64> = self.counts.values().map(|&v| (v as f64).abs()).collect();
        mags.sort_unstable_by(|a, b| b.partial_cmp(a).expect("no NaN frequencies"));
        mags.iter().skip(k).map(|m| m * m).sum()
    }

    /// Items whose squared frequency is at least `lambda` times the *rest* of
    /// `F_2` — i.e. `v_j² ≥ λ Σ_{i≠j} v_i²`.  These are the `λ`-heavy hitters
    /// for `F_2`.
    pub fn f2_heavy_hitters(&self, lambda: f64) -> Vec<u64> {
        let f2 = self.f2();
        let mut out: Vec<u64> = self
            .counts
            .iter()
            .filter(|(_, &v)| {
                let sq = (v as f64) * (v as f64);
                sq >= lambda * (f2 - sq)
            })
            .map(|(&i, _)| i)
            .collect();
        out.sort_unstable();
        out
    }

    /// Dense representation (length `n`); intended for tests on small domains.
    pub fn to_dense(&self) -> Vec<i64> {
        let mut dense = vec![0i64; self.domain as usize];
        for (&i, &v) in &self.counts {
            dense[i as usize] = v;
        }
        dense
    }

    /// Build from a dense vector.
    pub fn from_dense(values: &[i64]) -> Self {
        let mut fv = Self::new(values.len() as u64);
        for (i, &v) in values.iter().enumerate() {
            if v != 0 {
                fv.counts.insert(i as u64, v);
            }
        }
        fv
    }

    /// Coordinate-wise difference `self - other`, used for the sketchable
    /// distance application `d(u, v) = Σ g(|u_i - v_i|)` (§1.1).
    ///
    /// # Panics
    /// Panics if the two vectors have different domains.
    pub fn difference(&self, other: &FrequencyVector) -> FrequencyVector {
        assert_eq!(self.domain, other.domain, "domain mismatch");
        let mut out = self.clone();
        for (i, v) in other.iter() {
            out.apply(i, -v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FrequencyVector {
        let mut fv = FrequencyVector::new(10);
        fv.apply(1, 5);
        fv.apply(2, -3);
        fv.apply(7, 2);
        fv.apply(7, -2); // cancels out
        fv.apply(9, 10);
        fv
    }

    #[test]
    fn apply_and_get() {
        let fv = sample();
        assert_eq!(fv.get(1), 5);
        assert_eq!(fv.get(2), -3);
        assert_eq!(fv.get(7), 0);
        assert_eq!(fv.get(9), 10);
        assert_eq!(fv.get(0), 0);
        assert_eq!(fv.support_size(), 3);
    }

    #[test]
    fn cancelled_items_leave_support() {
        let mut fv = FrequencyVector::new(4);
        fv.apply(0, 3);
        assert_eq!(fv.support_size(), 1);
        fv.apply(0, -3);
        assert_eq!(fv.support_size(), 0);
        assert_eq!(fv.get(0), 0);
    }

    #[test]
    fn moments() {
        let fv = sample();
        assert_eq!(fv.f1(), 5.0 + 3.0 + 10.0);
        assert_eq!(fv.f2(), 25.0 + 9.0 + 100.0);
        assert!((fv.moment(2.0) - fv.f2()).abs() < 1e-9);
        assert!((fv.moment(1.0) - fv.f1()).abs() < 1e-9);
        assert!((fv.moment(0.0) - 3.0).abs() < 1e-9);
        assert_eq!(fv.max_abs_frequency(), 10);
    }

    #[test]
    fn residual_f2_drops_largest() {
        let fv = sample(); // magnitudes 10, 5, 3
        assert_eq!(fv.residual_f2(0), 134.0);
        assert_eq!(fv.residual_f2(1), 25.0 + 9.0);
        assert_eq!(fv.residual_f2(2), 9.0);
        assert_eq!(fv.residual_f2(3), 0.0);
        assert_eq!(fv.residual_f2(10), 0.0);
    }

    #[test]
    fn f2_heavy_hitters_identifies_dominant_item() {
        let mut fv = FrequencyVector::new(100);
        fv.apply(5, 100);
        for i in 10..20 {
            fv.apply(i, 1);
        }
        // v_5^2 = 10000 vs rest = 10, so item 5 is heavy for any λ ≤ 1000.
        assert_eq!(fv.f2_heavy_hitters(0.5), vec![5]);
        assert_eq!(fv.f2_heavy_hitters(999.0), vec![5]);
        // With λ huge nothing qualifies.
        assert!(fv.f2_heavy_hitters(1001.0).is_empty());
    }

    #[test]
    fn dense_round_trip() {
        let fv = sample();
        let dense = fv.to_dense();
        assert_eq!(dense.len(), 10);
        assert_eq!(dense[9], 10);
        let back = FrequencyVector::from_dense(&dense);
        assert_eq!(back, fv);
    }

    #[test]
    fn difference_matches_coordinatewise_subtraction() {
        let mut a = FrequencyVector::new(5);
        a.apply(0, 3);
        a.apply(1, 4);
        let mut b = FrequencyVector::new(5);
        b.apply(1, 4);
        b.apply(2, -2);
        let d = a.difference(&b);
        assert_eq!(d.get(0), 3);
        assert_eq!(d.get(1), 0);
        assert_eq!(d.get(2), 2);
        assert_eq!(d.support_size(), 2);
    }

    #[test]
    fn sorted_entries_are_sorted() {
        let fv = sample();
        let entries = fv.sorted_entries();
        assert_eq!(entries, vec![(1, 5), (2, -3), (9, 10)]);
    }

    #[test]
    #[should_panic(expected = "domain mismatch")]
    fn difference_domain_mismatch_panics() {
        let a = FrequencyVector::new(5);
        let b = FrequencyVector::new(6);
        let _ = a.difference(&b);
    }
}
