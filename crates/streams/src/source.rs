//! Lazy update sources: streams of updates that are *pulled* one at a time,
//! without materializing a `Vec<Update>`.
//!
//! [`UpdateSource`] is the input-side dual of [`StreamSink`]:
//! a source yields updates, a sink absorbs them, and [`UpdateSource::feed`]
//! connects the two.  Workload generators implement `UpdateSource` so that a
//! billion-update benchmark run needs O(1) memory for the stream itself, and
//! [`crate::ShardedIngest`] splits any source across worker threads.

use crate::sink::StreamSink;
use crate::stream::TurnstileStream;
use crate::update::Update;

/// A lazy, pull-based producer of turnstile updates over a fixed domain.
pub trait UpdateSource {
    /// Domain size `n` the updates are drawn from.
    fn domain(&self) -> u64;

    /// Produce the next update, or `None` when the source is exhausted.
    fn next_update(&mut self) -> Option<Update>;

    /// Bounds on the number of updates still to come, mirroring
    /// [`Iterator::size_hint`].
    fn remaining_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }

    /// Drain the source into a sink, one update at a time.  Returns the
    /// number of updates fed.
    fn feed<S: StreamSink + ?Sized>(&mut self, sink: &mut S) -> usize
    where
        Self: Sized,
    {
        let mut fed = 0;
        while let Some(u) = self.next_update() {
            sink.update(u);
            fed += 1;
        }
        fed
    }

    /// Drain the source into a sink in batches of up to `batch` updates
    /// (uses [`StreamSink::update_batch`], amortizing per-update dispatch).
    /// Returns the number of updates fed.
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    fn feed_batched<S: StreamSink + ?Sized>(&mut self, sink: &mut S, batch: usize) -> usize
    where
        Self: Sized,
    {
        assert!(batch > 0, "batch size must be positive");
        let mut buf = Vec::with_capacity(batch);
        let mut fed = 0;
        loop {
            buf.clear();
            while buf.len() < batch {
                match self.next_update() {
                    Some(u) => buf.push(u),
                    None => break,
                }
            }
            if buf.is_empty() {
                return fed;
            }
            fed += buf.len();
            sink.update_batch(&buf);
        }
    }

    /// Materialize the remaining updates as a [`TurnstileStream`] (the
    /// batch-world escape hatch; prefer [`feed`](UpdateSource::feed)).
    fn collect_stream(&mut self) -> TurnstileStream
    where
        Self: Sized,
    {
        let mut stream = TurnstileStream::new(self.domain());
        while let Some(u) = self.next_update() {
            stream.push(u);
        }
        stream
    }

    /// Borrow the source as an [`Iterator`] over updates.
    fn updates(&mut self) -> Updates<'_, Self>
    where
        Self: Sized,
    {
        Updates { source: self }
    }
}

/// An [`UpdateSource`] adapter that stops after a fixed number of updates —
/// the mechanism behind [`ShardedIngest::ingest_limited`](crate::ShardedIngest::ingest_limited)
/// and [`PipelinedIngest::ingest_limited`](crate::PipelinedIngest::ingest_limited).
#[derive(Debug)]
pub(crate) struct TakeSource<'a, Src> {
    inner: &'a mut Src,
    left: usize,
}

impl<'a, Src: UpdateSource> TakeSource<'a, Src> {
    /// Wrap `inner`, yielding at most `limit` updates.
    pub(crate) fn new(inner: &'a mut Src, limit: usize) -> Self {
        Self { inner, left: limit }
    }

    /// Number of updates still allowed through the cap.
    pub(crate) fn left(&self) -> usize {
        self.left
    }
}

impl<Src: UpdateSource> UpdateSource for TakeSource<'_, Src> {
    fn domain(&self) -> u64 {
        self.inner.domain()
    }

    fn next_update(&mut self) -> Option<Update> {
        if self.left == 0 {
            return None;
        }
        let u = self.inner.next_update();
        if u.is_some() {
            self.left -= 1;
        }
        u
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.inner.remaining_hint();
        (
            lo.min(self.left),
            Some(hi.map_or(self.left, |h| h.min(self.left))),
        )
    }
}

/// Iterator adapter returned by [`UpdateSource::updates`].
#[derive(Debug)]
pub struct Updates<'a, S> {
    source: &'a mut S,
}

impl<S: UpdateSource> Iterator for Updates<'_, S> {
    type Item = Update;

    fn next(&mut self) -> Option<Update> {
        self.source.next_update()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.source.remaining_hint()
    }
}

/// Adapt any iterator of updates into an [`UpdateSource`] over a domain.
#[derive(Debug, Clone)]
pub struct IterSource<I> {
    domain: u64,
    iter: I,
}

impl<I: Iterator<Item = Update>> IterSource<I> {
    /// Wrap `iter` as a source over the domain `[0, domain)`.
    ///
    /// # Panics
    /// Panics if `domain == 0`.
    pub fn new(domain: u64, iter: I) -> Self {
        assert!(domain > 0, "source domain size must be positive");
        Self { domain, iter }
    }
}

impl<I: Iterator<Item = Update>> UpdateSource for IterSource<I> {
    fn domain(&self) -> u64 {
        self.domain
    }

    fn next_update(&mut self) -> Option<Update> {
        self.iter.next()
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

/// Replay of a materialized [`TurnstileStream`] as an [`UpdateSource`]
/// (created by [`TurnstileStream::source`]).
#[derive(Debug, Clone)]
pub struct StreamSource<'a> {
    stream: &'a TurnstileStream,
    position: usize,
}

impl<'a> StreamSource<'a> {
    pub(crate) fn new(stream: &'a TurnstileStream) -> Self {
        Self {
            stream,
            position: 0,
        }
    }
}

impl UpdateSource for StreamSource<'_> {
    fn domain(&self) -> u64 {
        self.stream.domain()
    }

    fn next_update(&mut self) -> Option<Update> {
        let u = self.stream.updates().get(self.position).copied();
        if u.is_some() {
            self.position += 1;
        }
        u
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        let left = self.stream.len() - self.position;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingSink {
        updates: Vec<Update>,
        batches: usize,
    }

    impl StreamSink for CountingSink {
        fn update(&mut self, u: Update) {
            self.updates.push(u);
        }
        fn update_batch(&mut self, updates: &[Update]) {
            self.batches += 1;
            self.updates.extend_from_slice(updates);
        }
    }

    fn sink() -> CountingSink {
        CountingSink {
            updates: Vec::new(),
            batches: 0,
        }
    }

    #[test]
    fn iter_source_feeds_in_order() {
        let mut src = IterSource::new(8, (0..5u64).map(Update::insert));
        let mut s = sink();
        assert_eq!(src.feed(&mut s), 5);
        assert_eq!(s.updates.len(), 5);
        assert_eq!(s.updates[3], Update::insert(3));
        // Exhausted.
        assert_eq!(src.next_update(), None);
    }

    #[test]
    fn feed_batched_groups_updates() {
        let mut src = IterSource::new(8, (0..10u64).map(Update::insert));
        let mut s = sink();
        assert_eq!(src.feed_batched(&mut s, 4), 10);
        assert_eq!(s.updates.len(), 10);
        assert_eq!(s.batches, 3, "10 updates in batches of 4 = 3 batches");
    }

    #[test]
    fn collect_stream_materializes() {
        let mut src = IterSource::new(8, (0..5u64).map(Update::insert));
        let stream = src.collect_stream();
        assert_eq!(stream.len(), 5);
        assert_eq!(stream.domain(), 8);
    }

    #[test]
    fn stream_source_replays() {
        let mut s = TurnstileStream::new(8);
        s.push_delta(1, 3);
        s.push_delta(2, -1);
        let mut src = s.source();
        assert_eq!(src.remaining_hint(), (2, Some(2)));
        let collected: Vec<Update> = src.updates().collect();
        assert_eq!(collected, s.updates().to_vec());
    }

    #[test]
    fn updates_iterator_adapts() {
        let mut src = IterSource::new(4, (0..3u64).map(Update::insert));
        let doubled: Vec<i64> = src.updates().map(|u| u.delta * 2).collect();
        assert_eq!(doubled, vec![2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        let mut src = IterSource::new(4, std::iter::empty());
        let mut s = sink();
        src.feed_batched(&mut s, 0);
    }
}
