//! Backpressure-aware pipelined ingestion.
//!
//! [`ShardedIngest`](crate::ShardedIngest) fans updates out to worker
//! sketches, but its producer does the batching *and* the channel pushes on
//! one thread, and its handoff depth is fixed.  [`PipelinedIngest`] reworks
//! that topology into the shape a long-running ingest service needs:
//!
//! ```text
//! producer (caller thread)          decode/coalesce stage         N apply workers
//! pull from UpdateSource  ──chan──▶ coalesce each batch  ──chan──▶ hash + apply
//! (e.g. a FrameReader on            exactly in i64                 into sketch
//!  a socket)                        (round-robin fan-out)          clones; merge
//! ```
//!
//! Every arrow is a **bounded** `sync_channel` of configurable depth
//! ([`with_channel_depth`](PipelinedIngest::with_channel_depth)): when the
//! apply workers lag, the decode stage blocks; when the decode stage lags,
//! the producer blocks — and when the producer is a
//! [`FrameReader`] on a socket, that blocking propagates
//! to the peer through TCP flow control.  A fast producer can never outrun a
//! slow worker into unbounded memory.
//!
//! The result is **bit-identical** to single-threaded ingestion of the same
//! updates: the decode stage's coalescing is exact in `i64` (the
//! `batch_equivalence` guarantee), the workers' sketches are clones with the
//! prototype's seeds, and the final merge is linear.
//!
//! Configuration is validated, not asserted: zero workers, a zero batch size
//! and a zero channel depth are rejected with a typed [`IngestConfigError`]
//! — the same validation [`ShardedIngest`](crate::ShardedIngest) now shares
//! through its `try_*` constructors.  And because the producer may sit on an
//! untrusted socket, the decode stage coalesces with *checked* arithmetic: a
//! crafted batch whose per-item delta total overflows `i64` surfaces as
//! [`PipelineError::DeltaOverflow`], never a panic or a silently wrapped
//! counter.

use crate::sink::{checked_coalesce_updates, MergeError, MergeableSketch, StreamSink};
use crate::source::{TakeSource, UpdateSource};
use crate::update::Update;
use crate::wire::{FrameReader, WireError};
use std::fmt;
use std::io::Read;
use std::sync::mpsc;

/// A rejected ingestion configuration value.  Shared by [`PipelinedIngest`]
/// and [`ShardedIngest`](crate::ShardedIngest): both validate through the
/// same predicates, so a config that one accepts the other does too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestConfigError {
    /// `workers == 0` / `shards == 0`: there must be at least one state
    /// absorbing updates.
    NoWorkers,
    /// `batch == 0`: an empty handoff batch can never drain a source.
    ZeroBatch,
    /// `depth == 0`: a `sync_channel` of depth zero would rendezvous every
    /// handoff, serializing the pipeline it is meant to decouple.
    ZeroDepth,
}

impl fmt::Display for IngestConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestConfigError::NoWorkers => write!(f, "need at least one shard worker"),
            IngestConfigError::ZeroBatch => write!(f, "batch size must be positive"),
            IngestConfigError::ZeroDepth => write!(f, "channel depth must be positive"),
        }
    }
}

impl std::error::Error for IngestConfigError {}

/// Validate a worker/shard count.
pub(crate) fn validate_workers(workers: usize) -> Result<usize, IngestConfigError> {
    if workers == 0 {
        return Err(IngestConfigError::NoWorkers);
    }
    Ok(workers)
}

/// Validate a handoff batch size.
pub(crate) fn validate_batch(batch: usize) -> Result<usize, IngestConfigError> {
    if batch == 0 {
        return Err(IngestConfigError::ZeroBatch);
    }
    Ok(batch)
}

/// Validate a bounded-channel depth.
pub(crate) fn validate_depth(depth: usize) -> Result<usize, IngestConfigError> {
    if depth == 0 {
        return Err(IngestConfigError::ZeroDepth);
    }
    Ok(depth)
}

/// Error from a pipelined ingestion.
#[derive(Debug)]
pub enum PipelineError {
    /// The wire stream failed to decode (truncation, corruption, ...).
    Wire(WireError),
    /// The worker sketches failed to merge (never happens for clones of one
    /// prototype; surfaces configuration bugs with explicit worker states).
    Merge(MergeError),
    /// An item's delta total within one handoff batch overflows `i64`.
    /// Updates cross a trust boundary here (a wire frame can legally carry
    /// any `i64` deltas), and an overflowing total violates the turnstile
    /// model's prefix promise `|v_i| ≤ M` — so the decode stage rejects the
    /// batch with this typed error instead of wrapping or panicking.
    DeltaOverflow {
        /// The item whose accumulated delta overflowed.
        item: u64,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Wire(e) => write!(f, "pipelined ingest wire error: {e}"),
            PipelineError::Merge(e) => write!(f, "pipelined ingest merge error: {e}"),
            PipelineError::DeltaOverflow { item } => write!(
                f,
                "pipelined ingest rejected a batch: item {item}'s delta total overflows i64"
            ),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Wire(e) => Some(e),
            PipelineError::Merge(e) => Some(e),
            PipelineError::DeltaOverflow { .. } => None,
        }
    }
}

impl From<WireError> for PipelineError {
    fn from(e: WireError) -> Self {
        PipelineError::Wire(e)
    }
}

impl From<MergeError> for PipelineError {
    fn from(e: MergeError) -> Self {
        PipelineError::Merge(e)
    }
}

/// Configuration for backpressure-aware pipelined ingestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelinedIngest {
    workers: usize,
    batch: usize,
    depth: usize,
}

impl PipelinedIngest {
    /// Pipeline with `workers` hash+apply worker threads (plus the decode/
    /// coalesce stage thread).
    ///
    /// # Panics
    /// Panics if `workers == 0`; use [`try_new`](Self::try_new) for a
    /// fallible constructor.
    pub fn new(workers: usize) -> Self {
        Self::try_new(workers).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects `workers == 0`.
    pub fn try_new(workers: usize) -> Result<Self, IngestConfigError> {
        Ok(Self {
            workers: validate_workers(workers)?,
            batch: 1024,
            depth: 4,
        })
    }

    /// Override the number of updates per handoff batch (larger batches
    /// amortize channel overhead; smaller batches tighten backpressure
    /// granularity).
    ///
    /// # Panics
    /// Panics if `batch == 0`; use
    /// [`try_with_batch_size`](Self::try_with_batch_size) for a fallible
    /// builder.
    pub fn with_batch_size(self, batch: usize) -> Self {
        self.try_with_batch_size(batch)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible builder: rejects `batch == 0`.
    pub fn try_with_batch_size(mut self, batch: usize) -> Result<Self, IngestConfigError> {
        self.batch = validate_batch(batch)?;
        Ok(self)
    }

    /// Override the bounded-channel depth between pipeline stages.  Depth is
    /// the backpressure knob: with depth `d` and batch size `b`, at most
    /// `(workers + 1) · d · b` updates are in flight before the producer
    /// blocks.
    ///
    /// # Panics
    /// Panics if `depth == 0`; use
    /// [`try_with_channel_depth`](Self::try_with_channel_depth) for a
    /// fallible builder.
    pub fn with_channel_depth(self, depth: usize) -> Self {
        self.try_with_channel_depth(depth)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible builder: rejects `depth == 0`.
    pub fn try_with_channel_depth(mut self, depth: usize) -> Result<Self, IngestConfigError> {
        self.depth = validate_depth(depth)?;
        Ok(self)
    }

    /// Number of apply workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Updates per handoff batch.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Bounded-channel depth between stages.
    pub fn channel_depth(&self) -> usize {
        self.depth
    }

    /// Pull `source` dry through the pipeline: the caller thread batches
    /// updates, the decode stage coalesces each batch exactly in `i64` and
    /// round-robins it to the apply workers, and the worker sketches (clones
    /// of `prototype`) are merged left to right at the end.
    ///
    /// The merged result is bit-identical to a single sketch that absorbed
    /// the whole stream on one thread.  A batch whose per-item delta total
    /// overflows `i64` (possible only for hostile or model-violating input)
    /// is rejected with [`PipelineError::DeltaOverflow`] — checked in the
    /// decode stage, so the overflow can neither panic a worker nor wrap
    /// silently into the counters.
    pub fn ingest<Src, S>(&self, source: &mut Src, prototype: &S) -> Result<S, PipelineError>
    where
        Src: UpdateSource,
        S: StreamSink + MergeableSketch + Clone + Send,
    {
        let (decode_result, shard_results) = std::thread::scope(|scope| {
            // Stage 2 → 3: one bounded channel per apply worker.
            let mut worker_txs: Vec<mpsc::SyncSender<Vec<Update>>> =
                Vec::with_capacity(self.workers);
            let mut workers = Vec::with_capacity(self.workers);
            for _ in 0..self.workers {
                let mut sketch = prototype.clone();
                let (tx, rx) = mpsc::sync_channel::<Vec<Update>>(self.depth);
                worker_txs.push(tx);
                workers.push(scope.spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        sketch.update_batch(&batch);
                    }
                    sketch
                }));
            }

            // Stage 1 → 2: the bounded handoff the producer blocks on.
            let (feed_tx, feed_rx) = mpsc::sync_channel::<Vec<Update>>(self.depth);
            let decode = scope.spawn(move || -> Result<(), PipelineError> {
                let mut next = 0usize;
                while let Ok(raw) = feed_rx.recv() {
                    // Exact i64 coalescing: a head item appearing thousands
                    // of times in the batch is hashed once per row
                    // downstream.  Checked accumulation: updates may come
                    // from an untrusted wire, and an overflowing total must
                    // be a typed error, not wrapped counter state.
                    let batch = checked_coalesce_updates(&raw)
                        .map_err(|item| PipelineError::DeltaOverflow { item })?;
                    worker_txs[next]
                        .send(batch)
                        .expect("apply worker alive while its sender is held");
                    next = (next + 1) % worker_txs.len();
                }
                // Dropping the senders (normally or on the error path above)
                // closes the worker channels.
                Ok(())
            });

            // Stage 1: the producer — stays on the caller thread because
            // `Src` need not be `Send` (a FrameReader on a socket isn't
            // required to be).  A failed send means the decode stage bailed
            // out on an error; stop producing and let its result surface.
            let mut buf: Vec<Update> = Vec::with_capacity(self.batch);
            loop {
                while buf.len() < self.batch {
                    match source.next_update() {
                        Some(u) => buf.push(u),
                        None => break,
                    }
                }
                if buf.is_empty() {
                    break;
                }
                let full = std::mem::replace(&mut buf, Vec::with_capacity(self.batch));
                if feed_tx.send(full).is_err() {
                    break;
                }
            }
            drop(feed_tx);

            let decode_result = decode.join().expect("decode stage panicked");
            let shard_results = workers
                .into_iter()
                .map(|h| h.join().expect("apply worker panicked"))
                .collect::<Vec<S>>();
            (decode_result, shard_results)
        });
        decode_result?;

        let mut iter = shard_results.into_iter();
        let mut merged = iter.next().expect("at least one worker");
        for other in iter {
            merged.merge(&other)?;
        }
        Ok(merged)
    }

    /// Like [`ingest`](Self::ingest), but stop pulling from the source after
    /// at most `limit` updates.  Returns the merged sketch and the number of
    /// updates actually consumed — the hook a serving loop uses to merge and
    /// [checkpoint](crate::Checkpoint) every K updates while a stream is
    /// still in flight.
    pub fn ingest_limited<Src, S>(
        &self,
        source: &mut Src,
        prototype: &S,
        limit: usize,
    ) -> Result<(S, usize), PipelineError>
    where
        Src: UpdateSource,
        S: StreamSink + MergeableSketch + Clone + Send,
    {
        let mut take = TakeSource::new(source, limit);
        let merged = self.ingest(&mut take, prototype)?;
        let consumed = limit - take.left();
        Ok((merged, consumed))
    }

    /// Ingest a framed wire stream end to end: drain the reader through the
    /// pipeline, then require the explicit end-of-stream frame — a stream
    /// that decodes partway and dies surfaces as the wire error it is, never
    /// as a silently short sketch.  Returns the merged sketch, the number of
    /// updates ingested, and the underlying reader (e.g. the socket, ready
    /// for a response).
    pub fn ingest_wire<R, S>(
        &self,
        reader: FrameReader<R>,
        prototype: &S,
    ) -> Result<(S, u64, R), PipelineError>
    where
        R: Read,
        S: StreamSink + MergeableSketch + Clone + Send,
    {
        let mut reader = reader;
        let merged = self.ingest(&mut reader, prototype)?;
        let updates = reader.updates_read();
        let inner = reader.finish()?;
        Ok((merged, updates, inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequency::FrequencyVector;
    use crate::generator::{StreamConfig, StreamGenerator, UniformStreamGenerator};
    use crate::wire::encode_updates;

    /// A frequency vector is itself a (trivially mergeable) linear sketch.
    #[derive(Debug, Clone)]
    struct ExactSink {
        fv: FrequencyVector,
    }

    impl StreamSink for ExactSink {
        fn update(&mut self, u: Update) {
            self.fv.apply(u.item, u.delta);
        }
    }

    impl MergeableSketch for ExactSink {
        fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
            if self.fv.domain() != other.fv.domain() {
                return Err(MergeError::new("domain mismatch"));
            }
            for (item, v) in other.fv.iter() {
                self.fv.apply(item, v);
            }
            Ok(())
        }
    }

    fn exact(domain: u64) -> ExactSink {
        ExactSink {
            fv: FrequencyVector::new(domain),
        }
    }

    #[test]
    fn pipelined_equals_single_threaded() {
        let mut gen = UniformStreamGenerator::new(StreamConfig::turnstile(128, 20_000, 0.2), 7);
        let reference = gen.generate();

        for workers in [1usize, 2, 4] {
            for depth in [1usize, 2, 8] {
                gen.reset();
                let merged = PipelinedIngest::new(workers)
                    .with_batch_size(256)
                    .with_channel_depth(depth)
                    .ingest(&mut gen, &exact(128))
                    .unwrap();
                assert_eq!(
                    merged.fv,
                    reference.frequency_vector(),
                    "pipelined ({workers} workers, depth {depth}) must agree with the exact \
                     frequency vector"
                );
            }
        }
    }

    #[test]
    fn ingest_limited_consumes_exactly_the_limit() {
        let mut gen = UniformStreamGenerator::new(StreamConfig::turnstile(64, 5_000, 0.2), 11);
        let reference = gen.generate();

        gen.reset();
        let pipe = PipelinedIngest::new(2).with_batch_size(64);
        let (first, consumed) = pipe.ingest_limited(&mut gen, &exact(64), 2_000).unwrap();
        assert_eq!(consumed, 2_000);
        let mut rest = pipe.ingest(&mut gen, &exact(64)).unwrap();
        rest.merge(&first).unwrap();
        assert_eq!(rest.fv, reference.frequency_vector());
    }

    #[test]
    fn wire_stream_ingests_end_to_end() {
        let mut gen = UniformStreamGenerator::new(StreamConfig::turnstile(64, 3_000, 0.2), 3);
        let reference = gen.generate();
        let bytes = encode_updates(64, reference.updates()).unwrap();

        let reader = FrameReader::new(bytes.as_slice()).unwrap();
        let (merged, updates, _rest) = PipelinedIngest::new(3)
            .with_batch_size(128)
            .ingest_wire(reader, &exact(64))
            .unwrap();
        assert_eq!(updates, reference.len() as u64);
        assert_eq!(merged.fv, reference.frequency_vector());
    }

    #[test]
    fn overflowing_delta_total_is_a_typed_error_not_a_panic() {
        // A legal wire frame can carry any i64 deltas; a crafted batch whose
        // per-item total overflows must surface as DeltaOverflow from the
        // decode stage — with debug overflow checks on, an unchecked
        // accumulation would panic the decode thread instead.
        let hostile = vec![Update::new(7, i64::MAX), Update::new(7, 1)];
        let bytes = encode_updates(64, &hostile).unwrap();
        let reader = FrameReader::new(bytes.as_slice()).unwrap();
        let err = PipelinedIngest::new(2)
            .ingest_wire(reader, &exact(64))
            .expect_err("overflow must be rejected");
        assert!(
            matches!(err, PipelineError::DeltaOverflow { item: 7 }),
            "{err}"
        );

        // The same through a plain source, including one the producer keeps
        // feeding after the decode stage bails (exercises the graceful
        // producer shutdown path).
        let mut updates: Vec<Update> = vec![Update::new(3, i64::MIN), Update::new(3, -1)];
        updates.extend((0..50_000u64).map(|i| Update::new(i % 64, 1)));
        let mut src = crate::source::IterSource::new(64, updates.into_iter());
        let err = PipelinedIngest::new(2)
            .with_batch_size(16)
            .ingest(&mut src, &exact(64))
            .expect_err("overflow must be rejected");
        assert!(
            matches!(err, PipelineError::DeltaOverflow { item: 3 }),
            "{err}"
        );
    }

    #[test]
    fn truncated_wire_stream_is_a_pipeline_error() {
        let bytes = encode_updates(64, &[Update::insert(1), Update::insert(2)]).unwrap();
        let truncated = &bytes[..bytes.len() - 3];
        let reader = FrameReader::new(truncated).unwrap();
        let err = PipelinedIngest::new(2)
            .ingest_wire(reader, &exact(64))
            .expect_err("truncation must not be silent");
        assert!(matches!(err, PipelineError::Wire(e) if e.is_truncation()));
    }

    #[test]
    fn config_validation_rejects_zeros() {
        assert_eq!(
            PipelinedIngest::try_new(0),
            Err(IngestConfigError::NoWorkers)
        );
        assert_eq!(
            PipelinedIngest::try_new(2).unwrap().try_with_batch_size(0),
            Err(IngestConfigError::ZeroBatch)
        );
        assert_eq!(
            PipelinedIngest::try_new(2)
                .unwrap()
                .try_with_channel_depth(0),
            Err(IngestConfigError::ZeroDepth)
        );
        let ok = PipelinedIngest::try_new(3)
            .unwrap()
            .try_with_batch_size(10)
            .unwrap()
            .try_with_channel_depth(2)
            .unwrap();
        assert_eq!(
            (ok.workers(), ok.batch_size(), ok.channel_depth()),
            (3, 10, 2)
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_workers_panics_in_the_infallible_constructor() {
        let _ = PipelinedIngest::new(0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_panics_in_the_infallible_builder() {
        let _ = PipelinedIngest::new(1).with_batch_size(0);
    }

    #[test]
    #[should_panic(expected = "channel depth must be positive")]
    fn zero_depth_panics_in_the_infallible_builder() {
        let _ = PipelinedIngest::new(1).with_channel_depth(0);
    }

    #[test]
    fn config_error_display_is_informative() {
        assert!(IngestConfigError::NoWorkers
            .to_string()
            .contains("at least one"));
        assert!(IngestConfigError::ZeroBatch.to_string().contains("batch"));
        assert!(IngestConfigError::ZeroDepth.to_string().contains("depth"));
    }
}
