//! Reusable per-sketch ingestion scratch, excluded from sketch identity.
//!
//! Every sketch's `update_batch` needs working memory — a coalesce buffer, a
//! per-row column array, a depth partition.  Allocating it fresh per batch
//! dominated the `onepass_gsum` ingest profile (a recursive sketch calls
//! `update_batch` once per level per heavy-hitter structure), so sketches now
//! carry their scratch with them and reuse it across batches.
//!
//! Scratch is *not* part of a sketch's observable state: it holds no
//! information once `update_batch` returns, so it must never influence
//! checkpoint bytes, merge compatibility, or equality.  [`IngestScratch`]
//! enforces the one subtle case — `Clone`.  Sketches derive `Clone` for
//! sharded ingestion, and a derived clone of a raw scratch buffer would copy
//! stale capacity (harmless) but more importantly would make "clone then
//! compare checkpoint bytes" tests sensitive to incidental buffer contents if
//! a sketch ever serialized its whole struct.  `IngestScratch::clone` returns
//! an empty default instead: a cloned sketch starts with fresh scratch,
//! exactly as if it had been rebuilt from a checkpoint.
use std::fmt;

/// Transparent wrapper marking a field as reusable ingestion scratch.
///
/// `Clone` yields `Self::default()` — scratch never travels with a clone —
/// so `#[derive(Clone)]` on the owning sketch keeps its derived semantics
/// for every *identity* field while the scratch resets.  The buffer is a
/// public field: hot paths destructure it to split borrows across sibling
/// fields.
#[derive(Default)]
pub struct IngestScratch<T> {
    /// The scratch buffer itself; contents are meaningless between batches.
    pub buf: T,
}

impl<T: Default> Clone for IngestScratch<T> {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl<T> fmt::Debug for IngestScratch<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Contents are transient working memory — identify the field, don't
        // dump it (it can hold thousands of stale entries).
        f.write_str("IngestScratch {{ .. }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_resets_to_default() {
        let mut s: IngestScratch<Vec<u32>> = IngestScratch::default();
        s.buf.extend([1, 2, 3]);
        let c = s.clone();
        assert!(c.buf.is_empty());
        assert_eq!(s.buf, vec![1, 2, 3]);
    }

    #[test]
    fn debug_does_not_dump_contents() {
        let mut s: IngestScratch<Vec<u32>> = IngestScratch::default();
        s.buf.extend([7; 100]);
        let rendered = format!("{s:?}");
        assert!(rendered.contains("IngestScratch"));
        assert!(!rendered.contains('7'));
    }
}
