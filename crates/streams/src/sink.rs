//! Push-based ingestion: the [`StreamSink`] and [`MergeableSketch`] traits.
//!
//! The paper's algorithms are one-pass state machines: they observe updates
//! `(i, δ)` one at a time and never see the stream again.  `StreamSink` is
//! that contract.  Every sketch and estimator state object in the workspace
//! implements it, so live traffic can be pushed straight into an estimator
//! without ever materializing a [`TurnstileStream`]
//! in memory.
//!
//! `MergeableSketch` captures the *linearity* that [Li–Nguyen–Woodruff 2014]
//! shows is essentially without loss of generality for turnstile algorithms:
//! two sketches built with identical configuration and seeds can be merged
//! into the sketch of the concatenated stream.  Linearity is what makes
//! sharded parallel ingestion ([`crate::ShardedIngest`]) and distributed
//! aggregation possible.

use crate::stream::TurnstileStream;
use crate::update::Update;
use std::collections::HashMap;
use std::fmt;

/// Coalesce a batch of updates: one entry per distinct item, carrying the
/// item's total delta over the batch, in increasing item order.
///
/// Turnstile deltas add exactly in `i64`, and [Li–Nguyen–Woodruff 2014] shows
/// linear sketches are WLOG for turnstile algorithms — so for every linear
/// sketch, feeding the coalesced batch is *bit-for-bit* equivalent to feeding
/// the original updates one at a time (counters hold integer values that
/// `f64` represents exactly).  A Zipf head item appearing thousands of times
/// in a batch is then hashed once instead of thousands of times, which is the
/// heart of the sketches' `update_batch` fast path.
///
/// Items whose deltas cancel to zero are kept (with delta 0) so that sinks
/// which track the *set* of touched items — not just linear counters —
/// observe exactly the items a per-update replay would have observed.
pub fn coalesce_updates(updates: &[Update]) -> Vec<Update> {
    let mut totals: HashMap<u64, i64> = HashMap::with_capacity(updates.len().min(1024));
    for u in updates {
        *totals.entry(u.item).or_insert(0) += u.delta;
    }
    let mut out: Vec<Update> = totals
        .into_iter()
        .map(|(item, delta)| Update { item, delta })
        .collect();
    out.sort_unstable_by_key(|u| u.item);
    out
}

/// Coalesce a batch with *checked* delta accumulation: like
/// [`coalesce_updates`], but an item whose total over the batch overflows
/// `i64` is reported as `Err(item)` instead of wrapping (release) or
/// panicking (debug).
///
/// This is the boundary-safe variant for input that crosses a trust
/// boundary — a wire frame can legally carry any `i64` deltas, and a
/// crafted `[(i, i64::MAX), (i, 1)]` batch must surface as a typed error,
/// not undefined-looking counter state.  An overflowing total also violates
/// the turnstile model's prefix promise `|v_i| ≤ M`, so rejecting the batch
/// is the honest outcome.
pub fn checked_coalesce_updates(updates: &[Update]) -> Result<Vec<Update>, u64> {
    let mut totals: HashMap<u64, i64> = HashMap::with_capacity(updates.len().min(1024));
    for u in updates {
        let total = totals.entry(u.item).or_insert(0);
        *total = total.checked_add(u.delta).ok_or(u.item)?;
    }
    let mut out: Vec<Update> = totals
        .into_iter()
        .map(|(item, delta)| Update { item, delta })
        .collect();
    out.sort_unstable_by_key(|u| u.item);
    Ok(out)
}

/// Whether a batch is already in coalesced form (strictly increasing item
/// identifiers — which implies one entry per item), i.e. a possible output of
/// [`coalesce_updates`].  The sketches' `update_batch` fast paths use this
/// O(len) check to skip re-coalescing batches that a wrapper (recursive
/// sketch, heavy-hitter pair) already coalesced.
pub fn is_coalesced(updates: &[Update]) -> bool {
    updates.windows(2).all(|w| w[0].item < w[1].item)
}

/// Borrow `updates` in coalesced form: the slice itself when it is already
/// coalesced (or too short to matter), otherwise a freshly coalesced copy
/// parked in `scratch`.  This is the shared preamble of every sketch's
/// `update_batch` fast path — one place to fix instead of six.
///
/// The scratch path is allocation-free at steady state: it sorts a copy of
/// the batch in place and compacts equal-item runs, so a sketch that reuses
/// the same scratch vector across batches stops paying the
/// hash-map-plus-fresh-`Vec` cost of [`coalesce_updates`] on every call.
/// The output is identical to [`coalesce_updates`] — one entry per distinct
/// item in increasing item order, net-zero items kept — because `i64`
/// addition is commutative, so summing a run of equal items in sorted order
/// yields the same total as summing them in stream order.
pub fn coalesce_into<'a>(updates: &'a [Update], scratch: &'a mut Vec<Update>) -> &'a [Update] {
    if updates.len() <= 1 || is_coalesced(updates) {
        return updates;
    }
    scratch.clear();
    scratch.extend_from_slice(updates);
    scratch.sort_unstable_by_key(|u| u.item);
    // Compact equal-item runs in place: `write` trails `read`, summing runs.
    let mut write = 0usize;
    for read in 1..scratch.len() {
        if scratch[read].item == scratch[write].item {
            scratch[write].delta += scratch[read].delta;
        } else {
            write += 1;
            scratch[write] = scratch[read];
        }
    }
    scratch.truncate(write + 1);
    scratch
}

/// A push-based consumer of turnstile updates.
///
/// Implementations must be *online*: `update` may be called any number of
/// times, in any order relative to queries, and queries (`estimate`,
/// `cover`, ...) reflect exactly the prefix pushed so far.
pub trait StreamSink {
    /// Process one turnstile update.
    fn update(&mut self, update: Update);

    /// Process a batch of updates (amortizes per-call overhead; semantically
    /// identical to updating one at a time, in order).
    fn update_batch(&mut self, updates: &[Update]) {
        for &u in updates {
            self.update(u);
        }
    }

    /// Process an entire materialized stream (batch convenience; equivalent
    /// to pushing every update in order).
    fn process_stream(&mut self, stream: &TurnstileStream) {
        self.update_batch(stream.updates());
    }
}

/// Error returned when two sketches cannot be merged (different shapes,
/// seeds, domains, or phases).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError {
    /// Human-readable reason.
    pub reason: String,
}

impl MergeError {
    /// Create a merge error with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot merge sketches: {}", self.reason)
    }
}

impl std::error::Error for MergeError {}

/// A linear sketch: merging two copies built with identical configuration and
/// seeds yields the sketch of the concatenated input streams.
///
/// Laws (checked by the workspace's property tests):
/// * **concatenation**: `a.process(s1); a.merge(&b_with(s2))` equals
///   `a.process(s1 ++ s2)` for query purposes;
/// * **commutativity**: `a.merge(&b)` and `b.merge(&a)` answer queries
///   identically;
/// * **associativity**: `(a ⊔ b) ⊔ c` equals `a ⊔ (b ⊔ c)`.
pub trait MergeableSketch: StreamSink {
    /// Fold another sketch's state into this one.
    ///
    /// Fails if the two sketches were not built with identical configuration
    /// and seeds (so their hash functions disagree) — merging such sketches
    /// would silently corrupt estimates.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial sink counting total |δ| pushed.
    struct AbsMass(i64);

    impl StreamSink for AbsMass {
        fn update(&mut self, u: Update) {
            self.0 += u.delta.abs();
        }
    }

    impl MergeableSketch for AbsMass {
        fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
            self.0 += other.0;
            Ok(())
        }
    }

    #[test]
    fn default_batch_and_stream_methods_feed_update() {
        let mut sink = AbsMass(0);
        sink.update_batch(&[Update::new(0, 3), Update::new(1, -2)]);
        assert_eq!(sink.0, 5);

        let mut s = TurnstileStream::new(4);
        s.push_delta(2, 7);
        sink.process_stream(&s);
        assert_eq!(sink.0, 12);
    }

    #[test]
    fn coalesce_sums_deltas_per_item_in_item_order() {
        let batch = [
            Update::new(5, 3),
            Update::new(1, -2),
            Update::new(5, 4),
            Update::new(9, 1),
            Update::new(1, 2),
        ];
        let coalesced = coalesce_updates(&batch);
        assert_eq!(
            coalesced,
            vec![Update::new(1, 0), Update::new(5, 7), Update::new(9, 1)]
        );
    }

    #[test]
    fn coalesce_keeps_cancelled_items_and_handles_empty() {
        assert!(coalesce_updates(&[]).is_empty());
        let coalesced = coalesce_updates(&[Update::new(3, 10), Update::new(3, -10)]);
        assert_eq!(coalesced, vec![Update::new(3, 0)]);
    }

    #[test]
    fn is_coalesced_detects_coalesce_output() {
        assert!(is_coalesced(&[]));
        assert!(is_coalesced(&[Update::new(5, 1)]));
        let batch = [Update::new(5, 3), Update::new(1, -2), Update::new(5, 4)];
        assert!(!is_coalesced(&batch));
        assert!(is_coalesced(&coalesce_updates(&batch)));
        // Duplicates and out-of-order items are both rejected.
        assert!(!is_coalesced(&[Update::new(2, 1), Update::new(2, 1)]));
        assert!(!is_coalesced(&[Update::new(3, 1), Update::new(1, 1)]));
    }

    #[test]
    fn coalesce_into_matches_coalesce_updates() {
        let mut scratch = Vec::new();
        // Uncoalesced input goes through the scratch path.
        let batch = [
            Update::new(5, 3),
            Update::new(1, -2),
            Update::new(5, 4),
            Update::new(9, 1),
            Update::new(1, 2),
            Update::new(7, -7),
            Update::new(7, 7),
        ];
        assert_eq!(
            coalesce_into(&batch, &mut scratch),
            &coalesce_updates(&batch)[..]
        );
        // Reusing the same scratch across batches stays correct.
        let batch2 = [Update::new(2, 1), Update::new(2, -1), Update::new(0, 5)];
        assert_eq!(
            coalesce_into(&batch2, &mut scratch),
            &coalesce_updates(&batch2)[..]
        );
        // Already-coalesced input is returned as-is without touching scratch.
        let sorted = coalesce_updates(&batch);
        scratch.clear();
        let out = coalesce_into(&sorted, &mut scratch);
        assert_eq!(out, &sorted[..]);
        assert!(scratch.is_empty());
    }

    #[test]
    fn checked_coalesce_matches_unchecked_when_in_range() {
        let batch = vec![
            Update::new(5, 3),
            Update::new(1, -2),
            Update::new(5, -3),
            Update::new(2, 10),
        ];
        assert_eq!(
            checked_coalesce_updates(&batch).unwrap(),
            coalesce_updates(&batch)
        );
    }

    #[test]
    fn checked_coalesce_reports_the_overflowing_item() {
        let overflow_pos = vec![Update::new(9, i64::MAX), Update::new(9, 1)];
        assert_eq!(checked_coalesce_updates(&overflow_pos), Err(9));
        let overflow_neg = vec![Update::new(4, i64::MIN), Update::new(4, -1)];
        assert_eq!(checked_coalesce_updates(&overflow_neg), Err(4));
        // Extremes that cancel are fine — only the running total matters.
        let cancel = vec![Update::new(2, i64::MAX), Update::new(2, i64::MIN)];
        assert_eq!(
            checked_coalesce_updates(&cancel).unwrap(),
            vec![Update::new(2, -1)]
        );
    }

    #[test]
    fn merge_error_display() {
        let e = MergeError::new("seed mismatch");
        assert!(e.to_string().contains("seed mismatch"));
    }

    #[test]
    fn trivial_merge() {
        let mut a = AbsMass(3);
        let b = AbsMass(4);
        a.merge(&b).unwrap();
        assert_eq!(a.0, 7);
    }
}
