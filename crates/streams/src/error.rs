//! Error type for stream construction and validation.

use std::fmt;

/// Errors raised when constructing or validating turnstile streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// An update referenced an item outside the declared domain `[0, n)`.
    ItemOutOfDomain {
        /// The offending item identifier.
        item: u64,
        /// The domain size `n`.
        domain: u64,
    },
    /// A prefix of the stream drove some frequency beyond the declared
    /// magnitude bound `M` (the turnstile promise of §1.2).
    MagnitudeBoundViolated {
        /// The offending item identifier.
        item: u64,
        /// The frequency reached by the prefix.
        frequency: i64,
        /// The declared bound `M`.
        bound: i64,
    },
    /// The declared domain size was zero.
    EmptyDomain,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::ItemOutOfDomain { item, domain } => {
                write!(f, "item {item} outside the stream domain [0, {domain})")
            }
            StreamError::MagnitudeBoundViolated {
                item,
                frequency,
                bound,
            } => write!(
                f,
                "item {item} reached frequency {frequency}, violating the turnstile bound M = {bound}"
            ),
            StreamError::EmptyDomain => write!(f, "stream domain size must be positive"),
        }
    }
}

impl std::error::Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_fields() {
        let e = StreamError::ItemOutOfDomain { item: 9, domain: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));

        let e = StreamError::MagnitudeBoundViolated {
            item: 3,
            frequency: -12,
            bound: 10,
        };
        let s = e.to_string();
        assert!(s.contains("-12") && s.contains("10"));

        assert!(StreamError::EmptyDomain.to_string().contains("positive"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(StreamError::EmptyDomain, StreamError::EmptyDomain);
        assert_ne!(
            StreamError::EmptyDomain,
            StreamError::ItemOutOfDomain { item: 0, domain: 1 }
        );
    }
}
