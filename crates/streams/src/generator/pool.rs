//! Weighted sampling without replacement over a small family of pools.

/// A multiset of `k` indexed pools, each holding a remaining count,
/// supporting "take the `offset`-th remaining element (in index order)" in
/// O(log k) via a Fenwick (binary indexed) tree.
///
/// The lazy generators use this to emit a uniformly random interleaving of
/// their insertion pools: draw `offset` uniformly from `[0, total)`, take,
/// repeat.  Sampling positions in index order makes the behaviour identical
/// to a linear scan over the pools, just sublinear.
#[derive(Debug, Clone)]
pub(crate) struct CountPool {
    /// 1-based Fenwick tree over the pool counts.
    fenwick: Vec<u64>,
    total: u64,
    len: usize,
}

impl CountPool {
    /// Build from per-pool counts in O(k).
    pub(crate) fn new(counts: &[u64]) -> Self {
        let len = counts.len();
        let mut fenwick = vec![0u64; len + 1];
        for (i, &c) in counts.iter().enumerate() {
            fenwick[i + 1] += c;
            let parent = (i + 1) + lowest_set_bit(i + 1);
            if parent <= len {
                fenwick[parent] += fenwick[i + 1];
            }
        }
        Self {
            fenwick,
            total: counts.iter().sum(),
            len,
        }
    }

    /// Remaining elements across all pools.
    pub(crate) fn total(&self) -> u64 {
        self.total
    }

    /// Remove the `offset`-th remaining element (ordering pools by index)
    /// and return its pool index.
    ///
    /// # Panics
    /// Panics if `offset >= total()`.
    pub(crate) fn take_nth(&mut self, offset: u64) -> usize {
        assert!(offset < self.total, "offset outside the remaining pool");
        // Find the largest index whose prefix sum is <= offset.
        let mut idx = 0usize;
        let mut remaining = offset;
        let mut step = self.len.next_power_of_two();
        while step > 0 {
            let next = idx + step;
            if next <= self.len && self.fenwick[next] <= remaining {
                idx = next;
                remaining -= self.fenwick[next];
            }
            step >>= 1;
        }
        // `idx` pools lie strictly before the hit, so the 0-based pool index
        // is `idx` itself.  Decrement its count.
        let mut i = idx + 1;
        while i <= self.len {
            self.fenwick[i] -= 1;
            i += lowest_set_bit(i);
        }
        self.total -= 1;
        idx
    }
}

#[inline]
fn lowest_set_bit(i: usize) -> usize {
    i & i.wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_index_order_for_sequential_offsets() {
        // Taking offset 0 repeatedly walks the pools front to back.
        let mut pool = CountPool::new(&[2, 0, 3]);
        assert_eq!(pool.total(), 5);
        let drained: Vec<usize> = (0..5).map(|_| pool.take_nth(0)).collect();
        assert_eq!(drained, vec![0, 0, 2, 2, 2]);
        assert_eq!(pool.total(), 0);
    }

    #[test]
    fn offsets_address_pools_by_prefix() {
        let mut pool = CountPool::new(&[2, 3, 1]);
        assert_eq!(pool.take_nth(5), 2); // last element
        assert_eq!(pool.take_nth(2), 1); // now inside pool 1
        assert_eq!(pool.take_nth(0), 0);
    }

    #[test]
    fn matches_linear_scan_reference() {
        let counts = [3u64, 0, 7, 1, 4, 0, 2];
        let mut pool = CountPool::new(&counts);
        let mut reference = counts.to_vec();
        // A fixed pseudo-random offset sequence.
        let mut x = 9u64;
        while pool.total() > 0 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let offset = x % pool.total();
            // Linear reference walk.
            let mut rem = offset;
            let mut expect = usize::MAX;
            for (i, c) in reference.iter_mut().enumerate() {
                if rem < *c {
                    *c -= 1;
                    expect = i;
                    break;
                }
                rem -= *c;
            }
            assert_eq!(pool.take_nth(offset), expect);
        }
        assert!(reference.iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "outside the remaining pool")]
    fn out_of_range_offset_panics() {
        let mut pool = CountPool::new(&[1]);
        pool.take_nth(1);
    }
}
