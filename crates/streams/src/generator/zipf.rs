//! Zipf-distributed item-popularity workload.

use super::{StreamConfig, StreamGenerator};
use crate::stream::TurnstileStream;
use crate::update::Update;
use gsum_hash::Xoshiro256;

/// Generates a stream whose items follow a Zipf(`s`) popularity distribution:
/// item of rank `r` (1-indexed) is chosen with probability proportional to
/// `r^{-s}`.  Ranks are mapped to item identifiers by a fixed pseudo-random
/// permutation so heavy items are spread across the domain.
///
/// Skewed workloads are the natural habitat of the paper's algorithms: a few
/// items carry most of the `g`-mass, and the recursive sketch finds them as
/// heavy hitters.
#[derive(Debug, Clone)]
pub struct ZipfStreamGenerator {
    config: StreamConfig,
    exponent: f64,
    rng: Xoshiro256,
    /// Cumulative distribution over ranks (length = domain).
    cdf: Vec<f64>,
    /// rank -> item permutation.
    rank_to_item: Vec<u64>,
}

impl ZipfStreamGenerator {
    /// Create a Zipf generator with skew `exponent > 0`.
    ///
    /// # Panics
    /// Panics if `exponent <= 0` or the domain is empty.
    pub fn new(config: StreamConfig, exponent: f64, seed: u64) -> Self {
        assert!(exponent > 0.0, "Zipf exponent must be positive");
        assert!(config.domain > 0, "domain must be positive");
        let n = config.domain as usize;

        let mut weights = Vec::with_capacity(n);
        for r in 1..=n {
            weights.push((r as f64).powf(-exponent));
        }
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating-point shortfall.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }

        // Deterministic permutation of ranks onto items.
        let mut rng = Xoshiro256::new(seed ^ 0x5ca1_ab1e);
        let mut rank_to_item: Vec<u64> = (0..config.domain).collect();
        for i in (1..rank_to_item.len()).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            rank_to_item.swap(i, j);
        }

        Self {
            config,
            exponent,
            rng: Xoshiro256::new(seed),
            cdf,
            rank_to_item,
        }
    }

    /// The Zipf exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    fn sample_rank(&mut self) -> usize {
        let u = self.rng.next_f64();
        // Binary search the CDF.
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("no NaN in CDF"))
        {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cdf.len() - 1),
        }
    }
}

impl StreamGenerator for ZipfStreamGenerator {
    fn generate(&mut self) -> TurnstileStream {
        let mut stream = TurnstileStream::new(self.config.domain);
        let mut positive: Vec<u64> = Vec::new();
        let mut counts = std::collections::HashMap::<u64, i64>::new();

        for _ in 0..self.config.length {
            let delete = !self.config.insertion_only
                && !positive.is_empty()
                && self.rng.next_f64() < self.config.deletion_fraction;
            if delete {
                let idx = self.rng.next_below(positive.len() as u64) as usize;
                let item = positive[idx];
                stream.push(Update::delete(item));
                let c = counts.get_mut(&item).expect("tracked item");
                *c -= 1;
                if *c == 0 {
                    positive.swap_remove(idx);
                }
            } else {
                let rank = self.sample_rank();
                let item = self.rank_to_item[rank];
                stream.push(Update::insert(item));
                let c = counts.entry(item).or_insert(0);
                if *c == 0 {
                    positive.push(item);
                }
                *c += 1;
            }
        }
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let mut g = ZipfStreamGenerator::new(StreamConfig::new(256, 10_000), 1.2, 3);
        let s = g.generate();
        assert_eq!(s.len(), 10_000);
        assert_eq!(s.domain(), 256);
        assert!(s.validate(i64::MAX).is_ok());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ZipfStreamGenerator::new(StreamConfig::new(64, 2000), 1.1, 5).generate();
        let b = ZipfStreamGenerator::new(StreamConfig::new(64, 2000), 1.1, 5).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn skew_produces_dominant_items() {
        let mut g = ZipfStreamGenerator::new(StreamConfig::new(1 << 12, 50_000), 1.5, 11);
        let fv = g.generate().frequency_vector();
        let max = fv.max_abs_frequency() as f64;
        // With exponent 1.5 the top item should capture a large share.
        assert!(
            max > 0.2 * 50_000.0,
            "expected a dominant item, max frequency {max}"
        );
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let top_share = |expo: f64| {
            let mut g = ZipfStreamGenerator::new(StreamConfig::new(1024, 30_000), expo, 21);
            let fv = g.generate().frequency_vector();
            fv.max_abs_frequency() as f64 / 30_000.0
        };
        assert!(top_share(2.0) > top_share(0.8));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_exponent_panics() {
        let _ = ZipfStreamGenerator::new(StreamConfig::new(8, 8), 0.0, 1);
    }

    #[test]
    fn turnstile_mode_valid() {
        let mut g =
            ZipfStreamGenerator::new(StreamConfig::turnstile(128, 20_000, 0.3), 1.1, 17);
        let s = g.generate();
        for (_, v) in s.frequency_vector().iter() {
            assert!(v >= 0);
        }
    }
}
