//! Zipf-distributed item-popularity workload.

use super::turnstile_state::TurnstileState;
use super::{StreamConfig, StreamGenerator};
use crate::source::UpdateSource;
use crate::stream::TurnstileStream;
use crate::update::Update;
use gsum_hash::Xoshiro256;

/// Generates a stream whose items follow a Zipf(`s`) popularity distribution:
/// item of rank `r` (1-indexed) is chosen with probability proportional to
/// `r^{-s}`.  Ranks are mapped to item identifiers by a fixed pseudo-random
/// permutation so heavy items are spread across the domain.
///
/// Skewed workloads are the natural habitat of the paper's algorithms: a few
/// items carry most of the `g`-mass, and the recursive sketch finds them as
/// heavy hitters.
///
/// The generator is a lazy [`UpdateSource`]: updates can be pulled one at a
/// time (O(1) memory per update), and [`StreamGenerator::generate`] is the
/// materializing convenience that resets the source and drains it.
#[derive(Debug, Clone)]
pub struct ZipfStreamGenerator {
    config: StreamConfig,
    exponent: f64,
    seed: u64,
    rng: Xoshiro256,
    /// Cumulative distribution over ranks (length = domain).
    cdf: Vec<f64>,
    /// rank -> item permutation.
    rank_to_item: Vec<u64>,
    state: TurnstileState,
    /// Updates emitted since the last reset.
    emitted: usize,
}

impl ZipfStreamGenerator {
    /// Create a Zipf generator with skew `exponent > 0`.
    ///
    /// # Panics
    /// Panics if `exponent <= 0` or the domain is empty.
    pub fn new(config: StreamConfig, exponent: f64, seed: u64) -> Self {
        assert!(exponent > 0.0, "Zipf exponent must be positive");
        assert!(config.domain > 0, "domain must be positive");
        let n = config.domain as usize;

        let mut weights = Vec::with_capacity(n);
        for r in 1..=n {
            weights.push((r as f64).powf(-exponent));
        }
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating-point shortfall.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }

        // Deterministic permutation of ranks onto items.
        let mut rng = Xoshiro256::new(seed ^ 0x5ca1_ab1e);
        let mut rank_to_item: Vec<u64> = (0..config.domain).collect();
        for i in (1..rank_to_item.len()).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            rank_to_item.swap(i, j);
        }

        Self {
            config,
            exponent,
            seed,
            rng: Xoshiro256::new(seed),
            cdf,
            rank_to_item,
            state: TurnstileState::new(),
            emitted: 0,
        }
    }

    /// The Zipf exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Rewind the source to the beginning: a subsequent drain reproduces
    /// exactly the same update sequence.
    pub fn reset(&mut self) {
        self.rng = Xoshiro256::new(self.seed);
        self.state.clear();
        self.emitted = 0;
    }
}

/// Draw a rank from the CDF by binary search.
fn sample_rank(cdf: &[f64], rng: &mut Xoshiro256) -> usize {
    let u = rng.next_f64();
    match cdf.binary_search_by(|probe| probe.total_cmp(&u)) {
        Ok(idx) => idx,
        Err(idx) => idx.min(cdf.len() - 1),
    }
}

impl UpdateSource for ZipfStreamGenerator {
    fn domain(&self) -> u64 {
        self.config.domain
    }

    fn next_update(&mut self) -> Option<Update> {
        if self.emitted >= self.config.length {
            return None;
        }
        self.emitted += 1;
        let (cdf, rank_to_item) = (&self.cdf, &self.rank_to_item);
        Some(self.state.step(&mut self.rng, &self.config, |rng| {
            rank_to_item[sample_rank(cdf, rng)]
        }))
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        let left = self.config.length - self.emitted;
        (left, Some(left))
    }
}

impl StreamGenerator for ZipfStreamGenerator {
    fn generate(&mut self) -> TurnstileStream {
        self.reset();
        self.collect_stream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let mut g = ZipfStreamGenerator::new(StreamConfig::new(256, 10_000), 1.2, 3);
        let s = g.generate();
        assert_eq!(s.len(), 10_000);
        assert_eq!(s.domain(), 256);
        assert!(s.validate(i64::MAX).is_ok());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ZipfStreamGenerator::new(StreamConfig::new(64, 2000), 1.1, 5).generate();
        let b = ZipfStreamGenerator::new(StreamConfig::new(64, 2000), 1.1, 5).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn skew_produces_dominant_items() {
        let mut g = ZipfStreamGenerator::new(StreamConfig::new(1 << 12, 50_000), 1.5, 11);
        let fv = g.generate().frequency_vector();
        let max = fv.max_abs_frequency() as f64;
        // With exponent 1.5 the top item should capture a large share.
        assert!(
            max > 0.2 * 50_000.0,
            "expected a dominant item, max frequency {max}"
        );
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let top_share = |expo: f64| {
            let mut g = ZipfStreamGenerator::new(StreamConfig::new(1024, 30_000), expo, 21);
            let fv = g.generate().frequency_vector();
            fv.max_abs_frequency() as f64 / 30_000.0
        };
        assert!(top_share(2.0) > top_share(0.8));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_exponent_panics() {
        let _ = ZipfStreamGenerator::new(StreamConfig::new(8, 8), 0.0, 1);
    }

    #[test]
    fn lazy_source_matches_generate_exactly() {
        let config = StreamConfig::turnstile(128, 5_000, 0.25);
        let materialized = ZipfStreamGenerator::new(config, 1.2, 9).generate();
        let mut source = ZipfStreamGenerator::new(config, 1.2, 9);
        let mut pulled = TurnstileStream::new(128);
        assert_eq!(source.remaining_hint(), (5_000, Some(5_000)));
        while let Some(u) = source.next_update() {
            pulled.push(u);
        }
        assert_eq!(pulled, materialized);
        // reset() rewinds the source.
        source.reset();
        assert_eq!(source.collect_stream(), materialized);
    }

    #[test]
    fn turnstile_mode_valid() {
        let mut g = ZipfStreamGenerator::new(StreamConfig::turnstile(128, 20_000, 0.3), 1.1, 17);
        let s = g.generate();
        for (_, v) in s.frequency_vector().iter() {
            assert!(v >= 0);
        }
    }
}
