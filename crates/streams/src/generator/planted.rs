//! Planted heavy-hitter workload.

use super::pool::CountPool;
use super::{StreamConfig, StreamGenerator};
use crate::source::UpdateSource;
use crate::stream::TurnstileStream;
use crate::update::Update;
use gsum_hash::Xoshiro256;

/// Generates background traffic (uniform over the domain) plus a set of
/// explicitly planted items with prescribed final frequencies.
///
/// This is the ground-truth workload for heavy-hitter recall tests: the
/// planted items are known, so a `(g, λ)`-cover can be checked exactly.
///
/// The generator is also a lazy [`UpdateSource`]: the pull path interleaves
/// planted and background insertions by sampling without replacement from
/// the remaining pools — the same uniformly-random-interleaving distribution
/// as `generate`'s Fisher–Yates shuffle, though not the identical permutation
/// for a given seed.  The final frequency vector is identical either way.
#[derive(Debug, Clone)]
pub struct PlantedStreamGenerator {
    config: StreamConfig,
    /// `(item, frequency)` pairs to plant.
    planted: Vec<(u64, u64)>,
    seed: u64,
    rng: Xoshiro256,
    /// If true, the planted insertions are interleaved uniformly with the
    /// background traffic; otherwise they are appended at the end.
    interleave: bool,
    /// Remaining insertions (lazy path): pool 0 is the uniform background,
    /// pool `i` for `i ≥ 1` is planted pair `i - 1`.
    pools: CountPool,
}

impl PlantedStreamGenerator {
    /// Create a generator that plants `planted` on top of `config.length`
    /// background updates.
    ///
    /// # Panics
    /// Panics if any planted item lies outside the domain.
    pub fn new(config: StreamConfig, planted: Vec<(u64, u64)>, seed: u64) -> Self {
        for &(item, _) in &planted {
            assert!(item < config.domain, "planted item outside domain");
        }
        let mut g = Self {
            config,
            planted,
            seed,
            rng: Xoshiro256::new(seed),
            interleave: true,
            pools: CountPool::new(&[]),
        };
        g.reset();
        g
    }

    /// Disable interleaving: planted insertions are appended after the
    /// background traffic (useful for worst-case prefix bounds).
    pub fn without_interleaving(mut self) -> Self {
        self.interleave = false;
        self
    }

    /// The planted `(item, frequency)` pairs.
    pub fn planted(&self) -> &[(u64, u64)] {
        &self.planted
    }

    /// Rewind the lazy source to the beginning.
    pub fn reset(&mut self) {
        self.rng = Xoshiro256::new(self.seed);
        let mut counts = Vec::with_capacity(self.planted.len() + 1);
        counts.push(self.config.length as u64);
        counts.extend(self.planted.iter().map(|&(_, f)| f));
        self.pools = CountPool::new(&counts);
    }
}

impl UpdateSource for PlantedStreamGenerator {
    fn domain(&self) -> u64 {
        self.config.domain
    }

    fn next_update(&mut self) -> Option<Update> {
        let total = self.pools.total();
        if total == 0 {
            return None;
        }
        let pick = if self.interleave {
            self.rng.next_below(total)
        } else {
            // Background first, planted afterwards in prescription order.
            0
        };
        let pool = self.pools.take_nth(pick);
        Some(Update::insert(if pool == 0 {
            self.rng.next_below(self.config.domain)
        } else {
            self.planted[pool - 1].0
        }))
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        let left = self.pools.total() as usize;
        (left, Some(left))
    }
}

impl StreamGenerator for PlantedStreamGenerator {
    fn generate(&mut self) -> TurnstileStream {
        self.rng = Xoshiro256::new(self.seed);
        let mut updates: Vec<Update> = Vec::new();

        for _ in 0..self.config.length {
            let item = self.rng.next_below(self.config.domain);
            updates.push(Update::insert(item));
        }
        let background_len = updates.len();

        for &(item, freq) in &self.planted {
            for _ in 0..freq {
                updates.push(Update::insert(item));
            }
        }

        if self.interleave && background_len > 0 {
            // Fisher–Yates over the whole sequence, deterministic in the seed.
            for i in (1..updates.len()).rev() {
                let j = self.rng.next_below((i + 1) as u64) as usize;
                updates.swap(i, j);
            }
        }

        TurnstileStream::from_updates(self.config.domain, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_frequencies_present() {
        let planted = vec![(3u64, 500u64), (9, 1000)];
        let mut g = PlantedStreamGenerator::new(StreamConfig::new(64, 2000), planted.clone(), 4);
        let fv = g.generate().frequency_vector();
        // Planted frequency plus whatever background lands on the item.
        assert!(fv.get(3) >= 500);
        assert!(fv.get(9) >= 1000);
        // The background contributes about 2000/64 ≈ 31 per item; planting
        // dominates.
        assert!(fv.get(3) < 600);
        assert!(fv.get(9) < 1100);
    }

    #[test]
    fn total_length_is_background_plus_planted() {
        let mut g =
            PlantedStreamGenerator::new(StreamConfig::new(16, 100), vec![(0, 10), (1, 20)], 8);
        assert_eq!(g.generate().len(), 130);
    }

    #[test]
    fn deterministic() {
        let mk = || {
            PlantedStreamGenerator::new(StreamConfig::new(32, 500), vec![(7, 99)], 123).generate()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn without_interleaving_puts_planted_last() {
        let mut g = PlantedStreamGenerator::new(StreamConfig::new(8, 10), vec![(5, 4)], 3)
            .without_interleaving();
        let s = g.generate();
        let tail: Vec<u64> = s.updates()[10..].iter().map(|u| u.item).collect();
        assert_eq!(tail, vec![5, 5, 5, 5]);
    }

    #[test]
    fn lazy_source_realizes_the_same_frequency_vector() {
        let planted = vec![(3u64, 500u64), (9, 1000)];
        let mut g = PlantedStreamGenerator::new(StreamConfig::new(64, 2000), planted.clone(), 4);
        let materialized = g.generate();
        g.reset();
        let pulled = g.collect_stream();
        assert_eq!(pulled.len(), materialized.len());
        // The lazy interleave draws a different permutation (and different
        // background placements) than the Fisher–Yates shuffle, but the
        // planted mass is guaranteed either way.
        let fv = pulled.frequency_vector();
        assert!(fv.get(3) >= 500 && fv.get(3) < 600);
        assert!(fv.get(9) >= 1000 && fv.get(9) < 1100);
        // Deterministic: resetting replays the same lazy sequence.
        g.reset();
        assert_eq!(g.collect_stream(), pulled);
    }

    #[test]
    fn lazy_source_without_interleaving_is_background_then_planted() {
        let mut g = PlantedStreamGenerator::new(StreamConfig::new(8, 10), vec![(5, 4)], 3)
            .without_interleaving();
        let s = g.collect_stream();
        let tail: Vec<u64> = s.updates()[10..].iter().map(|u| u.item).collect();
        assert_eq!(tail, vec![5, 5, 5, 5]);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn planted_item_outside_domain_panics() {
        let _ = PlantedStreamGenerator::new(StreamConfig::new(8, 10), vec![(8, 1)], 0);
    }

    #[test]
    fn no_background_only_planted() {
        let mut g = PlantedStreamGenerator::new(StreamConfig::new(8, 0), vec![(2, 5)], 0);
        let s = g.generate();
        assert_eq!(s.len(), 5);
        assert_eq!(s.frequency_vector().get(2), 5);
    }
}
