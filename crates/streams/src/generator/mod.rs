//! Workload generators.
//!
//! Each generator produces a [`TurnstileStream`] from a [`StreamConfig`] and a
//! seed.  The experiment suite uses:
//!
//! * [`UniformStreamGenerator`] — items drawn uniformly from the domain
//!   (light-tailed frequencies; stresses the "no heavy hitter" regime).
//! * [`ZipfStreamGenerator`] — Zipf-distributed item popularity (the classical
//!   skewed workload; its heavy hitters are exactly what the recursive sketch
//!   exploits).
//! * [`PlantedStreamGenerator`] — background traffic plus explicitly planted
//!   heavy items with prescribed frequencies (ground truth for heavy-hitter
//!   recall tests).
//! * [`FrequencyPrescribedGenerator`] — builds a stream whose final frequency
//!   vector is exactly a prescribed multiset of values (the communication
//!   reductions of §4.4/§4.5 and Appendix C are phrased this way).
//! * [`AdversarialCollisionGenerator`] — the "local variability" workload used
//!   by E3: many items share a base frequency `x` while a planted item sits at
//!   `x + y` for a small `y`, so a 1-pass algorithm must resolve frequencies
//!   to within `y` to evaluate an unpredictable function correctly.

mod adversarial;
mod planted;
mod pool;
mod prescribed;
mod turnstile_state;
mod uniform;
mod zipf;

pub use adversarial::AdversarialCollisionGenerator;
pub use planted::PlantedStreamGenerator;
pub use prescribed::FrequencyPrescribedGenerator;
pub use uniform::UniformStreamGenerator;
pub use zipf::ZipfStreamGenerator;

use crate::stream::TurnstileStream;

/// Shared configuration for stream generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Domain size `n`.
    pub domain: u64,
    /// Number of updates `m` to generate.
    pub length: usize,
    /// If true, only unit insertions are produced (insertion-only model);
    /// otherwise a configurable fraction of updates are deletions.
    pub insertion_only: bool,
    /// Fraction of updates that are deletions when `insertion_only` is false.
    /// Deletions always target items that currently have positive frequency,
    /// so the strict turnstile promise `v_i ≥ 0` is maintained.
    pub deletion_fraction: f64,
}

impl StreamConfig {
    /// Insertion-only configuration with the given domain and length.
    pub fn new(domain: u64, length: usize) -> Self {
        Self {
            domain,
            length,
            insertion_only: true,
            deletion_fraction: 0.0,
        }
    }

    /// Turnstile configuration with the given fraction of deletions.
    pub fn turnstile(domain: u64, length: usize, deletion_fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&deletion_fraction),
            "deletion fraction must be in [0, 1)"
        );
        Self {
            domain,
            length,
            insertion_only: false,
            deletion_fraction,
        }
    }
}

/// A workload generator: produces turnstile streams deterministically from
/// its construction-time seed.
pub trait StreamGenerator {
    /// Generate the stream.
    fn generate(&mut self) -> TurnstileStream;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        let c = StreamConfig::new(100, 1000);
        assert!(c.insertion_only);
        assert_eq!(c.deletion_fraction, 0.0);

        let t = StreamConfig::turnstile(100, 1000, 0.25);
        assert!(!t.insertion_only);
        assert_eq!(t.deletion_fraction, 0.25);
    }

    #[test]
    #[should_panic(expected = "deletion fraction")]
    fn bad_deletion_fraction_panics() {
        let _ = StreamConfig::turnstile(10, 10, 1.5);
    }
}
