//! Shared per-update bookkeeping for the stateful workload generators.

use super::StreamConfig;
use crate::update::Update;
use gsum_hash::Xoshiro256;
use std::collections::HashMap;

/// Tracks which items currently have positive frequency so turnstile-mode
/// deletions never drive a frequency negative.  [`UniformStreamGenerator`]
/// and [`ZipfStreamGenerator`] share this state machine and differ only in
/// how an inserted item is drawn.
///
/// [`UniformStreamGenerator`]: super::UniformStreamGenerator
/// [`ZipfStreamGenerator`]: super::ZipfStreamGenerator
#[derive(Debug, Clone, Default)]
pub(crate) struct TurnstileState {
    /// Items with positive frequency (deletion candidates).
    positive: Vec<u64>,
    /// Current frequency of each touched item.
    counts: HashMap<u64, i64>,
}

impl TurnstileState {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Forget all tracked frequencies (source rewind).
    pub(crate) fn clear(&mut self) {
        self.positive.clear();
        self.counts.clear();
    }

    /// One generator step: in turnstile mode, with probability
    /// `config.deletion_fraction` (and at least one positive item) emit a
    /// unit deletion of a uniformly chosen positive item; otherwise insert
    /// the item produced by `draw`.
    ///
    /// The RNG call order (deletion coin, then either the victim index or
    /// the draw) is part of the generators' deterministic output format —
    /// keep it stable.
    pub(crate) fn step(
        &mut self,
        rng: &mut Xoshiro256,
        config: &StreamConfig,
        draw: impl FnOnce(&mut Xoshiro256) -> u64,
    ) -> Update {
        let delete = !config.insertion_only
            && !self.positive.is_empty()
            && rng.next_f64() < config.deletion_fraction;
        if delete {
            let idx = rng.next_below(self.positive.len() as u64) as usize;
            let item = self.positive[idx];
            let c = self.counts.get_mut(&item).expect("tracked item");
            *c -= 1;
            if *c == 0 {
                self.positive.swap_remove(idx);
            }
            Update::delete(item)
        } else {
            let item = draw(rng);
            let c = self.counts.entry(item).or_insert(0);
            if *c == 0 {
                self.positive.push(item);
            }
            *c += 1;
            Update::insert(item)
        }
    }
}
