//! Uniform item-popularity workload.

use super::turnstile_state::TurnstileState;
use super::{StreamConfig, StreamGenerator};
use crate::source::UpdateSource;
use crate::stream::TurnstileStream;
use crate::update::Update;
use gsum_hash::Xoshiro256;

/// Generates a stream whose items are drawn uniformly at random from the
/// domain.  In turnstile mode, a configurable fraction of updates delete one
/// unit from a previously inserted item (chosen uniformly among items with
/// positive frequency), so frequencies stay non-negative.
///
/// The generator is a lazy [`UpdateSource`];
/// [`StreamGenerator::generate`] resets the source and drains it.
#[derive(Debug, Clone)]
pub struct UniformStreamGenerator {
    config: StreamConfig,
    seed: u64,
    rng: Xoshiro256,
    state: TurnstileState,
    /// Updates emitted since the last reset.
    emitted: usize,
}

impl UniformStreamGenerator {
    /// Create a generator with the given configuration and seed.
    pub fn new(config: StreamConfig, seed: u64) -> Self {
        Self {
            config,
            seed,
            rng: Xoshiro256::new(seed),
            state: TurnstileState::new(),
            emitted: 0,
        }
    }

    /// Rewind the source to the beginning: a subsequent drain reproduces
    /// exactly the same update sequence.
    pub fn reset(&mut self) {
        self.rng = Xoshiro256::new(self.seed);
        self.state.clear();
        self.emitted = 0;
    }
}

impl UpdateSource for UniformStreamGenerator {
    fn domain(&self) -> u64 {
        self.config.domain
    }

    fn next_update(&mut self) -> Option<Update> {
        if self.emitted >= self.config.length {
            return None;
        }
        self.emitted += 1;
        let domain = self.config.domain;
        Some(
            self.state
                .step(&mut self.rng, &self.config, |rng| rng.next_below(domain)),
        )
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        let left = self.config.length - self.emitted;
        (left, Some(left))
    }
}

impl StreamGenerator for UniformStreamGenerator {
    fn generate(&mut self) -> TurnstileStream {
        self.reset();
        self.collect_stream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length_and_domain() {
        let mut g = UniformStreamGenerator::new(StreamConfig::new(64, 5000), 1);
        let s = g.generate();
        assert_eq!(s.len(), 5000);
        assert_eq!(s.domain(), 64);
        assert!(s.is_insertion_only());
        assert!(s.validate(i64::MAX).is_ok());
    }

    #[test]
    fn deterministic_given_seed() {
        let s1 = UniformStreamGenerator::new(StreamConfig::new(32, 1000), 9).generate();
        let s2 = UniformStreamGenerator::new(StreamConfig::new(32, 1000), 9).generate();
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_seeds_differ() {
        let s1 = UniformStreamGenerator::new(StreamConfig::new(32, 1000), 1).generate();
        let s2 = UniformStreamGenerator::new(StreamConfig::new(32, 1000), 2).generate();
        assert_ne!(s1, s2);
    }

    #[test]
    fn items_cover_domain_roughly_uniformly() {
        let mut g = UniformStreamGenerator::new(StreamConfig::new(16, 32_000), 5);
        let fv = g.generate().frequency_vector();
        let expect = 32_000.0 / 16.0;
        for i in 0..16u64 {
            let c = fv.get(i) as f64;
            assert!(
                (c - expect).abs() < 0.15 * expect,
                "item {i} count {c} far from {expect}"
            );
        }
    }

    #[test]
    fn lazy_source_matches_generate_exactly() {
        let config = StreamConfig::turnstile(64, 3_000, 0.3);
        let materialized = UniformStreamGenerator::new(config, 11).generate();
        let mut source = UniformStreamGenerator::new(config, 11);
        let pulled = source.collect_stream();
        assert_eq!(pulled, materialized);
        assert_eq!(source.next_update(), None);
    }

    #[test]
    fn turnstile_mode_keeps_frequencies_nonnegative() {
        let mut g = UniformStreamGenerator::new(StreamConfig::turnstile(32, 10_000, 0.4), 77);
        let s = g.generate();
        assert!(!s.is_insertion_only());
        let fv = s.frequency_vector();
        for (_, v) in fv.iter() {
            assert!(v >= 0);
        }
        // Deletions really happened.
        let dels = s.iter().filter(|u| u.delta < 0).count();
        assert!(dels > 2000, "expected many deletions, got {dels}");
    }
}
