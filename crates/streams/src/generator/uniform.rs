//! Uniform item-popularity workload.

use super::{StreamConfig, StreamGenerator};
use crate::stream::TurnstileStream;
use crate::update::Update;
use gsum_hash::Xoshiro256;

/// Generates a stream whose items are drawn uniformly at random from the
/// domain.  In turnstile mode, a configurable fraction of updates delete one
/// unit from a previously inserted item (chosen uniformly among items with
/// positive frequency), so frequencies stay non-negative.
#[derive(Debug, Clone)]
pub struct UniformStreamGenerator {
    config: StreamConfig,
    rng: Xoshiro256,
}

impl UniformStreamGenerator {
    /// Create a generator with the given configuration and seed.
    pub fn new(config: StreamConfig, seed: u64) -> Self {
        Self {
            config,
            rng: Xoshiro256::new(seed),
        }
    }
}

impl StreamGenerator for UniformStreamGenerator {
    fn generate(&mut self) -> TurnstileStream {
        let mut stream = TurnstileStream::new(self.config.domain);
        // Track items with positive frequency so deletions never drive a
        // frequency negative.
        let mut positive: Vec<u64> = Vec::new();
        let mut counts = std::collections::HashMap::<u64, i64>::new();

        for _ in 0..self.config.length {
            let delete = !self.config.insertion_only
                && !positive.is_empty()
                && self.rng.next_f64() < self.config.deletion_fraction;
            if delete {
                let idx = self.rng.next_below(positive.len() as u64) as usize;
                let item = positive[idx];
                stream.push(Update::delete(item));
                let c = counts.get_mut(&item).expect("tracked item");
                *c -= 1;
                if *c == 0 {
                    positive.swap_remove(idx);
                }
            } else {
                let item = self.rng.next_below(self.config.domain);
                stream.push(Update::insert(item));
                let c = counts.entry(item).or_insert(0);
                if *c == 0 {
                    positive.push(item);
                }
                *c += 1;
            }
        }
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length_and_domain() {
        let mut g = UniformStreamGenerator::new(StreamConfig::new(64, 5000), 1);
        let s = g.generate();
        assert_eq!(s.len(), 5000);
        assert_eq!(s.domain(), 64);
        assert!(s.is_insertion_only());
        assert!(s.validate(i64::MAX).is_ok());
    }

    #[test]
    fn deterministic_given_seed() {
        let s1 = UniformStreamGenerator::new(StreamConfig::new(32, 1000), 9).generate();
        let s2 = UniformStreamGenerator::new(StreamConfig::new(32, 1000), 9).generate();
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_seeds_differ() {
        let s1 = UniformStreamGenerator::new(StreamConfig::new(32, 1000), 1).generate();
        let s2 = UniformStreamGenerator::new(StreamConfig::new(32, 1000), 2).generate();
        assert_ne!(s1, s2);
    }

    #[test]
    fn items_cover_domain_roughly_uniformly() {
        let mut g = UniformStreamGenerator::new(StreamConfig::new(16, 32_000), 5);
        let fv = g.generate().frequency_vector();
        let expect = 32_000.0 / 16.0;
        for i in 0..16u64 {
            let c = fv.get(i) as f64;
            assert!(
                (c - expect).abs() < 0.15 * expect,
                "item {i} count {c} far from {expect}"
            );
        }
    }

    #[test]
    fn turnstile_mode_keeps_frequencies_nonnegative() {
        let mut g =
            UniformStreamGenerator::new(StreamConfig::turnstile(32, 10_000, 0.4), 77);
        let s = g.generate();
        assert!(!s.is_insertion_only());
        let fv = s.frequency_vector();
        for (_, v) in fv.iter() {
            assert!(v >= 0);
        }
        // Deletions really happened.
        let dels = s.iter().filter(|u| u.delta < 0).count();
        assert!(dels > 2000, "expected many deletions, got {dels}");
    }
}
