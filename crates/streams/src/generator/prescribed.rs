//! Frequency-prescribed workload.
//!
//! The communication reductions of §4.4, §4.5 and Appendix C describe streams
//! by their final frequency multiset ("|A| items with frequency n_k and one
//! item with frequency x_k").  This generator builds exactly such a stream:
//! the caller prescribes how many items take each frequency value, and the
//! generator assigns concrete item identifiers and emits the insertions.

use super::StreamGenerator;
use crate::stream::TurnstileStream;
use crate::update::Update;
use gsum_hash::Xoshiro256;

/// Builds a stream whose final frequency vector realizes a prescribed
/// multiset of values.
#[derive(Debug, Clone)]
pub struct FrequencyPrescribedGenerator {
    domain: u64,
    /// `(frequency value, number of items with that value)`.
    prescription: Vec<(i64, u64)>,
    seed: u64,
    /// Whether to shuffle the update order (on by default).
    shuffle: bool,
    /// Whether to emit one bulk update per item instead of unit insertions.
    bulk_updates: bool,
}

impl FrequencyPrescribedGenerator {
    /// Create a generator over domain `[0, n)` with the given prescription.
    ///
    /// # Panics
    /// Panics if the prescription needs more items than the domain holds, or
    /// if a prescribed frequency is zero.
    pub fn new(domain: u64, prescription: Vec<(i64, u64)>, seed: u64) -> Self {
        let needed: u64 = prescription.iter().map(|&(_, c)| c).sum();
        assert!(
            needed <= domain,
            "prescription needs {needed} items but the domain has only {domain}"
        );
        assert!(
            prescription.iter().all(|&(v, _)| v != 0),
            "prescribed frequencies must be non-zero"
        );
        Self {
            domain,
            prescription,
            seed,
            shuffle: true,
            bulk_updates: false,
        }
    }

    /// Keep updates grouped by item, in prescription order (no shuffling).
    pub fn without_shuffle(mut self) -> Self {
        self.shuffle = false;
        self
    }

    /// Emit a single update `(item, ±frequency)` per item instead of unit
    /// insertions.  The stream is then a valid turnstile stream but not an
    /// insertion-only stream.
    pub fn with_bulk_updates(mut self) -> Self {
        self.bulk_updates = true;
        self
    }

    /// Total number of distinct items the prescription will occupy.
    pub fn items_needed(&self) -> u64 {
        self.prescription.iter().map(|&(_, c)| c).sum()
    }
}

impl StreamGenerator for FrequencyPrescribedGenerator {
    fn generate(&mut self) -> TurnstileStream {
        let mut rng = Xoshiro256::new(self.seed);

        // Choose distinct item identifiers: a random permutation prefix of
        // the domain, deterministic in the seed.
        let needed = self.items_needed() as usize;
        let mut ids: Vec<u64> = (0..self.domain).collect();
        for i in 0..needed.min(ids.len().saturating_sub(1)) {
            let j = i as u64 + rng.next_below(self.domain - i as u64);
            ids.swap(i, j as usize);
        }

        let mut updates: Vec<Update> = Vec::new();
        let mut next = 0usize;
        for &(value, count) in &self.prescription {
            for _ in 0..count {
                let item = ids[next];
                next += 1;
                if self.bulk_updates {
                    updates.push(Update::new(item, value));
                } else {
                    let unit = if value > 0 { 1 } else { -1 };
                    for _ in 0..value.unsigned_abs() {
                        updates.push(Update::new(item, unit));
                    }
                }
            }
        }

        if self.shuffle && updates.len() > 1 {
            for i in (1..updates.len()).rev() {
                let j = rng.next_below((i + 1) as u64) as usize;
                updates.swap(i, j);
            }
        }

        TurnstileStream::from_updates(self.domain, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Histogram of frequency values in a vector.
    fn histogram(s: &TurnstileStream) -> BTreeMap<i64, u64> {
        let mut h = BTreeMap::new();
        for (_, v) in s.frequency_vector().iter() {
            *h.entry(v).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn realizes_prescription_exactly() {
        let mut g = FrequencyPrescribedGenerator::new(1000, vec![(7, 20), (100, 3), (1, 50)], 5);
        let s = g.generate();
        let h = histogram(&s);
        assert_eq!(h.get(&7), Some(&20));
        assert_eq!(h.get(&100), Some(&3));
        assert_eq!(h.get(&1), Some(&50));
        assert_eq!(s.frequency_vector().support_size(), 73);
        assert!(s.is_insertion_only());
    }

    #[test]
    fn negative_frequencies_via_unit_deletions() {
        let mut g = FrequencyPrescribedGenerator::new(100, vec![(-5, 4)], 9);
        let s = g.generate();
        let h = histogram(&s);
        assert_eq!(h.get(&-5), Some(&4));
        assert!(!s.is_insertion_only());
    }

    #[test]
    fn bulk_updates_mode() {
        let mut g =
            FrequencyPrescribedGenerator::new(100, vec![(9, 3), (-2, 2)], 1).with_bulk_updates();
        let s = g.generate();
        assert_eq!(s.len(), 5);
        let h = histogram(&s);
        assert_eq!(h.get(&9), Some(&3));
        assert_eq!(h.get(&-2), Some(&2));
    }

    #[test]
    fn deterministic() {
        let mk = || FrequencyPrescribedGenerator::new(500, vec![(3, 10), (50, 2)], 42).generate();
        assert_eq!(mk(), mk());
    }

    #[test]
    fn distinct_items_assigned() {
        let mut g = FrequencyPrescribedGenerator::new(64, vec![(2, 30)], 8);
        let s = g.generate();
        assert_eq!(s.frequency_vector().support_size(), 30);
    }

    #[test]
    #[should_panic(expected = "domain has only")]
    fn too_many_items_panics() {
        let _ = FrequencyPrescribedGenerator::new(5, vec![(1, 10)], 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_panics() {
        let _ = FrequencyPrescribedGenerator::new(5, vec![(0, 1)], 0);
    }

    #[test]
    fn without_shuffle_groups_items() {
        let mut g = FrequencyPrescribedGenerator::new(32, vec![(3, 2)], 7).without_shuffle();
        let s = g.generate();
        let items: Vec<u64> = s.iter().map(|u| u.item).collect();
        assert_eq!(items.len(), 6);
        assert_eq!(items[0], items[1]);
        assert_eq!(items[1], items[2]);
        assert_eq!(items[3], items[4]);
    }
}
