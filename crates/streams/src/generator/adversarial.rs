//! Adversarial "local variability" workload.
//!
//! The predictability lower bound (Lemma 25) hides information in the
//! low-order part of a heavy frequency: many items share a base frequency
//! `y`, and one distinguished item has frequency either `x` or `x + y` with
//! `y ≪ x`.  A 1-pass algorithm that cannot resolve the heavy frequency to
//! within `±y` cannot evaluate an unpredictable function (whose value swings
//! by a constant factor between `x` and `x + y`).  This generator produces
//! both branches of that construction so experiment E3 can measure how often
//! a bounded-space sketch distinguishes them.

use super::StreamGenerator;
use crate::stream::TurnstileStream;
use crate::update::Update;
use gsum_hash::Xoshiro256;

/// Generates the Lemma-25 style two-branch workload.
#[derive(Debug, Clone)]
pub struct AdversarialCollisionGenerator {
    domain: u64,
    /// Base frequency of the light items (the `y_k` of the proof).
    light_frequency: u64,
    /// Number of light items (the `|A|` of the proof).
    light_items: u64,
    /// Heavy frequency (the `x_k` of the proof).
    heavy_frequency: u64,
    /// If true, the heavy item's frequency is `x + y` (the "intersecting"
    /// branch); otherwise exactly `x`.
    collide: bool,
    seed: u64,
}

impl AdversarialCollisionGenerator {
    /// Create the generator.
    ///
    /// # Panics
    /// Panics if fewer than `light_items + 1` identifiers fit in the domain.
    pub fn new(
        domain: u64,
        light_frequency: u64,
        light_items: u64,
        heavy_frequency: u64,
        collide: bool,
        seed: u64,
    ) -> Self {
        assert!(
            light_items + 1 <= domain,
            "domain too small for the requested number of items"
        );
        assert!(light_frequency > 0 && heavy_frequency > 0);
        Self {
            domain,
            light_frequency,
            light_items,
            heavy_frequency,
            collide,
            seed,
        }
    }

    /// The item identifier carrying the heavy frequency.
    pub fn heavy_item(&self) -> u64 {
        // Fixed, so the two branches differ only in the heavy frequency.
        0
    }

    /// Final frequency of the heavy item in this branch.
    pub fn heavy_value(&self) -> u64 {
        if self.collide {
            self.heavy_frequency + self.light_frequency
        } else {
            self.heavy_frequency
        }
    }
}

impl StreamGenerator for AdversarialCollisionGenerator {
    fn generate(&mut self) -> TurnstileStream {
        let mut updates = Vec::new();
        // Light items occupy identifiers 1..=light_items.
        for item in 1..=self.light_items {
            for _ in 0..self.light_frequency {
                updates.push(Update::insert(item));
            }
        }
        for _ in 0..self.heavy_value() {
            updates.push(Update::insert(self.heavy_item()));
        }
        // Shuffle so the heavy item is not trivially last.
        let mut rng = Xoshiro256::new(self.seed);
        for i in (1..updates.len()).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            updates.swap(i, j);
        }
        TurnstileStream::from_updates(self.domain, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branches_differ_only_on_heavy_item() {
        let mk = |collide| {
            AdversarialCollisionGenerator::new(1 << 10, 8, 100, 4096, collide, 3).generate()
        };
        let a = mk(false).frequency_vector();
        let b = mk(true).frequency_vector();
        assert_eq!(a.get(0), 4096);
        assert_eq!(b.get(0), 4096 + 8);
        for item in 1..=100u64 {
            assert_eq!(a.get(item), 8);
            assert_eq!(b.get(item), 8);
        }
        assert_eq!(a.support_size(), 101);
        assert_eq!(b.support_size(), 101);
    }

    #[test]
    fn insertion_only_and_deterministic() {
        let g = || {
            AdversarialCollisionGenerator::new(256, 4, 10, 100, true, 7).generate()
        };
        let s = g();
        assert!(s.is_insertion_only());
        assert_eq!(s, g());
        assert_eq!(s.len(), (10 * 4 + 104) as usize);
    }

    #[test]
    fn heavy_value_reporting() {
        let g = AdversarialCollisionGenerator::new(64, 3, 5, 50, false, 0);
        assert_eq!(g.heavy_value(), 50);
        let g = AdversarialCollisionGenerator::new(64, 3, 5, 50, true, 0);
        assert_eq!(g.heavy_value(), 53);
    }

    #[test]
    #[should_panic(expected = "domain too small")]
    fn domain_too_small_panics() {
        let _ = AdversarialCollisionGenerator::new(4, 1, 4, 10, false, 0);
    }
}
