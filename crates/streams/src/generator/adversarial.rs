//! Adversarial "local variability" workload.
//!
//! The predictability lower bound (Lemma 25) hides information in the
//! low-order part of a heavy frequency: many items share a base frequency
//! `y`, and one distinguished item has frequency either `x` or `x + y` with
//! `y ≪ x`.  A 1-pass algorithm that cannot resolve the heavy frequency to
//! within `±y` cannot evaluate an unpredictable function (whose value swings
//! by a constant factor between `x` and `x + y`).  This generator produces
//! both branches of that construction so experiment E3 can measure how often
//! a bounded-space sketch distinguishes them.

use super::pool::CountPool;
use super::StreamGenerator;
use crate::source::UpdateSource;
use crate::stream::TurnstileStream;
use crate::update::Update;
use gsum_hash::Xoshiro256;

/// Generates the Lemma-25 style two-branch workload.
///
/// Also a lazy [`UpdateSource`]: the pull path emits a uniformly random
/// interleaving of the heavy and light insertions by sampling without
/// replacement from the remaining pools (same distribution as `generate`'s
/// shuffle, different permutation for a given seed; identical frequency
/// vector).
#[derive(Debug, Clone)]
pub struct AdversarialCollisionGenerator {
    domain: u64,
    /// Base frequency of the light items (the `y_k` of the proof).
    light_frequency: u64,
    /// Number of light items (the `|A|` of the proof).
    light_items: u64,
    /// Heavy frequency (the `x_k` of the proof).
    heavy_frequency: u64,
    /// If true, the heavy item's frequency is `x + y` (the "intersecting"
    /// branch); otherwise exactly `x`.
    collide: bool,
    seed: u64,
    rng: Xoshiro256,
    /// Remaining insertions (lazy path): pool 0 is the heavy item, pool `i`
    /// for `i ≥ 1` is light item `i`.
    pools: CountPool,
}

impl AdversarialCollisionGenerator {
    /// Create the generator.
    ///
    /// # Panics
    /// Panics if fewer than `light_items + 1` identifiers fit in the domain.
    pub fn new(
        domain: u64,
        light_frequency: u64,
        light_items: u64,
        heavy_frequency: u64,
        collide: bool,
        seed: u64,
    ) -> Self {
        assert!(
            light_items < domain,
            "domain too small for the requested number of items"
        );
        assert!(light_frequency > 0 && heavy_frequency > 0);
        let mut g = Self {
            domain,
            light_frequency,
            light_items,
            heavy_frequency,
            collide,
            seed,
            rng: Xoshiro256::new(seed),
            pools: CountPool::new(&[]),
        };
        g.reset();
        g
    }

    /// Rewind the lazy source to the beginning.
    pub fn reset(&mut self) {
        self.rng = Xoshiro256::new(self.seed);
        let mut counts = vec![self.light_frequency; self.light_items as usize + 1];
        counts[0] = self.heavy_value();
        self.pools = CountPool::new(&counts);
    }

    /// The item identifier carrying the heavy frequency.
    pub fn heavy_item(&self) -> u64 {
        // Fixed, so the two branches differ only in the heavy frequency.
        0
    }

    /// Final frequency of the heavy item in this branch.
    pub fn heavy_value(&self) -> u64 {
        if self.collide {
            self.heavy_frequency + self.light_frequency
        } else {
            self.heavy_frequency
        }
    }
}

impl UpdateSource for AdversarialCollisionGenerator {
    fn domain(&self) -> u64 {
        self.domain
    }

    fn next_update(&mut self) -> Option<Update> {
        let total = self.pools.total();
        if total == 0 {
            return None;
        }
        let pick = self.rng.next_below(total);
        let pool = self.pools.take_nth(pick);
        // Pool 0 is the heavy item; light items occupy identifiers
        // 1..=light_items, matching their pool indices.
        Some(Update::insert(if pool == 0 {
            self.heavy_item()
        } else {
            pool as u64
        }))
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        let left = self.pools.total() as usize;
        (left, Some(left))
    }
}

impl StreamGenerator for AdversarialCollisionGenerator {
    fn generate(&mut self) -> TurnstileStream {
        let mut updates = Vec::new();
        // Light items occupy identifiers 1..=light_items.
        for item in 1..=self.light_items {
            for _ in 0..self.light_frequency {
                updates.push(Update::insert(item));
            }
        }
        for _ in 0..self.heavy_value() {
            updates.push(Update::insert(self.heavy_item()));
        }
        // Shuffle so the heavy item is not trivially last.
        let mut rng = Xoshiro256::new(self.seed);
        for i in (1..updates.len()).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            updates.swap(i, j);
        }
        TurnstileStream::from_updates(self.domain, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branches_differ_only_on_heavy_item() {
        let mk = |collide| {
            AdversarialCollisionGenerator::new(1 << 10, 8, 100, 4096, collide, 3).generate()
        };
        let a = mk(false).frequency_vector();
        let b = mk(true).frequency_vector();
        assert_eq!(a.get(0), 4096);
        assert_eq!(b.get(0), 4096 + 8);
        for item in 1..=100u64 {
            assert_eq!(a.get(item), 8);
            assert_eq!(b.get(item), 8);
        }
        assert_eq!(a.support_size(), 101);
        assert_eq!(b.support_size(), 101);
    }

    #[test]
    fn insertion_only_and_deterministic() {
        let g = || AdversarialCollisionGenerator::new(256, 4, 10, 100, true, 7).generate();
        let s = g();
        assert!(s.is_insertion_only());
        assert_eq!(s, g());
        assert_eq!(s.len(), (10 * 4 + 104) as usize);
    }

    #[test]
    fn heavy_value_reporting() {
        let g = AdversarialCollisionGenerator::new(64, 3, 5, 50, false, 0);
        assert_eq!(g.heavy_value(), 50);
        let g = AdversarialCollisionGenerator::new(64, 3, 5, 50, true, 0);
        assert_eq!(g.heavy_value(), 53);
    }

    #[test]
    fn lazy_source_realizes_the_same_frequency_vector() {
        let mut g = AdversarialCollisionGenerator::new(256, 4, 10, 100, true, 7);
        let materialized = g.generate().frequency_vector();
        let pulled = g.collect_stream();
        assert_eq!(pulled.frequency_vector(), materialized);
        assert_eq!(g.next_update(), None);
        // reset() replays the identical lazy sequence.
        g.reset();
        let replay = g.collect_stream();
        assert_eq!(replay.frequency_vector(), materialized);
    }

    #[test]
    #[should_panic(expected = "domain too small")]
    fn domain_too_small_panics() {
        let _ = AdversarialCollisionGenerator::new(4, 1, 4, 10, false, 0);
    }
}
