//! Sharded parallel ingestion.
//!
//! Linear sketches make parallel ingestion trivial: clone one prototype
//! sketch per worker (identical hash seeds), split the update stream across
//! the workers, and [`merge`](crate::MergeableSketch::merge) the per-worker
//! states at the end.  Because every sketch in this workspace is a linear
//! function of the frequency vector — and its counters take integer values
//! that `f64` represents exactly — the merged result is *identical* to
//! single-threaded ingestion of the same updates, in any order.
//!
//! This is the ingestion topology a production deployment uses: N ingest
//! workers behind a load balancer, each absorbing a shard of the traffic,
//! with a periodic merge producing the queryable global sketch.

use crate::sink::{MergeError, MergeableSketch, StreamSink};
use crate::source::UpdateSource;
use crate::update::Update;
use std::sync::mpsc;

/// Configuration for sharded ingestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedIngest {
    shards: usize,
    batch: usize,
}

impl ShardedIngest {
    /// Ingest with `shards` worker threads.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self {
            shards,
            batch: 1024,
        }
    }

    /// Override the number of updates per message handed to a worker
    /// (larger batches amortize channel overhead).
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        self.batch = batch;
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Split `source` across the shards round-robin (in batches), feed each
    /// shard's updates into a clone of `prototype` on its own thread, and
    /// merge the shard sketches back into one.
    ///
    /// The clones share the prototype's hash seeds, so the merge is exact:
    /// the result answers every query identically to a single sketch that
    /// absorbed the whole stream.
    pub fn ingest<Src, S>(&self, source: &mut Src, prototype: &S) -> Result<S, MergeError>
    where
        Src: UpdateSource,
        S: StreamSink + MergeableSketch + Clone + Send,
    {
        if self.shards == 1 {
            let mut sketch = prototype.clone();
            source.feed_batched(&mut sketch, self.batch);
            return Ok(sketch);
        }

        let shard_results = std::thread::scope(|scope| {
            let mut senders: Vec<mpsc::SyncSender<Vec<Update>>> = Vec::with_capacity(self.shards);
            let mut handles = Vec::with_capacity(self.shards);
            for _ in 0..self.shards {
                // A small bounded queue keeps memory flat when the producer
                // outpaces the workers.
                let (tx, rx) = mpsc::sync_channel::<Vec<Update>>(4);
                senders.push(tx);
                let mut sketch = prototype.clone();
                handles.push(scope.spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        sketch.update_batch(&batch);
                    }
                    sketch
                }));
            }

            // Round-robin batches over the shards.
            let mut shard = 0usize;
            let mut buf: Vec<Update> = Vec::with_capacity(self.batch);
            loop {
                buf.clear();
                while buf.len() < self.batch {
                    match source.next_update() {
                        Some(u) => buf.push(u),
                        None => break,
                    }
                }
                if buf.is_empty() {
                    break;
                }
                senders[shard]
                    .send(std::mem::replace(&mut buf, Vec::with_capacity(self.batch)))
                    .expect("worker alive while its sender is held");
                shard = (shard + 1) % self.shards;
            }
            drop(senders);

            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect::<Vec<S>>()
        });

        let mut iter = shard_results.into_iter();
        let mut merged = iter.next().expect("at least one shard");
        for other in iter {
            merged.merge(&other)?;
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequency::FrequencyVector;
    use crate::generator::{StreamConfig, StreamGenerator, UniformStreamGenerator};
    use crate::stream::TurnstileStream;

    /// A frequency vector is itself a (trivially mergeable) linear sketch.
    #[derive(Debug, Clone)]
    struct ExactSink {
        fv: FrequencyVector,
    }

    impl StreamSink for ExactSink {
        fn update(&mut self, u: Update) {
            self.fv.apply(u.item, u.delta);
        }
    }

    impl MergeableSketch for ExactSink {
        fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
            if self.fv.domain() != other.fv.domain() {
                return Err(MergeError::new("domain mismatch"));
            }
            for (item, v) in other.fv.iter() {
                self.fv.apply(item, v);
            }
            Ok(())
        }
    }

    fn exact(domain: u64) -> ExactSink {
        ExactSink {
            fv: FrequencyVector::new(domain),
        }
    }

    #[test]
    fn sharded_equals_single_threaded() {
        let mut gen = UniformStreamGenerator::new(StreamConfig::turnstile(128, 20_000, 0.2), 7);
        let reference = gen.generate();

        for shards in [1usize, 2, 4, 8] {
            gen.reset();
            let merged = ShardedIngest::new(shards)
                .with_batch_size(256)
                .ingest(&mut gen, &exact(128))
                .unwrap();
            assert_eq!(
                merged.fv,
                reference.frequency_vector(),
                "sharded ({shards}) ingestion must agree with the exact frequency vector"
            );
        }
    }

    #[test]
    fn merge_failure_propagates() {
        // Two-shard ingest of a source whose updates are fine, but the
        // prototype is rigged to fail merges via a domain mismatch is not
        // constructible here (clones agree); instead check the error path
        // directly.
        let mut a = exact(8);
        let b = exact(9);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn single_shard_short_circuits() {
        let mut s = TurnstileStream::new(16);
        s.push_delta(3, 5);
        let merged = ShardedIngest::new(1)
            .ingest(&mut s.source(), &exact(16))
            .unwrap();
        assert_eq!(merged.fv.get(3), 5);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedIngest::new(0);
    }
}
