//! Sharded parallel ingestion.
//!
//! Linear sketches make parallel ingestion trivial: clone one prototype
//! sketch per worker (identical hash seeds), split the update stream across
//! the workers, and [`merge`](crate::MergeableSketch::merge) the per-worker
//! states at the end.  Because every sketch in this workspace is a linear
//! function of the frequency vector — and its counters take integer values
//! that `f64` represents exactly — the merged result is *identical* to
//! single-threaded ingestion of the same updates, in any order.
//!
//! This is the ingestion topology a production deployment uses: N ingest
//! workers behind a load balancer, each absorbing a shard of the traffic,
//! with a periodic merge producing the queryable global sketch.
//!
//! Long-running ingestions are also *checkpointable*: [`ShardedIngest::ingest_limited`]
//! stops after a bounded number of updates so the merged state can be
//! [saved](crate::Checkpoint::save) to bytes, and [`ShardedIngest::resume`]
//! rehydrates that state and continues with the rest of the source — the
//! final state is bit-identical to an uninterrupted run.

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::pipeline::{validate_batch, validate_depth, validate_workers, IngestConfigError};
use crate::sink::{MergeError, MergeableSketch, StreamSink};
use crate::source::{TakeSource, UpdateSource};
use crate::update::Update;
use std::sync::mpsc;

/// Configuration for sharded ingestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedIngest {
    shards: usize,
    batch: usize,
    depth: usize,
}

impl ShardedIngest {
    /// Ingest with `shards` worker threads.
    ///
    /// # Panics
    /// Panics if `shards == 0`; use [`try_new`](Self::try_new) for a
    /// fallible constructor.
    pub fn new(shards: usize) -> Self {
        Self::try_new(shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects `shards == 0` with a typed error —
    /// the same validation [`PipelinedIngest`](crate::PipelinedIngest)
    /// applies to its worker count.
    pub fn try_new(shards: usize) -> Result<Self, IngestConfigError> {
        Ok(Self {
            shards: validate_workers(shards)?,
            batch: 1024,
            depth: 4,
        })
    }

    /// Override the number of updates per message handed to a worker
    /// (larger batches amortize channel overhead).
    ///
    /// # Panics
    /// Panics if `batch == 0`; use
    /// [`try_with_batch_size`](Self::try_with_batch_size) for a fallible
    /// builder.
    pub fn with_batch_size(self, batch: usize) -> Self {
        self.try_with_batch_size(batch)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible builder: rejects `batch == 0`.
    pub fn try_with_batch_size(mut self, batch: usize) -> Result<Self, IngestConfigError> {
        self.batch = validate_batch(batch)?;
        Ok(self)
    }

    /// Override the bounded per-worker channel depth (the backpressure knob:
    /// at most `shards · depth · batch` updates are in flight before the
    /// producer blocks).
    ///
    /// # Panics
    /// Panics if `depth == 0`; use
    /// [`try_with_channel_depth`](Self::try_with_channel_depth) for a
    /// fallible builder.
    pub fn with_channel_depth(self, depth: usize) -> Self {
        self.try_with_channel_depth(depth)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible builder: rejects `depth == 0`.
    pub fn try_with_channel_depth(mut self, depth: usize) -> Result<Self, IngestConfigError> {
        self.depth = validate_depth(depth)?;
        Ok(self)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Bounded per-worker channel depth.
    pub fn channel_depth(&self) -> usize {
        self.depth
    }

    /// Split `source` across the shards round-robin (in batches), feed each
    /// shard's updates into a clone of `prototype` on its own thread, and
    /// merge the shard sketches back into one.
    ///
    /// The clones share the prototype's hash seeds, so the merge is exact:
    /// the result answers every query identically to a single sketch that
    /// absorbed the whole stream.
    pub fn ingest<Src, S>(&self, source: &mut Src, prototype: &S) -> Result<S, MergeError>
    where
        Src: UpdateSource,
        S: StreamSink + MergeableSketch + Clone + Send,
    {
        let states = vec![prototype.clone(); self.shards];
        self.ingest_states(source, states)
    }

    /// Like [`ingest`](Self::ingest), but stop pulling from the source after
    /// at most `limit` updates.  Returns the merged sketch and the number of
    /// updates actually consumed (less than `limit` when the source ran dry).
    ///
    /// This is the "stop" half of checkpointed ingestion: serialize the
    /// returned sketch with [`Checkpoint::save`], park the bytes, and later
    /// continue from them with [`resume`](Self::resume).
    pub fn ingest_limited<Src, S>(
        &self,
        source: &mut Src,
        prototype: &S,
        limit: usize,
    ) -> Result<(S, usize), MergeError>
    where
        Src: UpdateSource,
        S: StreamSink + MergeableSketch + Clone + Send,
    {
        let mut take = TakeSource::new(source, limit);
        let merged = self.ingest(&mut take, prototype)?;
        let consumed = limit - take.left();
        Ok((merged, consumed))
    }

    /// Continue a checkpointed ingestion: restore the saved state from `r`,
    /// shard-ingest the (remaining) `source` into clones of `prototype`, and
    /// fold the new mass into the restored state.
    ///
    /// `prototype` must be a *fresh* sketch built with the same configuration
    /// and seed as the one the checkpoint was taken from (the merge refuses
    /// anything else); a prototype that has already absorbed updates would
    /// double-count them.  For a two-pass sketch resumed mid-second-pass, the
    /// prototype must be a just-transitioned state with empty tabulations —
    /// phase-aware merging then folds only the new exact counts.
    ///
    /// The result is bit-identical to a single sketch that absorbed the whole
    /// stream without interruption.
    pub fn resume<Src, S>(
        &self,
        source: &mut Src,
        prototype: &S,
        r: &mut impl std::io::Read,
    ) -> Result<S, CheckpointError>
    where
        Src: UpdateSource,
        S: StreamSink + MergeableSketch + Checkpoint + Clone + Send,
    {
        let mut restored = S::restore(r)?;
        let delta = self.ingest(source, prototype)?;
        restored.merge(&delta)?;
        Ok(restored)
    }

    /// Shard-ingest `source` into explicitly provided worker states (one per
    /// shard), then merge them left to right.  This is the primitive behind
    /// [`ingest`](Self::ingest) (clones of a prototype) and the two-pass
    /// coordinator's phase-2 fan-out (states rehydrated from checkpoint
    /// bytes).
    ///
    /// # Panics
    /// Panics if `states.len() != self.shards()`.
    pub fn ingest_states<Src, S>(&self, source: &mut Src, states: Vec<S>) -> Result<S, MergeError>
    where
        Src: UpdateSource,
        S: StreamSink + MergeableSketch + Send,
    {
        assert_eq!(states.len(), self.shards, "one worker state per shard");
        if self.shards == 1 {
            let mut sketch = states.into_iter().next().expect("one state");
            source.feed_batched(&mut sketch, self.batch);
            return Ok(sketch);
        }

        let shard_results = std::thread::scope(|scope| {
            let mut senders: Vec<mpsc::SyncSender<Vec<Update>>> = Vec::with_capacity(self.shards);
            let mut handles = Vec::with_capacity(self.shards);
            for mut sketch in states {
                // A bounded queue keeps memory flat when the producer
                // outpaces the workers; its depth is the backpressure knob.
                let (tx, rx) = mpsc::sync_channel::<Vec<Update>>(self.depth);
                senders.push(tx);
                handles.push(scope.spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        sketch.update_batch(&batch);
                    }
                    sketch
                }));
            }

            // Round-robin batches over the shards.
            let mut shard = 0usize;
            let mut buf: Vec<Update> = Vec::with_capacity(self.batch);
            loop {
                buf.clear();
                while buf.len() < self.batch {
                    match source.next_update() {
                        Some(u) => buf.push(u),
                        None => break,
                    }
                }
                if buf.is_empty() {
                    break;
                }
                senders[shard]
                    .send(std::mem::replace(&mut buf, Vec::with_capacity(self.batch)))
                    .expect("worker alive while its sender is held");
                shard = (shard + 1) % self.shards;
            }
            drop(senders);

            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect::<Vec<S>>()
        });

        let mut iter = shard_results.into_iter();
        let mut merged = iter.next().expect("at least one shard");
        for other in iter {
            merged.merge(&other)?;
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{
        kind, read_header, read_i64, read_u64, write_header, write_i64, write_u64, Checkpoint,
        CheckpointError,
    };
    use crate::frequency::FrequencyVector;
    use crate::generator::{StreamConfig, StreamGenerator, UniformStreamGenerator};
    use crate::stream::TurnstileStream;

    /// A frequency vector is itself a (trivially mergeable) linear sketch.
    #[derive(Debug, Clone)]
    struct ExactSink {
        fv: FrequencyVector,
    }

    impl StreamSink for ExactSink {
        fn update(&mut self, u: Update) {
            self.fv.apply(u.item, u.delta);
        }
    }

    impl MergeableSketch for ExactSink {
        fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
            if self.fv.domain() != other.fv.domain() {
                return Err(MergeError::new("domain mismatch"));
            }
            for (item, v) in other.fv.iter() {
                self.fv.apply(item, v);
            }
            Ok(())
        }
    }

    impl Checkpoint for ExactSink {
        fn save(&self, w: &mut impl std::io::Write) -> Result<(), CheckpointError> {
            write_header(w, kind::EXACT_FREQUENCIES)?;
            write_u64(w, self.fv.domain())?;
            let entries = self.fv.sorted_entries();
            write_u64(w, entries.len() as u64)?;
            for (item, v) in entries {
                write_u64(w, item)?;
                write_i64(w, v)?;
            }
            Ok(())
        }

        fn restore(r: &mut impl std::io::Read) -> Result<Self, CheckpointError> {
            read_header(r, kind::EXACT_FREQUENCIES)?;
            let domain = read_u64(r)?;
            let mut fv = FrequencyVector::new(domain);
            let n = read_u64(r)?;
            for _ in 0..n {
                let item = read_u64(r)?;
                let v = read_i64(r)?;
                fv.apply(item, v);
            }
            Ok(ExactSink { fv })
        }
    }

    fn exact(domain: u64) -> ExactSink {
        ExactSink {
            fv: FrequencyVector::new(domain),
        }
    }

    #[test]
    fn sharded_equals_single_threaded() {
        let mut gen = UniformStreamGenerator::new(StreamConfig::turnstile(128, 20_000, 0.2), 7);
        let reference = gen.generate();

        for shards in [1usize, 2, 4, 8] {
            gen.reset();
            let merged = ShardedIngest::new(shards)
                .with_batch_size(256)
                .ingest(&mut gen, &exact(128))
                .unwrap();
            assert_eq!(
                merged.fv,
                reference.frequency_vector(),
                "sharded ({shards}) ingestion must agree with the exact frequency vector"
            );
        }
    }

    #[test]
    fn merge_failure_propagates() {
        // Two-shard ingest of a source whose updates are fine, but the
        // prototype is rigged to fail merges via a domain mismatch is not
        // constructible here (clones agree); instead check the error path
        // directly.
        let mut a = exact(8);
        let b = exact(9);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn single_shard_short_circuits() {
        let mut s = TurnstileStream::new(16);
        s.push_delta(3, 5);
        let merged = ShardedIngest::new(1)
            .ingest(&mut s.source(), &exact(16))
            .unwrap();
        assert_eq!(merged.fv.get(3), 5);
    }

    #[test]
    fn ingest_limited_consumes_exactly_the_limit_and_resume_finishes() {
        let mut gen = UniformStreamGenerator::new(StreamConfig::turnstile(64, 5_000, 0.2), 11);
        let reference = gen.generate();

        for shards in [1usize, 3] {
            for limit in [0usize, 1, 1_000, 4_999, 5_000, 9_999] {
                gen.reset();
                let ingest = ShardedIngest::new(shards).with_batch_size(64);
                let (partial, consumed) =
                    ingest.ingest_limited(&mut gen, &exact(64), limit).unwrap();
                assert_eq!(consumed, limit.min(5_000));

                // Stop: serialize the partial state; continue from bytes.
                let bytes = partial.to_checkpoint_bytes().unwrap();
                let resumed = ingest
                    .resume(&mut gen, &exact(64), &mut bytes.as_slice())
                    .unwrap();
                assert_eq!(
                    resumed.fv,
                    reference.frequency_vector(),
                    "resume after {consumed}/{} updates ({shards} shards) must match",
                    reference.len()
                );
            }
        }
    }

    #[test]
    fn resume_propagates_restore_errors() {
        let mut s = TurnstileStream::new(16);
        s.push_delta(3, 5);
        let err =
            ShardedIngest::new(2).resume(&mut s.source(), &exact(16), &mut [0u8; 3].as_slice());
        assert!(err.is_err());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedIngest::new(0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_panics() {
        let _ = ShardedIngest::new(1).with_batch_size(0);
    }

    #[test]
    #[should_panic(expected = "channel depth must be positive")]
    fn zero_depth_panics() {
        let _ = ShardedIngest::new(1).with_channel_depth(0);
    }

    #[test]
    fn try_constructors_reject_zeros_with_typed_errors() {
        use crate::pipeline::IngestConfigError;
        assert_eq!(ShardedIngest::try_new(0), Err(IngestConfigError::NoWorkers));
        assert_eq!(
            ShardedIngest::try_new(2).unwrap().try_with_batch_size(0),
            Err(IngestConfigError::ZeroBatch)
        );
        assert_eq!(
            ShardedIngest::try_new(2).unwrap().try_with_channel_depth(0),
            Err(IngestConfigError::ZeroDepth)
        );
        let ok = ShardedIngest::try_new(2)
            .unwrap()
            .try_with_batch_size(512)
            .unwrap()
            .try_with_channel_depth(8)
            .unwrap();
        assert_eq!((ok.shards(), ok.channel_depth()), (2, 8));
    }

    #[test]
    fn channel_depth_does_not_change_the_result() {
        let mut gen = UniformStreamGenerator::new(StreamConfig::turnstile(64, 4_000, 0.2), 3);
        let reference = gen.generate();
        for depth in [1usize, 2, 16] {
            gen.reset();
            let merged = ShardedIngest::new(3)
                .with_batch_size(128)
                .with_channel_depth(depth)
                .ingest(&mut gen, &exact(64))
                .unwrap();
            assert_eq!(merged.fv, reference.frequency_vector(), "depth {depth}");
        }
    }

    #[test]
    #[should_panic(expected = "one worker state per shard")]
    fn ingest_states_requires_one_state_per_shard() {
        let s = TurnstileStream::new(16);
        let _ = ShardedIngest::new(2).ingest_states(&mut s.source(), vec![exact(16)]);
    }
}
