//! A single turnstile update `(i, δ)`.

/// One stream update: item `i` receives an additive change `δ`.
///
/// The paper's turnstile model allows arbitrary integer deltas (subject to the
/// prefix bound `M`); the insertion-only model restricts `δ = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Update {
    /// Item identifier in `[0, n)`.
    pub item: u64,
    /// Additive change to the item's frequency.
    pub delta: i64,
}

impl Update {
    /// Create an update.
    pub fn new(item: u64, delta: i64) -> Self {
        Self { item, delta }
    }

    /// An insertion-only update (`δ = +1`).
    pub fn insert(item: u64) -> Self {
        Self { item, delta: 1 }
    }

    /// A deletion update (`δ = -1`).
    pub fn delete(item: u64) -> Self {
        Self { item, delta: -1 }
    }

    /// Whether the update is an insertion-only update.
    pub fn is_unit_insertion(&self) -> bool {
        self.delta == 1
    }
}

impl From<(u64, i64)> for Update {
    fn from((item, delta): (u64, i64)) -> Self {
        Self { item, delta }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Update::new(4, -3), Update { item: 4, delta: -3 });
        assert_eq!(Update::insert(7), Update { item: 7, delta: 1 });
        assert_eq!(Update::delete(7), Update { item: 7, delta: -1 });
    }

    #[test]
    fn unit_insertion_detection() {
        assert!(Update::insert(0).is_unit_insertion());
        assert!(!Update::delete(0).is_unit_insertion());
        assert!(!Update::new(0, 2).is_unit_insertion());
    }

    #[test]
    fn from_tuple() {
        let u: Update = (3u64, 5i64).into();
        assert_eq!(u, Update::new(3, 5));
    }
}
