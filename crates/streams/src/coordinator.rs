//! The sharded two-pass coordinator.
//!
//! The two-pass g-SUM algorithms are a three-step state machine: absorb the
//! stream (pass 1), freeze the per-level candidate sets
//! (`begin_second_pass`), replay the stream tabulating candidates exactly
//! (pass 2).  Sharding pass 1 is ordinary linear-sketch sharding; pass 2 is
//! subtler because every worker needs the *same* frozen candidate sets — the
//! transition must happen exactly once, on the merged pass-1 state, and the
//! resulting frozen state must be distributed to the pass-2 workers
//! (clone-after-transition).
//!
//! [`ShardedTwoPassCoordinator`] automates that protocol:
//!
//! ```text
//! pass-1 source ──► ShardedIngest (clones of the fresh prototype)
//!                        │ merge
//!                        ▼
//!                begin_second_pass()          (exactly once)
//!                        │ Checkpoint::save
//!                        ▼
//!                frozen-state bytes ──► one Checkpoint::restore per shard
//!                                             │
//! pass-2 source ──► ShardedIngest::ingest_states (rehydrated workers)
//!                        │ merge (phase-aware: exact counts sum,
//!                        ▼        frozen first-pass state is kept once)
//!                  final queryable state
//! ```
//!
//! Distributing the frozen state as checkpoint *bytes* rather than in-memory
//! clones is deliberate: it is exactly what a multi-machine deployment does
//! (the coordinator broadcasts the frozen state over the wire), and it
//! exercises the guarantee that a restored state is bit-identical to the
//! original.  The result is proven bit-identical to a single-threaded
//! two-pass run by the workspace's integration tests.

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::sharded::ShardedIngest;
use crate::sink::{MergeableSketch, StreamSink};
use crate::source::UpdateSource;

/// A two-phase (two-pass) sketch: pass 1 absorbs the stream, a single
/// [`begin_second_pass`](TwoPhaseSketch::begin_second_pass) transition
/// freezes the candidate state, pass 2 replays the stream.
///
/// Implementations must be phase-aware mergeables: first-pass states merge
/// their linear sketches; second-pass states merge their exact tabulations
/// while keeping the (identical) frozen first-pass state once — the
/// clone-after-transition contract the coordinator relies on.
pub trait TwoPhaseSketch: StreamSink + MergeableSketch {
    /// Close the first pass, freezing the candidate state.  Idempotent.
    fn begin_second_pass(&mut self);

    /// Whether the first pass has been closed.
    fn in_second_pass(&self) -> bool;
}

/// Drives a [`TwoPhaseSketch`] through both passes with sharded ingestion,
/// redistributing the frozen between-pass state to the phase-2 workers via
/// checkpoint bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedTwoPassCoordinator {
    ingest: ShardedIngest,
}

impl ShardedTwoPassCoordinator {
    /// Coordinate with `shards` worker threads per pass.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        Self {
            ingest: ShardedIngest::new(shards),
        }
    }

    /// Override the per-worker message batch size (see
    /// [`ShardedIngest::with_batch_size`]).
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.ingest = self.ingest.with_batch_size(batch);
        self
    }

    /// Number of shards per pass.
    pub fn shards(&self) -> usize {
        self.ingest.shards()
    }

    /// Run the full two-phase protocol: shard-ingest `pass1`, transition
    /// once, serialize the frozen state, rehydrate one worker per shard from
    /// the bytes, shard-ingest `pass2`, and merge.  The two sources must
    /// yield the same stream (the second pass is a replay).
    ///
    /// Returns the final state, bit-identical to a single-threaded run of
    /// pass 1 → `begin_second_pass` → pass 2, together with the frozen-state
    /// checkpoint bytes (which the caller can persist to restart pass 2 from
    /// scratch, e.g. after a worker loss).
    pub fn run<Src1, Src2, S>(
        &self,
        prototype: &S,
        pass1: &mut Src1,
        pass2: &mut Src2,
    ) -> Result<(S, Vec<u8>), CheckpointError>
    where
        Src1: UpdateSource,
        Src2: UpdateSource,
        S: TwoPhaseSketch + Checkpoint + Clone + Send,
    {
        // Pass 1: ordinary sharded linear ingestion from the fresh prototype.
        let mut merged = self.ingest.ingest(pass1, prototype)?;

        // The transition happens exactly once, on the merged global state.
        merged.begin_second_pass();

        // Broadcast the frozen state as checkpoint bytes and rehydrate one
        // pass-2 worker per shard from them (clone-after-transition).  Every
        // worker starts from the identical frozen candidate sets with empty
        // tabulations.
        let frozen = merged.to_checkpoint_bytes()?;
        let mut workers = Vec::with_capacity(self.ingest.shards());
        for _ in 0..self.ingest.shards() {
            workers.push(S::from_checkpoint_bytes(&frozen)?);
        }

        // Pass 2: each worker tabulates its shard of the replay; the
        // phase-aware merge sums the exact counts while keeping the frozen
        // first-pass state once.
        let finished = self.ingest.ingest_states(pass2, workers)?;
        Ok((finished, frozen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{
        kind, read_header, read_i64, read_u64, read_u8, write_header, write_i64, write_u64,
        write_u8,
    };
    use crate::generator::{StreamConfig, StreamGenerator, ZipfStreamGenerator};
    use crate::sink::MergeError;
    use crate::update::Update;
    use std::collections::BTreeMap;

    /// A miniature two-phase sketch: pass 1 counts everything exactly, the
    /// transition freezes the currently-heaviest items as candidates, pass 2
    /// re-tabulates only the candidates.  Small enough to reason about, yet
    /// it exercises the whole protocol: phase tags, frozen candidate sets,
    /// phase-aware merging and checkpoint rehydration.
    #[derive(Debug, Clone, PartialEq)]
    struct ToyTwoPass {
        in_second: bool,
        pass1: BTreeMap<u64, i64>,
        candidates: BTreeMap<u64, i64>,
    }

    impl ToyTwoPass {
        fn new() -> Self {
            Self {
                in_second: false,
                pass1: BTreeMap::new(),
                candidates: BTreeMap::new(),
            }
        }
    }

    impl StreamSink for ToyTwoPass {
        fn update(&mut self, u: Update) {
            if self.in_second {
                if let Some(c) = self.candidates.get_mut(&u.item) {
                    *c += u.delta;
                }
            } else {
                *self.pass1.entry(u.item).or_insert(0) += u.delta;
            }
        }
    }

    impl MergeableSketch for ToyTwoPass {
        fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
            if self.in_second != other.in_second {
                return Err(MergeError::new("phase mismatch"));
            }
            if self.in_second {
                if self.candidates.keys().ne(other.candidates.keys()) {
                    return Err(MergeError::new("candidate sets differ"));
                }
                for (item, v) in &other.candidates {
                    *self.candidates.get_mut(item).expect("same keys") += v;
                }
                // Clone-after-transition: the frozen pass-1 state is already
                // identical on both sides; keep self's copy.
            } else {
                for (&item, &v) in &other.pass1 {
                    *self.pass1.entry(item).or_insert(0) += v;
                }
            }
            Ok(())
        }
    }

    impl TwoPhaseSketch for ToyTwoPass {
        fn begin_second_pass(&mut self) {
            if self.in_second {
                return;
            }
            // Freeze the top-2 items by |count| (deterministic tie-break).
            let mut items: Vec<(u64, i64)> = self.pass1.iter().map(|(&i, &v)| (i, v)).collect();
            items.sort_by_key(|&(i, v)| (std::cmp::Reverse(v.abs()), i));
            self.candidates = items.into_iter().take(2).map(|(i, _)| (i, 0)).collect();
            self.in_second = true;
        }

        fn in_second_pass(&self) -> bool {
            self.in_second
        }
    }

    impl Checkpoint for ToyTwoPass {
        fn save(&self, w: &mut impl std::io::Write) -> Result<(), CheckpointError> {
            write_header(w, kind::TWO_PASS_GSUM)?;
            write_u8(w, u8::from(self.in_second))?;
            for map in [&self.pass1, &self.candidates] {
                write_u64(w, map.len() as u64)?;
                for (&item, &v) in map {
                    write_u64(w, item)?;
                    write_i64(w, v)?;
                }
            }
            Ok(())
        }

        fn restore(r: &mut impl std::io::Read) -> Result<Self, CheckpointError> {
            read_header(r, kind::TWO_PASS_GSUM)?;
            let in_second = read_u8(r)? != 0;
            let mut maps = [BTreeMap::new(), BTreeMap::new()];
            for map in &mut maps {
                let n = read_u64(r)?;
                for _ in 0..n {
                    let item = read_u64(r)?;
                    let v = read_i64(r)?;
                    map.insert(item, v);
                }
            }
            let [pass1, candidates] = maps;
            Ok(ToyTwoPass {
                in_second,
                pass1,
                candidates,
            })
        }
    }

    fn single_threaded(stream: &crate::stream::TurnstileStream) -> ToyTwoPass {
        let mut s = ToyTwoPass::new();
        s.process_stream(stream);
        s.begin_second_pass();
        s.process_stream(stream);
        s
    }

    #[test]
    fn coordinator_matches_single_threaded_two_pass() {
        let stream = ZipfStreamGenerator::new(StreamConfig::new(64, 4_000), 1.2, 5).generate();
        let reference = single_threaded(&stream);
        for shards in [1usize, 2, 4] {
            let coordinator = ShardedTwoPassCoordinator::new(shards).with_batch_size(128);
            assert_eq!(coordinator.shards(), shards);
            let (result, frozen) = coordinator
                .run(
                    &ToyTwoPass::new(),
                    &mut stream.source(),
                    &mut stream.source(),
                )
                .unwrap();
            assert_eq!(result, reference, "{shards} shards");
            // The frozen bytes restore to the just-transitioned state.
            let rehydrated = ToyTwoPass::from_checkpoint_bytes(&frozen).unwrap();
            assert!(rehydrated.in_second_pass());
            assert!(rehydrated.candidates.values().all(|&v| v == 0));
        }
    }

    #[test]
    fn transition_happens_exactly_once_on_the_merged_state() {
        // Plant heavy items in different halves of the stream: only the
        // merged pass-1 state sees both, so per-shard transitions would
        // freeze different candidate sets and the merge would fail.  The
        // coordinator transitioning once on the merged state must succeed.
        let mut stream = crate::stream::TurnstileStream::new(64);
        for _ in 0..100 {
            stream.push_delta(1, 1);
        }
        for _ in 0..100 {
            stream.push_delta(2, 1);
        }
        let reference = single_threaded(&stream);
        let (result, _) = ShardedTwoPassCoordinator::new(2)
            .with_batch_size(16)
            .run(
                &ToyTwoPass::new(),
                &mut stream.source(),
                &mut stream.source(),
            )
            .unwrap();
        assert_eq!(result, reference);
        assert!(result.candidates.contains_key(&1) && result.candidates.contains_key(&2));
    }
}
