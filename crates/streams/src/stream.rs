//! The turnstile stream representation.

use crate::error::StreamError;
use crate::frequency::FrequencyVector;
use crate::sink::StreamSink;
use crate::source::StreamSource;
use crate::update::Update;

/// A turnstile stream `D ∈ D(n, m)`: a domain size `n` together with an
/// ordered list of updates.
///
/// The structure also records the magnitude bound `M` actually attained over
/// all prefixes, which the paper's model promises is `poly(n)`; algorithms use
/// [`TurnstileStream::magnitude_bound`] where the analyses refer to `M`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurnstileStream {
    domain: u64,
    updates: Vec<Update>,
}

impl TurnstileStream {
    /// Create an empty stream over the domain `[0, n)`.
    ///
    /// # Panics
    /// Panics if `domain == 0`.
    pub fn new(domain: u64) -> Self {
        assert!(domain > 0, "stream domain size must be positive");
        Self {
            domain,
            updates: Vec::new(),
        }
    }

    /// Create a stream from a list of updates.
    pub fn from_updates(domain: u64, updates: Vec<Update>) -> Self {
        let mut s = Self::new(domain);
        s.updates = updates;
        s
    }

    /// Domain size `n`.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// Stream length `m` (number of updates).
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the stream has no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Append an update.
    pub fn push(&mut self, update: Update) {
        self.updates.push(update);
    }

    /// Append `count` unit insertions of `item` — `count` separate `(item, +1)`
    /// updates, so the stream stays valid in the *insertion-only* model that
    /// the paper's lower bounds are stated in (and that
    /// [`TurnstileStream::is_insertion_only`] detects).
    ///
    /// Callers that only care about the final frequency vector should prefer
    /// [`TurnstileStream::push_delta`], which records one bulk update and
    /// keeps the stream length — and every per-update cost downstream —
    /// independent of `count`.
    pub fn push_insertions(&mut self, item: u64, count: u64) {
        self.updates.reserve(count as usize);
        for _ in 0..count {
            self.updates.push(Update::insert(item));
        }
    }

    /// Append a single bulk update `(item, delta)`.
    pub fn push_delta(&mut self, item: u64, delta: i64) {
        if delta != 0 {
            self.updates.push(Update::new(item, delta));
        }
    }

    /// Concatenate another stream's updates onto this one (used by the
    /// communication reductions, where Alice's and Bob's portions are
    /// concatenated).
    ///
    /// # Panics
    /// Panics if the domains differ.
    pub fn extend_from(&mut self, other: &TurnstileStream) {
        assert_eq!(self.domain, other.domain, "domain mismatch");
        self.updates.extend_from_slice(&other.updates);
    }

    /// The updates, in order.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// Iterate over the updates in stream order.
    pub fn iter(&self) -> impl Iterator<Item = &Update> + '_ {
        self.updates.iter()
    }

    /// Replay the stream as a lazy [`UpdateSource`](crate::UpdateSource) —
    /// e.g. to feed a materialized stream into [`crate::ShardedIngest`].
    pub fn source(&self) -> StreamSource<'_> {
        StreamSource::new(self)
    }

    /// Whether every update is a unit insertion (`δ = 1`), i.e. the stream is
    /// valid in the insertion-only model used by the lower bounds.
    pub fn is_insertion_only(&self) -> bool {
        self.updates.iter().all(Update::is_unit_insertion)
    }

    /// Exact frequency vector `V(D)`.
    pub fn frequency_vector(&self) -> FrequencyVector {
        let mut fv = FrequencyVector::new(self.domain);
        for u in &self.updates {
            fv.apply(u.item, u.delta);
        }
        fv
    }

    /// One shared accumulation pass over the prefix frequencies: returns the
    /// largest `|v_i|` any prefix reaches, checking items against the domain
    /// and (when given) the magnitude bound along the way.  Both
    /// [`TurnstileStream::magnitude_bound`] and [`TurnstileStream::validate`]
    /// are thin wrappers over this pass.
    fn scan_prefix_magnitudes(&self, bound: Option<i64>) -> Result<i64, StreamError> {
        if self.domain == 0 {
            return Err(StreamError::EmptyDomain);
        }
        let mut fv = FrequencyVector::new(self.domain);
        let mut max_abs = 0i64;
        for u in &self.updates {
            if u.item >= self.domain {
                return Err(StreamError::ItemOutOfDomain {
                    item: u.item,
                    domain: self.domain,
                });
            }
            fv.apply(u.item, u.delta);
            let f = fv.get(u.item);
            max_abs = max_abs.max(f.abs());
            if let Some(bound) = bound {
                if f.abs() > bound {
                    return Err(StreamError::MagnitudeBoundViolated {
                        item: u.item,
                        frequency: f,
                        bound,
                    });
                }
            }
        }
        Ok(max_abs)
    }

    /// The largest `|v_i|` reached by any prefix of the stream — the smallest
    /// `M` for which the turnstile promise holds.
    ///
    /// # Panics
    /// Panics if the stream contains items outside the domain (use
    /// [`TurnstileStream::validate`] for a fallible check).
    pub fn magnitude_bound(&self) -> i64 {
        self.scan_prefix_magnitudes(None)
            .expect("stream items inside the domain")
    }

    /// Validate the stream against the model: all items inside the domain and
    /// no prefix frequency exceeding `bound` in absolute value.
    pub fn validate(&self, bound: i64) -> Result<(), StreamError> {
        self.scan_prefix_magnitudes(Some(bound)).map(|_| ())
    }

    /// A deterministically shuffled copy of the stream (Fisher–Yates driven by
    /// the given seed).  The frequency vector is invariant under shuffling;
    /// this is used to check that sketches are order-insensitive in tests.
    pub fn shuffled(&self, seed: u64) -> TurnstileStream {
        let mut rng = gsum_hash::SplitMix64::new(seed);
        let mut updates = self.updates.clone();
        let len = updates.len();
        if len > 1 {
            for i in (1..len).rev() {
                let j = rng.next_below((i + 1) as u64) as usize;
                updates.swap(i, j);
            }
        }
        TurnstileStream {
            domain: self.domain,
            updates,
        }
    }
}

/// A materialized stream is itself a (space-unbounded) sink: pushing updates
/// appends them.  This lets recording taps share the push-based plumbing.
impl StreamSink for TurnstileStream {
    fn update(&mut self, update: Update) {
        self.push(update);
    }

    fn update_batch(&mut self, updates: &[Update]) {
        self.updates.extend_from_slice(updates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_stream() -> TurnstileStream {
        let mut s = TurnstileStream::new(8);
        s.push_insertions(1, 3);
        s.push_delta(2, -4);
        s.push(Update::new(1, 2));
        s
    }

    #[test]
    fn basic_accessors() {
        let s = small_stream();
        assert_eq!(s.domain(), 8);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(!s.is_insertion_only());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn empty_domain_panics() {
        let _ = TurnstileStream::new(0);
    }

    #[test]
    fn frequency_vector_accumulates() {
        let fv = small_stream().frequency_vector();
        assert_eq!(fv.get(1), 5);
        assert_eq!(fv.get(2), -4);
        assert_eq!(fv.support_size(), 2);
    }

    #[test]
    fn insertion_only_detection() {
        let mut s = TurnstileStream::new(4);
        s.push_insertions(0, 5);
        assert!(s.is_insertion_only());
        s.push(Update::delete(0));
        assert!(!s.is_insertion_only());
    }

    #[test]
    fn magnitude_bound_tracks_prefixes() {
        let mut s = TurnstileStream::new(4);
        s.push_delta(0, 10);
        s.push_delta(0, -7);
        // Final frequency is 3, but a prefix reached 10.
        assert_eq!(s.frequency_vector().get(0), 3);
        assert_eq!(s.magnitude_bound(), 10);
    }

    #[test]
    fn push_delta_zero_is_noop() {
        let mut s = TurnstileStream::new(4);
        s.push_delta(0, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn validate_accepts_valid_stream() {
        let s = small_stream();
        assert!(s.validate(100).is_ok());
    }

    #[test]
    fn validate_rejects_out_of_domain() {
        let mut s = TurnstileStream::new(4);
        s.push(Update::insert(4));
        assert_eq!(
            s.validate(10),
            Err(StreamError::ItemOutOfDomain { item: 4, domain: 4 })
        );
    }

    #[test]
    fn validate_rejects_bound_violation() {
        let mut s = TurnstileStream::new(4);
        s.push_delta(2, 11);
        assert!(matches!(
            s.validate(10),
            Err(StreamError::MagnitudeBoundViolated { item: 2, .. })
        ));
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = TurnstileStream::new(8);
        a.push_insertions(0, 2);
        let mut b = TurnstileStream::new(8);
        b.push_insertions(1, 3);
        a.extend_from(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.frequency_vector().get(1), 3);
    }

    #[test]
    fn shuffle_preserves_frequency_vector() {
        let s = small_stream();
        let shuffled = s.shuffled(99);
        assert_eq!(s.frequency_vector(), shuffled.frequency_vector());
        assert_eq!(s.len(), shuffled.len());
    }

    #[test]
    fn shuffle_is_deterministic() {
        let s = small_stream();
        assert_eq!(s.shuffled(7), s.shuffled(7));
    }
}
