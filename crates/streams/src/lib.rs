//! # gsum-streams
//!
//! The data-stream model of the paper (§1.2) and the workload generators used
//! by the experiment suite.
//!
//! A *turnstile stream* of length `m` over the domain `[n]` is a list of
//! updates `(i, δ)` with `i ∈ [n]` and `δ ∈ Z`; the *frequency vector*
//! `V(D) ∈ Z^n` has `v_i = Σ_{j : i_j = i} δ_j`.  The model promises
//! `|v_i| ≤ M` for every prefix.  The paper's algorithms run in the turnstile
//! model; its lower bounds already hold for insertion-only streams (`δ = 1`).
//!
//! This crate provides:
//! * [`Update`] / [`TurnstileStream`] — the stream representation, with
//!   prefix-bound (`M`) tracking and insertion-only detection.
//! * [`FrequencyVector`] — the exact frequency vector with the norms and
//!   order statistics the analyses refer to (`F_2`, tail mass, heavy-hitter
//!   queries).
//! * [`generator`] — workload generators: uniform and Zipf item popularity,
//!   planted heavy-hitter streams, frequency-prescribed streams (used by the
//!   communication reductions), and adversarial collision workloads.
//! * [`multipass`] — a tiny driver that feeds a stream to a `p`-pass
//!   algorithm, pass by pass, so that 2-pass algorithms are exercised through
//!   the same interface as 1-pass ones.

pub mod error;
pub mod frequency;
pub mod generator;
pub mod multipass;
pub mod stream;
pub mod update;

pub use error::StreamError;
pub use frequency::FrequencyVector;
pub use generator::{
    AdversarialCollisionGenerator, FrequencyPrescribedGenerator, PlantedStreamGenerator,
    StreamConfig, StreamGenerator, UniformStreamGenerator, ZipfStreamGenerator,
};
pub use multipass::{run_multi_pass, run_one_pass, MultiPassAlgorithm, OnePassAlgorithm};
pub use stream::TurnstileStream;
pub use update::Update;
