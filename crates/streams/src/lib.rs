//! # gsum-streams
//!
//! The data-stream model of the paper (§1.2) and the workload generators used
//! by the experiment suite.
//!
//! A *turnstile stream* of length `m` over the domain `[n]` is a list of
//! updates `(i, δ)` with `i ∈ [n]` and `δ ∈ Z`; the *frequency vector*
//! `V(D) ∈ Z^n` has `v_i = Σ_{j : i_j = i} δ_j`.  The model promises
//! `|v_i| ≤ M` for every prefix.  The paper's algorithms run in the turnstile
//! model; its lower bounds already hold for insertion-only streams (`δ = 1`).
//!
//! This crate provides:
//! * [`Update`] / [`TurnstileStream`] — the stream representation, with
//!   prefix-bound (`M`) tracking and insertion-only detection.
//! * [`StreamSink`] / [`MergeableSketch`] — the push-based ingestion
//!   contract every sketch and estimator state object implements: constant
//!   work per [`StreamSink::update`], queryable at any prefix, and (for
//!   linear sketches) mergeable across shards.
//! * [`UpdateSource`] — the lazy, pull-based dual: workload generators yield
//!   updates one at a time without materializing a `Vec<Update>`.
//! * [`ShardedIngest`] — splits an [`UpdateSource`] across worker threads,
//!   each feeding a clone of a prototype sketch, then merges; supports
//!   checkpointed stop/resume ([`ShardedIngest::ingest_limited`] /
//!   [`ShardedIngest::resume`]).
//! * [`wire`] — the framed wire format for update streams in motion:
//!   [`FrameWriter`] / [`FrameReader`] speak a versioned little-endian
//!   magic/length-prefixed framing with an explicit end-of-stream frame;
//!   `FrameReader` implements [`UpdateSource`], so a socket plugs into any
//!   sink unchanged, and malformed bytes are typed [`WireError`]s.
//! * [`PipelinedIngest`] — backpressure-aware pipelined ingestion: a
//!   decode/coalesce stage feeds N hash+apply workers over *bounded*
//!   channels of configurable depth, so a fast producer blocks instead of
//!   buffering unboundedly; the result is bit-identical to single-threaded
//!   ingestion.  Configuration (worker count, batch size, channel depth) is
//!   validated with typed [`IngestConfigError`]s shared with
//!   [`ShardedIngest`]'s `try_*` constructors.
//! * [`checkpoint`] — the versioned snapshot/restore layer: the
//!   [`Checkpoint`] trait, its little-endian binary format, and the
//!   [`CheckpointError`] taxonomy.  A linear sketch's whole state is
//!   seeds + counters + phase, so every estimator in the workspace
//!   serializes to a compact byte string and rehydrates bit-for-bit.
//! * [`ShardedTwoPassCoordinator`] / [`TwoPhaseSketch`] — the sharded
//!   two-phase protocol: pass 1 sharded, one transition on the merged state,
//!   pass-2 workers rehydrated from the frozen state's checkpoint bytes.
//! * [`FrequencyVector`] — the exact frequency vector with the norms and
//!   order statistics the analyses refer to (`F_2`, tail mass, heavy-hitter
//!   queries).
//! * [`generator`] — workload generators: uniform and Zipf item popularity,
//!   planted heavy-hitter streams, frequency-prescribed streams (used by the
//!   communication reductions), and adversarial collision workloads.
//! * [`multipass`] — a tiny driver that feeds a stream to a `p`-pass
//!   algorithm, pass by pass, so that 2-pass algorithms are exercised through
//!   the same interface as 1-pass ones.

pub mod checkpoint;
pub mod coordinator;
pub mod error;
pub mod frequency;
pub mod generator;
pub mod multipass;
pub mod pipeline;
pub mod scratch;
pub mod sharded;
pub mod sink;
pub mod source;
pub mod stream;
pub mod update;
pub mod wire;

pub use checkpoint::{Checkpoint, CheckpointError, ParkedState};
pub use coordinator::{ShardedTwoPassCoordinator, TwoPhaseSketch};
pub use error::StreamError;
pub use frequency::FrequencyVector;
pub use generator::{
    AdversarialCollisionGenerator, FrequencyPrescribedGenerator, PlantedStreamGenerator,
    StreamConfig, StreamGenerator, UniformStreamGenerator, ZipfStreamGenerator,
};
pub use multipass::{run_multi_pass, run_one_pass, MultiPassAlgorithm, OnePassAlgorithm};
pub use pipeline::{IngestConfigError, PipelineError, PipelinedIngest};
pub use scratch::IngestScratch;
pub use sharded::ShardedIngest;
pub use sink::{
    checked_coalesce_updates, coalesce_into, coalesce_updates, is_coalesced, MergeError,
    MergeableSketch, StreamSink,
};
pub use source::{IterSource, StreamSource, UpdateSource};
pub use stream::TurnstileStream;
pub use update::Update;
pub use wire::{FrameDecoder, FrameReader, FrameWriter, WireError, WireProgress};
