//! Framed wire format for turnstile update streams.
//!
//! A long-running ingest service accepts updates from the outside world over
//! a byte stream (a TCP socket, a pipe, a file being tailed).  This module
//! defines the versioned little-endian framing that byte stream uses — the
//! same codec discipline as the [`checkpoint`](crate::checkpoint) layer, but
//! for *data in motion* instead of state at rest:
//!
//! ```text
//! stream  = magic version domain frame* end-frame
//! magic   = b"ZLWU"                      4 bytes
//! version = u16 LE                       format version (currently 1)
//! domain  = u64 LE                       domain size n; items are in [0, n)
//! frame   = tag len payload
//! tag     = u8                           1 = updates, 2 = end of stream
//! len     = u32 LE                       payload length in bytes
//! payload = (item: u64 LE, delta: i64 LE)*   for updates frames (len % 16 == 0)
//!         = empty                            for the end-of-stream frame
//! ```
//!
//! Design points:
//!
//! * **Length-prefixed frames.** A receiver always knows how many bytes the
//!   next frame occupies, so it can enforce a frame-size bound *before*
//!   allocating ([`WireError::OversizedFrame`]) and a slow consumer
//!   backpressures the socket instead of buffering unboundedly.
//! * **Explicit end-of-stream.** A stream that simply stops (connection
//!   reset, producer crash) is distinguishable from one that finished
//!   cleanly: missing the end frame surfaces as
//!   [`WireError::Io`]/`UnexpectedEof` — truncation, never silent success.
//! * **Coalescable batches.** Frames carry `(item, delta)` batches, and
//!   turnstile deltas add exactly in `i64`, so any stage downstream of the
//!   decoder may [`coalesce`](crate::coalesce_updates) a frame without
//!   changing what a linear sketch computes — the property
//!   [`PipelinedIngest`](crate::PipelinedIngest)'s decode stage exploits.
//! * **Typed errors, never panics.** Truncation, a bad magic, an unsupported
//!   version, an unknown frame tag, an oversized length prefix and a
//!   malformed payload all surface as [`WireError`]s.
//!
//! [`FrameWriter`] produces the format; [`FrameReader`] consumes it and
//! implements [`UpdateSource`], so every existing sink — and the sharded /
//! pipelined ingest machinery — ingests a wire stream unchanged.

use crate::source::UpdateSource;
use crate::update::Update;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};

/// The 4-byte magic prefix of every wire stream ("ZeroLaw Wire Updates").
pub const WIRE_MAGIC: [u8; 4] = *b"ZLWU";

/// The current wire format version.
pub const WIRE_VERSION: u16 = 1;

/// Frame tags.  Append-only: a tag's meaning never changes across versions.
pub mod frame_tag {
    /// A batch of `(item, delta)` updates.
    pub const UPDATES: u8 = 1;
    /// Explicit end of stream; its payload is empty.
    pub const END: u8 = 2;
}

/// Bytes per encoded update on the wire (`u64` item + `i64` delta).
pub const WIRE_UPDATE_BYTES: usize = 16;

/// Default cap on a single frame's payload, in bytes (64 Ki updates).
/// Writers chunk larger batches; readers reject larger length prefixes
/// before allocating.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = (1 << 16) * WIRE_UPDATE_BYTES as u32;

/// Error raised while writing or reading a wire stream.
#[derive(Debug)]
pub enum WireError {
    /// An underlying I/O failure.  Truncation — bytes ending before the
    /// explicit end-of-stream frame — surfaces here as `UnexpectedEof`.
    Io(io::Error),
    /// The stream does not start with the wire magic.
    BadMagic,
    /// The stream was written with a format version this build does not
    /// understand.
    UnsupportedVersion {
        /// The version found in the stream header.
        found: u16,
    },
    /// A frame carries a tag this build does not know.
    UnknownFrameTag {
        /// The tag byte found on the wire.
        found: u8,
    },
    /// A frame's length prefix exceeds the receiver's frame-size bound —
    /// rejected before any allocation happens.
    OversizedFrame {
        /// The length prefix found on the wire.
        len: u32,
        /// The receiver's configured bound.
        max: u32,
    },
    /// The stream header declares a different domain than the receiver
    /// serves.  Checked once, at header decode
    /// ([`FrameReader::with_expected_domain`]), so an item that is legal for
    /// the *declared* domain but out of range for the *serving* domain can
    /// never survive decoding and reach a sketch at apply time.
    DomainMismatch {
        /// The domain size declared in the stream header.
        declared: u64,
        /// The domain size the receiver serves.
        expected: u64,
    },
    /// The frame payload is structurally invalid: an updates payload whose
    /// length is not a multiple of the encoded update size, a non-empty
    /// end-of-stream frame, an item outside the stream's declared domain.
    Corrupt(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::BadMagic => write!(f, "not a wire stream (bad magic)"),
            WireError::UnsupportedVersion { found } => write!(
                f,
                "unsupported wire format version {found} (this build reads {WIRE_VERSION})"
            ),
            WireError::UnknownFrameTag { found } => {
                write!(f, "unknown wire frame tag {found}")
            }
            WireError::OversizedFrame { len, max } => write!(
                f,
                "frame length prefix {len} exceeds the {max}-byte frame bound"
            ),
            WireError::DomainMismatch { declared, expected } => write!(
                f,
                "stream declares domain {declared} but the receiver serves domain {expected}"
            ),
            WireError::Corrupt(reason) => write!(f, "corrupt wire frame: {reason}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// Whether the error is a truncation: the bytes ended before the
    /// explicit end-of-stream frame.
    pub fn is_truncation(&self) -> bool {
        matches!(self, WireError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof)
    }
}

/// Writes a framed wire stream of updates to any [`Write`].
///
/// The stream header is written on construction; updates are buffered and
/// flushed as length-prefixed frames of at most
/// [`frame_updates`](FrameWriter::frame_updates) entries; [`finish`](FrameWriter::finish)
/// writes the explicit end-of-stream frame.  Dropping
/// a writer without calling `finish` leaves the stream truncated — which the
/// reader reports as an error, exactly as intended for a crashed producer.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    inner: W,
    buf: Vec<Update>,
    frame_updates: usize,
    frames_written: u64,
    updates_written: u64,
    domain: u64,
}

impl<W: Write> FrameWriter<W> {
    /// Start a wire stream over the domain `[0, domain)`: writes the
    /// magic/version/domain header immediately.
    pub fn new(mut inner: W, domain: u64) -> Result<Self, WireError> {
        if domain == 0 {
            return Err(WireError::Corrupt(
                "wire stream domain size must be positive".into(),
            ));
        }
        inner.write_all(&WIRE_MAGIC)?;
        inner.write_all(&WIRE_VERSION.to_le_bytes())?;
        inner.write_all(&domain.to_le_bytes())?;
        Ok(Self {
            inner,
            buf: Vec::new(),
            frame_updates: DEFAULT_MAX_FRAME_BYTES as usize / WIRE_UPDATE_BYTES,
            frames_written: 0,
            updates_written: 0,
            domain,
        })
    }

    /// Cap the number of updates per frame (smaller frames mean earlier
    /// flushes and finer-grained receiver backpressure; larger frames
    /// amortize the 5-byte frame header).  Values are clamped to the
    /// receiver-side default frame bound.
    ///
    /// Returns an error when `frame_updates == 0`.
    pub fn with_frame_updates(mut self, frame_updates: usize) -> Result<Self, WireError> {
        if frame_updates == 0 {
            return Err(WireError::Corrupt(
                "frame update capacity must be positive".into(),
            ));
        }
        self.frame_updates =
            frame_updates.min(DEFAULT_MAX_FRAME_BYTES as usize / WIRE_UPDATE_BYTES);
        Ok(self)
    }

    /// Updates-per-frame cap currently in force.
    pub fn frame_updates(&self) -> usize {
        self.frame_updates
    }

    /// Domain size declared in the stream header.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// Number of updates written so far (buffered ones included).
    pub fn updates_written(&self) -> u64 {
        self.updates_written + self.buf.len() as u64
    }

    /// Number of frames flushed so far.
    pub fn frames_written(&self) -> u64 {
        self.frames_written
    }

    /// Append one update, flushing a frame when the buffer fills.
    pub fn write_update(&mut self, u: Update) -> Result<(), WireError> {
        if u.item >= self.domain {
            return Err(WireError::Corrupt(format!(
                "item {} outside the stream domain [0, {})",
                u.item, self.domain
            )));
        }
        self.buf.push(u);
        if self.buf.len() >= self.frame_updates {
            self.flush_frame()?;
        }
        Ok(())
    }

    /// Append a batch of updates (chunked into frames as needed).
    pub fn write_batch(&mut self, updates: &[Update]) -> Result<(), WireError> {
        for &u in updates {
            self.write_update(u)?;
        }
        Ok(())
    }

    /// Drain an [`UpdateSource`] into the stream.  Returns the number of
    /// updates written.
    pub fn write_source<Src: UpdateSource>(&mut self, source: &mut Src) -> Result<u64, WireError> {
        let mut written = 0u64;
        while let Some(u) = source.next_update() {
            self.write_update(u)?;
            written += 1;
        }
        Ok(written)
    }

    /// Flush any buffered updates as one frame (a no-op on an empty buffer).
    pub fn flush_frame(&mut self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let payload_len = (self.buf.len() * WIRE_UPDATE_BYTES) as u32;
        self.inner.write_all(&[frame_tag::UPDATES])?;
        self.inner.write_all(&payload_len.to_le_bytes())?;
        for u in &self.buf {
            self.inner.write_all(&u.item.to_le_bytes())?;
            self.inner.write_all(&u.delta.to_le_bytes())?;
        }
        self.updates_written += self.buf.len() as u64;
        self.frames_written += 1;
        self.buf.clear();
        Ok(())
    }

    /// Flush buffered updates, write the explicit end-of-stream frame, flush
    /// the underlying writer and hand it back (so e.g. a socket can be
    /// reused for a response).
    pub fn finish(mut self) -> Result<W, WireError> {
        self.flush_frame()?;
        self.inner.write_all(&[frame_tag::END])?;
        self.inner.write_all(&0u32.to_le_bytes())?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// A point-in-time progress report for a [`FrameReader`] — the counters a
/// serving loop consults when deciding what to do with a stream that died
/// mid-flight (how far did it get? did it end cleanly or was it cut off?).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireProgress {
    /// Frames consumed so far (the end-of-stream frame included).
    pub frames_read: u64,
    /// Updates yielded to the consumer so far.
    pub updates_read: u64,
    /// Whether the explicit end-of-stream frame was consumed.
    pub finished: bool,
    /// Whether a decode error ended the stream early.
    pub errored: bool,
}

/// Reads a framed wire stream from any [`Read`] and yields its updates.
///
/// The header is read and validated on construction.  `FrameReader`
/// implements [`UpdateSource`], so a wire stream plugs into every existing
/// sink, [`ShardedIngest`](crate::ShardedIngest) and
/// [`PipelinedIngest`](crate::PipelinedIngest) unchanged.
///
/// `UpdateSource::next_update` has no error channel, so a decode failure
/// mid-stream ends the source (returns `None`) and parks the error; callers
/// that need the distinction check [`finish`](FrameReader::finish) (or
/// [`take_error`](FrameReader::take_error)) after draining — exactly like
/// checking a socket's close status.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    domain: u64,
    max_frame_bytes: u32,
    pending: VecDeque<Update>,
    finished: bool,
    error: Option<WireError>,
    frames_read: u64,
    updates_read: u64,
}

impl<R: Read> FrameReader<R> {
    /// Open a wire stream: reads and validates the magic/version/domain
    /// header before returning.
    pub fn new(mut inner: R) -> Result<Self, WireError> {
        let mut magic = [0u8; 4];
        inner.read_exact(&mut magic)?;
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        let mut v = [0u8; 2];
        inner.read_exact(&mut v)?;
        let version = u16::from_le_bytes(v);
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { found: version });
        }
        let mut d = [0u8; 8];
        inner.read_exact(&mut d)?;
        let domain = u64::from_le_bytes(d);
        if domain == 0 {
            return Err(WireError::Corrupt(
                "wire stream domain size must be positive".into(),
            ));
        }
        Ok(Self {
            inner,
            domain,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            pending: VecDeque::new(),
            finished: false,
            error: None,
            frames_read: 0,
            updates_read: 0,
        })
    }

    /// Require the stream's declared domain to be exactly `expected` — the
    /// single decode-time gate a receiver serving a fixed domain uses.
    ///
    /// Without this check a stream declaring a *larger* domain than the
    /// receiver serves decodes cleanly (every item is validated against the
    /// declared domain only) and the out-of-range items surface wherever the
    /// sketch happens to notice them, at apply time.  Checking the header
    /// once moves that failure to decode, as a typed
    /// [`WireError::DomainMismatch`].
    pub fn with_expected_domain(self, expected: u64) -> Result<Self, WireError> {
        if self.domain != expected {
            return Err(WireError::DomainMismatch {
                declared: self.domain,
                expected,
            });
        }
        Ok(self)
    }

    /// Tighten or loosen the frame-size bound (an incoming length prefix
    /// beyond it is rejected before allocation).
    ///
    /// Returns an error when `max_frame_bytes` cannot hold even one update.
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: u32) -> Result<Self, WireError> {
        if (max_frame_bytes as usize) < WIRE_UPDATE_BYTES {
            return Err(WireError::Corrupt(format!(
                "frame bound {max_frame_bytes} cannot hold one {WIRE_UPDATE_BYTES}-byte update"
            )));
        }
        self.max_frame_bytes = max_frame_bytes;
        Ok(self)
    }

    /// Whether the explicit end-of-stream frame has been consumed.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The decode error that ended the stream early, if any.
    pub fn error(&self) -> Option<&WireError> {
        self.error.as_ref()
    }

    /// Take ownership of the decode error, if any.
    pub fn take_error(&mut self) -> Option<WireError> {
        self.error.take()
    }

    /// Number of frames consumed so far (the end-of-stream frame included).
    pub fn frames_read(&self) -> u64 {
        self.frames_read
    }

    /// Number of updates yielded so far.
    pub fn updates_read(&self) -> u64 {
        self.updates_read
    }

    /// Point-in-time progress: frame/update counters plus whether the stream
    /// reached its end frame or died on a decode error.  A serving loop uses
    /// this to report how far a failed client stream got before its failure
    /// policy decides what to keep.
    pub fn progress(&self) -> WireProgress {
        WireProgress {
            frames_read: self.frames_read,
            updates_read: self.updates_read,
            finished: self.finished,
            errored: self.error.is_some(),
        }
    }

    /// Close out the stream: succeeds only when the explicit end-of-stream
    /// frame was consumed and no decode error occurred, handing back the
    /// underlying reader (so e.g. a socket can be reused for a response).
    /// A stream that merely ran out of bytes is a truncation error.
    pub fn finish(mut self) -> Result<R, WireError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if !self.finished {
            return Err(WireError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "wire stream closed before its end-of-stream frame",
            )));
        }
        Ok(self.inner)
    }

    /// Read one frame into `pending`.  `Ok(true)` means more frames may
    /// follow; `Ok(false)` means the end-of-stream frame was consumed.
    fn read_frame(&mut self) -> Result<bool, WireError> {
        let mut tag = [0u8; 1];
        self.inner.read_exact(&mut tag)?;
        let mut len_buf = [0u8; 4];
        self.inner.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf);
        match tag[0] {
            frame_tag::END => {
                if len != 0 {
                    return Err(WireError::Corrupt(format!(
                        "end-of-stream frame with a {len}-byte payload"
                    )));
                }
                self.frames_read += 1;
                self.finished = true;
                Ok(false)
            }
            frame_tag::UPDATES => {
                if len > self.max_frame_bytes {
                    return Err(WireError::OversizedFrame {
                        len,
                        max: self.max_frame_bytes,
                    });
                }
                if !(len as usize).is_multiple_of(WIRE_UPDATE_BYTES) {
                    return Err(WireError::Corrupt(format!(
                        "updates payload of {len} bytes is not a multiple of {WIRE_UPDATE_BYTES}"
                    )));
                }
                let mut payload = vec![0u8; len as usize];
                self.inner.read_exact(&mut payload)?;
                for entry in payload.chunks_exact(WIRE_UPDATE_BYTES) {
                    let item = u64::from_le_bytes(entry[..8].try_into().expect("8 bytes"));
                    let delta = i64::from_le_bytes(entry[8..].try_into().expect("8 bytes"));
                    if item >= self.domain {
                        return Err(WireError::Corrupt(format!(
                            "item {item} outside the stream domain [0, {})",
                            self.domain
                        )));
                    }
                    self.pending.push_back(Update { item, delta });
                }
                self.frames_read += 1;
                Ok(true)
            }
            other => Err(WireError::UnknownFrameTag { found: other }),
        }
    }
}

impl<R: Read> UpdateSource for FrameReader<R> {
    fn domain(&self) -> u64 {
        self.domain
    }

    fn next_update(&mut self) -> Option<Update> {
        loop {
            if let Some(u) = self.pending.pop_front() {
                self.updates_read += 1;
                return Some(u);
            }
            if self.finished || self.error.is_some() {
                return None;
            }
            match self.read_frame() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        let buffered = self.pending.len();
        if self.finished || self.error.is_some() {
            (buffered, Some(buffered))
        } else {
            (buffered, None)
        }
    }
}

/// Total bytes of the stream header: magic + version + domain.
const HEADER_BYTES: usize = 4 + 2 + 8;

/// Bytes of a frame header: one tag byte + the `u32` length prefix.
const FRAME_HEADER_BYTES: usize = 1 + 4;

/// Where a [`FrameDecoder`] is in the byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DecodeState {
    /// Accumulating the 14-byte magic/version/domain stream header.
    Header,
    /// Accumulating a 5-byte tag + length-prefix frame header.
    FrameHeader,
    /// Accumulating a non-empty updates payload of exactly `len` bytes.
    Payload { len: usize },
}

/// Push-based, resumable frame decoder for readiness-driven receivers.
///
/// [`FrameReader`] *pulls* from a blocking [`Read`]; a non-blocking reactor
/// cannot block, so it owns the socket reads and *pushes* whatever bytes
/// arrived into a `FrameDecoder` via [`feed`](FrameDecoder::feed).  The
/// decoder is a byte-level state machine that stops and resumes anywhere —
/// mid-header, mid-length-prefix, mid-payload — which is exactly the shape
/// `WouldBlock` slices a TCP stream into.
///
/// Semantics match `FrameReader` to the letter: the same header validation,
/// the same typed [`WireError`]s (parked, so the owner decides how a broken
/// stream dies), the same expected-domain and frame-size gates, the same
/// progress counters.  One deliberate difference: [`feed`](Self::feed)
/// **stops consuming at the end-of-stream frame** (and on a parked error),
/// so bytes after the stream's end are reported unconsumed — on a
/// persistent connection they belong to the *next* request, not to this
/// stream.
///
/// ```
/// use gsum_streams::wire::{encode_updates, FrameDecoder};
/// use gsum_streams::Update;
///
/// let bytes = encode_updates(64, &[Update::new(3, 5), Update::new(9, -2)]).unwrap();
/// let mut decoder = FrameDecoder::new().with_expected_domain(64);
/// // Feed one byte at a time — worst-case readiness slicing.
/// let mut decoded = Vec::new();
/// for &b in &bytes {
///     decoder.feed(&[b]);
///     decoder.drain_into(&mut decoded);
/// }
/// assert!(decoder.finished());
/// assert_eq!(decoded, vec![Update::new(3, 5), Update::new(9, -2)]);
/// ```
#[derive(Debug)]
pub struct FrameDecoder {
    state: DecodeState,
    expected_domain: Option<u64>,
    max_frame_bytes: u32,
    /// The domain declared by the stream header, once decoded.
    domain: Option<u64>,
    /// Partial bytes of the unit currently being decoded.
    buf: Vec<u8>,
    pending: VecDeque<Update>,
    finished: bool,
    error: Option<WireError>,
    frames_read: u64,
    updates_read: u64,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A decoder at the start of a stream (header not yet seen).
    pub fn new() -> Self {
        Self {
            state: DecodeState::Header,
            expected_domain: None,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            domain: None,
            buf: Vec::new(),
            pending: VecDeque::new(),
            finished: false,
            error: None,
            frames_read: 0,
            updates_read: 0,
        }
    }

    /// Require the stream's declared domain to be exactly `expected` — the
    /// push-side twin of [`FrameReader::with_expected_domain`].  The
    /// mismatch surfaces as a parked [`WireError::DomainMismatch`] the
    /// moment the header is decoded.
    pub fn with_expected_domain(mut self, expected: u64) -> Self {
        self.expected_domain = Some(expected);
        self
    }

    /// Tighten or loosen the frame-size bound (an incoming length prefix
    /// beyond it is rejected before allocation).
    ///
    /// Returns an error when `max_frame_bytes` cannot hold even one update.
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: u32) -> Result<Self, WireError> {
        if (max_frame_bytes as usize) < WIRE_UPDATE_BYTES {
            return Err(WireError::Corrupt(format!(
                "frame bound {max_frame_bytes} cannot hold one {WIRE_UPDATE_BYTES}-byte update"
            )));
        }
        self.max_frame_bytes = max_frame_bytes;
        Ok(self)
    }

    /// Push bytes into the decoder; returns how many were consumed.
    ///
    /// Consumption stops at the end-of-stream frame and on a parked decode
    /// error — the unconsumed tail is the caller's to re-route (the next
    /// request on a persistent connection) or discard (a poisoned stream).
    /// Decoded updates accumulate internally; drain them with
    /// [`next_update`](Self::next_update) or [`drain_into`](Self::drain_into).
    pub fn feed(&mut self, input: &[u8]) -> usize {
        let mut consumed = 0;
        while consumed < input.len() && !self.finished && self.error.is_none() {
            let need = match self.state {
                DecodeState::Header => HEADER_BYTES,
                DecodeState::FrameHeader => FRAME_HEADER_BYTES,
                DecodeState::Payload { len } => len,
            };
            let take = (need - self.buf.len()).min(input.len() - consumed);
            self.buf
                .extend_from_slice(&input[consumed..consumed + take]);
            consumed += take;
            if self.buf.len() < need {
                break;
            }
            let step = match self.state {
                DecodeState::Header => self.decode_header(),
                DecodeState::FrameHeader => self.decode_frame_header(),
                DecodeState::Payload { .. } => self.decode_payload(),
            };
            self.buf.clear();
            if let Err(e) = step {
                self.error = Some(e);
            }
        }
        consumed
    }

    fn decode_header(&mut self) -> Result<(), WireError> {
        if self.buf[..4] != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u16::from_le_bytes(self.buf[4..6].try_into().expect("2 bytes"));
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { found: version });
        }
        let domain = u64::from_le_bytes(self.buf[6..14].try_into().expect("8 bytes"));
        if domain == 0 {
            return Err(WireError::Corrupt(
                "wire stream domain size must be positive".into(),
            ));
        }
        if let Some(expected) = self.expected_domain {
            if domain != expected {
                return Err(WireError::DomainMismatch {
                    declared: domain,
                    expected,
                });
            }
        }
        self.domain = Some(domain);
        self.state = DecodeState::FrameHeader;
        Ok(())
    }

    fn decode_frame_header(&mut self) -> Result<(), WireError> {
        let tag = self.buf[0];
        let len = u32::from_le_bytes(self.buf[1..5].try_into().expect("4 bytes"));
        match tag {
            frame_tag::END => {
                if len != 0 {
                    return Err(WireError::Corrupt(format!(
                        "end-of-stream frame with a {len}-byte payload"
                    )));
                }
                self.frames_read += 1;
                self.finished = true;
                Ok(())
            }
            frame_tag::UPDATES => {
                if len > self.max_frame_bytes {
                    return Err(WireError::OversizedFrame {
                        len,
                        max: self.max_frame_bytes,
                    });
                }
                if !(len as usize).is_multiple_of(WIRE_UPDATE_BYTES) {
                    return Err(WireError::Corrupt(format!(
                        "updates payload of {len} bytes is not a multiple of {WIRE_UPDATE_BYTES}"
                    )));
                }
                if len == 0 {
                    // An empty updates frame carries no payload to wait for.
                    self.frames_read += 1;
                } else {
                    self.state = DecodeState::Payload { len: len as usize };
                }
                Ok(())
            }
            other => Err(WireError::UnknownFrameTag { found: other }),
        }
    }

    fn decode_payload(&mut self) -> Result<(), WireError> {
        let domain = self.domain.expect("payload state implies a decoded header");
        for entry in self.buf.chunks_exact(WIRE_UPDATE_BYTES) {
            let item = u64::from_le_bytes(entry[..8].try_into().expect("8 bytes"));
            let delta = i64::from_le_bytes(entry[8..].try_into().expect("8 bytes"));
            if item >= domain {
                return Err(WireError::Corrupt(format!(
                    "item {item} outside the stream domain [0, {domain})"
                )));
            }
            self.pending.push_back(Update { item, delta });
        }
        self.frames_read += 1;
        self.state = DecodeState::FrameHeader;
        Ok(())
    }

    /// Pop the next decoded update, if one is buffered.
    pub fn next_update(&mut self) -> Option<Update> {
        let u = self.pending.pop_front()?;
        self.updates_read += 1;
        Some(u)
    }

    /// Move every buffered update into `out`; returns how many moved.
    pub fn drain_into(&mut self, out: &mut Vec<Update>) -> usize {
        let n = self.pending.len();
        self.updates_read += n as u64;
        out.extend(self.pending.drain(..));
        n
    }

    /// The domain the stream header declared, once the header is decoded.
    pub fn domain(&self) -> Option<u64> {
        self.domain
    }

    /// Whether the explicit end-of-stream frame has been consumed.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Whether the decoder is mid-stream: past the header, end frame not
    /// yet seen, no parked error.  A connection that goes away in this
    /// state died a truncation death.
    pub fn mid_stream(&self) -> bool {
        self.domain.is_some() && !self.finished && self.error.is_none()
    }

    /// The decode error that poisoned the stream, if any.
    pub fn error(&self) -> Option<&WireError> {
        self.error.as_ref()
    }

    /// Take ownership of the decode error, if any.
    pub fn take_error(&mut self) -> Option<WireError> {
        self.error.take()
    }

    /// Point-in-time progress counters — the same shape [`FrameReader`]
    /// reports, so serving loops log both paths identically.
    pub fn progress(&self) -> WireProgress {
        WireProgress {
            frames_read: self.frames_read,
            updates_read: self.updates_read,
            finished: self.finished,
            errored: self.error.is_some(),
        }
    }
}

/// Convenience: frame a whole batch of updates into a fresh byte vector
/// (header, frames, end-of-stream).
pub fn encode_updates(domain: u64, updates: &[Update]) -> Result<Vec<u8>, WireError> {
    let mut writer = FrameWriter::new(Vec::new(), domain)?;
    writer.write_batch(updates)?;
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_updates() -> Vec<Update> {
        vec![
            Update::new(0, 5),
            Update::new(7, -3),
            Update::new(7, 1),
            Update::new(63, i64::MAX),
            Update::new(2, i64::MIN),
        ]
    }

    #[test]
    fn roundtrip_preserves_the_update_sequence() {
        let updates = sample_updates();
        let bytes = encode_updates(64, &updates).unwrap();
        let mut reader = FrameReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.domain(), 64);
        let decoded: Vec<Update> = reader.updates().collect();
        assert_eq!(decoded, updates);
        assert!(reader.finished());
        assert!(reader.error().is_none());
        reader.finish().unwrap();
    }

    #[test]
    fn small_frames_chunk_and_roundtrip() {
        let updates: Vec<Update> = (0..100u64).map(|i| Update::new(i % 32, 1)).collect();
        let mut writer = FrameWriter::new(Vec::new(), 32)
            .unwrap()
            .with_frame_updates(7)
            .unwrap();
        writer.write_batch(&updates).unwrap();
        let bytes = writer.finish().unwrap();
        let mut reader = FrameReader::new(bytes.as_slice()).unwrap();
        let decoded: Vec<Update> = reader.updates().collect();
        assert_eq!(decoded, updates);
        // 100 updates in frames of 7 = 15 update frames + the end frame.
        assert_eq!(reader.frames_read(), 16);
    }

    #[test]
    fn empty_stream_roundtrips() {
        let bytes = encode_updates(8, &[]).unwrap();
        let mut reader = FrameReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.next_update(), None);
        assert!(reader.finished());
        reader.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = encode_updates(64, &sample_updates()).unwrap();
        for cut in 0..bytes.len() {
            let truncated = &bytes[..cut];
            match FrameReader::new(truncated) {
                Err(e) => assert!(e.is_truncation(), "header cut at {cut}"),
                Ok(mut reader) => {
                    while reader.next_update().is_some() {}
                    assert!(
                        !reader.finished(),
                        "cut at {cut} must not look like a clean end"
                    );
                    let err = reader.finish().expect_err("truncated stream must fail");
                    assert!(err.is_truncation(), "cut at {cut}: {err}");
                }
            }
        }
    }

    #[test]
    fn bad_magic_version_domain_are_rejected() {
        let good = encode_updates(8, &[Update::insert(1)]).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            FrameReader::new(bad_magic.as_slice()),
            Err(WireError::BadMagic)
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            FrameReader::new(bad_version.as_slice()),
            Err(WireError::UnsupportedVersion { found }) if found != WIRE_VERSION
        ));

        let mut zero_domain = good.clone();
        zero_domain[6..14].fill(0);
        assert!(matches!(
            FrameReader::new(zero_domain.as_slice()),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_tag_oversized_and_misaligned_frames_are_rejected() {
        let header_len = 14; // magic + version + domain
        let good = encode_updates(8, &[Update::insert(1)]).unwrap();

        let mut unknown_tag = good.clone();
        unknown_tag[header_len] = 9;
        let mut r = FrameReader::new(unknown_tag.as_slice()).unwrap();
        assert_eq!(r.next_update(), None);
        assert!(matches!(
            r.take_error(),
            Some(WireError::UnknownFrameTag { found: 9 })
        ));

        let mut oversized = good.clone();
        oversized[header_len + 1..header_len + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = FrameReader::new(oversized.as_slice()).unwrap();
        assert_eq!(r.next_update(), None);
        assert!(matches!(
            r.error(),
            Some(WireError::OversizedFrame { len: u32::MAX, .. })
        ));

        let mut misaligned = good.clone();
        misaligned[header_len + 1..header_len + 5].copy_from_slice(&15u32.to_le_bytes());
        let mut r = FrameReader::new(misaligned.as_slice()).unwrap();
        assert_eq!(r.next_update(), None);
        assert!(matches!(r.error(), Some(WireError::Corrupt(_))));
    }

    #[test]
    fn items_outside_the_declared_domain_are_corrupt() {
        // Writer refuses them up front...
        let mut w = FrameWriter::new(Vec::new(), 4).unwrap();
        assert!(matches!(
            w.write_update(Update::insert(4)),
            Err(WireError::Corrupt(_))
        ));
        // ...and the reader catches a forged payload.
        let mut bytes = FrameWriter::new(Vec::new(), 4).unwrap();
        bytes.write_update(Update::insert(3)).unwrap();
        let mut bytes = bytes.finish().unwrap();
        // Patch the item id (first payload field after header + frame header).
        bytes[14 + 5..14 + 13].copy_from_slice(&99u64.to_le_bytes());
        let mut r = FrameReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.next_update(), None);
        assert!(matches!(r.error(), Some(WireError::Corrupt(_))));
    }

    #[test]
    fn tight_reader_bound_rejects_legal_but_large_frames() {
        let updates: Vec<Update> = (0..8u64).map(Update::insert).collect();
        let bytes = encode_updates(8, &updates).unwrap();
        let mut r = FrameReader::new(bytes.as_slice())
            .unwrap()
            .with_max_frame_bytes(2 * WIRE_UPDATE_BYTES as u32)
            .unwrap();
        assert_eq!(r.next_update(), None);
        assert!(matches!(r.error(), Some(WireError::OversizedFrame { .. })));
    }

    #[test]
    fn zero_config_values_are_rejected() {
        assert!(matches!(
            FrameWriter::new(Vec::new(), 0),
            Err(WireError::Corrupt(_))
        ));
        assert!(matches!(
            FrameWriter::new(Vec::new(), 8)
                .unwrap()
                .with_frame_updates(0),
            Err(WireError::Corrupt(_))
        ));
        let good = encode_updates(8, &[]).unwrap();
        assert!(matches!(
            FrameReader::new(good.as_slice())
                .unwrap()
                .with_max_frame_bytes(3),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn domain_mismatch_is_rejected_at_header_decode() {
        // A stream legally declaring a larger domain than the receiver
        // serves: every item passes the declared-domain check, so without
        // the expected-domain gate the out-of-range items would only
        // surface at apply time, inside whatever sketch consumed them.
        let bytes = encode_updates(1 << 20, &[Update::insert(70_000)]).unwrap();
        let reader = FrameReader::new(bytes.as_slice()).unwrap();
        match reader.with_expected_domain(1 << 10) {
            Err(WireError::DomainMismatch { declared, expected }) => {
                assert_eq!(declared, 1 << 20);
                assert_eq!(expected, 1 << 10);
            }
            other => panic!("expected DomainMismatch, got {other:?}"),
        }

        // A matching declaration passes through untouched.
        let bytes = encode_updates(64, &sample_updates()).unwrap();
        let mut reader = FrameReader::new(bytes.as_slice())
            .unwrap()
            .with_expected_domain(64)
            .unwrap();
        let decoded: Vec<Update> = reader.updates().collect();
        assert_eq!(decoded, sample_updates());
    }

    #[test]
    fn progress_tracks_frames_updates_and_termination() {
        let updates: Vec<Update> = (0..20u64).map(|i| Update::new(i % 8, 1)).collect();
        let mut writer = FrameWriter::new(Vec::new(), 8)
            .unwrap()
            .with_frame_updates(6)
            .unwrap();
        writer.write_batch(&updates).unwrap();
        let bytes = writer.finish().unwrap();

        let mut reader = FrameReader::new(bytes.as_slice()).unwrap();
        assert_eq!(
            reader.progress(),
            WireProgress {
                frames_read: 0,
                updates_read: 0,
                finished: false,
                errored: false
            }
        );
        for _ in 0..7 {
            reader.next_update().unwrap();
        }
        let mid = reader.progress();
        assert_eq!(mid.updates_read, 7);
        assert!(mid.frames_read >= 2 && !mid.finished && !mid.errored);
        while reader.next_update().is_some() {}
        assert_eq!(
            reader.progress(),
            WireProgress {
                frames_read: 5, // 4 update frames of ≤6 + the end frame
                updates_read: 20,
                finished: true,
                errored: false
            }
        );

        // A truncated stream reports errored instead of finished.
        let mut reader = FrameReader::new(&bytes[..bytes.len() - 3]).unwrap();
        while reader.next_update().is_some() {}
        let end = reader.progress();
        assert!(end.errored && !end.finished);
    }

    #[test]
    fn finish_hands_back_the_inner_io_object() {
        let updates = sample_updates();
        let bytes = encode_updates(64, &updates).unwrap();
        // Append trailing bytes after the end frame: a response phase on the
        // same connection.  The reader must stop at the end frame and hand
        // the rest back untouched.
        let mut on_the_wire = bytes.clone();
        on_the_wire.extend_from_slice(b"OK\n");
        let mut reader = FrameReader::new(on_the_wire.as_slice()).unwrap();
        while reader.next_update().is_some() {}
        let rest = reader.finish().unwrap();
        assert_eq!(rest, b"OK\n");
    }

    /// Feed `bytes` to a decoder sliced at `cut`, the worst-case readiness
    /// boundary, and return everything it decoded.
    fn decode_split(decoder: &mut FrameDecoder, bytes: &[u8], cut: usize) -> Vec<Update> {
        let mut out = Vec::new();
        let mut fed = decoder.feed(&bytes[..cut]);
        decoder.drain_into(&mut out);
        fed += decoder.feed(&bytes[fed..]);
        decoder.drain_into(&mut out);
        // Anything unconsumed must be explained by an end frame or an error.
        assert!(fed == bytes.len() || decoder.finished() || decoder.error().is_some());
        out
    }

    #[test]
    fn decoder_agrees_with_reader_at_every_split_point() {
        let updates: Vec<Update> = (0..20u64)
            .map(|i| Update::new(i % 8, 3 - i as i64))
            .collect();
        let mut writer = FrameWriter::new(Vec::new(), 8)
            .unwrap()
            .with_frame_updates(6)
            .unwrap();
        writer.write_batch(&updates).unwrap();
        let bytes = writer.finish().unwrap();

        let mut reader = FrameReader::new(bytes.as_slice()).unwrap();
        let reference: Vec<Update> = reader.updates().collect();
        let reference_progress = reader.progress();

        for cut in 0..=bytes.len() {
            let mut decoder = FrameDecoder::new().with_expected_domain(8);
            let decoded = decode_split(&mut decoder, &bytes, cut);
            assert_eq!(decoded, reference, "split at {cut}");
            assert!(decoder.finished(), "split at {cut}");
            assert!(!decoder.mid_stream());
            assert_eq!(decoder.domain(), Some(8));
            assert_eq!(decoder.progress(), reference_progress, "split at {cut}");
        }
    }

    #[test]
    fn decoder_stops_consuming_at_the_end_frame() {
        let bytes = encode_updates(64, &sample_updates()).unwrap();
        let mut on_the_wire = bytes.clone();
        on_the_wire.extend_from_slice(b"EST 0\n");
        let mut decoder = FrameDecoder::new();
        let consumed = decoder.feed(&on_the_wire);
        assert!(decoder.finished());
        assert_eq!(&on_the_wire[consumed..], b"EST 0\n");
        // A finished decoder consumes nothing further.
        assert_eq!(decoder.feed(b"more"), 0);
        let mut out = Vec::new();
        decoder.drain_into(&mut out);
        assert_eq!(out, sample_updates());
    }

    #[test]
    fn decoder_truncation_is_visible_not_silent() {
        let bytes = encode_updates(64, &sample_updates()).unwrap();
        for cut in 0..bytes.len() {
            let mut decoder = FrameDecoder::new();
            decoder.feed(&bytes[..cut]);
            assert!(
                !decoder.finished() && decoder.error().is_none(),
                "cut at {cut} must look like an unfinished stream, not an error or a clean end"
            );
            // Past the header the decoder knows it is mid-stream: a
            // connection dying here is a truncation death.
            if cut >= 14 {
                assert!(decoder.mid_stream(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn decoder_parks_every_error_class_and_stops_consuming() {
        let header_len = 14;
        let good = encode_updates(8, &[Update::insert(1)]).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        let mut d = FrameDecoder::new();
        d.feed(&bad_magic);
        assert!(matches!(d.take_error(), Some(WireError::BadMagic)));

        let mut bad_version = good.clone();
        bad_version[4] = 0xFF;
        let mut d = FrameDecoder::new();
        d.feed(&bad_version);
        assert!(matches!(
            d.error(),
            Some(WireError::UnsupportedVersion { found }) if *found != WIRE_VERSION
        ));

        let mut zero_domain = good.clone();
        zero_domain[6..14].fill(0);
        let mut d = FrameDecoder::new();
        d.feed(&zero_domain);
        assert!(matches!(d.error(), Some(WireError::Corrupt(_))));

        let mut d = FrameDecoder::new().with_expected_domain(64);
        let consumed = d.feed(&good);
        assert!(matches!(
            d.error(),
            Some(WireError::DomainMismatch {
                declared: 8,
                expected: 64
            })
        ));
        assert_eq!(consumed, header_len, "feed must stop at the parked error");
        assert!(!d.mid_stream());

        let mut unknown_tag = good.clone();
        unknown_tag[header_len] = 9;
        let mut d = FrameDecoder::new();
        d.feed(&unknown_tag);
        assert!(matches!(
            d.error(),
            Some(WireError::UnknownFrameTag { found: 9 })
        ));

        let mut oversized = good.clone();
        oversized[header_len + 1..header_len + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.feed(&oversized);
        assert!(matches!(
            d.error(),
            Some(WireError::OversizedFrame { len: u32::MAX, .. })
        ));

        let mut misaligned = good.clone();
        misaligned[header_len + 1..header_len + 5].copy_from_slice(&15u32.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.feed(&misaligned);
        assert!(matches!(d.error(), Some(WireError::Corrupt(_))));

        // Forged out-of-domain item in the payload.
        let mut forged = good.clone();
        forged[header_len + 5..header_len + 13].copy_from_slice(&99u64.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.feed(&forged);
        assert!(matches!(d.error(), Some(WireError::Corrupt(_))));

        // Non-empty end frame.
        let mut fat_end = encode_updates(8, &[]).unwrap();
        let end_frame = fat_end.len() - 5;
        fat_end[end_frame + 1..end_frame + 5].copy_from_slice(&16u32.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.feed(&fat_end);
        assert!(matches!(d.error(), Some(WireError::Corrupt(_))));
        assert!(!d.finished());
    }

    #[test]
    fn decoder_handles_empty_streams_and_empty_frames() {
        let bytes = encode_updates(8, &[]).unwrap();
        let mut d = FrameDecoder::new().with_expected_domain(8);
        d.feed(&bytes);
        assert!(d.finished());
        assert_eq!(d.next_update(), None);

        // A hand-built empty updates frame before the end frame is legal and
        // must not stall the state machine waiting for a zero-byte payload.
        let mut with_empty_frame = encode_updates(8, &[]).unwrap();
        let end = with_empty_frame.split_off(14);
        with_empty_frame.push(frame_tag::UPDATES);
        with_empty_frame.extend_from_slice(&0u32.to_le_bytes());
        with_empty_frame.extend_from_slice(&end);
        for cut in 0..=with_empty_frame.len() {
            let mut d = FrameDecoder::new();
            let decoded = decode_split(&mut d, &with_empty_frame, cut);
            assert!(decoded.is_empty());
            assert!(d.finished(), "split at {cut}");
            assert_eq!(d.progress().frames_read, 2);
        }
    }

    #[test]
    fn decoder_enforces_its_frame_bound() {
        let updates: Vec<Update> = (0..8u64).map(Update::insert).collect();
        let bytes = encode_updates(8, &updates).unwrap();
        let mut d = FrameDecoder::new()
            .with_max_frame_bytes(2 * WIRE_UPDATE_BYTES as u32)
            .unwrap();
        d.feed(&bytes);
        assert!(matches!(d.error(), Some(WireError::OversizedFrame { .. })));
        assert!(FrameDecoder::new().with_max_frame_bytes(3).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        assert!(WireError::BadMagic.to_string().contains("magic"));
        assert!(WireError::UnsupportedVersion { found: 7 }
            .to_string()
            .contains('7'));
        assert!(WireError::UnknownFrameTag { found: 9 }
            .to_string()
            .contains('9'));
        assert!(WireError::OversizedFrame { len: 10, max: 4 }
            .to_string()
            .contains("10"));
        assert!(WireError::Corrupt("odd payload".into())
            .to_string()
            .contains("odd payload"));
        let mismatch = WireError::DomainMismatch {
            declared: 1024,
            expected: 64,
        };
        assert!(mismatch.to_string().contains("1024"));
        assert!(mismatch.to_string().contains("64"));
    }
}
