//! DISJ+IND(n, t) — set disjointness with a final index player
//! (Theorem 44), used by the non-slow-jumping lower bound (Lemma 24).
//!
//! The first `t` players hold a promise-disjointness instance and the final
//! player holds a single element; one-way communication costs
//! `Ω(n / (t log n))`.  The Lemma 24 reduction gives each of the first `t`
//! players frequency `x` per element and the final player the remainder
//! `r = y − t·x`, so an intersection drives one frequency up to `y` — which a
//! non-slow-jumping `g` blows up past the combined mass of everything else.

use crate::disj::DisjInstance;
use gsum_streams::TurnstileStream;

/// An instance of DISJ+IND(n, t): a DISJ instance for the first `t` players
/// plus the final player's singleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjIndInstance {
    disj: DisjInstance,
    /// The final player's element.
    pointer: u64,
}

impl DisjIndInstance {
    /// Sample a random instance.  When `intersecting` is true, the final
    /// player's element is the common element; otherwise it is an element
    /// held by no one.
    pub fn random(universe: u64, players: usize, intersecting: bool, seed: u64) -> Self {
        let disj = DisjInstance::random(universe, players, intersecting, seed);
        let pointer = match disj.intersection() {
            Some(special) => special,
            None => {
                // Pick an element outside every set.
                let used: std::collections::HashSet<u64> =
                    disj.sets().iter().flatten().copied().collect();
                (0..universe)
                    .find(|i| !used.contains(i))
                    .expect("universe has a free element")
            }
        };
        Self { disj, pointer }
    }

    /// Whether the final player's element is the common element.
    pub fn is_intersecting(&self) -> bool {
        self.disj.is_intersecting()
    }

    /// The final player's element.
    pub fn pointer(&self) -> u64 {
        self.pointer
    }

    /// The underlying DISJ instance.
    pub fn disj(&self) -> &DisjInstance {
        &self.disj
    }

    /// The Lemma 24 reduction: each of the `t` set-players contributes `x`
    /// copies of her elements, the final player contributes `remainder`
    /// copies of his element.  On an intersecting instance the pointed item
    /// reaches `t·x + remainder`; otherwise every frequency is `x` or
    /// `remainder`.
    pub fn reduction_stream(&self, x: u64, remainder: u64) -> TurnstileStream {
        let mut stream = TurnstileStream::new(self.disj.universe());
        for set in self.disj.sets() {
            for &item in set {
                stream.push_delta(item, x as i64);
            }
        }
        stream.push_delta(self.pointer, remainder as i64);
        stream
    }

    /// The frequency reached by the pointed item on an intersecting
    /// instance.
    pub fn peak_frequency(&self, x: u64, remainder: u64) -> u64 {
        self.disj.players() as u64 * x + remainder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersecting_instance_reaches_peak_frequency() {
        let inst = DisjIndInstance::random(512, 4, true, 3);
        assert!(inst.is_intersecting());
        let fv = inst.reduction_stream(25, 7).frequency_vector();
        assert_eq!(fv.get(inst.pointer()) as u64, inst.peak_frequency(25, 7));
    }

    #[test]
    fn disjoint_instance_stays_low() {
        let inst = DisjIndInstance::random(512, 4, false, 5);
        assert!(!inst.is_intersecting());
        let fv = inst.reduction_stream(25, 7).frequency_vector();
        // The pointer element is held by nobody else, so it sits at the
        // remainder value, and everything else at x.
        assert_eq!(fv.get(inst.pointer()), 7);
        assert!(fv.max_abs_frequency() <= 25);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = DisjIndInstance::random(256, 3, true, 11);
        let b = DisjIndInstance::random(256, 3, true, 11);
        assert_eq!(a, b);
        assert_eq!(a.disj().players(), 3);
    }
}
