//! Multi-party set disjointness DISJ(n, t) and the multi-pass reductions.
//!
//! `t` players hold sets `A_1, ..., A_t ⊆ [n]` promised to be pairwise
//! disjoint except possibly for one element common to all of them; deciding
//! which case holds costs `Ω(n/t)` communication even with unrestricted
//! interaction, which is what makes it the right tool for multi-pass lower
//! bounds (Lemmas 27 and 28).

use gsum_hash::Xoshiro256;
use gsum_streams::TurnstileStream;

/// An instance of DISJ(n, t).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjInstance {
    universe: u64,
    sets: Vec<Vec<u64>>,
    intersection: Option<u64>,
}

impl DisjInstance {
    /// Sample a random promise instance with `players` sets over `[universe]`.
    /// When `intersecting` is true a uniformly random element is placed in
    /// every set; all other elements belong to at most one set.
    pub fn random(universe: u64, players: usize, intersecting: bool, seed: u64) -> Self {
        assert!(players >= 2, "need at least two players");
        assert!(universe as usize >= 4 * players, "universe too small");
        let mut rng = Xoshiro256::new(seed);

        let special = rng.next_below(universe);
        let mut sets: Vec<Vec<u64>> = vec![Vec::new(); players];
        for item in 0..universe {
            if item == special {
                continue;
            }
            // Each non-special element joins one random set with probability
            // 1/2 (so sets stay pairwise disjoint).
            if rng.next_bool() {
                let owner = rng.next_below(players as u64) as usize;
                sets[owner].push(item);
            }
        }
        let intersection = if intersecting {
            for set in &mut sets {
                set.push(special);
            }
            Some(special)
        } else {
            None
        };
        for set in &mut sets {
            set.sort_unstable();
        }
        Self {
            universe,
            sets,
            intersection,
        }
    }

    /// Whether the promise instance intersects.
    pub fn is_intersecting(&self) -> bool {
        self.intersection.is_some()
    }

    /// The common element, if any.
    pub fn intersection(&self) -> Option<u64> {
        self.intersection
    }

    /// The players' sets.
    pub fn sets(&self) -> &[Vec<u64>] {
        &self.sets
    }

    /// Universe size.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Number of players `t`.
    pub fn players(&self) -> usize {
        self.sets.len()
    }

    /// The Lemma 28 reduction: each of the first `t − 1` players inserts
    /// `per_player_frequency` copies of her elements and the last player
    /// inserts `last_player_frequency` copies of hers, so that a common
    /// element reaches frequency `(t−1)·per + last` — the "jump" frequency
    /// `y` — while disjoint elements stay at one of the two small values.
    pub fn reduction_stream(
        &self,
        per_player_frequency: u64,
        last_player_frequency: u64,
    ) -> TurnstileStream {
        let mut stream = TurnstileStream::new(self.universe);
        let last = self.sets.len() - 1;
        for (p, set) in self.sets.iter().enumerate() {
            let freq = if p == last {
                last_player_frequency
            } else {
                per_player_frequency
            };
            for &item in set {
                stream.push_delta(item, freq as i64);
            }
        }
        stream
    }

    /// The frequency the common element reaches in
    /// [`reduction_stream`](Self::reduction_stream).
    pub fn intersection_frequency(&self, per_player: u64, last_player: u64) -> u64 {
        (self.players() as u64 - 1) * per_player + last_player
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_instances_respect_promise() {
        for seed in 0..10u64 {
            let yes = DisjInstance::random(256, 4, true, seed);
            let no = DisjInstance::random(256, 4, false, seed);
            assert!(yes.is_intersecting() && !no.is_intersecting());
            assert_eq!(yes.players(), 4);

            // Pairwise disjoint apart from the common element.
            let special = yes.intersection().unwrap();
            let mut seen = std::collections::HashMap::new();
            for set in yes.sets() {
                assert!(set.contains(&special));
                for &item in set {
                    if item != special {
                        assert!(
                            seen.insert(item, ()).is_none(),
                            "element {item} in two sets"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reduction_frequencies() {
        let inst = DisjInstance::random(512, 4, true, 7);
        let per = 10u64;
        let last = 3u64;
        let fv = inst.reduction_stream(per, last).frequency_vector();
        let special = inst.intersection().unwrap();
        assert_eq!(
            fv.get(special) as u64,
            inst.intersection_frequency(per, last)
        );
        // Every other covered item has frequency 10 or 3.
        for (item, v) in fv.iter() {
            if item != special {
                assert!(v == 10 || v == 3, "unexpected frequency {v}");
            }
        }
    }

    #[test]
    fn disjoint_instance_has_no_high_frequency() {
        let inst = DisjInstance::random(512, 4, false, 9);
        let fv = inst.reduction_stream(10, 3).frequency_vector();
        assert!(fv.max_abs_frequency() <= 10);
    }

    #[test]
    #[should_panic(expected = "universe too small")]
    fn tiny_universe_panics() {
        let _ = DisjInstance::random(4, 2, false, 0);
    }
}
