//! The INDEX communication problem and its stream reductions.
//!
//! In INDEX(n), Alice holds a set `A ⊆ [n]`, Bob holds an index `b ∈ [n]`,
//! and only Alice may speak; deciding `b ∈ A` needs `Ω(n)` bits (Kremer–
//! Nisan–Ron).  The reductions of Lemmas 23 and 25 embed an INDEX instance
//! into a g-SUM stream:
//!
//! * **Lemma 23** (not slow-dropping): Alice inserts `alice_frequency` copies
//!   of each of her items, Bob adds `bob_frequency` copies of his index.  If
//!   `b ∈ A` one frequency becomes `alice + bob`, else a fresh item appears
//!   with frequency `bob`; because `g` drops polynomially, these two worlds
//!   have g-SUMs differing by a constant factor.
//! * **Lemma 25** (not predictable): the same construction with
//!   `alice_frequency = y_k` (small) and `bob_frequency = x_k` (large), so
//!   the collision produces `x_k + y_k`, whose `g`-value differs from
//!   `g(x_k)` although `y_k`'s own `g`-mass is negligible.

use gsum_hash::Xoshiro256;
use gsum_streams::TurnstileStream;

/// An instance of INDEX(n): Alice's set and Bob's index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexInstance {
    universe: u64,
    alice: Vec<u64>,
    bob: u64,
}

impl IndexInstance {
    /// Sample a random instance: Alice holds each element independently with
    /// probability 1/2, Bob's index is uniform.  `member` forces whether
    /// `bob ∈ alice` (the planted answer).
    pub fn random(universe: u64, member: bool, seed: u64) -> Self {
        assert!(universe >= 2, "universe must have at least two elements");
        let mut rng = Xoshiro256::new(seed);
        let bob = rng.next_below(universe);
        let mut alice: Vec<u64> = (0..universe)
            .filter(|&i| i != bob && rng.next_bool())
            .collect();
        if member {
            alice.push(bob);
        }
        alice.sort_unstable();
        Self {
            universe,
            alice,
            bob,
        }
    }

    /// Construct an explicit instance.
    pub fn new(universe: u64, alice: Vec<u64>, bob: u64) -> Self {
        assert!(bob < universe, "Bob's index outside the universe");
        assert!(
            alice.iter().all(|&i| i < universe),
            "Alice's set outside the universe"
        );
        let mut alice = alice;
        alice.sort_unstable();
        alice.dedup();
        Self {
            universe,
            alice,
            bob,
        }
    }

    /// The ground truth: whether `bob ∈ alice`.
    pub fn is_member(&self) -> bool {
        self.alice.binary_search(&self.bob).is_ok()
    }

    /// Universe size `n`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Alice's set.
    pub fn alice_set(&self) -> &[u64] {
        &self.alice
    }

    /// Bob's index.
    pub fn bob_index(&self) -> u64 {
        self.bob
    }

    /// The Lemma 23 / Lemma 25 reduction stream: Alice contributes
    /// `alice_frequency` to each of her items, Bob contributes
    /// `bob_frequency` to his index.  The stream's domain equals the
    /// universe; updates are emitted as bulk deltas (the lower bounds already
    /// hold for insertion-only streams, and bulk updates keep the instances
    /// small).
    pub fn reduction_stream(&self, alice_frequency: u64, bob_frequency: u64) -> TurnstileStream {
        let mut stream = TurnstileStream::new(self.universe);
        for &item in &self.alice {
            stream.push_delta(item, alice_frequency as i64);
        }
        stream.push_delta(self.bob, bob_frequency as i64);
        stream
    }

    /// The number of bits Alice would need to send to run a streaming
    /// algorithm with `sketch_words` words of state as a one-way protocol
    /// (each word is 64 bits) — the quantity the reduction compares against
    /// the Ω(n) INDEX bound.
    pub fn protocol_bits(sketch_words: usize) -> usize {
        64 * sketch_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_instances_respect_membership_flag() {
        for seed in 0..20u64 {
            let yes = IndexInstance::random(256, true, seed);
            let no = IndexInstance::random(256, false, seed);
            assert!(yes.is_member());
            assert!(!no.is_member());
            assert_eq!(yes.universe(), 256);
        }
    }

    #[test]
    fn explicit_instance() {
        let inst = IndexInstance::new(16, vec![3, 5, 5, 7], 5);
        assert!(inst.is_member());
        assert_eq!(inst.alice_set(), &[3, 5, 7]);
        assert_eq!(inst.bob_index(), 5);
        let inst = IndexInstance::new(16, vec![3, 7], 5);
        assert!(!inst.is_member());
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn bob_outside_universe_panics() {
        let _ = IndexInstance::new(8, vec![0], 8);
    }

    #[test]
    fn reduction_stream_frequencies() {
        // b ∈ A: the shared item gets alice + bob frequency.
        let inst = IndexInstance::new(32, vec![2, 9], 9);
        let fv = inst.reduction_stream(100, 7).frequency_vector();
        assert_eq!(fv.get(2), 100);
        assert_eq!(fv.get(9), 107);
        assert_eq!(fv.support_size(), 2);

        // b ∉ A: Bob's item appears on its own.
        let inst = IndexInstance::new(32, vec![2, 11], 9);
        let fv = inst.reduction_stream(100, 7).frequency_vector();
        assert_eq!(fv.get(9), 7);
        assert_eq!(fv.get(11), 100);
        assert_eq!(fv.support_size(), 3);
    }

    #[test]
    fn protocol_bits_scale_with_sketch() {
        assert_eq!(IndexInstance::protocol_bits(10), 640);
    }
}
