//! The empirical distinguishing-advantage harness.
//!
//! The lower-bound proofs say: if a small-space algorithm approximated g-SUM
//! on the reduction streams, the players could tell the "yes" world from the
//! "no" world.  Contrapositively, a sketch that is genuinely too small must
//! *fail to distinguish* the two worlds on a noticeable fraction of
//! instances.  [`SketchDistinguisher`] measures that directly: it draws many
//! instance pairs, applies a caller-supplied statistic (typically a
//! bounded-space g-SUM estimate) to each world's stream, and reports how well
//! the best threshold test on that statistic separates the worlds.
//!
//! * advantage ≈ 1 — the statistic separates the worlds (e.g. the exact
//!   g-SUM always does, because the reduction was designed to create a
//!   constant-factor gap);
//! * advantage ≈ 0 — the statistic carries no information (what the
//!   communication bound forces on any too-small sketch).

use gsum_streams::TurnstileStream;

/// The outcome of a distinguishing experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct DistinguisherReport {
    /// Number of instance pairs evaluated.
    pub trials: usize,
    /// Best-threshold classification accuracy in `[0.5, 1]`.
    pub accuracy: f64,
    /// Distinguishing advantage `2·accuracy − 1 ∈ [0, 1]`.
    pub advantage: f64,
    /// Mean statistic over the "no" world.
    pub mean_negative: f64,
    /// Mean statistic over the "yes" world.
    pub mean_positive: f64,
}

/// Runs distinguishing experiments over paired instance generators.
#[derive(Debug, Clone, Copy, Default)]
pub struct SketchDistinguisher;

impl SketchDistinguisher {
    /// Run `trials` paired experiments.
    ///
    /// * `make_negative(trial)` / `make_positive(trial)` build the two
    ///   worlds' streams for the given trial index (they should use the trial
    ///   index as their seed so the worlds are coupled);
    /// * `statistic(trial, stream)` maps a stream to a real number — e.g. a
    ///   g-SUM estimate produced by a sketch whose space is the quantity
    ///   under study.
    pub fn run(
        trials: usize,
        mut make_negative: impl FnMut(u64) -> TurnstileStream,
        mut make_positive: impl FnMut(u64) -> TurnstileStream,
        mut statistic: impl FnMut(u64, &TurnstileStream) -> f64,
    ) -> DistinguisherReport {
        assert!(trials >= 1, "need at least one trial");
        let mut negatives = Vec::with_capacity(trials);
        let mut positives = Vec::with_capacity(trials);
        for trial in 0..trials as u64 {
            let neg_stream = make_negative(trial);
            let pos_stream = make_positive(trial);
            negatives.push(statistic(trial, &neg_stream));
            positives.push(statistic(trial, &pos_stream));
        }
        let accuracy = best_threshold_accuracy(&negatives, &positives);
        DistinguisherReport {
            trials,
            accuracy,
            advantage: (2.0 * accuracy - 1.0).max(0.0),
            mean_negative: mean(&negatives),
            mean_positive: mean(&positives),
        }
    }
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

/// The accuracy of the best single-threshold classifier (in either
/// direction) separating the two samples.
fn best_threshold_accuracy(negatives: &[f64], positives: &[f64]) -> f64 {
    let mut labelled: Vec<(f64, bool)> = negatives
        .iter()
        .map(|&v| (v, false))
        .chain(positives.iter().map(|&v| (v, true)))
        .collect();
    labelled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite statistics"));
    let total = labelled.len() as f64;
    let total_pos = positives.len() as f64;
    let total_neg = negatives.len() as f64;

    // Sweep thresholds between consecutive points; classifier "positive if
    // statistic > threshold" (and its reverse).
    let mut best = 0.5f64;
    let mut pos_below = 0.0;
    let mut neg_below = 0.0;
    for i in 0..=labelled.len() {
        // accuracy of "positive above the cut" at cut position i
        let correct_above = (total_pos - pos_below) + neg_below;
        let correct_below = pos_below + (total_neg - neg_below);
        best = best.max(correct_above / total).max(correct_below / total);
        if i < labelled.len() {
            if labelled[i].1 {
                pos_below += 1.0;
            } else {
                neg_below += 1.0;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexInstance;
    use gsum_hash::SplitMix64;

    #[test]
    fn perfectly_separated_statistics_give_full_advantage() {
        let report = SketchDistinguisher::run(
            20,
            |_t| TurnstileStream::new(4),
            |t| {
                let mut s = TurnstileStream::new(4);
                s.push_delta(0, t as i64 + 1);
                s
            },
            |_t, stream| stream.frequency_vector().f1(),
        );
        assert!(report.advantage > 0.99);
        assert!(report.mean_positive > report.mean_negative);
        assert_eq!(report.trials, 20);
    }

    #[test]
    fn random_statistics_give_near_zero_advantage() {
        let report = SketchDistinguisher::run(
            200,
            |_t| TurnstileStream::new(4),
            |_t| TurnstileStream::new(4),
            |t, _stream| SplitMix64::new(t).next_f64(),
        );
        // With coupled noise per trial the two samples are identical in
        // distribution; the best threshold still over-fits a little, so allow
        // a modest advantage.
        assert!(report.advantage < 0.2, "advantage {}", report.advantage);
    }

    #[test]
    fn reversed_separation_is_also_detected() {
        // The harness must detect separation regardless of direction.
        let report = SketchDistinguisher::run(
            20,
            |t| {
                let mut s = TurnstileStream::new(4);
                s.push_delta(0, 100 + t as i64);
                s
            },
            |_t| TurnstileStream::new(4),
            |_t, stream| stream.frequency_vector().f1(),
        );
        assert!(report.advantage > 0.99);
    }

    #[test]
    fn exact_gsum_separates_index_reduction_for_inverse_function() {
        // Lemma 23 in action: for g(x) = 1/x the collision world and the
        // disjoint world have exact g-SUMs differing by ~1, so the exact
        // statistic distinguishes them perfectly.
        let g = |x: u64| if x == 0 { 0.0 } else { 1.0 / x as f64 };
        let n = 128u64;
        let report = SketchDistinguisher::run(
            30,
            |t| IndexInstance::random(n, false, t).reduction_stream(n, 1),
            |t| IndexInstance::random(n, true, t).reduction_stream(n, 1),
            |_t, stream| {
                stream
                    .frequency_vector()
                    .iter()
                    .map(|(_, v)| g(v.unsigned_abs()))
                    .sum()
            },
        );
        assert!(report.advantage > 0.95, "report {report:?}");
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = SketchDistinguisher::run(
            0,
            |_t| TurnstileStream::new(2),
            |_t| TurnstileStream::new(2),
            |_t, _s| 0.0,
        );
    }
}
