//! ShortLinearCombination / `(a, b, c)`-DIST promise instances
//! (Definition 45, Appendix C).
//!
//! The frequency vector is promised to take values in `{0, ±a, ±b}` (case
//! `V₀`), or to be such a vector with one coordinate overwritten by `±c`
//! (case `V₁`).  Theorem 48 shows distinguishing the cases takes `Ω(n/q²)`
//! bits, where `q` is the smallest coefficient magnitude expressing
//! `c = p·a + q·b`; Proposition 49's counter algorithm
//! (`gsum_core::DistCounter`) matches it.  The instances produced here drive
//! experiment E6 and also serve as the "indistinguishable frequency set"
//! inputs of Theorem 68 (lower bounds for nearly periodic g-SUM).

use gsum_hash::Xoshiro256;
use gsum_streams::TurnstileStream;

/// An `(a, b, c)`-DIST promise instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistInstance {
    universe: u64,
    a: u64,
    b: u64,
    c: u64,
    /// `(item, signed frequency)` pairs; at most one has magnitude `c`.
    assignments: Vec<(u64, i64)>,
    has_target: bool,
}

impl DistInstance {
    /// Sample an instance with `count_a` coordinates at `±a` and `count_b`
    /// at `±b` (signs uniform); if `has_target` is true one further
    /// coordinate is set to `±c`.
    #[allow(clippy::too_many_arguments)]
    pub fn random(
        universe: u64,
        a: u64,
        b: u64,
        c: u64,
        count_a: u64,
        count_b: u64,
        has_target: bool,
        seed: u64,
    ) -> Self {
        assert!(
            a > 0 && b > 0 && c > 0 && c != a && c != b,
            "bad frequencies"
        );
        let needed = count_a + count_b + u64::from(has_target);
        assert!(needed <= universe, "universe too small");
        let mut rng = Xoshiro256::new(seed);
        let mut used = std::collections::HashSet::new();
        let mut fresh = |rng: &mut Xoshiro256| loop {
            let item = rng.next_below(universe);
            if used.insert(item) {
                return item;
            }
        };
        let mut assignments = Vec::with_capacity(needed as usize);
        for _ in 0..count_a {
            let sign = if rng.next_bool() { 1 } else { -1 };
            assignments.push((fresh(&mut rng), sign * a as i64));
        }
        for _ in 0..count_b {
            let sign = if rng.next_bool() { 1 } else { -1 };
            assignments.push((fresh(&mut rng), sign * b as i64));
        }
        if has_target {
            let sign = if rng.next_bool() { 1 } else { -1 };
            assignments.push((fresh(&mut rng), sign * c as i64));
        }
        Self {
            universe,
            a,
            b,
            c,
            assignments,
            has_target,
        }
    }

    /// Whether a `±c` coordinate is present (the ground truth).
    pub fn has_target(&self) -> bool {
        self.has_target
    }

    /// The `(a, b, c)` frequency triple.
    pub fn frequencies(&self) -> (u64, u64, u64) {
        (self.a, self.b, self.c)
    }

    /// Universe size.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The promise stream (bulk updates; shuffled by the seed-derived order
    /// of `random`).
    pub fn stream(&self) -> TurnstileStream {
        let mut stream = TurnstileStream::new(self.universe);
        for &(item, value) in &self.assignments {
            stream.push_delta(item, value);
        }
        stream
    }

    /// The g-SUM gap this instance exhibits for a function `g`: the target
    /// coordinate contributes `g(c)` instead of nothing, so
    /// `|g-SUM(V₁) − g-SUM(V₀)| = g(c)`.  Theorem 68 chooses `g` (nearly
    /// periodic) and `c` so that this gap is large while the `(a, b)` mass is
    /// tiny — turning the DIST lower bound into a g-SUM lower bound.
    pub fn gsum_gap(&self, g: impl Fn(u64) -> f64) -> f64 {
        g(self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_respects_promise() {
        for &has_target in &[false, true] {
            let inst = DistInstance::random(1 << 12, 5, 3, 1, 100, 120, has_target, 9);
            assert_eq!(inst.has_target(), has_target);
            let fv = inst.stream().frequency_vector();
            let mut c_count = 0;
            for (_, v) in fv.iter() {
                match v.unsigned_abs() {
                    5 | 3 => {}
                    1 => c_count += 1,
                    other => panic!("unexpected frequency {other}"),
                }
            }
            assert_eq!(c_count, u64::from(has_target));
            assert_eq!(fv.support_size() as u64, 220 + u64::from(has_target));
        }
    }

    #[test]
    fn gsum_gap_is_g_of_c() {
        let inst = DistInstance::random(256, 8, 4, 2, 10, 10, true, 3);
        assert_eq!(inst.gsum_gap(|x| (x * x) as f64), 4.0);
        assert_eq!(inst.frequencies(), (8, 4, 2));
        assert_eq!(inst.universe(), 256);
    }

    #[test]
    #[should_panic(expected = "universe too small")]
    fn overfull_universe_panics() {
        let _ = DistInstance::random(8, 5, 3, 1, 6, 6, false, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = DistInstance::random(512, 11, 9, 1, 50, 50, true, 21);
        let b = DistInstance::random(512, 11, 9, 1, 50, 50, true, 21);
        assert_eq!(a, b);
    }
}
