//! # gsum-comm
//!
//! The communication-complexity side of the zero-one laws.
//!
//! Every lower bound in the paper is a reduction: the players of INDEX,
//! DISJ, DISJ+IND or ShortLinearCombination jointly build a stream whose
//! g-SUM differs by a constant factor between the "yes" and "no" cases, so a
//! small-space `(g, ε)`-SUM algorithm would yield a cheap protocol —
//! contradiction.  These reductions cannot be "run" as proofs, but they *can*
//! be run as experiments: this crate generates the exact instance streams the
//! proofs describe and measures how well a bounded-space sketch empirically
//! distinguishes the two cases ([`SketchDistinguisher`]).  Experiment E4 uses
//! this to exhibit the failure of small sketches on intractable functions,
//! and to contrast with the exact (linear-space) computation which separates
//! the cases perfectly.
//!
//! * [`IndexInstance`] — one-way INDEX(n); reduction of Lemma 23
//!   (non-slow-dropping functions) and Lemma 25 (unpredictable functions).
//! * [`DisjInstance`] — multi-party set disjointness DISJ(n, t); reduction of
//!   Lemmas 27/28 (multi-pass bounds).
//! * [`DisjIndInstance`] — DISJ+IND(n, t) (Theorem 44); reduction of
//!   Lemma 24 (non-slow-jumping functions).
//! * [`DistInstance`] — the ShortLinearCombination / `(a, b, c)`-DIST promise
//!   problem of Definition 45 (Appendix C).
//! * [`SketchDistinguisher`] — the empirical distinguishing-advantage
//!   harness.

pub mod disj;
pub mod disj_ind;
pub mod distinguisher;
pub mod index;
pub mod shortlinear;

pub use disj::DisjInstance;
pub use disj_ind::DisjIndInstance;
pub use distinguisher::{DistinguisherReport, SketchDistinguisher};
pub use index::IndexInstance;
pub use shortlinear::DistInstance;
