//! The AMS "tug of war" sketch for `F₂ = Σ v_i²` (Alon–Matias–Szegedy 1996).
//!
//! Each basic estimator keeps `Z = Σ_i σ(i) v_i` for a 4-wise independent
//! sign hash `σ`; `Z²` is an unbiased estimator of `F₂` with variance at most
//! `2 F₂²`.  Averaging `k₁` copies and taking the median of `k₂` averages
//! gives a `(1±ε)` approximation with probability `1 − δ` for
//! `k₁ = O(1/ε²)`, `k₂ = O(log 1/δ)`.
//!
//! Algorithm 2 (the paper's 1-pass heavy-hitter algorithm) uses this sketch
//! to estimate `√F₂`, which calibrates the CountSketch error when pruning
//! candidate heavy hitters.
//!
//! # Ingestion shape
//!
//! All ingestion routes through the item-outer block kernels: the sign bank
//! fills a packed `items × counters` sign matrix once per batch
//! ([`gsum_hash::SignBank`]), and the counters then stream their packed bit
//! rows with branchless ± accumulation.  The per-update path is literally
//! the batch path at block length 1, so there is one sign-evaluation
//! implementation to keep bit-exact rather than two kept aligned by hand.
//!
//! # Sign families
//!
//! The sign source is selectable via [`SignFamily`]: 4-wise polynomials by
//! default (the independence the `Var[Z²] ≤ 2F₂²` proof consumes), or simple
//! tabulation (3-wise, faster, heuristic variance constant — see
//! [`gsum_hash::sign`] for the full trade-off).  Sketches of different
//! families refuse to merge and checkpoints carry the family tag.

use crate::error::SketchError;
use crate::util::{exact_i64_gate, median_in_place};
use crate::FrequencySketch;
use gsum_hash::{
    signed_sum_f64_packed, signed_sums_block_i64, SignBank, SignFamily, SignHashBank, SIGN_BLOCK,
};
use gsum_streams::checkpoint::{self, kind, Checkpoint, CheckpointError};
use gsum_streams::{coalesce_into, IngestScratch, MergeError, MergeableSketch, StreamSink, Update};
use std::io::{Read, Write};

/// Reusable working memory for [`AmsF2Sketch`] ingestion: the coalesce
/// buffer, the per-item key/power/delta columns, and the packed sign matrix
/// shared by every counter's apply loop.  Transient — never part of
/// checkpoint/merge/clone identity.
#[derive(Debug, Default)]
pub struct AmsScratch {
    coalesce: Vec<Update>,
    keys: Vec<u64>,
    x1: Vec<u64>,
    x2: Vec<u64>,
    x3: Vec<u64>,
    deltas: Vec<i64>,
    /// Tabulation word values (unused by the polynomial family).
    hv: Vec<u64>,
    /// The packed sign matrix: `sign_bytes[b * n + t]` bit `j` is the sign
    /// of counter `b * SIGN_BLOCK + j` on item `t`.
    sign_bytes: Vec<u8>,
}

/// The AMS F₂ estimator: `averages × medians` independent tug-of-war counters.
#[derive(Debug, Clone)]
pub struct AmsF2Sketch {
    /// Number of basic estimators averaged inside each group (`k₁`).
    averages: usize,
    /// Number of groups whose averages are median-combined (`k₂`).
    medians: usize,
    /// Counters, length `averages * medians`.
    counters: Vec<f64>,
    signs: SignBank,
    /// Construction seed, kept so merges can verify hash compatibility.
    seed: u64,
    scratch: IngestScratch<AmsScratch>,
}

impl AmsF2Sketch {
    /// Create a sketch with explicit `(averages, medians)` shape and the
    /// default (4-wise polynomial) sign family.
    pub fn new(averages: usize, medians: usize, seed: u64) -> Result<Self, SketchError> {
        Self::with_sign_family(averages, medians, seed, SignFamily::default())
    }

    /// Create a sketch with an explicit sign family.  The polynomial family
    /// derives per-counter seeds exactly as before this knob existed, so
    /// default-family sketches are bit-compatible across versions.
    pub fn with_sign_family(
        averages: usize,
        medians: usize,
        seed: u64,
        family: SignFamily,
    ) -> Result<Self, SketchError> {
        if averages == 0 {
            return Err(SketchError::EmptyDimension {
                parameter: "averages",
            });
        }
        if medians == 0 {
            return Err(SketchError::EmptyDimension {
                parameter: "medians",
            });
        }
        let total = averages * medians;
        let signs = SignBank::from_seed(family, seed ^ 0xA115_F2F2, total);
        Ok(Self {
            averages,
            medians,
            counters: vec![0.0; total],
            signs,
            seed,
            scratch: IngestScratch::default(),
        })
    }

    /// The `(ε, δ)` parameterization: `averages = ceil(8/ε²)`,
    /// `medians = ceil(4 ln(1/δ))`.
    pub fn with_guarantee(epsilon: f64, delta: f64, seed: u64) -> Result<Self, SketchError> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(SketchError::InvalidProbability {
                parameter: "epsilon",
                value: epsilon,
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(SketchError::InvalidProbability {
                parameter: "delta",
                value: delta,
            });
        }
        let averages = (8.0 / (epsilon * epsilon)).ceil() as usize;
        let medians = (4.0 * (1.0 / delta).ln()).ceil().max(1.0) as usize;
        Self::new(averages, medians, seed)
    }

    /// The sign family this sketch draws its tug-of-war signs from.
    pub fn sign_family(&self) -> SignFamily {
        self.signs.family()
    }

    /// Current estimate of `F₂`.
    pub fn estimate_f2(&self) -> f64 {
        let mut group_means: Vec<f64> = (0..self.medians)
            .map(|g| {
                let start = g * self.averages;
                let sum: f64 = self.counters[start..start + self.averages]
                    .iter()
                    .map(|z| z * z)
                    .sum();
                sum / self.averages as f64
            })
            .collect();
        median_in_place(&mut group_means)
    }

    /// Current estimate of the L2 norm `√F₂`.
    pub fn estimate_l2(&self) -> f64 {
        self.estimate_f2().max(0.0).sqrt()
    }
}

impl StreamSink for AmsF2Sketch {
    /// Per-update path: the batch kernel at block length 1.  For a single
    /// update the batched accumulation (coalesce of one item, one-column
    /// sign matrix, gated i64/f64 apply) collapses to exactly the historical
    /// `counter += σᵢ · δ` chain — when `|δ| < 2^52` the i64 partial is the
    /// same exact integer `f64` would carry, and above it the f64 fallback
    /// *is* that chain — so routing through `update_batch` is bit-identical
    /// and leaves a single sign-evaluation implementation.
    fn update(&mut self, update: Update) {
        self.update_batch(std::slice::from_ref(&update));
    }

    /// Batched fast path, item-outer: duplicates coalesce exactly in `i64`,
    /// then the sign bank fills the packed `items × counters` sign matrix in
    /// one block-kernel sweep — the three key-power multiplications amortize
    /// over every counter *and* each counter block's coefficient loads
    /// amortize over the whole item block (AVX-512 when the host has it).
    /// The counters then stream their packed bit rows with the branchless ±
    /// select, in `i64` whenever every partial sum provably fits an exact
    /// `f64` integer — bit-identical (an exact integer chain is the same
    /// value in either type) but free of float latency chains.
    fn update_batch(&mut self, updates: &[Update]) {
        let AmsScratch {
            coalesce,
            keys,
            x1,
            x2,
            x3,
            deltas,
            hv,
            sign_bytes,
        } = &mut self.scratch.buf;
        let coalesced = coalesce_into(updates, coalesce);
        let n = coalesced.len();
        if n == 0 {
            return;
        }
        keys.clear();
        deltas.clear();
        let mut max_abs = 0u64;
        for u in coalesced {
            keys.push(u.item);
            deltas.push(u.delta);
            max_abs = max_abs.max(u.delta.unsigned_abs());
        }
        // Fill the packed sign matrix for the whole batch.
        match &self.signs {
            SignBank::Polynomial(bank) => {
                x1.clear();
                x2.clear();
                x3.clear();
                for &key in keys.iter() {
                    let (a, b, c) = SignHashBank::key_powers(key);
                    x1.push(a);
                    x2.push(b);
                    x3.push(c);
                }
                bank.eval_block(x1, x2, x3, sign_bytes);
            }
            SignBank::Tabulation(bank) => bank.eval_block(keys, hv, sign_bytes),
        }
        let exact_i64 = exact_i64_gate(max_abs, n);
        if exact_i64 {
            // Block-outer apply: the eight counters of each block share one
            // contiguous byte row and the same deltas, so one fused pass
            // (vectorized where the CPU allows) produces all eight sums.
            // The i64 sums are exact under the gate, so this matches the
            // per-counter walk bit for bit.
            for (b, row) in sign_bytes.chunks_exact(n).enumerate() {
                let sums = signed_sums_block_i64(row, deltas);
                let base = b * SIGN_BLOCK;
                for (counter, &sum) in self.counters[base..].iter_mut().zip(sums.iter()) {
                    *counter += sum as f64;
                }
            }
        } else {
            // Extreme deltas: accumulate per counter in f64, exactly as
            // before (an i64 accumulator could overflow).
            for (i, counter) in self.counters.iter_mut().enumerate() {
                let row = &sign_bytes[(i / SIGN_BLOCK) * n..(i / SIGN_BLOCK) * n + n];
                let bit = (i % SIGN_BLOCK) as u32;
                *counter += signed_sum_f64_packed(row, bit, deltas);
            }
        }
    }
}

/// The tug-of-war counters are linear in the frequency vector, so two
/// sketches with the same shape, seed and sign family merge by adding
/// counters.
impl MergeableSketch for AmsF2Sketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.averages != other.averages
            || self.medians != other.medians
            || self.seed != other.seed
        {
            return Err(MergeError::new(
                "AMS merge requires identical shape and seed",
            ));
        }
        if self.signs.family() != other.signs.family() {
            return Err(MergeError::new(
                "AMS merge requires identical sign families",
            ));
        }
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        Ok(())
    }
}

/// The tug-of-war counters plus `(averages, medians, seed, sign family)`
/// are the whole state: restore re-derives the sign bank through
/// [`AmsF2Sketch::with_sign_family`].
impl Checkpoint for AmsF2Sketch {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::AMS_F2)?;
        checkpoint::write_u64(w, self.averages as u64)?;
        checkpoint::write_u64(w, self.medians as u64)?;
        checkpoint::write_u64(w, self.seed)?;
        checkpoint::write_sign_family(w, self.signs.family())?;
        checkpoint::write_f64_slice(w, &self.counters)?;
        Ok(())
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        checkpoint::read_header(r, kind::AMS_F2)?;
        let averages = checkpoint::read_len(r)?;
        let medians = checkpoint::read_len(r)?;
        let seed = checkpoint::read_u64(r)?;
        let family = checkpoint::read_sign_family(r)?;
        let total = averages
            .checked_mul(medians)
            .ok_or_else(|| CheckpointError::Corrupt("averages × medians overflows".into()))?;
        let counters = checkpoint::read_f64_counters(r, total, "AMS counters")?;
        let mut sketch = Self::with_sign_family(averages, medians, seed, family)
            .map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
        sketch.counters = counters;
        Ok(sketch)
    }
}

impl FrequencySketch for AmsF2Sketch {
    /// The AMS sketch does not estimate individual frequencies; per-item
    /// estimates are reported as 0.  (It implements the trait so the generic
    /// stream-processing plumbing can drive it.)
    fn estimate(&self, _item: u64) -> f64 {
        0.0
    }

    fn space_words(&self) -> usize {
        self.counters.len() + self.signs.space_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_streams::{
        StreamConfig, StreamGenerator, TurnstileStream, UniformStreamGenerator, ZipfStreamGenerator,
    };

    #[test]
    fn construction_validation() {
        assert!(AmsF2Sketch::new(0, 3, 0).is_err());
        assert!(AmsF2Sketch::new(3, 0, 0).is_err());
        assert!(AmsF2Sketch::with_guarantee(0.0, 0.1, 0).is_err());
        assert!(AmsF2Sketch::with_guarantee(0.2, 0.0, 0).is_err());
        let s = AmsF2Sketch::with_guarantee(0.1, 0.05, 0).unwrap();
        assert!(s.averages >= 800);
        assert_eq!(s.sign_family(), SignFamily::Polynomial4);
    }

    #[test]
    fn exact_on_single_item() {
        // With one non-zero coordinate, Z = ±v so Z² = v² exactly — for
        // either sign family.
        for family in [SignFamily::Polynomial4, SignFamily::Tabulation] {
            let mut s = TurnstileStream::new(100);
            s.push_delta(3, 25);
            let mut ams = AmsF2Sketch::with_sign_family(4, 3, 7, family).unwrap();
            ams.process_stream(&s);
            assert!((ams.estimate_f2() - 625.0).abs() < 1e-9);
            assert!((ams.estimate_l2() - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn approximates_f2_on_uniform_stream() {
        let stream = UniformStreamGenerator::new(StreamConfig::new(512, 30_000), 11).generate();
        let truth = stream.frequency_vector().f2();
        for family in [SignFamily::Polynomial4, SignFamily::Tabulation] {
            let mut ams = AmsF2Sketch::with_sign_family(356, 12, 21, family).unwrap();
            ams.process_stream(&stream);
            let est = ams.estimate_f2();
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.2, "{}: relative error {rel}", family.name());
        }
    }

    #[test]
    fn approximates_f2_on_skewed_stream() {
        let stream =
            ZipfStreamGenerator::new(StreamConfig::new(1 << 12, 40_000), 1.3, 5).generate();
        let truth = stream.frequency_vector().f2();
        let mut ams = AmsF2Sketch::with_guarantee(0.15, 0.05, 33).unwrap();
        ams.process_stream(&stream);
        let rel = (ams.estimate_f2() - truth).abs() / truth;
        assert!(rel < 0.25, "relative error {rel} exceeds tolerance");
    }

    #[test]
    fn order_insensitive() {
        let stream = UniformStreamGenerator::new(StreamConfig::new(64, 5_000), 3).generate();
        let mut a = AmsF2Sketch::new(16, 3, 1).unwrap();
        let mut b = AmsF2Sketch::new(16, 3, 1).unwrap();
        a.process_stream(&stream);
        b.process_stream(&stream.shuffled(9));
        assert!((a.estimate_f2() - b.estimate_f2()).abs() < 1e-6);
    }

    #[test]
    fn deletions_cancel() {
        let mut s = TurnstileStream::new(10);
        s.push_delta(1, 50);
        s.push_delta(1, -50);
        s.push_delta(2, 7);
        let mut ams = AmsF2Sketch::new(8, 3, 2).unwrap();
        ams.process_stream(&s);
        assert!((ams.estimate_f2() - 49.0).abs() < 1e-9);
    }

    #[test]
    fn per_item_estimate_is_zero() {
        let ams = AmsF2Sketch::new(2, 2, 0).unwrap();
        assert_eq!(ams.estimate(5), 0.0);
    }

    #[test]
    fn merge_rejects_sign_family_mismatch() {
        let mut poly = AmsF2Sketch::with_sign_family(4, 3, 9, SignFamily::Polynomial4).unwrap();
        let tab = AmsF2Sketch::with_sign_family(4, 3, 9, SignFamily::Tabulation).unwrap();
        assert!(poly.merge(&tab).is_err());
        let poly2 = AmsF2Sketch::with_sign_family(4, 3, 9, SignFamily::Polynomial4).unwrap();
        assert!(poly.merge(&poly2).is_ok());
    }

    #[test]
    fn tabulation_family_checkpoint_roundtrips() {
        let mut ams = AmsF2Sketch::with_sign_family(8, 3, 5, SignFamily::Tabulation).unwrap();
        let mut s = TurnstileStream::new(50);
        for i in 0..50 {
            s.push_delta(i, (i as i64 % 11) - 5);
        }
        ams.process_stream(&s);
        let bytes = ams.to_checkpoint_bytes().unwrap();
        let restored = AmsF2Sketch::from_checkpoint_bytes(&bytes).unwrap();
        assert_eq!(restored.sign_family(), SignFamily::Tabulation);
        assert_eq!(restored.counters, ams.counters);
        assert_eq!(restored.to_checkpoint_bytes().unwrap(), bytes);
    }
}
