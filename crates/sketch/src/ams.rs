//! The AMS "tug of war" sketch for `F₂ = Σ v_i²` (Alon–Matias–Szegedy 1996).
//!
//! Each basic estimator keeps `Z = Σ_i σ(i) v_i` for a 4-wise independent
//! sign hash `σ`; `Z²` is an unbiased estimator of `F₂` with variance at most
//! `2 F₂²`.  Averaging `k₁` copies and taking the median of `k₂` averages
//! gives a `(1±ε)` approximation with probability `1 − δ` for
//! `k₁ = O(1/ε²)`, `k₂ = O(log 1/δ)`.
//!
//! Algorithm 2 (the paper's 1-pass heavy-hitter algorithm) uses this sketch
//! to estimate `√F₂`, which calibrates the CountSketch error when pruning
//! candidate heavy hitters.

use crate::error::SketchError;
use crate::util::median_in_place;
use crate::FrequencySketch;
use gsum_hash::{derive_seeds, SignHashBank};
use gsum_streams::checkpoint::{self, kind, Checkpoint, CheckpointError};
use gsum_streams::{coalesce_into, IngestScratch, MergeError, MergeableSketch, StreamSink, Update};
use std::io::{Read, Write};

/// Reusable working memory for [`AmsF2Sketch::update_batch`]: the coalesce
/// buffer plus the per-item key powers and deltas shared by every counter's
/// inner loop.  Transient — never part of checkpoint/merge/clone identity.
#[derive(Debug, Default)]
pub struct AmsScratch {
    coalesce: Vec<Update>,
    x1: Vec<u64>,
    x2: Vec<u64>,
    x3: Vec<u64>,
    deltas: Vec<i64>,
}

/// The AMS F₂ estimator: `averages × medians` independent tug-of-war counters.
#[derive(Debug, Clone)]
pub struct AmsF2Sketch {
    /// Number of basic estimators averaged inside each group (`k₁`).
    averages: usize,
    /// Number of groups whose averages are median-combined (`k₂`).
    medians: usize,
    /// Counters, length `averages * medians`.
    counters: Vec<f64>,
    signs: SignHashBank,
    /// Construction seed, kept so merges can verify hash compatibility.
    seed: u64,
    scratch: IngestScratch<AmsScratch>,
}

impl AmsF2Sketch {
    /// Create a sketch with explicit `(averages, medians)` shape.
    pub fn new(averages: usize, medians: usize, seed: u64) -> Result<Self, SketchError> {
        if averages == 0 {
            return Err(SketchError::EmptyDimension {
                parameter: "averages",
            });
        }
        if medians == 0 {
            return Err(SketchError::EmptyDimension {
                parameter: "medians",
            });
        }
        let total = averages * medians;
        let seeds = derive_seeds(seed ^ 0xA115_F2F2, total);
        let signs = SignHashBank::from_seeds(&seeds);
        Ok(Self {
            averages,
            medians,
            counters: vec![0.0; total],
            signs,
            seed,
            scratch: IngestScratch::default(),
        })
    }

    /// The `(ε, δ)` parameterization: `averages = ceil(8/ε²)`,
    /// `medians = ceil(4 ln(1/δ))`.
    pub fn with_guarantee(epsilon: f64, delta: f64, seed: u64) -> Result<Self, SketchError> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(SketchError::InvalidProbability {
                parameter: "epsilon",
                value: epsilon,
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(SketchError::InvalidProbability {
                parameter: "delta",
                value: delta,
            });
        }
        let averages = (8.0 / (epsilon * epsilon)).ceil() as usize;
        let medians = (4.0 * (1.0 / delta).ln()).ceil().max(1.0) as usize;
        Self::new(averages, medians, seed)
    }

    /// Current estimate of `F₂`.
    pub fn estimate_f2(&self) -> f64 {
        let mut group_means: Vec<f64> = (0..self.medians)
            .map(|g| {
                let start = g * self.averages;
                let sum: f64 = self.counters[start..start + self.averages]
                    .iter()
                    .map(|z| z * z)
                    .sum();
                sum / self.averages as f64
            })
            .collect();
        median_in_place(&mut group_means)
    }

    /// Current estimate of the L2 norm `√F₂`.
    pub fn estimate_l2(&self) -> f64 {
        self.estimate_f2().max(0.0).sqrt()
    }
}

impl StreamSink for AmsF2Sketch {
    fn update(&mut self, update: Update) {
        // The key powers x, x², x³ are shared by every sign polynomial, so
        // compute them once per update instead of once per counter.
        let powers = SignHashBank::key_powers(update.item);
        let delta = update.delta as f64;
        for (i, counter) in self.counters.iter_mut().enumerate() {
            *counter += self.signs.sign_f64_at(i, powers) * delta;
        }
    }

    /// Batched fast path: the tug-of-war counters are linear, so duplicate
    /// items coalesce exactly in `i64` and each distinct item is sign-hashed
    /// once per counter instead of once per occurrence; counters are walked
    /// in order (counter-major) so each accumulates in a register.  The key
    /// powers per item are precomputed once and shared across all counters,
    /// and when every partial sum provably fits an exact `f64` integer the
    /// accumulation runs in `i64` — bit-identical (an exact integer chain is
    /// the same value in either type) but free of float latency chains.
    fn update_batch(&mut self, updates: &[Update]) {
        let AmsScratch {
            coalesce,
            x1,
            x2,
            x3,
            deltas,
        } = &mut self.scratch.buf;
        let coalesced = coalesce_into(updates, coalesce);
        let n = coalesced.len();
        if n == 0 {
            return;
        }
        x1.clear();
        x2.clear();
        x3.clear();
        deltas.clear();
        let mut max_abs = 0u64;
        for u in coalesced {
            let (a, b, c) = SignHashBank::key_powers(u.item);
            x1.push(a);
            x2.push(b);
            x3.push(c);
            deltas.push(u.delta);
            max_abs = max_abs.max(u.delta.unsigned_abs());
        }
        // Every partial sum is bounded by n · max|δ|; below 2^52 each one is
        // an exact integer that f64 represents exactly, so i64 accumulation
        // produces bit-identical counters.  (This also rules out i64::MIN,
        // whose unsigned_abs is 2^63, making the negation below safe.)
        let exact_i64 = (max_abs as u128) * (n as u128) < (1u128 << 52);
        // Each counter's inner loop is the bank's batched tug-of-war kernel:
        // coefficients loaded once, branchless ± select, and — under the
        // exactness gate — i64 accumulation, bit-identical to the f64 chain.
        for (i, counter) in self.counters.iter_mut().enumerate() {
            if exact_i64 {
                *counter += self.signs.signed_sum_i64(i, x1, x2, x3, deltas) as f64;
            } else {
                // Extreme deltas: accumulate in f64, exactly as before (an
                // i64 accumulator could overflow).
                *counter += self.signs.signed_sum_f64(i, x1, x2, x3, deltas);
            }
        }
    }
}

/// The tug-of-war counters are linear in the frequency vector, so two
/// sketches with the same shape and seed merge by adding counters.
impl MergeableSketch for AmsF2Sketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.averages != other.averages
            || self.medians != other.medians
            || self.seed != other.seed
        {
            return Err(MergeError::new(
                "AMS merge requires identical shape and seed",
            ));
        }
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        Ok(())
    }
}

/// The tug-of-war counters plus `(averages, medians, seed)` are the whole
/// state: restore re-derives the sign hashes through [`AmsF2Sketch::new`].
impl Checkpoint for AmsF2Sketch {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::AMS_F2)?;
        checkpoint::write_u64(w, self.averages as u64)?;
        checkpoint::write_u64(w, self.medians as u64)?;
        checkpoint::write_u64(w, self.seed)?;
        checkpoint::write_f64_slice(w, &self.counters)?;
        Ok(())
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        checkpoint::read_header(r, kind::AMS_F2)?;
        let averages = checkpoint::read_len(r)?;
        let medians = checkpoint::read_len(r)?;
        let seed = checkpoint::read_u64(r)?;
        let total = averages
            .checked_mul(medians)
            .ok_or_else(|| CheckpointError::Corrupt("averages × medians overflows".into()))?;
        let counters = checkpoint::read_f64_counters(r, total, "AMS counters")?;
        let mut sketch = Self::new(averages, medians, seed)
            .map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
        sketch.counters = counters;
        Ok(sketch)
    }
}

impl FrequencySketch for AmsF2Sketch {
    /// The AMS sketch does not estimate individual frequencies; per-item
    /// estimates are reported as 0.  (It implements the trait so the generic
    /// stream-processing plumbing can drive it.)
    fn estimate(&self, _item: u64) -> f64 {
        0.0
    }

    fn space_words(&self) -> usize {
        self.counters.len() + 4 * self.signs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_streams::{
        StreamConfig, StreamGenerator, TurnstileStream, UniformStreamGenerator, ZipfStreamGenerator,
    };

    #[test]
    fn construction_validation() {
        assert!(AmsF2Sketch::new(0, 3, 0).is_err());
        assert!(AmsF2Sketch::new(3, 0, 0).is_err());
        assert!(AmsF2Sketch::with_guarantee(0.0, 0.1, 0).is_err());
        assert!(AmsF2Sketch::with_guarantee(0.2, 0.0, 0).is_err());
        let s = AmsF2Sketch::with_guarantee(0.1, 0.05, 0).unwrap();
        assert!(s.averages >= 800);
    }

    #[test]
    fn exact_on_single_item() {
        // With one non-zero coordinate, Z = ±v so Z² = v² exactly.
        let mut s = TurnstileStream::new(100);
        s.push_delta(3, 25);
        let mut ams = AmsF2Sketch::new(4, 3, 7).unwrap();
        ams.process_stream(&s);
        assert!((ams.estimate_f2() - 625.0).abs() < 1e-9);
        assert!((ams.estimate_l2() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn approximates_f2_on_uniform_stream() {
        let stream = UniformStreamGenerator::new(StreamConfig::new(512, 30_000), 11).generate();
        let truth = stream.frequency_vector().f2();
        let mut ams = AmsF2Sketch::with_guarantee(0.15, 0.05, 21).unwrap();
        ams.process_stream(&stream);
        let est = ams.estimate_f2();
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.2, "relative error {rel} exceeds tolerance");
    }

    #[test]
    fn approximates_f2_on_skewed_stream() {
        let stream =
            ZipfStreamGenerator::new(StreamConfig::new(1 << 12, 40_000), 1.3, 5).generate();
        let truth = stream.frequency_vector().f2();
        let mut ams = AmsF2Sketch::with_guarantee(0.15, 0.05, 33).unwrap();
        ams.process_stream(&stream);
        let rel = (ams.estimate_f2() - truth).abs() / truth;
        assert!(rel < 0.25, "relative error {rel} exceeds tolerance");
    }

    #[test]
    fn order_insensitive() {
        let stream = UniformStreamGenerator::new(StreamConfig::new(64, 5_000), 3).generate();
        let mut a = AmsF2Sketch::new(16, 3, 1).unwrap();
        let mut b = AmsF2Sketch::new(16, 3, 1).unwrap();
        a.process_stream(&stream);
        b.process_stream(&stream.shuffled(9));
        assert!((a.estimate_f2() - b.estimate_f2()).abs() < 1e-6);
    }

    #[test]
    fn deletions_cancel() {
        let mut s = TurnstileStream::new(10);
        s.push_delta(1, 50);
        s.push_delta(1, -50);
        s.push_delta(2, 7);
        let mut ams = AmsF2Sketch::new(8, 3, 2).unwrap();
        ams.process_stream(&s);
        assert!((ams.estimate_f2() - 49.0).abs() < 1e-9);
    }

    #[test]
    fn per_item_estimate_is_zero() {
        let ams = AmsF2Sketch::new(2, 2, 0).unwrap();
        assert_eq!(ams.estimate(5), 0.0);
    }
}
