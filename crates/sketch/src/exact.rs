//! Exact frequency tracking — the linear-space baseline.
//!
//! The zero-one laws are about beating this trivial algorithm: storing the
//! whole frequency vector always works (in `O(n log M)` bits) and is the
//! fallback the paper mentions when `M` grows super-polynomially.  The
//! experiment harness uses it both as the ground truth and as the "space you
//! would have paid" comparison point.

use crate::FrequencySketch;
use gsum_streams::checkpoint::{self, kind, Checkpoint, CheckpointError};
use gsum_streams::{FrequencyVector, MergeError, MergeableSketch, StreamSink, Update};
use std::io::{Read, Write};

/// Exact per-item frequencies (a thin wrapper around [`FrequencyVector`] that
/// implements the sketch interface).
#[derive(Debug, Clone)]
pub struct ExactFrequencies {
    vector: FrequencyVector,
}

impl ExactFrequencies {
    /// Create an exact tracker over the domain `[0, n)`.
    pub fn new(domain: u64) -> Self {
        Self {
            vector: FrequencyVector::new(domain),
        }
    }

    /// Borrow the underlying frequency vector.
    pub fn vector(&self) -> &FrequencyVector {
        &self.vector
    }

    /// Consume the tracker and return the frequency vector.
    pub fn into_vector(self) -> FrequencyVector {
        self.vector
    }
}

impl StreamSink for ExactFrequencies {
    fn update(&mut self, update: Update) {
        self.vector.apply(update.item, update.delta);
    }
}

/// The exact tracker is trivially linear: merging adds frequency vectors.
impl MergeableSketch for ExactFrequencies {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.vector.domain() != other.vector.domain() {
            return Err(MergeError::new(
                "exact-tracker merge requires equal domains",
            ));
        }
        for (item, v) in other.vector.iter() {
            self.vector.apply(item, v);
        }
        Ok(())
    }
}

/// The exact tracker checkpoints as its sparse frequency vector: the domain
/// plus one `(item, frequency)` pair per non-zero coordinate, in item order.
impl Checkpoint for ExactFrequencies {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::EXACT_FREQUENCIES)?;
        checkpoint::write_u64(w, self.vector.domain())?;
        let entries = self.vector.sorted_entries();
        checkpoint::write_len(w, entries.len())?;
        for (item, v) in entries {
            checkpoint::write_u64(w, item)?;
            checkpoint::write_i64(w, v)?;
        }
        Ok(())
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        checkpoint::read_header(r, kind::EXACT_FREQUENCIES)?;
        let domain = checkpoint::read_u64(r)?;
        if domain == 0 {
            return Err(CheckpointError::Corrupt("zero domain".into()));
        }
        let mut tracker = Self::new(domain);
        let entries = checkpoint::read_len(r)?;
        let mut previous: Option<u64> = None;
        for _ in 0..entries {
            let item = checkpoint::read_u64(r)?;
            let v = checkpoint::read_i64(r)?;
            if item >= domain {
                return Err(CheckpointError::Corrupt(format!(
                    "item {item} outside domain {domain}"
                )));
            }
            // `save` writes strictly increasing items with non-zero
            // frequencies; anything else re-saves to different bytes and is
            // rejected as corrupt rather than silently normalized.
            if previous.is_some_and(|p| p >= item) {
                return Err(CheckpointError::Corrupt(format!(
                    "entries out of order at item {item}"
                )));
            }
            if v == 0 {
                return Err(CheckpointError::Corrupt(format!(
                    "zero frequency recorded for item {item}"
                )));
            }
            previous = Some(item);
            tracker.vector.apply(item, v);
        }
        Ok(tracker)
    }
}

impl FrequencySketch for ExactFrequencies {
    fn estimate(&self, item: u64) -> f64 {
        self.vector.get(item) as f64
    }

    fn space_words(&self) -> usize {
        // One (item, count) pair per non-zero coordinate.
        2 * self.vector.support_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_streams::{StreamConfig, StreamGenerator, UniformStreamGenerator};

    #[test]
    fn tracks_exactly() {
        let stream = UniformStreamGenerator::new(StreamConfig::new(64, 5_000), 1).generate();
        let mut exact = ExactFrequencies::new(64);
        exact.process_stream(&stream);
        let truth = stream.frequency_vector();
        for item in 0..64u64 {
            assert_eq!(exact.estimate(item), truth.get(item) as f64);
        }
        assert_eq!(exact.vector(), &truth);
        assert_eq!(exact.into_vector(), truth);
    }

    #[test]
    fn space_grows_with_support() {
        let mut exact = ExactFrequencies::new(1000);
        assert_eq!(exact.space_words(), 0);
        for i in 0..10 {
            exact.update(Update::insert(i));
        }
        assert_eq!(exact.space_words(), 20);
    }
}
