//! # gsum-sketch
//!
//! The linear-sketch substrates the paper builds on (§3.1):
//!
//! * [`CountSketch`] — Charikar–Chen–Farach-Colton.  Given heaviness `λ`,
//!   accuracy `ε` and failure probability `δ`, a `CountSketch` with
//!   `O(1/(λ ε²))` columns and `O(log(n/δ))` rows returns, for every item, a
//!   frequency estimate with additive error `ε √(λ F₂)` (more precisely,
//!   error bounded by the residual second moment after removing the top
//!   `O(1/λ)` items).  Both of the paper's heavy-hitter algorithms
//!   (Algorithms 1 and 2) are wrappers around this structure.
//! * [`AmsF2Sketch`] — the Alon–Matias–Szegedy "tug of war" estimator of
//!   `F₂ = Σ v_i²`, used by Algorithm 2's pruning stage to normalize the
//!   CountSketch error.
//! * [`CountMinSketch`] — included as the natural insertion-only baseline;
//!   it is *not* sufficient for the paper's algorithms (its error scales with
//!   `F₁` rather than `√F₂`), and experiment E9 uses it to show why
//!   CountSketch is the right substrate.
//! * [`ExactFrequencies`] — the exact (linear space) baseline.
//! * [`SamplingEstimator`] — a uniform-sampling baseline for g-SUM, the naive
//!   alternative the introduction implicitly compares against.
//!
//! All sketches implement the push-based
//! [`StreamSink`] contract (updates are pushed one
//! at a time or in batches; queries reflect the prefix absorbed so far) plus
//! [`FrequencySketch`] for per-item estimates, and all are linear: they
//! implement [`MergeableSketch`], and
//! processing a stream is equivalent to processing any reordering or
//! resharding of it.

pub mod ams;
pub mod countmin;
pub mod countsketch;
pub mod error;
pub mod exact;
pub mod sampling;
pub(crate) mod util;

pub use ams::AmsF2Sketch;
pub use countmin::{CountMinConfig, CountMinSketch};
pub use countsketch::{CountSketch, CountSketchConfig};
pub use error::SketchError;
pub use exact::ExactFrequencies;
pub use sampling::SamplingEstimator;

// The hash-backend switch, the push-based ingestion contract and the
// snapshot/restore layer, re-exported so sketch users need only this crate.
pub use gsum_hash::{HashBackend, SignFamily};
pub use gsum_streams::{Checkpoint, CheckpointError, MergeError, MergeableSketch, StreamSink};

/// A frequency sketch: a compact summary of a turnstile stream from which
/// per-item frequency estimates can be extracted.  Updates are pushed through
/// the [`StreamSink`] supertrait.
pub trait FrequencySketch: StreamSink {
    /// Estimated frequency of `item`.
    fn estimate(&self, item: u64) -> f64;

    /// Number of 64-bit words of state the sketch occupies (the "space" that
    /// the zero-one laws are about). Hash-function descriptions are counted.
    fn space_words(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_streams::{StreamConfig, StreamGenerator, UniformStreamGenerator, Update};

    /// The sink plumbing should feed every update to `update`.
    #[test]
    fn process_stream_feeds_update() {
        struct Counter {
            n: usize,
        }
        impl StreamSink for Counter {
            fn update(&mut self, _u: Update) {
                self.n += 1;
            }
        }
        impl FrequencySketch for Counter {
            fn estimate(&self, _item: u64) -> f64 {
                self.n as f64
            }
            fn space_words(&self) -> usize {
                1
            }
        }
        let mut c = Counter { n: 0 };
        let s = UniformStreamGenerator::new(StreamConfig::new(16, 250), 1).generate();
        c.process_stream(&s);
        assert_eq!(c.n, 250);
        c.update_batch(s.updates());
        assert_eq!(c.n, 500);
    }
}
