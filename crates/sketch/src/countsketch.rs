//! CountSketch (Charikar, Chen, Farach-Colton 2002).
//!
//! The sketch is an `r × b` array of counters.  Row `j` has a pairwise
//! independent bucket hash `h_j : [n] → [b]` and a 4-wise independent sign
//! hash `σ_j : [n] → {±1}`; an update `(i, δ)` adds `σ_j(i)·δ` to counter
//! `(j, h_j(i))` in every row.  The estimate of `v_i` is the median over rows
//! of `σ_j(i) · C[j][h_j(i)]`.
//!
//! Guarantee (as used in §3.1): with `b = O(k/ε²)` columns and
//! `r = O(log(n/δ))` rows, with probability `1 − δ` every item satisfies
//! `|v̂_i − v_i| ≤ (ε/√k) · sqrt(F₂^{res(k)})` where `F₂^{res(k)}` is the
//! residual second moment excluding the top `k` items.  The paper invokes it
//! through the parameterization `CountSketch(λ, ε, δ)` — a structure able to
//! identify all `λ`-heavy hitters for `F₂` and estimate their frequencies to
//! within `ε √(λ F₂)`.

use crate::error::SketchError;
use crate::util::{exact_i64_gate, median_in_place};
use crate::FrequencySketch;
use gsum_hash::{derive_seeds, HashBackend, RowHasher};
use gsum_streams::checkpoint::{self, kind, Checkpoint, CheckpointError};
use gsum_streams::{coalesce_into, IngestScratch, MergeError, MergeableSketch, StreamSink, Update};
use std::io::{Read, Write};
use std::sync::Mutex;

/// Reusable working memory for [`CountSketch::update_batch`]: the coalesce
/// buffer, the distinct-key slice handed to the batched hash kernel (filled
/// once per batch, shared by every row), and the per-row `(column, sign,
/// signed delta)` columns the kernel and the sign-apply pass fill — the
/// signed deltas live in `ideltas` on the exact-`i64` fast path and in
/// `fdeltas` on the extreme-delta fallback.  Transient — never part of
/// checkpoint/merge/clone identity.
#[derive(Debug, Default)]
pub struct CountSketchScratch {
    coalesce: Vec<Update>,
    keys: Vec<u64>,
    cols: Vec<u32>,
    signs: Vec<i64>,
    fdeltas: Vec<f64>,
    ideltas: Vec<i64>,
}

/// Reusable query-side scratch for
/// [`CountSketch::residual_f2_excluding`]: the per-column exclusion flags
/// and the per-row sums, so residual queries on the cover hot path stop
/// allocating.
#[derive(Debug, Default)]
struct ResidualScratch {
    excluded_cols: Vec<bool>,
    cols: Vec<u32>,
    row_sums: Vec<f64>,
}

/// Configuration for a [`CountSketch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountSketchConfig {
    /// Number of rows (independent repetitions; the median is taken across
    /// rows).
    pub rows: usize,
    /// Number of columns (buckets per row).
    pub columns: usize,
    /// Hash family the per-row bucket and sign hashes are drawn from.
    pub backend: HashBackend,
}

impl CountSketchConfig {
    /// Direct `(rows, columns)` configuration with the default
    /// ([`HashBackend::Polynomial`]) backend.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `columns == 0`; use
    /// [`try_new`](Self::try_new) for a fallible constructor.
    pub fn new(rows: usize, columns: usize) -> Self {
        Self::try_new(rows, columns).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects zero rows or columns with a typed
    /// [`SketchError`].
    pub fn try_new(rows: usize, columns: usize) -> Result<Self, SketchError> {
        if rows == 0 {
            return Err(SketchError::EmptyDimension { parameter: "rows" });
        }
        if columns == 0 {
            return Err(SketchError::EmptyDimension {
                parameter: "columns",
            });
        }
        Ok(Self {
            rows,
            columns,
            backend: HashBackend::default(),
        })
    }

    /// Select the hash backend (sketches merge only with matching backends).
    pub fn with_backend(mut self, backend: HashBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The paper's parameterization `CountSketch(λ, ε, δ)`: enough columns to
    /// isolate `1/λ` heavy items and estimate them to within `ε·√(λ F₂)`, and
    /// enough rows for failure probability `δ` over a domain of size `n`.
    ///
    /// Concretely: `columns = ceil(6 / (λ ε²))`, `rows = ceil(4 ln(n/δ))`.
    pub fn for_heavy_hitters(
        lambda: f64,
        epsilon: f64,
        delta: f64,
        domain: u64,
    ) -> Result<Self, SketchError> {
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(SketchError::InvalidProbability {
                parameter: "lambda",
                value: lambda,
            });
        }
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(SketchError::InvalidProbability {
                parameter: "epsilon",
                value: epsilon,
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(SketchError::InvalidProbability {
                parameter: "delta",
                value: delta,
            });
        }
        let columns = (6.0 / (lambda * epsilon * epsilon)).ceil() as usize;
        let rows = (4.0 * ((domain.max(2) as f64) / delta).ln()).ceil() as usize;
        Self::try_new(rows.max(1), columns.max(1))
    }
}

/// A CountSketch over a turnstile stream.
#[derive(Debug)]
pub struct CountSketch {
    config: CountSketchConfig,
    /// Row-major counters, length `rows * columns`.
    counters: Vec<f64>,
    /// Per-row fused bucket+sign hash state.
    rows: Vec<RowHasher>,
    /// Reused scratch for [`residual_f2_excluding`](Self::residual_f2_excluding)
    /// (per-column flags + per-row sums), so queries on the hot path do not
    /// allocate.  A `Mutex` rather than a `RefCell` so the sketch stays
    /// `Sync` — a serving state is queried from concurrent connection
    /// threads — at the cost of one uncontended lock per residual query.
    residual_scratch: Mutex<ResidualScratch>,
    /// Reused ingestion scratch for `update_batch`.
    scratch: IngestScratch<CountSketchScratch>,
    seed: u64,
}

impl Clone for CountSketch {
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            counters: self.counters.clone(),
            rows: self.rows.clone(),
            // Scratch holds no sketch state; a clone starts with a fresh one.
            residual_scratch: Mutex::new(ResidualScratch::default()),
            scratch: IngestScratch::default(),
            seed: self.seed,
        }
    }
}

impl CountSketch {
    /// Create a CountSketch with the given configuration and seed.
    pub fn new(config: CountSketchConfig, seed: u64) -> Self {
        let seeds = derive_seeds(seed, config.rows);
        let rows = seeds
            .iter()
            .map(|&s| RowHasher::new(config.backend, config.columns as u64, s))
            .collect();
        Self {
            config,
            counters: vec![0.0; config.rows * config.columns],
            rows,
            residual_scratch: Mutex::new(ResidualScratch::default()),
            scratch: IngestScratch::default(),
            seed,
        }
    }

    /// Convenience constructor using the paper's `(λ, ε, δ)` parameterization.
    pub fn for_heavy_hitters(
        lambda: f64,
        epsilon: f64,
        delta: f64,
        domain: u64,
        seed: u64,
    ) -> Result<Self, SketchError> {
        Ok(Self::new(
            CountSketchConfig::for_heavy_hitters(lambda, epsilon, delta, domain)?,
            seed,
        ))
    }

    /// The configuration this sketch was built with.
    pub fn config(&self) -> CountSketchConfig {
        self.config
    }

    /// The seed this sketch was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    #[inline]
    fn cell(&self, row: usize, col: usize) -> usize {
        row * self.config.columns + col
    }

    /// The top-`k` items (by estimated magnitude) among the given candidate
    /// item identifiers.  Returned as `(item, estimate)` sorted by decreasing
    /// `|estimate|`.
    pub fn top_candidates(
        &self,
        candidates: impl Iterator<Item = u64>,
        k: usize,
    ) -> Vec<(u64, f64)> {
        let mut scored: Vec<(u64, f64)> = candidates.map(|i| (i, self.estimate(i))).collect();
        scored.sort_unstable_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .expect("estimates are finite")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }

    /// Estimate the residual second moment `F₂^{res}` of the summarized
    /// vector after excluding the given (typically heavy) items: for each
    /// row, sum the squared counters of every bucket that none of the
    /// excluded items hashes to, and take the median across rows.
    ///
    /// Each row's sum is, in expectation, the `F₂` of the non-excluded items
    /// that avoid the excluded buckets (cross terms vanish under the sign
    /// hashes), so the median is a robust stand-in for the residual `F₂` that
    /// the CountSketch error guarantee is stated in terms of — without
    /// needing a separate AMS sketch whose additive error would be
    /// proportional to the *full* `F₂`.
    pub fn residual_f2_excluding(&self, excluded: &[u64]) -> f64 {
        let mut scratch = self
            .residual_scratch
            .lock()
            .expect("residual-F2 scratch lock poisoned");
        let ResidualScratch {
            excluded_cols,
            cols,
            row_sums,
        } = &mut *scratch;
        row_sums.clear();
        if excluded.is_empty() {
            // Nothing to mask: every bucket contributes, no flag pass needed.
            for row_counters in self.counters.chunks_exact(self.config.columns) {
                row_sums.push(row_counters.iter().map(|&c| c * c).sum());
            }
            return median_in_place(row_sums);
        }
        excluded_cols.resize(self.config.columns, false);
        for row in 0..self.config.rows {
            for flag in excluded_cols.iter_mut() {
                *flag = false;
            }
            // Hash every excluded item through the row's batched bucket
            // kernel (coefficients hoisted / blocked table lookups) instead
            // of one scalar `column` call per item.
            self.rows[row].column_batch(excluded, cols);
            for &col in cols.iter() {
                excluded_cols[col as usize] = true;
            }
            let mut sum = 0.0;
            for (col, &is_excluded) in excluded_cols.iter().enumerate() {
                if !is_excluded {
                    let c = self.counters[self.cell(row, col)];
                    sum += c * c;
                }
            }
            row_sums.push(sum);
        }
        median_in_place(row_sums)
    }
}

impl StreamSink for CountSketch {
    fn update(&mut self, update: Update) {
        let columns = self.config.columns;
        let delta = update.delta as f64;
        for (row_counters, hasher) in self
            .counters
            .chunks_exact_mut(columns)
            .zip(self.rows.iter())
        {
            let (col, sign) = hasher.column_sign(update.item);
            // Apply the sign in f64: `sign * delta` in i64 would overflow
            // for delta = i64::MIN.
            row_counters[col as usize] += sign as f64 * delta;
        }
    }

    /// Batched ingestion fast path: duplicate items in the batch are
    /// coalesced exactly in `i64` (the sketch is linear, so the result is
    /// bit-for-bit identical to per-update ingestion), each distinct item is
    /// hashed once per row instead of once per occurrence, and the counters
    /// are walked row-major so each row's counter segment stays cache-hot.
    /// The distinct keys are gathered once per batch; each row then runs the
    /// backend's batched hash kernel ([`RowHasher::column_sign_batch`] —
    /// coefficients hoisted for the polynomial family, blocked pipelined
    /// lookups for tabulation) over the whole slice, applies the signs in a
    /// branchless pass with no hashing in it, and finishes with a tight
    /// scatter loop.  When every delta provably converts to `f64` exactly,
    /// the sign select runs in `i64` (`(δ ^ m) − m`, the same select the AMS
    /// batch path uses); extreme deltas fall back to the bit-identical `f64`
    /// multiply.
    fn update_batch(&mut self, updates: &[Update]) {
        let CountSketchScratch {
            coalesce,
            keys,
            cols,
            signs,
            fdeltas,
            ideltas,
        } = &mut self.scratch.buf;
        let coalesced = coalesce_into(updates, coalesce);
        if coalesced.is_empty() {
            return;
        }
        // One gather of the distinct keys feeds the hash kernel of every row.
        keys.clear();
        keys.extend(coalesced.iter().map(|u| u.item));
        let max_abs = coalesced
            .iter()
            .map(|u| u.delta.unsigned_abs())
            .fold(0u64, u64::max);
        // Same doctrine gate as the AMS fast path: below 2^52 every signed
        // delta is an exact f64 integer, so negating in i64 and converting
        // at apply time is bit-identical to the f64 multiply.
        let exact_i64 = exact_i64_gate(max_abs, coalesced.len());
        let columns = self.config.columns;
        for (row_counters, hasher) in self
            .counters
            .chunks_exact_mut(columns)
            .zip(self.rows.iter())
        {
            hasher.column_sign_batch(keys, cols, signs);
            if exact_i64 {
                ideltas.clear();
                for (&sign, u) in signs.iter().zip(coalesced) {
                    // sign ∈ {+1, −1}: m is 0 for +δ and −1 for −δ, and
                    // `(δ ^ m) − m` is two's-complement negation when
                    // m = −1 — no mispredictable branch on a fair coin.
                    let m = (sign - 1) >> 1;
                    ideltas.push((u.delta ^ m) - m);
                }
                for (&col, &id) in cols.iter().zip(ideltas.iter()) {
                    row_counters[col as usize] += id as f64;
                }
            } else {
                fdeltas.clear();
                for (&sign, u) in signs.iter().zip(coalesced) {
                    fdeltas.push(sign as f64 * u.delta as f64);
                }
                for (&col, &fd) in cols.iter().zip(fdeltas.iter()) {
                    row_counters[col as usize] += fd;
                }
            }
        }
    }
}

/// CountSketch is a linear sketch: merging two copies built with the same
/// configuration and seed (so the hash functions agree) summarizes the
/// concatenation of the two input streams — the property that makes the
/// sketch usable in distributed settings and that [Li–Nguyen–Woodruff 2014]
/// shows is essentially without loss of generality.
impl MergeableSketch for CountSketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.config != other.config || self.seed != other.seed {
            return Err(MergeError::new(
                "CountSketch merge requires identical configuration and seed",
            ));
        }
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        Ok(())
    }
}

/// A CountSketch's state is seeds + counters: the per-row hashers re-expand
/// from the master seed (the same derivation [`CountSketch::new`] uses), so
/// the checkpoint stores only the configuration, the seed and the raw
/// counter array.
impl Checkpoint for CountSketch {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::COUNT_SKETCH)?;
        checkpoint::write_u64(w, self.config.rows as u64)?;
        checkpoint::write_u64(w, self.config.columns as u64)?;
        checkpoint::write_backend(w, self.config.backend)?;
        checkpoint::write_u64(w, self.seed)?;
        checkpoint::write_f64_slice(w, &self.counters)?;
        Ok(())
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        checkpoint::read_header(r, kind::COUNT_SKETCH)?;
        let rows = checkpoint::read_len(r)?;
        let columns = checkpoint::read_len(r)?;
        let backend = checkpoint::read_backend(r)?;
        let seed = checkpoint::read_u64(r)?;
        let config = CountSketchConfig::try_new(rows, columns)
            .map_err(|e| CheckpointError::Corrupt(e.to_string()))?
            .with_backend(backend);
        let cells = rows
            .checked_mul(columns)
            .ok_or_else(|| CheckpointError::Corrupt("rows × columns overflows".into()))?;
        // Read the counters before expanding the hashers, so absurd corrupt
        // dimensions fail on EOF instead of attempting a giant allocation.
        let counters = checkpoint::read_f64_counters(r, cells, "CountSketch counters")?;
        let mut sketch = Self::new(config, seed);
        sketch.counters = counters;
        Ok(sketch)
    }
}

impl FrequencySketch for CountSketch {
    fn estimate(&self, item: u64) -> f64 {
        let mut row_estimates: Vec<f64> = self
            .rows
            .iter()
            .enumerate()
            .map(|(row, hasher)| {
                let (col, sign) = hasher.column_sign(item);
                sign as f64 * self.counters[self.cell(row, col as usize)]
            })
            .collect();
        median_in_place(&mut row_estimates)
    }

    fn space_words(&self) -> usize {
        self.counters.len() + self.rows.iter().map(|r| r.space_words()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_streams::{
        FrequencyPrescribedGenerator, PlantedStreamGenerator, StreamConfig, StreamGenerator,
        TurnstileStream,
    };

    #[test]
    fn config_validation() {
        assert!(CountSketchConfig::try_new(0, 5).is_err());
        assert!(CountSketchConfig::try_new(5, 0).is_err());
        assert!(CountSketchConfig::try_new(3, 7).is_ok());
        assert!(CountSketchConfig::for_heavy_hitters(0.0, 0.1, 0.1, 100).is_err());
        assert!(CountSketchConfig::for_heavy_hitters(0.1, 0.0, 0.1, 100).is_err());
        assert!(CountSketchConfig::for_heavy_hitters(0.1, 0.1, 1.5, 100).is_err());
        let c = CountSketchConfig::for_heavy_hitters(0.01, 0.5, 0.05, 1 << 16).unwrap();
        assert!(c.columns >= (6.0 / (0.01 * 0.25)) as usize);
        assert!(c.rows >= 1);
    }

    #[test]
    fn exact_on_single_item_stream() {
        let mut cs = CountSketch::new(CountSketchConfig::new(5, 64), 9);
        let mut s = TurnstileStream::new(100);
        s.push_delta(42, 17);
        s.push_delta(42, -3);
        cs.process_stream(&s);
        assert!((cs.estimate(42) - 14.0).abs() < 1e-9);
        // Untouched items estimate near zero (they collide only with item 42).
        let zero_est = cs.estimate(7);
        assert!(zero_est.abs() <= 14.0);
    }

    #[test]
    fn heavy_item_recovered_within_error_bound() {
        // Plant a dominant item among uniform noise; estimate error should be
        // far below the planted frequency.
        let planted = vec![(13u64, 5_000u64)];
        let stream =
            PlantedStreamGenerator::new(StreamConfig::new(1 << 12, 40_000), planted, 7).generate();
        let fv = stream.frequency_vector();
        let mut cs = CountSketch::new(CountSketchConfig::new(7, 512), 11);
        cs.process_stream(&stream);
        let err = (cs.estimate(13) - fv.get(13) as f64).abs();
        // Residual F2 per bucket ~ F2_res/512; the error should be a small
        // fraction of the planted value.
        assert!(err < 500.0, "error {err} too large");
    }

    #[test]
    fn estimates_unbiased_on_average_over_seeds() {
        let mut s = TurnstileStream::new(64);
        for i in 0..64 {
            s.push_delta(i, (i as i64 % 7) + 1);
        }
        let truth = s.frequency_vector().get(5) as f64;
        let trials = 200;
        let mut sum = 0.0;
        for seed in 0..trials {
            let mut cs = CountSketch::new(CountSketchConfig::new(1, 16), seed);
            cs.process_stream(&s);
            sum += cs.estimate(5);
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - truth).abs() < 1.5,
            "single-row estimator should be nearly unbiased: mean {mean} vs {truth}"
        );
    }

    #[test]
    fn order_insensitive() {
        let stream = FrequencyPrescribedGenerator::new(256, vec![(50, 4), (3, 30)], 5).generate();
        let shuffled = stream.shuffled(99);
        let mut a = CountSketch::new(CountSketchConfig::new(5, 128), 3);
        let mut b = CountSketch::new(CountSketchConfig::new(5, 128), 3);
        a.process_stream(&stream);
        b.process_stream(&shuffled);
        for item in 0..256u64 {
            assert!((a.estimate(item) - b.estimate(item)).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let s1 = FrequencyPrescribedGenerator::new(128, vec![(10, 5)], 1).generate();
        let s2 = FrequencyPrescribedGenerator::new(128, vec![(20, 3)], 2).generate();
        let cfg = CountSketchConfig::new(4, 64);

        let mut merged = CountSketch::new(cfg, 42);
        merged.process_stream(&s1);
        let mut other = CountSketch::new(cfg, 42);
        other.process_stream(&s2);
        merged.merge(&other).unwrap();

        let mut concat_sketch = CountSketch::new(cfg, 42);
        let mut concat = s1.clone();
        concat.extend_from(&s2);
        concat_sketch.process_stream(&concat);

        for item in 0..128u64 {
            assert!((merged.estimate(item) - concat_sketch.estimate(item)).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_rejects_mismatched_seed() {
        let cfg = CountSketchConfig::new(2, 8);
        let mut a = CountSketch::new(cfg, 1);
        let b = CountSketch::new(cfg, 2);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn top_candidates_orders_by_magnitude() {
        let mut s = TurnstileStream::new(64);
        s.push_delta(1, 100);
        s.push_delta(2, -500);
        s.push_delta(3, 10);
        let mut cs = CountSketch::new(CountSketchConfig::new(5, 64), 8);
        cs.process_stream(&s);
        let top = cs.top_candidates(0..64u64, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 2);
        assert_eq!(top[1].0, 1);
    }

    #[test]
    fn residual_f2_excluding_heavy_items_tracks_the_tail() {
        // One dominant item plus light background: excluding the dominant
        // item, the residual should be near the background F2 and far below
        // the full F2.
        let planted = vec![(9u64, 10_000u64)];
        let stream =
            PlantedStreamGenerator::new(StreamConfig::new(1 << 10, 20_000), planted, 3).generate();
        let fv = stream.frequency_vector();
        let full_f2 = fv.f2();
        let true_residual = full_f2 - (fv.get(9) as f64).powi(2);

        let mut cs = CountSketch::new(CountSketchConfig::new(7, 1024), 19);
        cs.process_stream(&stream);
        let est = cs.residual_f2_excluding(&[9]);
        assert!(
            est < 0.05 * full_f2,
            "residual {est} not far below full {full_f2}"
        );
        assert!(
            est < 2.0 * true_residual + 1.0,
            "residual {est} vs true tail {true_residual}"
        );
        // Excluding nothing gives roughly the full F2.
        let all = cs.residual_f2_excluding(&[]);
        assert!((all - full_f2).abs() < 0.3 * full_f2, "{all} vs {full_f2}");
    }

    #[test]
    fn tabulation_backend_tracks_frequencies() {
        let cfg = CountSketchConfig::new(5, 64).with_backend(HashBackend::Tabulation);
        let mut cs = CountSketch::new(cfg, 9);
        let mut s = TurnstileStream::new(100);
        s.push_delta(42, 17);
        s.push_delta(42, -3);
        cs.process_stream(&s);
        assert!((cs.estimate(42) - 14.0).abs() < 1e-9);
        assert_eq!(cs.config().backend, HashBackend::Tabulation);
    }

    #[test]
    fn merge_rejects_mismatched_backend() {
        let cfg = CountSketchConfig::new(2, 8);
        let mut a = CountSketch::new(cfg, 1);
        let b = CountSketch::new(cfg.with_backend(HashBackend::Tabulation), 1);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn space_words_scales_with_dimensions() {
        let small = CountSketch::new(CountSketchConfig::new(2, 16), 0);
        let large = CountSketch::new(CountSketchConfig::new(8, 256), 0);
        assert!(large.space_words() > 10 * small.space_words());
        assert!(small.space_words() >= 2 * 16);
    }
}
