//! Small numeric helpers shared by the sketches.

/// Median of a slice, sorting it in place with a NaN-safe total order.
/// Even-length slices average the two central elements (the convention the
/// sketches' analyses use).  Returns 0.0 for an empty slice.
pub(crate) fn median_in_place(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_unstable_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        0.5 * (values[mid - 1] + values[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_and_even_lengths() {
        assert_eq!(median_in_place(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_in_place(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median_in_place(&mut []), 0.0);
        assert_eq!(median_in_place(&mut [7.0]), 7.0);
    }

    #[test]
    fn nan_does_not_panic() {
        // total_cmp sorts NaN to the ends instead of panicking.
        let m = median_in_place(&mut [1.0, f64::NAN, 2.0]);
        assert_eq!(m, 2.0);
    }
}
