//! Small numeric helpers shared by the sketches.

/// Median of a slice, sorting it in place with a NaN-safe total order.
/// Even-length slices average the two central elements (the convention the
/// sketches' analyses use).  Returns 0.0 for an empty slice.
pub(crate) fn median_in_place(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_unstable_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        0.5 * (values[mid - 1] + values[mid])
    }
}

/// The shared i64 fast-path gate: batched ± accumulation may run in `i64`
/// only when every partial sum provably fits an exact `f64` integer, i.e.
/// `max|δ| · n < 2^52`.  Computed with `checked_mul` so a pathological delta
/// (up to `|i64::MIN|`'s unsigned_abs of `2^63`) cannot overflow the gate
/// computation itself — overflow means the product is certainly ≥ 2^52, so
/// the gate answers `false` and the f64 fallback runs.  (Passing the gate
/// also rules out `i64::MIN` deltas, whose negation would overflow `i64`.)
#[inline]
pub(crate) fn exact_i64_gate(max_abs: u64, n: usize) -> bool {
    max_abs
        .checked_mul(n as u64)
        .is_some_and(|product| product < (1 << 52))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_matches_wide_product_and_survives_extremes() {
        let cases: &[(u64, usize)] = &[
            (0, 0),
            (0, usize::MAX),
            (1, (1 << 52) - 1),
            (1, 1 << 52),
            ((1 << 52) - 1, 1),
            (1 << 52, 1),
            ((1 << 26) - 1, 1 << 26),
            (1 << 26, 1 << 26),
            (i64::MAX as u64, 3),
            (i64::MIN.unsigned_abs(), usize::MAX),
            (u64::MAX, u64::MAX as usize),
        ];
        for &(max_abs, n) in cases {
            let wide = (max_abs as u128) * (n as u128) < (1u128 << 52);
            assert_eq!(
                exact_i64_gate(max_abs, n),
                wide,
                "gate disagrees with u128 reference at ({max_abs}, {n})"
            );
        }
    }

    #[test]
    fn odd_and_even_lengths() {
        assert_eq!(median_in_place(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_in_place(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median_in_place(&mut []), 0.0);
        assert_eq!(median_in_place(&mut [7.0]), 7.0);
    }

    #[test]
    fn nan_does_not_panic() {
        // total_cmp sorts NaN to the ends instead of panicking.
        let m = median_in_place(&mut [1.0, f64::NAN, 2.0]);
        assert_eq!(m, 2.0);
    }
}
