//! Uniform coordinate-sampling baseline for g-SUM.
//!
//! The simplest sub-linear approach one might try: sample a fixed set of `s`
//! coordinates in advance, track their frequencies exactly, and scale
//! `Σ_{i ∈ S} g(|v_i|)` by `n/s`.  This is an unbiased estimator but its
//! variance is dominated by whether the sample happens to hit the few items
//! that carry most of the `g`-mass — exactly the failure mode that motivates
//! the heavy-hitter-based algorithms.  Experiment E2 compares against it.

use crate::FrequencySketch;
use gsum_hash::Xoshiro256;
use gsum_streams::checkpoint::{self, kind, Checkpoint, CheckpointError};
use gsum_streams::{MergeError, MergeableSketch, StreamSink, Update};
use std::collections::HashMap;
use std::io::{Read, Write};

/// Tracks the exact frequencies of a uniformly chosen sample of coordinates.
#[derive(Debug, Clone)]
pub struct SamplingEstimator {
    domain: u64,
    sample: HashMap<u64, i64>,
    /// Construction seed, kept so merges can verify the samples agree.
    seed: u64,
}

impl SamplingEstimator {
    /// Sample `sample_size` distinct coordinates uniformly from `[0, domain)`.
    ///
    /// # Panics
    /// Panics if `sample_size == 0`; if `sample_size >= domain` all
    /// coordinates are tracked (the estimator becomes exact).
    pub fn new(domain: u64, sample_size: usize, seed: u64) -> Self {
        assert!(sample_size > 0, "sample size must be positive");
        let mut sample = HashMap::new();
        if sample_size as u64 >= domain {
            for i in 0..domain {
                sample.insert(i, 0);
            }
        } else {
            // Floyd's algorithm for a uniform random subset of size s.
            let mut rng = Xoshiro256::new(seed);
            let s = sample_size as u64;
            for j in (domain - s)..domain {
                let t = rng.next_below(j + 1);
                if sample.contains_key(&t) {
                    sample.insert(j, 0);
                } else {
                    sample.insert(t, 0);
                }
            }
        }
        Self {
            domain,
            sample,
            seed,
        }
    }

    /// Number of sampled coordinates.
    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }

    /// Whether a coordinate is in the sample.
    pub fn contains(&self, item: u64) -> bool {
        self.sample.contains_key(&item)
    }

    /// The Horvitz–Thompson style estimate of `Σ_i g(|v_i|)`:
    /// `(n / s) · Σ_{i ∈ S} g(|v_i|)`.
    pub fn estimate_gsum(&self, g: impl Fn(u64) -> f64) -> f64 {
        let scale = self.domain as f64 / self.sample.len() as f64;
        scale
            * self
                .sample
                .values()
                .map(|&v| g(v.unsigned_abs()))
                .sum::<f64>()
    }
}

impl StreamSink for SamplingEstimator {
    fn update(&mut self, update: Update) {
        if let Some(count) = self.sample.get_mut(&update.item) {
            *count += update.delta;
        }
    }
}

/// Two samplers over the same coordinate sample merge by adding the tracked
/// frequencies.
impl MergeableSketch for SamplingEstimator {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.domain != other.domain
            || self.seed != other.seed
            || self.sample.len() != other.sample.len()
        {
            return Err(MergeError::new(
                "sampling merge requires identical domain, seed and sample size",
            ));
        }
        for (item, v) in &other.sample {
            match self.sample.get_mut(item) {
                Some(count) => *count += v,
                None => {
                    return Err(MergeError::new(
                        "sampling merge requires identical coordinate samples",
                    ))
                }
            }
        }
        Ok(())
    }
}

/// The coordinate sample is a pure function of `(domain, sample_size, seed)`
/// (Floyd's algorithm), so the checkpoint stores those three plus the tracked
/// counts; restore redraws the sample through [`SamplingEstimator::new`] and
/// refuses counts for coordinates outside it.
impl Checkpoint for SamplingEstimator {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::SAMPLING)?;
        checkpoint::write_u64(w, self.domain)?;
        checkpoint::write_len(w, self.sample.len())?;
        checkpoint::write_u64(w, self.seed)?;
        let mut entries: Vec<(u64, i64)> = self.sample.iter().map(|(&i, &v)| (i, v)).collect();
        entries.sort_unstable_by_key(|&(i, _)| i);
        checkpoint::write_len(w, entries.len())?;
        for (item, v) in entries {
            checkpoint::write_u64(w, item)?;
            checkpoint::write_i64(w, v)?;
        }
        Ok(())
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        checkpoint::read_header(r, kind::SAMPLING)?;
        let domain = checkpoint::read_u64(r)?;
        let sample_size = checkpoint::read_len(r)?;
        let seed = checkpoint::read_u64(r)?;
        if domain == 0 || sample_size == 0 {
            return Err(CheckpointError::Corrupt(
                "sampling estimator needs a positive domain and sample size".into(),
            ));
        }
        let mut estimator = Self::new(domain, sample_size, seed);
        checkpoint::read_exact_len(r, estimator.sample.len(), "sample counts")?;
        for _ in 0..estimator.sample.len() {
            let item = checkpoint::read_u64(r)?;
            let v = checkpoint::read_i64(r)?;
            match estimator.sample.get_mut(&item) {
                Some(count) => *count = v,
                None => {
                    return Err(CheckpointError::Corrupt(format!(
                        "item {item} is not in the coordinate sample"
                    )))
                }
            }
        }
        Ok(estimator)
    }
}

impl FrequencySketch for SamplingEstimator {
    fn estimate(&self, item: u64) -> f64 {
        self.sample.get(&item).copied().unwrap_or(0) as f64
    }

    fn space_words(&self) -> usize {
        2 * self.sample.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_streams::{StreamConfig, StreamGenerator, UniformStreamGenerator};

    #[test]
    fn full_sample_is_exact() {
        let stream = UniformStreamGenerator::new(StreamConfig::new(64, 10_000), 3).generate();
        let mut est = SamplingEstimator::new(64, 64, 0);
        est.process_stream(&stream);
        let truth: f64 = stream
            .frequency_vector()
            .iter()
            .map(|(_, v)| (v.unsigned_abs() as f64).powi(2))
            .sum();
        let approx = est.estimate_gsum(|x| (x as f64).powi(2));
        assert!((approx - truth).abs() < 1e-6);
    }

    #[test]
    fn sample_size_respected_and_deterministic() {
        let a = SamplingEstimator::new(1 << 16, 100, 7);
        let b = SamplingEstimator::new(1 << 16, 100, 7);
        assert_eq!(a.sample_size(), 100);
        let keys_a: std::collections::BTreeSet<u64> = a.sample.keys().copied().collect();
        let keys_b: std::collections::BTreeSet<u64> = b.sample.keys().copied().collect();
        assert_eq!(keys_a, keys_b);
    }

    #[test]
    fn unbiased_on_uniform_workload() {
        // On a uniform workload (no heavy coordinates) sampling works well;
        // average over several seeds should land near the truth.
        let stream = UniformStreamGenerator::new(StreamConfig::new(1024, 50_000), 9).generate();
        let truth: f64 = stream
            .frequency_vector()
            .iter()
            .map(|(_, v)| (v.unsigned_abs() as f64).powi(2))
            .sum();
        let mut total = 0.0;
        let trials = 30;
        for seed in 0..trials {
            let mut est = SamplingEstimator::new(1024, 128, seed);
            est.process_stream(&stream);
            total += est.estimate_gsum(|x| (x as f64).powi(2));
        }
        let mean = total / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean {mean} far from truth {truth}"
        );
    }

    #[test]
    fn misses_unsampled_heavy_hitter() {
        // A single enormous coordinate outside the sample is invisible: this
        // is the variance problem the universal sketch fixes.
        let mut est = SamplingEstimator::new(1 << 20, 64, 3);
        // Find an item not in the sample.
        let missing = (0..1u64 << 20).find(|i| !est.contains(*i)).unwrap();
        est.update(Update::new(missing, 1_000_000));
        let approx = est.estimate_gsum(|x| (x as f64).powi(2));
        assert_eq!(approx, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sample_panics() {
        let _ = SamplingEstimator::new(10, 0, 0);
    }
}
