//! Error type for sketch construction.

use std::fmt;

/// Errors raised when configuring a sketch.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchError {
    /// A structural parameter (rows, columns, sample size) was zero.
    EmptyDimension {
        /// Which parameter was empty.
        parameter: &'static str,
    },
    /// A probability-like parameter was outside `(0, 1)`.
    InvalidProbability {
        /// Which parameter was invalid.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Attempted to merge two sketches with incompatible shapes or seeds.
    ///
    /// Merge failures are reported as [`gsum_streams::MergeError`] by the
    /// [`gsum_streams::MergeableSketch`] implementations; the `From`
    /// conversion below folds them into a `SketchError` for callers whose
    /// error paths mix construction and merge failures.
    IncompatibleMerge {
        /// Human-readable reason.
        reason: String,
    },
}

impl From<gsum_streams::MergeError> for SketchError {
    fn from(e: gsum_streams::MergeError) -> Self {
        SketchError::IncompatibleMerge { reason: e.reason }
    }
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::EmptyDimension { parameter } => {
                write!(f, "sketch parameter `{parameter}` must be positive")
            }
            SketchError::InvalidProbability { parameter, value } => {
                write!(
                    f,
                    "sketch parameter `{parameter}` = {value} must lie in (0, 1)"
                )
            }
            SketchError::IncompatibleMerge { reason } => {
                write!(f, "cannot merge sketches: {reason}")
            }
        }
    }
}

impl std::error::Error for SketchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameter() {
        let e = SketchError::EmptyDimension { parameter: "rows" };
        assert!(e.to_string().contains("rows"));
        let e = SketchError::InvalidProbability {
            parameter: "delta",
            value: 1.5,
        };
        assert!(e.to_string().contains("delta") && e.to_string().contains("1.5"));
        let e = SketchError::IncompatibleMerge {
            reason: "different seeds".into(),
        };
        assert!(e.to_string().contains("different seeds"));
    }

    #[test]
    fn merge_error_folds_into_sketch_error() {
        let merge = gsum_streams::MergeError::new("seed mismatch");
        let folded: SketchError = merge.into();
        assert_eq!(
            folded,
            SketchError::IncompatibleMerge {
                reason: "seed mismatch".into()
            }
        );
    }
}
