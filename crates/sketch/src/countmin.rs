//! Count-Min sketch (Cormode–Muthukrishnan).
//!
//! Included as a baseline.  Count-Min's error guarantee is additive
//! `ε·F₁` (and it needs non-negative frequencies for its one-sided
//! guarantee), whereas the paper's algorithms need the `√F₂`-type error that
//! CountSketch provides.  Experiment E9 contrasts the two substrates inside
//! the recursive sketch.

use crate::error::SketchError;
use crate::FrequencySketch;
use gsum_hash::{derive_seeds, BucketHash};
use gsum_streams::{MergeError, MergeableSketch, StreamSink, Update};

/// A Count-Min sketch: `rows × columns` non-negative counters, estimate is the
/// minimum over rows.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    rows: usize,
    columns: usize,
    counters: Vec<f64>,
    hashes: Vec<BucketHash>,
    /// Construction seed, kept so merges can verify hash compatibility.
    seed: u64,
}

impl CountMinSketch {
    /// Create a Count-Min sketch with the given shape.
    pub fn new(rows: usize, columns: usize, seed: u64) -> Result<Self, SketchError> {
        if rows == 0 {
            return Err(SketchError::EmptyDimension { parameter: "rows" });
        }
        if columns == 0 {
            return Err(SketchError::EmptyDimension {
                parameter: "columns",
            });
        }
        let seeds = derive_seeds(seed, rows);
        let hashes = seeds
            .iter()
            .map(|&s| BucketHash::new(columns as u64, s))
            .collect();
        Ok(Self {
            rows,
            columns,
            counters: vec![0.0; rows * columns],
            hashes,
            seed,
        })
    }

    /// The `(ε, δ)` parameterization: `columns = ceil(e/ε)`,
    /// `rows = ceil(ln(1/δ))`.
    pub fn with_guarantee(epsilon: f64, delta: f64, seed: u64) -> Result<Self, SketchError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(SketchError::InvalidProbability {
                parameter: "epsilon",
                value: epsilon,
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(SketchError::InvalidProbability {
                parameter: "delta",
                value: delta,
            });
        }
        let columns = (std::f64::consts::E / epsilon).ceil() as usize;
        let rows = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(rows, columns, seed)
    }

    #[inline]
    fn cell(&self, row: usize, col: usize) -> usize {
        row * self.columns + col
    }
}

impl StreamSink for CountMinSketch {
    fn update(&mut self, update: Update) {
        for row in 0..self.rows {
            let col = self.hashes[row].bucket(update.item) as usize;
            let idx = self.cell(row, col);
            self.counters[idx] += update.delta as f64;
        }
    }
}

/// Count-Min counters are linear in the frequency vector, so identically
/// configured sketches merge by adding counters.
impl MergeableSketch for CountMinSketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.rows != other.rows || self.columns != other.columns || self.seed != other.seed {
            return Err(MergeError::new(
                "Count-Min merge requires identical shape and seed",
            ));
        }
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        Ok(())
    }
}

impl FrequencySketch for CountMinSketch {
    fn estimate(&self, item: u64) -> f64 {
        (0..self.rows)
            .map(|row| {
                let col = self.hashes[row].bucket(item) as usize;
                self.counters[self.cell(row, col)]
            })
            .fold(f64::INFINITY, f64::min)
    }

    fn space_words(&self) -> usize {
        self.counters.len() + 4 * self.hashes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_streams::{StreamConfig, StreamGenerator, TurnstileStream, UniformStreamGenerator};

    #[test]
    fn construction_validation() {
        assert!(CountMinSketch::new(0, 4, 0).is_err());
        assert!(CountMinSketch::new(4, 0, 0).is_err());
        assert!(CountMinSketch::with_guarantee(0.0, 0.1, 0).is_err());
        assert!(CountMinSketch::with_guarantee(0.1, 0.0, 0).is_err());
        let cm = CountMinSketch::with_guarantee(0.01, 0.05, 0).unwrap();
        assert!(cm.columns >= 271);
        assert!(cm.rows >= 3);
    }

    #[test]
    fn never_underestimates_on_insertion_only_streams() {
        let stream = UniformStreamGenerator::new(StreamConfig::new(512, 20_000), 3).generate();
        let fv = stream.frequency_vector();
        let mut cm = CountMinSketch::new(4, 128, 7).unwrap();
        cm.process_stream(&stream);
        for (item, v) in fv.iter() {
            assert!(
                cm.estimate(item) + 1e-9 >= v as f64,
                "Count-Min underestimated item {item}"
            );
        }
    }

    #[test]
    fn error_bounded_by_epsilon_f1() {
        let stream = UniformStreamGenerator::new(StreamConfig::new(256, 30_000), 5).generate();
        let fv = stream.frequency_vector();
        let f1 = fv.f1();
        let epsilon = 0.02;
        let mut cm = CountMinSketch::with_guarantee(epsilon, 0.01, 9).unwrap();
        cm.process_stream(&stream);
        let mut violations = 0;
        for (item, v) in fv.iter() {
            if cm.estimate(item) - v as f64 > epsilon * f1 {
                violations += 1;
            }
        }
        assert!(
            violations <= 2,
            "too many error-bound violations: {violations}"
        );
    }

    #[test]
    fn exact_for_isolated_item() {
        let mut s = TurnstileStream::new(1024);
        s.push_delta(77, 500);
        let mut cm = CountMinSketch::new(3, 64, 1).unwrap();
        cm.process_stream(&s);
        assert!((cm.estimate(77) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn space_words_positive() {
        let cm = CountMinSketch::new(2, 32, 0).unwrap();
        assert!(cm.space_words() >= 64);
    }
}
