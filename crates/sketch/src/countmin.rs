//! Count-Min sketch (Cormode–Muthukrishnan).
//!
//! Included as a baseline.  Count-Min's error guarantee is additive
//! `ε·F₁` (and it needs non-negative frequencies for its one-sided
//! guarantee), whereas the paper's algorithms need the `√F₂`-type error that
//! CountSketch provides.  Experiment E9 contrasts the two substrates inside
//! the recursive sketch.

use crate::error::SketchError;
use crate::util::exact_i64_gate;
use crate::FrequencySketch;
use gsum_hash::{derive_seeds, HashBackend, RowHasher};
use gsum_streams::checkpoint::{self, kind, Checkpoint, CheckpointError};
use gsum_streams::{coalesce_into, IngestScratch, MergeError, MergeableSketch, StreamSink, Update};
use std::io::{Read, Write};

/// Reusable working memory for [`CountMinSketch::update_batch`]: the coalesce
/// buffer, per-row column indices, and the per-item deltas (shared across
/// rows — Count-Min has no signs, so the delta array is filled once; it
/// stays in `i64` on the exact fast path and is pre-converted into
/// `fdeltas` on the extreme-delta fallback).  Transient — never part of
/// checkpoint/merge/clone identity.
#[derive(Debug, Default)]
pub struct CountMinScratch {
    coalesce: Vec<Update>,
    keys: Vec<u64>,
    cols: Vec<u32>,
    fdeltas: Vec<f64>,
    ideltas: Vec<i64>,
}

/// Configuration for a [`CountMinSketch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountMinConfig {
    /// Number of rows (the estimate is the minimum across rows).
    pub rows: usize,
    /// Number of columns (buckets per row).
    pub columns: usize,
    /// Hash family the per-row bucket hashes are drawn from.
    pub backend: HashBackend,
}

impl CountMinConfig {
    /// Direct `(rows, columns)` configuration with the default
    /// ([`HashBackend::Polynomial`]) backend.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `columns == 0`; use
    /// [`try_new`](Self::try_new) for a fallible constructor.
    pub fn new(rows: usize, columns: usize) -> Self {
        Self::try_new(rows, columns).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects zero rows or columns with a typed
    /// [`SketchError`].
    pub fn try_new(rows: usize, columns: usize) -> Result<Self, SketchError> {
        if rows == 0 {
            return Err(SketchError::EmptyDimension { parameter: "rows" });
        }
        if columns == 0 {
            return Err(SketchError::EmptyDimension {
                parameter: "columns",
            });
        }
        Ok(Self {
            rows,
            columns,
            backend: HashBackend::default(),
        })
    }

    /// Select the hash backend (sketches merge only with matching backends).
    pub fn with_backend(mut self, backend: HashBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// A Count-Min sketch: `rows × columns` non-negative counters, estimate is the
/// minimum over rows.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    config: CountMinConfig,
    counters: Vec<f64>,
    /// Per-row bucket hash state (the sign half of the row state is unused).
    hashes: Vec<RowHasher>,
    /// Construction seed, kept so merges can verify hash compatibility.
    seed: u64,
    /// Reused ingestion scratch for `update_batch`.
    scratch: IngestScratch<CountMinScratch>,
}

impl CountMinSketch {
    /// Create a Count-Min sketch from a configuration.
    pub fn with_config(config: CountMinConfig, seed: u64) -> Self {
        let seeds = derive_seeds(seed, config.rows);
        let hashes = seeds
            .iter()
            .map(|&s| RowHasher::new(config.backend, config.columns as u64, s))
            .collect();
        Self {
            config,
            counters: vec![0.0; config.rows * config.columns],
            hashes,
            seed,
            scratch: IngestScratch::default(),
        }
    }

    /// Create a Count-Min sketch with the given shape and the default
    /// polynomial backend.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `columns == 0`; use
    /// [`try_new`](Self::try_new) for a fallible constructor.
    pub fn new(rows: usize, columns: usize, seed: u64) -> Self {
        Self::try_new(rows, columns, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects zero rows or columns with a typed
    /// [`SketchError`].
    pub fn try_new(rows: usize, columns: usize, seed: u64) -> Result<Self, SketchError> {
        Ok(Self::with_config(
            CountMinConfig::try_new(rows, columns)?,
            seed,
        ))
    }

    /// The configuration this sketch was built with.
    pub fn config(&self) -> CountMinConfig {
        self.config
    }

    /// The `(ε, δ)` parameterization: `columns = ceil(e/ε)`,
    /// `rows = ceil(ln(1/δ))`.
    pub fn with_guarantee(epsilon: f64, delta: f64, seed: u64) -> Result<Self, SketchError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(SketchError::InvalidProbability {
                parameter: "epsilon",
                value: epsilon,
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(SketchError::InvalidProbability {
                parameter: "delta",
                value: delta,
            });
        }
        let columns = (std::f64::consts::E / epsilon).ceil() as usize;
        let rows = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::try_new(rows, columns, seed)
    }

    #[inline]
    fn cell(&self, row: usize, col: usize) -> usize {
        row * self.config.columns + col
    }
}

impl StreamSink for CountMinSketch {
    fn update(&mut self, update: Update) {
        let columns = self.config.columns;
        let delta = update.delta as f64;
        for (row_counters, hasher) in self
            .counters
            .chunks_exact_mut(columns)
            .zip(self.hashes.iter())
        {
            row_counters[hasher.column(update.item) as usize] += delta;
        }
    }

    /// Batched fast path: coalesce duplicate items exactly in `i64`, hash
    /// each distinct item once per row, walk the counters row-major.  Each
    /// row precomputes its column indices and then applies them in a tight
    /// hash-free scatter loop.  Count-Min has no signs, so its `i64` fast
    /// path is the delta buffer itself: when every delta provably converts
    /// to `f64` exactly, the batch-wide buffer is a plain integer copy and
    /// the conversion fuses into the scatter — bit-identical, one pass
    /// fewer; extreme deltas pre-convert into `f64`, exactly as before.
    fn update_batch(&mut self, updates: &[Update]) {
        let CountMinScratch {
            coalesce,
            keys,
            cols,
            fdeltas,
            ideltas,
        } = &mut self.scratch.buf;
        let coalesced = coalesce_into(updates, coalesce);
        if coalesced.is_empty() {
            return;
        }
        // One gather of the distinct keys feeds the hash kernel of every row.
        keys.clear();
        keys.extend(coalesced.iter().map(|u| u.item));
        let max_abs = coalesced
            .iter()
            .map(|u| u.delta.unsigned_abs())
            .fold(0u64, u64::max);
        // Same doctrine gate as the AMS/CountSketch fast paths: below 2^52
        // every delta is an exact f64 integer, so converting at apply time
        // equals pre-converting, bit for bit.
        let exact_i64 = exact_i64_gate(max_abs, coalesced.len());
        if exact_i64 {
            ideltas.clear();
            ideltas.extend(coalesced.iter().map(|u| u.delta));
        } else {
            fdeltas.clear();
            fdeltas.extend(coalesced.iter().map(|u| u.delta as f64));
        }
        let columns = self.config.columns;
        for (row_counters, hasher) in self
            .counters
            .chunks_exact_mut(columns)
            .zip(self.hashes.iter())
        {
            // Batched column-only hash kernel: coefficients hoisted for the
            // polynomial family, blocked pipelined lookups for tabulation —
            // bit-identical to per-key `hasher.column`.
            hasher.column_batch(keys, cols);
            if exact_i64 {
                for (&col, &id) in cols.iter().zip(ideltas.iter()) {
                    row_counters[col as usize] += id as f64;
                }
            } else {
                for (&col, &fd) in cols.iter().zip(fdeltas.iter()) {
                    row_counters[col as usize] += fd;
                }
            }
        }
    }
}

/// Count-Min counters are linear in the frequency vector, so identically
/// configured sketches merge by adding counters.
impl MergeableSketch for CountMinSketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.config != other.config || self.seed != other.seed {
            return Err(MergeError::new(
                "Count-Min merge requires identical shape, backend and seed",
            ));
        }
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        Ok(())
    }
}

/// Count-Min state is seeds + counters, exactly like CountSketch: the
/// checkpoint stores the shape, backend, master seed and raw counters, and
/// restore re-derives the row hashers through [`CountMinSketch::with_config`].
impl Checkpoint for CountMinSketch {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::COUNT_MIN)?;
        checkpoint::write_u64(w, self.config.rows as u64)?;
        checkpoint::write_u64(w, self.config.columns as u64)?;
        checkpoint::write_backend(w, self.config.backend)?;
        checkpoint::write_u64(w, self.seed)?;
        checkpoint::write_f64_slice(w, &self.counters)?;
        Ok(())
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        checkpoint::read_header(r, kind::COUNT_MIN)?;
        let rows = checkpoint::read_len(r)?;
        let columns = checkpoint::read_len(r)?;
        let backend = checkpoint::read_backend(r)?;
        let seed = checkpoint::read_u64(r)?;
        let config = CountMinConfig::try_new(rows, columns)
            .map_err(|e| CheckpointError::Corrupt(e.to_string()))?
            .with_backend(backend);
        let cells = rows
            .checked_mul(columns)
            .ok_or_else(|| CheckpointError::Corrupt("rows × columns overflows".into()))?;
        let counters = checkpoint::read_f64_counters(r, cells, "Count-Min counters")?;
        let mut sketch = Self::with_config(config, seed);
        sketch.counters = counters;
        Ok(sketch)
    }
}

impl FrequencySketch for CountMinSketch {
    fn estimate(&self, item: u64) -> f64 {
        self.hashes
            .iter()
            .enumerate()
            .map(|(row, hasher)| self.counters[self.cell(row, hasher.column(item) as usize)])
            .fold(f64::INFINITY, f64::min)
    }

    fn space_words(&self) -> usize {
        self.counters.len() + self.hashes.iter().map(|h| h.space_words()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_streams::{StreamConfig, StreamGenerator, TurnstileStream, UniformStreamGenerator};

    #[test]
    fn construction_validation() {
        assert!(CountMinSketch::try_new(0, 4, 0).is_err());
        assert!(CountMinSketch::try_new(4, 0, 0).is_err());
        assert!(CountMinSketch::with_guarantee(0.0, 0.1, 0).is_err());
        assert!(CountMinSketch::with_guarantee(0.1, 0.0, 0).is_err());
        let cm = CountMinSketch::with_guarantee(0.01, 0.05, 0).unwrap();
        assert!(cm.config().columns >= 271);
        assert!(cm.config().rows >= 3);
    }

    #[test]
    fn never_underestimates_on_insertion_only_streams() {
        let stream = UniformStreamGenerator::new(StreamConfig::new(512, 20_000), 3).generate();
        let fv = stream.frequency_vector();
        let mut cm = CountMinSketch::new(4, 128, 7);
        cm.process_stream(&stream);
        for (item, v) in fv.iter() {
            assert!(
                cm.estimate(item) + 1e-9 >= v as f64,
                "Count-Min underestimated item {item}"
            );
        }
    }

    #[test]
    fn error_bounded_by_epsilon_f1() {
        let stream = UniformStreamGenerator::new(StreamConfig::new(256, 30_000), 5).generate();
        let fv = stream.frequency_vector();
        let f1 = fv.f1();
        let epsilon = 0.02;
        let mut cm = CountMinSketch::with_guarantee(epsilon, 0.01, 9).unwrap();
        cm.process_stream(&stream);
        let mut violations = 0;
        for (item, v) in fv.iter() {
            if cm.estimate(item) - v as f64 > epsilon * f1 {
                violations += 1;
            }
        }
        assert!(
            violations <= 2,
            "too many error-bound violations: {violations}"
        );
    }

    #[test]
    fn exact_for_isolated_item() {
        let mut s = TurnstileStream::new(1024);
        s.push_delta(77, 500);
        let mut cm = CountMinSketch::new(3, 64, 1);
        cm.process_stream(&s);
        assert!((cm.estimate(77) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn space_words_positive() {
        let cm = CountMinSketch::new(2, 32, 0);
        assert!(cm.space_words() >= 64);
    }

    #[test]
    fn tabulation_backend_exact_for_isolated_item() {
        let cfg = CountMinConfig::new(3, 64).with_backend(HashBackend::Tabulation);
        let mut cm = CountMinSketch::with_config(cfg, 1);
        let mut s = TurnstileStream::new(1024);
        s.push_delta(77, 500);
        cm.process_stream(&s);
        assert!((cm.estimate(77) - 500.0).abs() < 1e-9);
        assert_eq!(cm.config().backend, HashBackend::Tabulation);
    }
}
