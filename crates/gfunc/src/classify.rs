//! The zero-one-law classifier (Theorems 2 and 3).
//!
//! Given a function `g` and a [`PropertyConfig`], [`classify`] runs the four
//! property analyzers and assembles the verdicts exactly as the theorems
//! prescribe:
//!
//! * if `g` is (empirically) nearly periodic, the normal-function law does
//!   not apply and the verdict is [`OnePassVerdict::OutsideNormalScope`] /
//!   [`TwoPassVerdict::OutsideNormalScope`] (the function may still be
//!   tractable through a bespoke algorithm, as `g_np` is — Appendix D.1);
//! * otherwise the function is normal, and
//!   * it is 1-pass tractable iff it is slow-jumping, slow-dropping and
//!     predictable (Theorem 2);
//!   * it is 2-pass (indeed `O(1)`-pass) tractable iff it is slow-jumping and
//!     slow-dropping (Theorem 3).

use crate::properties::{
    analyze_nearly_periodic, analyze_predictable, analyze_slow_dropping, analyze_slow_jumping,
    estimate_envelope, NearlyPeriodicReport, PredictableReport, PropertyConfig, SlowDroppingReport,
    SlowJumpingReport, SubpolyEnvelope,
};
use crate::GFunction;

/// The 1-pass verdict of the zero-one law.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnePassVerdict {
    /// Slow-jumping, slow-dropping and predictable: a sub-polynomial-space
    /// one-pass algorithm exists (Algorithm 2 via the recursive sketch).
    Tractable,
    /// The function is normal but violates at least one of the three
    /// properties: every one-pass algorithm needs polynomial space
    /// (Lemmas 23–25).
    Intractable,
    /// The function is nearly periodic: Theorems 2/3 do not apply.
    OutsideNormalScope,
}

/// The 2-pass verdict of the zero-one law.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoPassVerdict {
    /// Slow-jumping and slow-dropping: the two-pass algorithm (Algorithm 1)
    /// applies.
    Tractable,
    /// The function is normal but not slow-jumping or not slow-dropping:
    /// every `O(1)`-pass algorithm needs polynomial space (Lemmas 27–28).
    Intractable,
    /// The function is nearly periodic: Theorems 2/3 do not apply.
    OutsideNormalScope,
}

/// The full output of the classifier: per-property reports plus the verdicts.
#[derive(Debug, Clone)]
pub struct TractabilityReport {
    /// Name of the classified function.
    pub function_name: String,
    /// The window / exponent configuration the analysis used.
    pub config: PropertyConfig,
    /// Slow-jumping analysis (Definition 6).
    pub slow_jumping: SlowJumpingReport,
    /// Slow-dropping analysis (Definition 7).
    pub slow_dropping: SlowDroppingReport,
    /// Predictability analysis (Definition 8).
    pub predictable: PredictableReport,
    /// Nearly-periodic analysis (Definition 9).
    pub nearly_periodic: NearlyPeriodicReport,
    /// The empirical sub-polynomial envelope `H(M)` (Propositions 15/16),
    /// which the upper-bound algorithms consume.
    pub envelope: SubpolyEnvelope,
    /// Theorem 2 verdict.
    pub one_pass: OnePassVerdict,
    /// Theorem 3 verdict.
    pub two_pass: TwoPassVerdict,
}

impl TractabilityReport {
    /// Whether the function was classified as normal (not nearly periodic).
    pub fn is_normal(&self) -> bool {
        !self.nearly_periodic.nearly_periodic
    }

    /// A one-line human-readable summary, used by experiment E1's table.
    pub fn summary_row(&self) -> String {
        format!(
            "{:<28} | jump:{} drop:{} pred:{} np:{} | 1-pass:{:?} 2-pass:{:?}",
            self.function_name,
            yes_no(self.slow_jumping.holds),
            yes_no(self.slow_dropping.holds),
            yes_no(self.predictable.holds),
            yes_no(self.nearly_periodic.nearly_periodic),
            self.one_pass,
            self.two_pass
        )
    }
}

fn yes_no(b: bool) -> &'static str {
    if b {
        "Y"
    } else {
        "N"
    }
}

/// Classify a function under the zero-one laws.
pub fn classify<G: GFunction + ?Sized>(g: &G, config: &PropertyConfig) -> TractabilityReport {
    let slow_jumping = analyze_slow_jumping(g, config);
    let slow_dropping = analyze_slow_dropping(g, config);
    let predictable = analyze_predictable(g, config);
    let nearly_periodic = analyze_nearly_periodic(g, config);
    let envelope = estimate_envelope(g, config);

    let (one_pass, two_pass) = if nearly_periodic.nearly_periodic {
        (
            OnePassVerdict::OutsideNormalScope,
            TwoPassVerdict::OutsideNormalScope,
        )
    } else {
        let one = if slow_jumping.holds && slow_dropping.holds && predictable.holds {
            OnePassVerdict::Tractable
        } else {
            OnePassVerdict::Intractable
        };
        let two = if slow_jumping.holds && slow_dropping.holds {
            TwoPassVerdict::Tractable
        } else {
            TwoPassVerdict::Intractable
        };
        (one, two)
    };

    TractabilityReport {
        function_name: g.name(),
        config: config.clone(),
        slow_jumping,
        slow_dropping,
        predictable,
        nearly_periodic,
        envelope,
        one_pass,
        two_pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{GnpFunction, InversePowerFunction, OscillatingQuadratic, PowerFunction};

    fn cfg() -> PropertyConfig {
        PropertyConfig::fast()
    }

    #[test]
    fn quadratic_is_one_pass_tractable() {
        let report = classify(&PowerFunction::new(2.0), &cfg());
        assert_eq!(report.one_pass, OnePassVerdict::Tractable);
        assert_eq!(report.two_pass, TwoPassVerdict::Tractable);
        assert!(report.is_normal());
        assert!(report.summary_row().contains("x^2"));
    }

    #[test]
    fn cubic_is_intractable_in_both_regimes() {
        let report = classify(&PowerFunction::new(3.0), &cfg());
        assert_eq!(report.one_pass, OnePassVerdict::Intractable);
        assert_eq!(report.two_pass, TwoPassVerdict::Intractable);
        assert!(!report.slow_jumping.holds);
    }

    #[test]
    fn oscillating_sqrt_quadratic_needs_two_passes() {
        // The headline separation of Theorems 2 vs 3: (2 + sin √x) x² is slow
        // jumping and slow dropping but not predictable.
        let report = classify(&OscillatingQuadratic::sqrt(), &cfg());
        assert_eq!(report.one_pass, OnePassVerdict::Intractable);
        assert_eq!(report.two_pass, TwoPassVerdict::Tractable);
        assert!(!report.predictable.holds);
        assert!(report.slow_jumping.holds && report.slow_dropping.holds);
    }

    #[test]
    fn inverse_is_intractable() {
        let report = classify(&InversePowerFunction::new(1.0), &cfg());
        assert_eq!(report.one_pass, OnePassVerdict::Intractable);
        assert_eq!(report.two_pass, TwoPassVerdict::Intractable);
        assert!(!report.slow_dropping.holds);
        assert!(report.envelope.drop_factor > 100.0);
    }

    #[test]
    fn gnp_is_outside_the_normal_scope() {
        let report = classify(&GnpFunction::new(), &cfg());
        assert_eq!(report.one_pass, OnePassVerdict::OutsideNormalScope);
        assert_eq!(report.two_pass, TwoPassVerdict::OutsideNormalScope);
        assert!(!report.is_normal());
    }
}
