//! A registry of the built-in library functions together with their
//! paper-derived ground-truth classification.
//!
//! The registry serves two purposes:
//!
//! 1. it is the input of experiment E1 (the classification table), and
//! 2. its tests pin down that the empirical analyzers of
//!    [`crate::properties`] agree with the paper's own statements about
//!    every worked example (§3, §4.6, Appendix D).

use crate::classify::{classify, OnePassVerdict, TwoPassVerdict};
use crate::library::{
    BoundedOscillation, CappedLinear, ExpSqrtLogFunction, ExponentialFunction, GnpFunction,
    InverseLogFunction, InversePowerFunction, OscillatingQuadratic, PoissonMixtureNll,
    PolylogFunction, PowerFunction, SpamDiscountUtility, SubpolyModulatedQuadratic,
};
use crate::properties::PropertyConfig;
use crate::traits::LEta;
use crate::GFunction;

/// The paper-derived ground truth for a registered function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroundTruth {
    /// Whether the paper classifies the function as 1-pass tractable
    /// (for nearly periodic functions this records the bespoke-algorithm
    /// answer, e.g. `g_np` is 1-pass tractable by Proposition 54).
    pub one_pass_tractable: bool,
    /// Whether the function is `O(1)`-pass tractable.
    pub two_pass_tractable: bool,
    /// Whether the function is S-nearly periodic (outside the normal law).
    pub nearly_periodic: bool,
}

impl GroundTruth {
    /// A normal function tractable in both regimes.
    pub const fn tractable() -> Self {
        Self {
            one_pass_tractable: true,
            two_pass_tractable: true,
            nearly_periodic: false,
        }
    }

    /// A normal function needing two passes (not predictable).
    pub const fn two_pass_only() -> Self {
        Self {
            one_pass_tractable: false,
            two_pass_tractable: true,
            nearly_periodic: false,
        }
    }

    /// A normal function intractable in any constant number of passes.
    pub const fn intractable() -> Self {
        Self {
            one_pass_tractable: false,
            two_pass_tractable: false,
            nearly_periodic: false,
        }
    }
}

/// A library function plus its ground truth and the paper location the
/// ground truth comes from.
pub struct RegisteredFunction {
    /// The function object.
    pub function: Box<dyn GFunction + Send + Sync>,
    /// Paper-derived classification.
    pub ground_truth: GroundTruth,
    /// Where in the paper the classification is stated or implied.
    pub paper_reference: &'static str,
}

impl RegisteredFunction {
    fn new(
        function: Box<dyn GFunction + Send + Sync>,
        ground_truth: GroundTruth,
        paper_reference: &'static str,
    ) -> Self {
        Self {
            function,
            ground_truth,
            paper_reference,
        }
    }

    /// The function's display name.
    pub fn name(&self) -> String {
        self.function.name()
    }
}

/// The registry of built-in functions.
pub struct FunctionRegistry {
    entries: Vec<RegisteredFunction>,
}

impl FunctionRegistry {
    /// The standard registry: every worked example from the paper plus the
    /// §1.1 application functions.
    pub fn standard() -> Self {
        let mut entries: Vec<RegisteredFunction> = Vec::new();
        let t = GroundTruth::tractable;
        let two = GroundTruth::two_pass_only;
        let bad = GroundTruth::intractable;

        // Frequency moments x^p: tractable iff p ≤ 2 (§1, Theorem 2).
        for p in [0.5f64, 1.0, 1.5, 2.0] {
            entries.push(RegisteredFunction::new(
                Box::new(PowerFunction::new(p)),
                t(),
                "Thm 2; Indyk-Woodruff moments, p <= 2",
            ));
        }
        for p in [2.5f64, 3.0] {
            entries.push(RegisteredFunction::new(
                Box::new(PowerFunction::new(p)),
                bad(),
                "Def 6 (not slow-jumping); Sec 4.6 'x^3 is not slow-jumping'",
            ));
        }
        entries.push(RegisteredFunction::new(
            Box::new(ExponentialFunction),
            bad(),
            "Def 6: 2^x grows too quickly",
        ));

        // Polylogarithmic and sub-polynomial growth.
        entries.push(RegisteredFunction::new(
            Box::new(PolylogFunction::new(2.0)),
            t(),
            "Sec 2: polylog functions are tractable",
        ));
        entries.push(RegisteredFunction::new(
            Box::new(InverseLogFunction),
            t(),
            "Def 7 example: (log2(1+x))^-1 1(x>0) is slow-dropping",
        ));
        entries.push(RegisteredFunction::new(
            Box::new(ExpSqrtLogFunction),
            t(),
            "Sec 4.6: e^{log^(1/2)(1+x)} is 1-pass tractable",
        ));
        entries.push(RegisteredFunction::new(
            Box::new(SubpolyModulatedQuadratic),
            t(),
            "Def 6 example: x^2 2^sqrt(log x) is slow-jumping",
        ));
        entries.push(RegisteredFunction::new(
            Box::new(LEta::new(PowerFunction::new(2.0), 1.0)),
            t(),
            "Sec 4.6: x^2 lg(1+x) is 1-pass tractable; Thm 31",
        ));

        // Polynomially decreasing functions.
        entries.push(RegisteredFunction::new(
            Box::new(InversePowerFunction::new(1.0)),
            bad(),
            "Sec 4.6: 1/x is not slow-dropping",
        ));
        entries.push(RegisteredFunction::new(
            Box::new(InversePowerFunction::new(0.5)),
            bad(),
            "Def 7: polynomial decay is not slow-dropping",
        ));

        // Oscillating functions.
        entries.push(RegisteredFunction::new(
            Box::new(OscillatingQuadratic::direct()),
            two(),
            "Def 8 negative example; slow-jumping + slow-dropping per Def 6/7",
        ));
        entries.push(RegisteredFunction::new(
            Box::new(OscillatingQuadratic::sqrt()),
            two(),
            "Sec 4.6: (2+sin sqrt x)x^2 is 2-pass but not 1-pass tractable",
        ));
        entries.push(RegisteredFunction::new(
            Box::new(OscillatingQuadratic::log()),
            t(),
            "Sec 4.6: (2+sin log(1+x))x^2 is 1-pass tractable",
        ));
        entries.push(RegisteredFunction::new(
            Box::new(BoundedOscillation),
            t(),
            "Def 8 discussion: (2+sin x)1(x>0) is predictable",
        ));

        // The nearly periodic example.
        entries.push(RegisteredFunction::new(
            Box::new(GnpFunction::new()),
            GroundTruth {
                one_pass_tractable: true,
                two_pass_tractable: true,
                nearly_periodic: true,
            },
            "Def 52 / Prop 53 / Prop 54",
        ));

        // Applications (§1.1).
        entries.push(RegisteredFunction::new(
            Box::new(PoissonMixtureNll::new(0.5, 0.5, 6.0)),
            t(),
            "Sec 1.1.1: Poisson mixture log-likelihood satisfies the criteria",
        ));
        entries.push(RegisteredFunction::new(
            Box::new(SpamDiscountUtility::new(100)),
            t(),
            "Sec 1.1.2: non-monotone utility with slow decay",
        ));
        entries.push(RegisteredFunction::new(
            Box::new(CappedLinear::new(100)),
            t(),
            "Sec 1.1.2: monotone capped billing baseline",
        ));

        Self { entries }
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over the registered functions.
    pub fn iter(&self) -> impl Iterator<Item = &RegisteredFunction> {
        self.entries.iter()
    }

    /// Find a function by (exact) display name.
    pub fn get(&self, name: &str) -> Option<&RegisteredFunction> {
        self.entries.iter().find(|e| e.name() == name)
    }

    /// Classify every registered function and pair the verdicts with the
    /// ground truth.  Returns `(entry, report, verdict_matches)` rows — the
    /// raw material of experiment E1.
    pub fn classification_table(
        &self,
        config: &PropertyConfig,
    ) -> Vec<(
        &RegisteredFunction,
        crate::classify::TractabilityReport,
        bool,
    )> {
        self.entries
            .iter()
            .map(|entry| {
                let report = classify(entry.function.as_ref(), config);
                let matches = Self::verdict_matches(&entry.ground_truth, &report);
                (entry, report, matches)
            })
            .collect()
    }

    /// Whether an empirical report agrees with the ground truth.
    ///
    /// For nearly periodic functions only the "outside the normal scope"
    /// determination is comparable (their tractability is decided by bespoke
    /// algorithms, not by the three properties).
    pub fn verdict_matches(
        truth: &GroundTruth,
        report: &crate::classify::TractabilityReport,
    ) -> bool {
        if truth.nearly_periodic {
            return report.one_pass == OnePassVerdict::OutsideNormalScope
                && report.two_pass == TwoPassVerdict::OutsideNormalScope;
        }
        let one_ok = match report.one_pass {
            OnePassVerdict::Tractable => truth.one_pass_tractable,
            OnePassVerdict::Intractable => !truth.one_pass_tractable,
            OnePassVerdict::OutsideNormalScope => false,
        };
        let two_ok = match report.two_pass {
            TwoPassVerdict::Tractable => truth.two_pass_tractable,
            TwoPassVerdict::Intractable => !truth.two_pass_tractable,
            TwoPassVerdict::OutsideNormalScope => false,
        };
        one_ok && two_ok
    }
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_well_formed() {
        let reg = FunctionRegistry::standard();
        assert!(
            reg.len() >= 20,
            "expected a rich library, got {}",
            reg.len()
        );
        assert!(!reg.is_empty());
        // Names are unique.
        let mut names: Vec<String> = reg.iter().map(|e| e.name()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate function names");
        // Lookup by name works.
        assert!(reg.get("x^2").is_some());
        assert!(reg.get("no-such-function").is_none());
    }

    #[test]
    fn every_function_is_in_class_g() {
        let reg = FunctionRegistry::standard();
        for entry in reg.iter() {
            assert!(
                entry.function.is_in_class_g(1 << 14),
                "{} violates the class G requirements",
                entry.name()
            );
        }
    }

    #[test]
    fn ground_truth_is_consistent() {
        // 1-pass tractability implies 2-pass tractability for normal
        // functions (Theorem 3 needs a subset of Theorem 2's conditions).
        let reg = FunctionRegistry::standard();
        for entry in reg.iter() {
            let gt = entry.ground_truth;
            if !gt.nearly_periodic && gt.one_pass_tractable {
                assert!(gt.two_pass_tractable, "{}", entry.name());
            }
        }
    }

    /// Experiment E1 in miniature: the empirical classifier agrees with the
    /// paper's stated classification for every registered function.
    #[test]
    fn classifier_agrees_with_paper_ground_truth() {
        let reg = FunctionRegistry::standard();
        let table = reg.classification_table(&PropertyConfig::fast());
        let mut mismatches = Vec::new();
        for (entry, report, matches) in &table {
            if !matches {
                mismatches.push(format!(
                    "{} (truth {:?}) got {}",
                    entry.name(),
                    entry.ground_truth,
                    report.summary_row()
                ));
            }
        }
        assert!(
            mismatches.is_empty(),
            "classifier disagrees with the paper on:\n{}",
            mismatches.join("\n")
        );
    }
}
