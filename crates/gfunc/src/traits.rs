//! The [`GFunction`] trait and generic combinators.

/// A function `g : Z_{≥0} → R_{≥0}` in (or near) the paper's class `G`.
///
/// Requirements assumed by the algorithms (checked by
/// [`is_in_class_g`](GFunction::is_in_class_g) and asserted by tests for the
/// built-in library):
///
/// * `g(0) = 0`;
/// * `g(x) > 0` for `x > 0`;
/// * `g(1) = 1` is *not* required — the algorithms normalize internally via
///   [`NormalizedG`], matching the paper's "without loss of generality
///   `g(1) = 1`" remark.
///
/// The paper extends `g` symmetrically to negative arguments
/// (`g(-x) = g(x)`); [`GFunction::eval_signed`] implements that convention.
pub trait GFunction {
    /// A short human-readable name (used in reports and experiment tables).
    fn name(&self) -> String;

    /// Evaluate `g(x)` for a non-negative integer argument.
    fn eval(&self, x: u64) -> f64;

    /// Evaluate on a signed frequency using the symmetric extension
    /// `g(v) = g(|v|)`.
    fn eval_signed(&self, v: i64) -> f64 {
        self.eval(v.unsigned_abs())
    }

    /// Whether the function satisfies the structural requirements of the
    /// class `G` on the window `[0, probe_limit]`: `g(0) = 0` and `g(x) > 0`
    /// for `0 < x ≤ probe_limit`.
    fn is_in_class_g(&self, probe_limit: u64) -> bool {
        if self.eval(0) != 0.0 {
            return false;
        }
        let probe = probe_limit.clamp(1, 4096);
        // A probe passes only when g(x) is strictly positive; NaN fails.
        let positive = |x: u64| self.eval(x).partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        // Check a dense prefix and a geometric tail.
        for x in 1..=probe.min(512) {
            if !positive(x) {
                return false;
            }
        }
        let mut x = 512u64;
        while x <= probe_limit {
            if !positive(x) {
                return false;
            }
            x = x.saturating_mul(2);
        }
        true
    }
}

/// Parameter-level serialization for a function, used by the estimator
/// checkpoints (`gsum_streams::Checkpoint`).
///
/// A `GFunction` is pure configuration — it holds no stream-dependent state —
/// so an estimator snapshot only needs the function's *parameters* (an
/// exponent, a threshold, a modulation scale, ...) to be self-contained: the
/// estimator's `restore` decodes the parameters and rebuilds the function
/// through its ordinary constructor, the same code path fresh construction
/// uses.  The encoding is little-endian and versionless; the surrounding
/// checkpoint header carries the format version.
///
/// `decode_params` returns `None` for malformed bytes (wrong length, values a
/// constructor would reject) — checkpoint restore translates that into an
/// error instead of panicking.
pub trait FunctionCodec: Sized {
    /// Encode the function's parameters as bytes.
    fn encode_params(&self) -> Vec<u8>;

    /// Decode a function from bytes written by
    /// [`encode_params`](Self::encode_params).
    fn decode_params(bytes: &[u8]) -> Option<Self>;
}

/// Shared helper: interpret exactly eight bytes as a little-endian `f64`.
pub(crate) fn f64_param(bytes: &[u8]) -> Option<f64> {
    Some(f64::from_bits(u64::from_le_bytes(bytes.try_into().ok()?)))
}

/// Shared helper: interpret exactly eight bytes as a little-endian `u64`.
pub(crate) fn u64_param(bytes: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

/// Blanket implementation so `&G`, `Box<G>`, etc. can be passed where a
/// `GFunction` is expected.
impl<T: GFunction + ?Sized> GFunction for &T {
    fn name(&self) -> String {
        (**self).name()
    }
    fn eval(&self, x: u64) -> f64 {
        (**self).eval(x)
    }
}

impl<T: GFunction + ?Sized> GFunction for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn eval(&self, x: u64) -> f64 {
        (**self).eval(x)
    }
}

/// `g` rescaled so that `g(1) = 1`: evaluates `g(x) / g(1)`.
///
/// The paper's normalization (§3): a multiplicative approximation of
/// `g(x)/g(1)` is a multiplicative approximation of `g`.
#[derive(Debug, Clone)]
pub struct NormalizedG<G> {
    inner: G,
    scale: f64,
}

impl<G: GFunction> NormalizedG<G> {
    /// Normalize a function (panics if `g(1) ≤ 0`).
    pub fn new(inner: G) -> Self {
        let g1 = inner.eval(1);
        assert!(g1 > 0.0, "cannot normalize a function with g(1) <= 0");
        Self {
            inner,
            scale: 1.0 / g1,
        }
    }

    /// The normalization factor `1 / g(1)`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Access the wrapped function.
    pub fn inner(&self) -> &G {
        &self.inner
    }
}

impl<G: GFunction> GFunction for NormalizedG<G> {
    fn name(&self) -> String {
        format!("normalized({})", self.inner.name())
    }
    fn eval(&self, x: u64) -> f64 {
        self.inner.eval(x) * self.scale
    }
}

/// `c · g(x)` for a positive constant `c`.
#[derive(Debug, Clone)]
pub struct ScaledG<G> {
    inner: G,
    factor: f64,
}

impl<G: GFunction> ScaledG<G> {
    /// Scale a function by a positive factor.
    pub fn new(inner: G, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Self { inner, factor }
    }
}

impl<G: GFunction> GFunction for ScaledG<G> {
    fn name(&self) -> String {
        format!("{}*{}", self.factor, self.inner.name())
    }
    fn eval(&self, x: u64) -> f64 {
        self.factor * self.inner.eval(x)
    }
}

/// The `L_η` transformation of Definition 55:
/// `L_η(g)(x) = g(x) · log^η(1 + x)`.
///
/// Theorems 30 and 31 use it to separate nearly periodic functions from
/// 1-pass tractable normal functions: applying `L_η` preserves tractability
/// of normal functions but destroys it for nearly periodic ones.
#[derive(Debug, Clone)]
pub struct LEta<G> {
    inner: G,
    eta: f64,
}

impl<G: GFunction> LEta<G> {
    /// Apply `L_η` with exponent `eta ≥ 0`.
    pub fn new(inner: G, eta: f64) -> Self {
        assert!(eta >= 0.0, "eta must be non-negative");
        Self { inner, eta }
    }

    /// The exponent `η`.
    pub fn eta(&self) -> f64 {
        self.eta
    }
}

impl<G: GFunction> GFunction for LEta<G> {
    fn name(&self) -> String {
        format!("L_{}({})", self.eta, self.inner.name())
    }
    fn eval(&self, x: u64) -> f64 {
        self.inner.eval(x) * (1.0 + x as f64).ln().powf(self.eta)
    }
}

/// A `GFunction` defined by a closure, convenient for one-off functions in
/// tests and experiments.
pub struct ClosureG<F> {
    name: String,
    f: F,
}

impl<F: Fn(u64) -> f64> ClosureG<F> {
    /// Wrap a closure as a `GFunction`.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            name: name.into(),
            f,
        }
    }
}

impl<F: Fn(u64) -> f64> GFunction for ClosureG<F> {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn eval(&self, x: u64) -> f64 {
        (self.f)(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Square;
    impl GFunction for Square {
        fn name(&self) -> String {
            "x^2".into()
        }
        fn eval(&self, x: u64) -> f64 {
            (x as f64).powi(2)
        }
    }

    struct DoubleSquare;
    impl GFunction for DoubleSquare {
        fn name(&self) -> String {
            "2x^2".into()
        }
        fn eval(&self, x: u64) -> f64 {
            2.0 * (x as f64).powi(2)
        }
    }

    #[test]
    fn symmetric_extension() {
        let g = Square;
        assert_eq!(g.eval_signed(-5), 25.0);
        assert_eq!(g.eval_signed(5), 25.0);
        assert_eq!(g.eval_signed(0), 0.0);
    }

    #[test]
    fn class_membership_check() {
        let g = Square;
        assert!(g.is_in_class_g(1 << 20));

        // A function with g(0) != 0 is rejected.
        let bad = ClosureG::new("const", |_x| 1.0);
        assert!(!bad.is_in_class_g(100));

        // A function that vanishes at a positive point is rejected.
        let vanishing = ClosureG::new("vanish", |x| if x == 3 { 0.0 } else { x as f64 });
        assert!(!vanishing.is_in_class_g(100));
    }

    #[test]
    fn normalization_fixes_g1() {
        let g = NormalizedG::new(DoubleSquare);
        assert!((g.eval(1) - 1.0).abs() < 1e-12);
        assert!((g.eval(4) - 16.0).abs() < 1e-12);
        assert!((g.scale() - 0.5).abs() < 1e-12);
        assert!(g.name().contains("normalized"));
    }

    #[test]
    fn scaling() {
        let g = ScaledG::new(Square, 3.0);
        assert_eq!(g.eval(2), 12.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_scale_panics() {
        let _ = ScaledG::new(Square, 0.0);
    }

    #[test]
    fn l_eta_transformation() {
        let g = LEta::new(Square, 1.0);
        let x = 9u64;
        assert!((g.eval(x) - 81.0 * (10.0f64).ln()).abs() < 1e-9);
        assert_eq!(g.eval(0), 0.0);
        assert_eq!(LEta::new(Square, 0.0).eval(7), 49.0);
        assert!(g.name().starts_with("L_1"));
        assert_eq!(g.eta(), 1.0);
    }

    #[test]
    fn references_and_boxes_are_gfunctions() {
        let g = Square;
        let r: &dyn GFunction = &g;
        assert_eq!(r.eval(3), 9.0);
        let b: Box<dyn GFunction> = Box::new(Square);
        assert_eq!(b.eval(3), 9.0);
        assert_eq!(b.name(), "x^2");
        // A reference to a reference still works (blanket impl).
        fn takes_g<G: GFunction>(g: G) -> f64 {
            g.eval(2)
        }
        assert_eq!(takes_g(&Square), 4.0);
    }

    #[test]
    fn closure_function() {
        let g = ClosureG::new("linear", |x| x as f64);
        assert_eq!(g.eval(17), 17.0);
        assert_eq!(g.name(), "linear");
    }
}
