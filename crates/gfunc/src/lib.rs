//! # gsum-gfunc
//!
//! The function class `G` of the paper and everything the zero-one laws say
//! about it.
//!
//! The paper studies sums `g(V) = Σ_i g(|v_i|)` for functions
//! `g : Z_{≥0} → R` in the class
//!
//! ```text
//! G = { g : g(0) = 0, g(1) = 1, g(x) > 0 for x > 0 }
//! ```
//!
//! and characterizes (Theorems 2 and 3) the tractable ones in terms of three
//! properties:
//!
//! * **slow-jumping** (Definition 6) — `g` never grows much faster than `x²`
//!   at any scale;
//! * **slow-dropping** (Definition 7) — `g` never decreases by more than a
//!   sub-polynomial factor;
//! * **predictable** (Definition 8) — either `g(x + y) ≈ g(x)` for small `y`,
//!   or `g(y)` is within a sub-polynomial factor of `g(x)`.
//!
//! The exceptions are the *nearly periodic* functions (Definition 9), which
//! escape the law and are treated separately (Appendix D; see
//! [`library::GnpFunction`]).
//!
//! This crate provides:
//! * [`GFunction`] — the trait every `g` implements, plus combinators
//!   (scaling, the `L_η` transformation of Definition 55, symmetric
//!   extension).
//! * [`library`] — ~30 named functions: every worked example in the paper
//!   plus the application functions of §1.1.
//! * [`dynamic`] — runtime-chosen functions: the object-safe [`DynFunction`]
//!   wire identity and the [`DynG`] box the serving layer's multi-function
//!   registry is parameterized with.
//! * [`properties`] — empirical analyzers for the three properties and the
//!   nearly-periodic conditions, returning witnesses when a property fails.
//! * [`classify`](mod@classify) — the zero-one-law classifier assembling the analyzer
//!   outputs into 1-pass / 2-pass tractability verdicts (Theorems 2 and 3).
//! * [`registry`] — a registry of the built-in functions together with their
//!   ground-truth (paper-derived) classification, used by tests and by
//!   experiment E1.

pub mod classify;
pub mod dynamic;
pub mod library;
pub mod properties;
pub mod registry;
pub mod traits;

pub use classify::{classify, OnePassVerdict, TractabilityReport, TwoPassVerdict};
pub use dynamic::{decode_function, DynFunction, DynG};
pub use properties::PropertyConfig;
pub use registry::{FunctionRegistry, GroundTruth, RegisteredFunction};
pub use traits::{FunctionCodec, GFunction, LEta, NormalizedG, ScaledG};
