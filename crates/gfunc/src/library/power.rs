//! Power-law, polylogarithmic and related smooth functions.

use crate::traits::{f64_param, FunctionCodec};
use crate::GFunction;

/// `g(x) = x^p` for `p ≥ 0` — the frequency-moment family of Alon, Matias
/// and Szegedy.  Slow-jumping (hence tractable) exactly when `p ≤ 2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFunction {
    exponent: f64,
}

impl PowerFunction {
    /// Create `x^p`.
    ///
    /// # Panics
    /// Panics if `p < 0` (use [`InversePowerFunction`] for negative
    /// exponents, which need the `g(0) = 0` special case handled
    /// differently).
    pub fn new(exponent: f64) -> Self {
        assert!(exponent >= 0.0, "use InversePowerFunction for p < 0");
        Self { exponent }
    }

    /// The exponent `p`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

impl GFunction for PowerFunction {
    fn name(&self) -> String {
        format!("x^{}", self.exponent)
    }
    fn eval(&self, x: u64) -> f64 {
        if x == 0 {
            0.0
        } else {
            (x as f64).powf(self.exponent)
        }
    }
}

impl FunctionCodec for PowerFunction {
    fn encode_params(&self) -> Vec<u8> {
        self.exponent.to_bits().to_le_bytes().to_vec()
    }
    fn decode_params(bytes: &[u8]) -> Option<Self> {
        let p = f64_param(bytes)?;
        (p >= 0.0).then(|| Self::new(p))
    }
}

/// `g(x) = x^{-p}` for `p > 0` (with `g(0) = 0`) — polynomially decreasing,
/// hence **not** slow-dropping and not tractable in any constant number of
/// passes (Lemma 27; see also Braverman–Chestnut for the monotone case).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InversePowerFunction {
    exponent: f64,
}

impl InversePowerFunction {
    /// Create `x^{-p}` for `p > 0`.
    pub fn new(exponent: f64) -> Self {
        assert!(exponent > 0.0, "exponent must be positive");
        Self { exponent }
    }
}

impl GFunction for InversePowerFunction {
    fn name(&self) -> String {
        format!("x^-{}", self.exponent)
    }
    fn eval(&self, x: u64) -> f64 {
        if x == 0 {
            0.0
        } else {
            (x as f64).powf(-self.exponent)
        }
    }
}

impl FunctionCodec for InversePowerFunction {
    fn encode_params(&self) -> Vec<u8> {
        self.exponent.to_bits().to_le_bytes().to_vec()
    }
    fn decode_params(bytes: &[u8]) -> Option<Self> {
        let p = f64_param(bytes)?;
        (p > 0.0).then(|| Self::new(p))
    }
}

/// `g(x) = 2^x` (capped to avoid overflow far beyond any realistic frequency)
/// — the canonical not-slow-jumping function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExponentialFunction;

impl GFunction for ExponentialFunction {
    fn name(&self) -> String {
        "2^x".into()
    }
    fn eval(&self, x: u64) -> f64 {
        if x == 0 {
            0.0
        } else {
            2f64.powf((x as f64).min(1000.0))
        }
    }
}

/// `g(x) = log^k(1 + x)` — polylogarithmic growth; tractable for every
/// `k ≥ 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolylogFunction {
    power: f64,
}

impl PolylogFunction {
    /// Create `log^k(1+x)` with `k > 0`.
    pub fn new(power: f64) -> Self {
        assert!(power > 0.0, "power must be positive");
        Self { power }
    }
}

impl GFunction for PolylogFunction {
    fn name(&self) -> String {
        format!("ln^{}(1+x)", self.power)
    }
    fn eval(&self, x: u64) -> f64 {
        if x == 0 {
            0.0
        } else {
            (1.0 + x as f64).ln().powf(self.power)
        }
    }
}

impl FunctionCodec for PolylogFunction {
    fn encode_params(&self) -> Vec<u8> {
        self.power.to_bits().to_le_bytes().to_vec()
    }
    fn decode_params(bytes: &[u8]) -> Option<Self> {
        let p = f64_param(bytes)?;
        (p > 0.0).then(|| Self::new(p))
    }
}

/// Parameter-free functions encode as zero bytes.
macro_rules! impl_unit_codec {
    ($($ty:ident),* $(,)?) => {$(
        impl FunctionCodec for $ty {
            fn encode_params(&self) -> Vec<u8> {
                Vec::new()
            }
            fn decode_params(bytes: &[u8]) -> Option<Self> {
                bytes.is_empty().then_some($ty)
            }
        }
    )*};
}

impl_unit_codec!(
    ExponentialFunction,
    InverseLogFunction,
    SubpolyModulatedQuadratic,
    ExpSqrtLogFunction,
);

/// `g(x) = 1 / log₂(1 + x)` for `x > 0` — the paper's example (after
/// Definition 7) of a *decreasing but slow-dropping* (hence tractable)
/// function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InverseLogFunction;

impl GFunction for InverseLogFunction {
    fn name(&self) -> String {
        "1/log2(1+x)".into()
    }
    fn eval(&self, x: u64) -> f64 {
        if x == 0 {
            0.0
        } else {
            1.0 / (1.0 + x as f64).log2()
        }
    }
}

/// `g(x) = x² · 2^{√(log₂ x)}` — grows faster than `x²` but only by a
/// sub-polynomial factor, so it is still slow-jumping (the example given with
/// Definition 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubpolyModulatedQuadratic;

impl GFunction for SubpolyModulatedQuadratic {
    fn name(&self) -> String {
        "x^2 * 2^sqrt(lg x)".into()
    }
    fn eval(&self, x: u64) -> f64 {
        if x == 0 {
            0.0
        } else {
            let lx = (x as f64).log2().max(0.0);
            (x as f64).powi(2) * 2f64.powf(lx.sqrt())
        }
    }
}

/// `g(x) = e^{√(ln x)}` for `x ≥ 1` — a sub-polynomially growing but faster
/// than polylogarithmic function; the `e^{log^{1/2}(1+x)}` example of §4.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpSqrtLogFunction;

impl GFunction for ExpSqrtLogFunction {
    fn name(&self) -> String {
        "e^sqrt(ln x)".into()
    }
    fn eval(&self, x: u64) -> f64 {
        if x == 0 {
            0.0
        } else {
            (x as f64).ln().max(0.0).sqrt().exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_function_values() {
        let g = PowerFunction::new(2.0);
        assert_eq!(g.eval(0), 0.0);
        assert_eq!(g.eval(1), 1.0);
        assert_eq!(g.eval(7), 49.0);
        assert_eq!(g.exponent(), 2.0);
        assert!(g.is_in_class_g(1 << 16));
        assert_eq!(PowerFunction::new(0.5).eval(16), 4.0);
        // p = 0 still maps 0 to 0 (indicator of non-zero frequency, i.e. F0).
        assert_eq!(PowerFunction::new(0.0).eval(0), 0.0);
        assert_eq!(PowerFunction::new(0.0).eval(5), 1.0);
    }

    #[test]
    #[should_panic(expected = "InversePowerFunction")]
    fn negative_power_panics() {
        let _ = PowerFunction::new(-1.0);
    }

    #[test]
    fn inverse_power_values() {
        let g = InversePowerFunction::new(1.0);
        assert_eq!(g.eval(0), 0.0);
        assert_eq!(g.eval(1), 1.0);
        assert_eq!(g.eval(4), 0.25);
        assert!(g.is_in_class_g(1 << 16));
    }

    #[test]
    fn exponential_values() {
        let g = ExponentialFunction;
        assert_eq!(g.eval(0), 0.0);
        assert_eq!(g.eval(1), 2.0);
        assert_eq!(g.eval(10), 1024.0);
        // Capped rather than infinite for absurd arguments.
        assert!(g.eval(10_000).is_finite());
    }

    #[test]
    fn polylog_values() {
        let g = PolylogFunction::new(2.0);
        assert_eq!(g.eval(0), 0.0);
        let e_minus_1 = (std::f64::consts::E - 1.0).round() as u64;
        assert!(g.eval(e_minus_1) > 0.9 && g.eval(e_minus_1) < 1.3);
        assert!(g.is_in_class_g(1 << 16));
    }

    #[test]
    fn inverse_log_is_decreasing_but_positive() {
        let g = InverseLogFunction;
        assert_eq!(g.eval(0), 0.0);
        assert_eq!(g.eval(1), 1.0);
        assert!(g.eval(100) < g.eval(10));
        assert!(g.eval(1 << 20) > 0.0);
        assert!(g.is_in_class_g(1 << 20));
    }

    #[test]
    fn subpoly_modulated_quadratic_dominates_quadratic() {
        let g = SubpolyModulatedQuadratic;
        let q = PowerFunction::new(2.0);
        assert_eq!(g.eval(0), 0.0);
        for x in [16u64, 256, 65536] {
            assert!(g.eval(x) > q.eval(x));
        }
        // ... but by a sub-polynomial factor only (the modulation falls below
        // x^0.5 once x is moderately large).
        for x in [256u64, 65536] {
            assert!(g.eval(x) < q.eval(x) * (x as f64).powf(0.5));
        }
    }

    #[test]
    fn codec_roundtrips_and_rejects_bad_params() {
        let g = PowerFunction::new(1.5);
        assert_eq!(PowerFunction::decode_params(&g.encode_params()), Some(g));
        assert!(PowerFunction::decode_params(&[1, 2, 3]).is_none());
        assert!(PowerFunction::decode_params(&(-1.0f64).to_bits().to_le_bytes()).is_none());
        assert!(PowerFunction::decode_params(&f64::NAN.to_bits().to_le_bytes()).is_none());

        let g = InversePowerFunction::new(0.5);
        assert_eq!(
            InversePowerFunction::decode_params(&g.encode_params()),
            Some(g)
        );
        assert!(InversePowerFunction::decode_params(&0.0f64.to_bits().to_le_bytes()).is_none());

        let g = PolylogFunction::new(2.0);
        assert_eq!(PolylogFunction::decode_params(&g.encode_params()), Some(g));

        assert_eq!(
            ExponentialFunction::decode_params(&ExponentialFunction.encode_params()),
            Some(ExponentialFunction)
        );
        assert!(ExponentialFunction::decode_params(&[0]).is_none());
    }

    #[test]
    fn exp_sqrt_log_values() {
        let g = ExpSqrtLogFunction;
        assert_eq!(g.eval(0), 0.0);
        assert_eq!(g.eval(1), 1.0);
        assert!(g.eval(1 << 20) > g.eval(1 << 10));
        // Grows slower than any fixed power for moderately large x.
        assert!(g.eval(1 << 20) < (1u64 << 20) as f64);
    }
}
