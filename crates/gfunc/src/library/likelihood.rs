//! Log-likelihood functions (§1.1.1).
//!
//! The coordinates of the streamed vector are i.i.d. samples from a discrete
//! distribution `p(·; θ)`; the negative log-likelihood is
//! `ℓ(v) = −Σ_i ln p(v_i)`, a g-SUM for `g(x) = −ln p(x)`.  The paper's
//! running example is a mixture of two Poissons, whose negative log
//! likelihood is non-monotonic but satisfies all three tractability criteria.

use crate::traits::{f64_param, FunctionCodec};
use crate::GFunction;

/// The negative log-likelihood of a two-component Poisson mixture,
/// centred so that `g(0) = 0`:
///
/// ```text
/// p(x) = λ · Pois(x; α) + (1 − λ) · Pois(x; β)
/// g(x) = ln p(0) − ln p(x)
/// ```
///
/// Centring subtracts the same constant from every coordinate's
/// contribution, which the MLE application (`gsum-core::apps::likelihood`)
/// adds back exactly (it knows `n` and `ln p(0)`), so the statistical answer
/// is unchanged while `g` lands in the class `G` required by the theorems.
/// The constructor requires parameters for which `p(0)` is the mode of the
/// distribution, so that `g(x) > 0` for `x > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonMixtureNll {
    lambda: f64,
    alpha: f64,
    beta: f64,
    ln_p0: f64,
}

impl PoissonMixtureNll {
    /// Create the centred NLL for mixture weight `lambda ∈ (0,1)` and Poisson
    /// rates `alpha, beta > 0`.
    ///
    /// # Panics
    /// Panics if the parameters are out of range or if `p(0)` is not the
    /// strict mode of the mixture over `x ∈ {1, ..., 512}` (which would make
    /// the centred function non-positive somewhere, leaving the class `G`).
    pub fn new(lambda: f64, alpha: f64, beta: f64) -> Self {
        Self::try_new(lambda, alpha, beta).expect(
            "lambda must be in [0,1], rates positive, and p(0) must be the mode of the \
             mixture for the centred NLL to stay in class G; pick smaller rates or use \
             raw_nll directly",
        )
    }

    /// Fallible constructor: `None` where [`new`](Self::new) would panic.
    /// Used by the checkpoint codec so corrupt parameter bytes surface as
    /// errors instead of panics.
    pub fn try_new(lambda: f64, alpha: f64, beta: f64) -> Option<Self> {
        // Positive comparisons so NaN parameters fail every check.
        let params_ok = (0.0..=1.0).contains(&lambda) && alpha > 0.0 && beta > 0.0;
        if !params_ok {
            return None;
        }
        let ln_p0 = Self::ln_p(lambda, alpha, beta, 0);
        let out = Self {
            lambda,
            alpha,
            beta,
            ln_p0,
        };
        (1..=512u64).all(|x| out.eval(x) > 0.0).then_some(out)
    }

    /// `ln(x!)`, exact for small `x` and via the Stirling series beyond, so
    /// that evaluation stays O(1) even for frequencies in the millions.
    fn ln_factorial(x: u64) -> f64 {
        if x < 32 {
            return (1..=x).map(|k| (k as f64).ln()).sum();
        }
        let n = x as f64;
        // Stirling: ln n! = n ln n − n + ½ ln(2πn) + 1/(12n) − 1/(360n³) + ...
        n * n.ln() - n + 0.5 * (2.0 * std::f64::consts::PI * n).ln() + 1.0 / (12.0 * n)
            - 1.0 / (360.0 * n * n * n)
    }

    /// `ln p(x)` of the mixture.
    fn ln_p(lambda: f64, alpha: f64, beta: f64, x: u64) -> f64 {
        // ln Pois(x; r) = x ln r − r − ln(x!)
        let ln_fact: f64 = Self::ln_factorial(x);
        let ln_pois = |r: f64| (x as f64) * r.ln() - r - ln_fact;
        let a = ln_pois(alpha);
        let b = ln_pois(beta);
        // log-sum-exp of (ln λ + a, ln(1−λ) + b), guarding the edge weights.
        let ta = if lambda > 0.0 {
            lambda.ln() + a
        } else {
            f64::NEG_INFINITY
        };
        let tb = if lambda < 1.0 {
            (1.0 - lambda).ln() + b
        } else {
            f64::NEG_INFINITY
        };
        let m = ta.max(tb);
        m + ((ta - m).exp() + (tb - m).exp()).ln()
    }

    /// The raw (uncentred) negative log-likelihood `−ln p(x)`.
    pub fn raw_nll(&self, x: u64) -> f64 {
        -Self::ln_p(self.lambda, self.alpha, self.beta, x)
    }

    /// `ln p(0)`, the centring constant.
    pub fn ln_p0(&self) -> f64 {
        self.ln_p0
    }

    /// The mixture probability mass `p(x)`.
    pub fn pmf(&self, x: u64) -> f64 {
        Self::ln_p(self.lambda, self.alpha, self.beta, x).exp()
    }

    /// The mixture parameters `(λ, α, β)`.
    pub fn parameters(&self) -> (f64, f64, f64) {
        (self.lambda, self.alpha, self.beta)
    }
}

impl GFunction for PoissonMixtureNll {
    fn name(&self) -> String {
        format!(
            "poisson-mix-nll(l={}, a={}, b={})",
            self.lambda, self.alpha, self.beta
        )
    }
    fn eval(&self, x: u64) -> f64 {
        if x == 0 {
            0.0
        } else {
            self.ln_p0 - Self::ln_p(self.lambda, self.alpha, self.beta, x)
        }
    }
}

impl FunctionCodec for PoissonMixtureNll {
    fn encode_params(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        for v in [self.lambda, self.alpha, self.beta] {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out
    }
    fn decode_params(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 24 {
            return None;
        }
        let lambda = f64_param(&bytes[..8])?;
        let alpha = f64_param(&bytes[8..16])?;
        let beta = f64_param(&bytes[16..])?;
        Self::try_new(lambda, alpha, beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> PoissonMixtureNll {
        PoissonMixtureNll::new(0.5, 0.5, 6.0)
    }

    #[test]
    fn codec_roundtrips_and_validates() {
        let g = example();
        assert_eq!(
            PoissonMixtureNll::decode_params(&g.encode_params()),
            Some(g)
        );
        assert!(PoissonMixtureNll::decode_params(&[0u8; 23]).is_none());
        let mut bad = g.encode_params();
        bad[..8].copy_from_slice(&2.0f64.to_bits().to_le_bytes()); // lambda out of range
        assert!(PoissonMixtureNll::decode_params(&bad).is_none());
        assert!(PoissonMixtureNll::try_new(0.5, 100.0, 200.0).is_none());
    }

    #[test]
    fn pmf_sums_to_one() {
        let g = example();
        let total: f64 = (0..200u64).map(|x| g.pmf(x)).sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf sums to {total}");
    }

    #[test]
    fn centred_nll_is_in_class_g() {
        let g = example();
        assert_eq!(g.eval(0), 0.0);
        assert!(g.is_in_class_g(1 << 12));
    }

    #[test]
    fn centred_and_raw_differ_by_constant() {
        let g = example();
        for x in 1..50u64 {
            let diff = (g.raw_nll(x) + g.ln_p0()) - g.eval(x);
            assert!(diff.abs() < 1e-9);
        }
    }

    #[test]
    fn mixture_nll_is_non_monotonic() {
        // The second Poisson component (rate 6) creates a local dip in the
        // NLL around x = 6: the NLL rises towards x = 3, falls towards the
        // second mode, and rises again beyond it.
        let g = example();
        assert!(
            g.eval(6) < g.eval(3),
            "expected a dip at the second mode: g(3)={}, g(6)={}",
            g.eval(3),
            g.eval(6)
        );
        assert!(g.eval(40) > g.eval(6));
    }

    #[test]
    fn grows_roughly_like_x_log_x() {
        let g = example();
        // -ln Pois(x; β) ≈ x ln x − x(1 + ln β) + O(ln x): super-linear,
        // sub-quadratic.
        let x = 1u64 << 12;
        let v = g.eval(x);
        assert!(v > x as f64);
        assert!(v < (x as f64).powf(1.7));
    }

    #[test]
    fn parameters_accessor() {
        assert_eq!(example().parameters(), (0.5, 0.5, 6.0));
    }

    #[test]
    fn stirling_matches_exact_factorial() {
        for x in [32u64, 50, 100, 1000] {
            let exact: f64 = (1..=x).map(|k| (k as f64).ln()).sum();
            let approx = PoissonMixtureNll::ln_factorial(x);
            assert!(
                (exact - approx).abs() < 1e-6,
                "ln({x}!) exact {exact} vs stirling {approx}"
            );
        }
        assert_eq!(PoissonMixtureNll::ln_factorial(0), 0.0);
        assert_eq!(PoissonMixtureNll::ln_factorial(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "mode")]
    fn rejects_parameters_with_interior_mode_dominating_zero() {
        // With both rates large the mode is far from zero and p(0) is tiny,
        // so the centred function would go negative.
        let _ = PoissonMixtureNll::new(0.5, 6.0, 9.0);
    }

    #[test]
    fn mixture_nll_dip_example_matches_registry_parameters() {
        // The registry registers the (0.5, 0.5, 6.0) instance; make sure that
        // exact instance is valid and non-monotone.
        let g = PoissonMixtureNll::new(0.5, 0.5, 6.0);
        assert!(g.is_in_class_g(1 << 12));
        assert!(g.eval(6) < g.eval(3));
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn rejects_bad_lambda() {
        let _ = PoissonMixtureNll::new(1.5, 0.5, 4.0);
    }
}
