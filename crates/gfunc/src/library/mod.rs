//! The built-in function library.
//!
//! Every worked example in the paper and every application function from §1.1
//! is available as a named type:
//!
//! | paper reference | type |
//! |---|---|
//! | `x^p` (frequency moments, §1) | [`PowerFunction`] |
//! | `2^x` (not slow-jumping, Def. 6) | [`ExponentialFunction`] |
//! | `log^k(1+x)` | [`PolylogFunction`] |
//! | `1/log₂(1+x)` for `x>0` (Def. 7 example) | [`InverseLogFunction`] |
//! | `x^{-p}` (not slow-dropping) | [`InversePowerFunction`] |
//! | `x² 2^{√log x}` (Def. 6 example) | [`SubpolyModulatedQuadratic`] |
//! | `e^{log^{1/2} x}` (§4.6 example) | [`ExpSqrtLogFunction`] |
//! | `(2+sin x)x²`, `(2+sin √x)x²`, `(2+sin log(1+x))x²` (§3/§4.6) | [`OscillatingQuadratic`] |
//! | `(2+sin x)·1(x>0)` (Def. 8 example) | [`BoundedOscillation`] |
//! | `x² lg(1+x)` (§4.6 example) | `LEta<PowerFunction>` (see [`crate::LEta`]) |
//! | `g_np(x) = 2^{-i_x}` (Def. 52) | [`GnpFunction`] |
//! | Poisson-mixture log-likelihood (§1.1.1) | [`PoissonMixtureNll`] |
//! | spam-discounted click billing (§1.1.2) | [`SpamDiscountUtility`] |
//! | capped linear billing (§1.1.2 baseline) | [`CappedLinear`] |
//! | base-`b` higher-order encoding (§1.1.4) | [`HigherOrderEncoded`] |

mod likelihood;
mod nearly_periodic;
mod oscillating;
mod power;
mod utility;

pub use likelihood::PoissonMixtureNll;
pub use nearly_periodic::GnpFunction;
pub use oscillating::{BoundedOscillation, OscillatingQuadratic, OscillationScale};
pub use power::{
    ExpSqrtLogFunction, ExponentialFunction, InverseLogFunction, InversePowerFunction,
    PolylogFunction, PowerFunction, SubpolyModulatedQuadratic,
};
pub use utility::{CappedLinear, HigherOrderEncoded, SpamDiscountUtility};
