//! The nearly periodic function `g_np` of Definition 52.

use crate::traits::FunctionCodec;
use crate::GFunction;

/// `g_np(0) = 0` and `g_np(x) = 2^{-i_x}` where `i_x` is the index of the
/// lowest set bit in the binary expansion of `x` (so `g_np(1) = 1`,
/// `g_np(2) = 1/2`, `g_np(3) = 1`, `g_np(4) = 1/4`, ...).
///
/// The function is S-nearly periodic (Proposition 53): it drops polynomially
/// along powers of two, yet `g_np(x + y) = g_np(x)` whenever `y`'s lowest set
/// bit is far above `x`'s, so the INDEX reduction cannot exploit the drop.
/// Despite being outside the normal zero-one law it **is** 1-pass tractable
/// via the bespoke algorithm of Proposition 54 (implemented in
/// `gsum-core::np_algorithm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GnpFunction;

impl GnpFunction {
    /// Create the function.
    pub fn new() -> Self {
        Self
    }

    /// The index `i_x` of the lowest set bit of `x` (undefined for 0; returns
    /// 64 by convention there).
    pub fn lowest_bit_index(x: u64) -> u32 {
        x.trailing_zeros()
    }
}

impl GFunction for GnpFunction {
    fn name(&self) -> String {
        "g_np(x) = 2^-i_x".into()
    }
    fn eval(&self, x: u64) -> f64 {
        if x == 0 {
            0.0
        } else {
            (0.5f64).powi(x.trailing_zeros() as i32)
        }
    }
}

impl FunctionCodec for GnpFunction {
    fn encode_params(&self) -> Vec<u8> {
        Vec::new()
    }
    fn decode_params(bytes: &[u8]) -> Option<Self> {
        bytes.is_empty().then_some(GnpFunction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_worked_values() {
        let g = GnpFunction::new();
        assert_eq!(g.eval(0), 0.0);
        assert_eq!(g.eval(1), 1.0);
        assert_eq!(g.eval(2), 0.5);
        assert_eq!(g.eval(3), 1.0);
        assert_eq!(g.eval(4), 0.25);
        assert_eq!(g.eval(5), 1.0);
        assert_eq!(g.eval(6), 0.5);
        assert_eq!(g.eval(8), 0.125);
    }

    #[test]
    fn drops_polynomially_along_powers_of_two() {
        let g = GnpFunction::new();
        for k in 1..=20u32 {
            assert_eq!(g.eval(1u64 << k), (0.5f64).powi(k as i32));
        }
    }

    #[test]
    fn almost_repeats_after_large_periods() {
        // g_np(x + 2^k) = g_np(x) whenever i_x < k: the defining property of
        // its near-periodicity.
        let g = GnpFunction::new();
        for k in 10..=16u32 {
            let period = 1u64 << k;
            for x in 1..200u64 {
                if GnpFunction::lowest_bit_index(x) < k {
                    assert_eq!(g.eval(x + period), g.eval(x));
                }
            }
        }
    }

    #[test]
    fn is_in_class_g() {
        assert!(GnpFunction::new().is_in_class_g(1 << 20));
    }

    #[test]
    fn lowest_bit_index_helper() {
        assert_eq!(GnpFunction::lowest_bit_index(12), 2);
        assert_eq!(GnpFunction::lowest_bit_index(1), 0);
        assert_eq!(GnpFunction::lowest_bit_index(0), 64);
    }
}
