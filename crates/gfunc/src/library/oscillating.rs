//! Oscillating functions — the paper's examples of local variability.

use crate::traits::FunctionCodec;
use crate::GFunction;

/// The argument fed to the sine modulation of an [`OscillatingQuadratic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OscillationScale {
    /// `sin(x)` — oscillates on every integer step.  Not predictable
    /// (Definition 8's negative example), so only 2-pass tractable.
    Direct,
    /// `sin(√x)` — oscillates on a `√x` scale.  Still not predictable
    /// (§4.6), only 2-pass tractable.
    Sqrt,
    /// `sin(log(1+x))` — oscillates so slowly that it is predictable, hence
    /// 1-pass tractable (§4.6).
    Log,
}

/// `g(x) = (2 + sin(s(x))) · x²` where `s` is selected by
/// [`OscillationScale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OscillatingQuadratic {
    scale: OscillationScale,
}

impl OscillatingQuadratic {
    /// Create the oscillating quadratic with the given modulation scale.
    pub fn new(scale: OscillationScale) -> Self {
        Self { scale }
    }

    /// `(2 + sin x) x²`.
    pub fn direct() -> Self {
        Self::new(OscillationScale::Direct)
    }

    /// `(2 + sin √x) x²`.
    pub fn sqrt() -> Self {
        Self::new(OscillationScale::Sqrt)
    }

    /// `(2 + sin log(1+x)) x²`.
    pub fn log() -> Self {
        Self::new(OscillationScale::Log)
    }

    /// The modulation scale.
    pub fn scale(&self) -> OscillationScale {
        self.scale
    }
}

impl FunctionCodec for OscillatingQuadratic {
    fn encode_params(&self) -> Vec<u8> {
        let tag = match self.scale {
            OscillationScale::Direct => 0u8,
            OscillationScale::Sqrt => 1,
            OscillationScale::Log => 2,
        };
        vec![tag]
    }
    fn decode_params(bytes: &[u8]) -> Option<Self> {
        match bytes {
            [0] => Some(Self::direct()),
            [1] => Some(Self::sqrt()),
            [2] => Some(Self::log()),
            _ => None,
        }
    }
}

impl GFunction for OscillatingQuadratic {
    fn name(&self) -> String {
        match self.scale {
            OscillationScale::Direct => "(2+sin x)x^2".into(),
            OscillationScale::Sqrt => "(2+sin sqrt x)x^2".into(),
            OscillationScale::Log => "(2+sin ln(1+x))x^2".into(),
        }
    }
    fn eval(&self, x: u64) -> f64 {
        if x == 0 {
            return 0.0;
        }
        let xf = x as f64;
        let phase = match self.scale {
            OscillationScale::Direct => xf,
            OscillationScale::Sqrt => xf.sqrt(),
            OscillationScale::Log => (1.0 + xf).ln(),
        };
        (2.0 + phase.sin()) * xf * xf
    }
}

/// `g(x) = (2 + sin x) · 1(x > 0)` — bounded but locally erratic.  The paper
/// uses it (after Definition 8) to show that local variability alone does not
/// destroy predictability: `g(y) ≥ 1` always, which dominates
/// `x^{-γ} g(x) ≤ 3 x^{-γ}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedOscillation;

impl GFunction for BoundedOscillation {
    fn name(&self) -> String {
        "(2+sin x)*1(x>0)".into()
    }
    fn eval(&self, x: u64) -> f64 {
        if x == 0 {
            0.0
        } else {
            2.0 + (x as f64).sin()
        }
    }
}

impl FunctionCodec for BoundedOscillation {
    fn encode_params(&self) -> Vec<u8> {
        Vec::new()
    }
    fn decode_params(bytes: &[u8]) -> Option<Self> {
        bytes.is_empty().then_some(BoundedOscillation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oscillating_quadratic_stays_within_band() {
        for g in [
            OscillatingQuadratic::direct(),
            OscillatingQuadratic::sqrt(),
            OscillatingQuadratic::log(),
        ] {
            assert_eq!(g.eval(0), 0.0);
            for x in [1u64, 2, 10, 1000, 1 << 18] {
                let v = g.eval(x);
                let x2 = (x as f64).powi(2);
                assert!(v >= x2 && v <= 3.0 * x2, "{} out of band at {x}", g.name());
            }
            assert!(g.is_in_class_g(1 << 18));
        }
    }

    #[test]
    fn direct_variant_really_oscillates_locally() {
        let g = OscillatingQuadratic::direct();
        // Find adjacent large arguments whose ratio deviates noticeably from
        // the smooth (x+1)²/x² ≈ 1.
        let mut max_dev: f64 = 0.0;
        for x in 10_000u64..10_050 {
            let ratio = g.eval(x + 1) / g.eval(x);
            max_dev = max_dev.max((ratio - 1.0).abs());
        }
        assert!(max_dev > 0.2, "expected local variability, got {max_dev}");
    }

    #[test]
    fn log_variant_is_locally_smooth() {
        let g = OscillatingQuadratic::log();
        for x in 10_000u64..10_050 {
            let ratio = g.eval(x + 1) / g.eval(x);
            assert!((ratio - 1.0).abs() < 0.01);
        }
    }

    #[test]
    fn codec_roundtrips_every_scale() {
        for g in [
            OscillatingQuadratic::direct(),
            OscillatingQuadratic::sqrt(),
            OscillatingQuadratic::log(),
        ] {
            assert_eq!(
                OscillatingQuadratic::decode_params(&g.encode_params()),
                Some(g)
            );
        }
        assert!(OscillatingQuadratic::decode_params(&[3]).is_none());
        assert!(OscillatingQuadratic::decode_params(&[]).is_none());
        assert_eq!(
            BoundedOscillation::decode_params(&BoundedOscillation.encode_params()),
            Some(BoundedOscillation)
        );
    }

    #[test]
    fn scale_accessors() {
        assert_eq!(OscillatingQuadratic::sqrt().scale(), OscillationScale::Sqrt);
        assert!(OscillatingQuadratic::direct().name().contains("sin x"));
    }

    #[test]
    fn bounded_oscillation_band() {
        let g = BoundedOscillation;
        assert_eq!(g.eval(0), 0.0);
        for x in 1..2000u64 {
            let v = g.eval(x);
            assert!((1.0..=3.0).contains(&v));
        }
        assert!(g.is_in_class_g(1 << 16));
    }
}
