//! Utility-aggregate and higher-order-encoding functions (§1.1.2, §1.1.4).

use crate::traits::{u64_param, FunctionCodec};
use crate::GFunction;

/// Spam-discounted click billing (§1.1.2): the fee grows linearly with the
/// number of clicks up to a threshold `T`, after which additional clicks are
/// treated as suspicious and the fee *decays* slowly (logarithmically) back
/// towards zero revenue per extra click:
///
/// ```text
/// g(x) = x                         for 1 ≤ x ≤ T
/// g(x) = T / (1 + ln(x / T))       for x > T
/// ```
///
/// The function is non-monotonic (it rises then falls), but the fall is only
/// logarithmic, so it is slow-dropping, slow-jumping and predictable — a
/// realistic example of a non-monotone utility that the zero-one law declares
/// 1-pass tractable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpamDiscountUtility {
    threshold: u64,
}

impl SpamDiscountUtility {
    /// Create the billing function with spam threshold `T ≥ 1`.
    pub fn new(threshold: u64) -> Self {
        assert!(threshold >= 1, "threshold must be at least 1");
        Self { threshold }
    }

    /// The spam threshold `T`.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

impl GFunction for SpamDiscountUtility {
    fn name(&self) -> String {
        format!("spam-discount(T={})", self.threshold)
    }
    fn eval(&self, x: u64) -> f64 {
        if x == 0 {
            0.0
        } else if x <= self.threshold {
            x as f64
        } else {
            let t = self.threshold as f64;
            t / (1.0 + (x as f64 / t).ln())
        }
    }
}

impl FunctionCodec for SpamDiscountUtility {
    fn encode_params(&self) -> Vec<u8> {
        self.threshold.to_le_bytes().to_vec()
    }
    fn decode_params(bytes: &[u8]) -> Option<Self> {
        let t = u64_param(bytes)?;
        (t >= 1).then(|| Self::new(t))
    }
}

/// Capped linear billing: `g(x) = min(x, T)` — the monotone baseline against
/// which the spam-discounted version is compared in experiment E10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CappedLinear {
    cap: u64,
}

impl CappedLinear {
    /// Create `min(x, cap)` with `cap ≥ 1`.
    pub fn new(cap: u64) -> Self {
        assert!(cap >= 1, "cap must be at least 1");
        Self { cap }
    }
}

impl GFunction for CappedLinear {
    fn name(&self) -> String {
        format!("min(x, {})", self.cap)
    }
    fn eval(&self, x: u64) -> f64 {
        x.min(self.cap) as f64
    }
}

impl FunctionCodec for CappedLinear {
    fn encode_params(&self) -> Vec<u8> {
        self.cap.to_le_bytes().to_vec()
    }
    fn decode_params(bytes: &[u8]) -> Option<Self> {
        let cap = u64_param(bytes)?;
        (cap >= 1).then(|| Self::new(cap))
    }
}

/// The base-`b` higher-order encoding of §1.1.4.
///
/// A two-attribute record `(f_1, f_2)` with `0 ≤ f_j < b` is encoded as the
/// single frequency `f' = f_1 + b·f_2` (updates to attribute `j` are fed to
/// the stream with weight `b^j`).  The composed function
/// `g'(f') = g(f_1, f_2)` first recovers the digits and then applies the
/// original two-variable function.  This example implements the "filtered
/// sum" query from the paper's discussion: *sum attribute 1 over records
/// whose attribute 2 is at most a filter value*:
///
/// ```text
/// g'(x) = digit_0(x)   if digit_1(x) ≤ filter
///         0            otherwise
/// ```
///
/// As the paper warns, `g'` inherits high local variability from the digit
/// decomposition (a change of ±1 in the encoded value can flip the filter
/// decision), so one-pass algorithms struggle and the two-pass algorithm is
/// the right tool.  Note `g'` can vanish at positive arguments, so it sits
/// outside the class `G` proper; it is included for the E10 application
/// experiment rather than for the zero-one-law classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HigherOrderEncoded {
    base: u64,
    filter: u64,
}

impl HigherOrderEncoded {
    /// Create the encoded filter-sum function with digit base `b ≥ 2` and
    /// filter value `filter < b`.
    pub fn new(base: u64, filter: u64) -> Self {
        assert!(base >= 2, "base must be at least 2");
        assert!(filter < base, "filter must be a valid digit");
        Self { base, filter }
    }

    /// The digit base `b`.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Decode an encoded value into `(attribute_1, attribute_2)`.
    pub fn decode(&self, x: u64) -> (u64, u64) {
        (x % self.base, (x / self.base) % self.base)
    }

    /// Encode an attribute pair.
    pub fn encode(&self, attr1: u64, attr2: u64) -> u64 {
        assert!(
            attr1 < self.base && attr2 < self.base,
            "digits out of range"
        );
        attr1 + self.base * attr2
    }
}

impl GFunction for HigherOrderEncoded {
    fn name(&self) -> String {
        format!("filter-sum(base={}, filter<={})", self.base, self.filter)
    }
    fn eval(&self, x: u64) -> f64 {
        let (a1, a2) = self.decode(x);
        if a2 <= self.filter {
            a1 as f64
        } else {
            0.0
        }
    }
}

impl FunctionCodec for HigherOrderEncoded {
    fn encode_params(&self) -> Vec<u8> {
        let mut out = self.base.to_le_bytes().to_vec();
        out.extend_from_slice(&self.filter.to_le_bytes());
        out
    }
    fn decode_params(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 16 {
            return None;
        }
        let base = u64_param(&bytes[..8])?;
        let filter = u64_param(&bytes[8..])?;
        (base >= 2 && filter < base).then(|| Self::new(base, filter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrips_and_validates() {
        let g = SpamDiscountUtility::new(100);
        assert_eq!(
            SpamDiscountUtility::decode_params(&g.encode_params()),
            Some(g)
        );
        assert!(SpamDiscountUtility::decode_params(&0u64.to_le_bytes()).is_none());

        let g = CappedLinear::new(10);
        assert_eq!(CappedLinear::decode_params(&g.encode_params()), Some(g));

        let g = HigherOrderEncoded::new(32, 5);
        assert_eq!(
            HigherOrderEncoded::decode_params(&g.encode_params()),
            Some(g)
        );
        // filter ≥ base is invalid, as is a truncated encoding.
        let mut bad = 8u64.to_le_bytes().to_vec();
        bad.extend_from_slice(&9u64.to_le_bytes());
        assert!(HigherOrderEncoded::decode_params(&bad).is_none());
        assert!(HigherOrderEncoded::decode_params(&bad[..12]).is_none());
    }

    #[test]
    fn spam_discount_shape() {
        let g = SpamDiscountUtility::new(100);
        assert_eq!(g.eval(0), 0.0);
        assert_eq!(g.eval(1), 1.0);
        assert_eq!(g.eval(100), 100.0);
        // Non-monotone: beyond the threshold the fee drops...
        assert!(g.eval(300) < g.eval(100));
        // ...but only logarithmically slowly.
        assert!(g.eval(100_000) > 100.0 / 10.0);
        assert!(g.is_in_class_g(1 << 20));
        assert_eq!(g.threshold(), 100);
    }

    #[test]
    fn spam_discount_is_continuous_at_threshold() {
        let g = SpamDiscountUtility::new(50);
        let below = g.eval(50);
        let above = g.eval(51);
        assert!((below - above).abs() < 2.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_panics() {
        let _ = SpamDiscountUtility::new(0);
    }

    #[test]
    fn capped_linear_values() {
        let g = CappedLinear::new(10);
        assert_eq!(g.eval(0), 0.0);
        assert_eq!(g.eval(3), 3.0);
        assert_eq!(g.eval(10), 10.0);
        assert_eq!(g.eval(1000), 10.0);
        assert!(g.is_in_class_g(1 << 16));
    }

    #[test]
    fn higher_order_round_trip() {
        let g = HigherOrderEncoded::new(32, 5);
        for a1 in [0u64, 1, 7, 31] {
            for a2 in [0u64, 4, 5, 6, 31] {
                let enc = g.encode(a1, a2);
                assert_eq!(g.decode(enc), (a1, a2));
                let expect = if a2 <= 5 { a1 as f64 } else { 0.0 };
                assert_eq!(g.eval(enc), expect);
            }
        }
    }

    #[test]
    fn higher_order_is_locally_erratic() {
        // Crossing a multiple of the base flips the decoded attributes, so
        // adjacent arguments can have wildly different values — the local
        // variability the paper warns about.
        let g = HigherOrderEncoded::new(16, 3);
        let x = g.encode(15, 3); // value 15 (filter passes)
        let y = x + 1; // digit_0 wraps to 0 and digit_1 becomes 4 (filtered out)
        assert_eq!(g.eval(x), 15.0);
        assert_eq!(g.eval(y), 0.0);
    }

    #[test]
    #[should_panic(expected = "digit")]
    fn encode_rejects_out_of_range_digits() {
        let g = HigherOrderEncoded::new(8, 2);
        let _ = g.encode(9, 0);
    }

    #[test]
    #[should_panic(expected = "base")]
    fn base_one_rejected() {
        let _ = HigherOrderEncoded::new(1, 0);
    }
}
