//! Runtime-chosen functions: [`DynG`] and the [`DynFunction`] object trait.
//!
//! The estimators in `gsum-core` are monomorphized over their `G`, which is
//! the right default — a `PowerFunction` call inlines to a `powf`.  A
//! *serving* process, though, hosts a catalog of functions chosen at runtime
//! (`EST <function>` against a registry), and a catalog cannot be a type
//! parameter.  This module provides the dynamic counterpart:
//!
//! * [`DynFunction`] — an object-safe extension of [`GFunction`] that also
//!   carries the function's *wire identity*: a stable `u16` kind tag plus the
//!   [`FunctionCodec`] parameter bytes.  Every concrete library type
//!   implements it.
//! * [`decode_function`] — the tag dispatcher rebuilding a boxed function
//!   from `(tag, params)`, the same constructor path fresh construction uses.
//! * [`DynG`] — a cloneable newtype over `Box<dyn DynFunction>` implementing
//!   both [`GFunction`] and [`FunctionCodec`] (encoding = tag then params),
//!   so `OnePassGSumSketch<DynG>` satisfies every bound the serving layer
//!   needs while the function stays a runtime value.
//!
//! Tags are append-only: a tag, once assigned, keeps its meaning forever so
//! checkpoints written by one build decode in the next.

use crate::library::{
    BoundedOscillation, CappedLinear, ExpSqrtLogFunction, ExponentialFunction, GnpFunction,
    HigherOrderEncoded, InverseLogFunction, InversePowerFunction, OscillatingQuadratic,
    PoissonMixtureNll, PolylogFunction, PowerFunction, SpamDiscountUtility,
    SubpolyModulatedQuadratic,
};
use crate::traits::{FunctionCodec, GFunction};

/// An object-safe [`GFunction`] with a wire identity.
///
/// Where [`FunctionCodec`] is a static contract (`decode_params` returns
/// `Self`, so the caller must already know the type), `DynFunction` makes the
/// type itself part of the encoding: [`kind_tag`](Self::kind_tag) names the
/// concrete function and [`params`](Self::params) carries its
/// `FunctionCodec` bytes.  [`decode_function`] inverts the pair.
pub trait DynFunction: GFunction + Send + Sync {
    /// The stable wire tag identifying the concrete function type.
    fn kind_tag(&self) -> u16;

    /// The function's [`FunctionCodec`] parameter bytes.
    fn params(&self) -> Vec<u8>;

    /// Clone behind the object.
    fn clone_dyn(&self) -> Box<dyn DynFunction>;
}

macro_rules! impl_dyn_function {
    ($($tag:literal => $ty:ty,)+) => {
        $(
            impl DynFunction for $ty {
                fn kind_tag(&self) -> u16 {
                    $tag
                }
                fn params(&self) -> Vec<u8> {
                    FunctionCodec::encode_params(self)
                }
                fn clone_dyn(&self) -> Box<dyn DynFunction> {
                    Box::new(self.clone())
                }
            }
        )+

        /// Rebuild a boxed function from its wire identity.
        ///
        /// Returns `None` for an unknown tag or parameter bytes the type's
        /// [`FunctionCodec::decode_params`] rejects.
        pub fn decode_function(tag: u16, params: &[u8]) -> Option<Box<dyn DynFunction>> {
            match tag {
                $(
                    $tag => <$ty as FunctionCodec>::decode_params(params)
                        .map(|g| Box::new(g) as Box<dyn DynFunction>),
                )+
                _ => None,
            }
        }
    };
}

// Append-only: never renumber, never reuse a tag.
impl_dyn_function! {
    1 => PowerFunction,
    2 => InversePowerFunction,
    3 => PolylogFunction,
    4 => ExponentialFunction,
    5 => InverseLogFunction,
    6 => SubpolyModulatedQuadratic,
    7 => ExpSqrtLogFunction,
    8 => OscillatingQuadratic,
    9 => BoundedOscillation,
    10 => GnpFunction,
    11 => PoissonMixtureNll,
    12 => SpamDiscountUtility,
    13 => CappedLinear,
    14 => HigherOrderEncoded,
}

/// A runtime-chosen `G`: a cloneable, checkpointable box over any
/// [`DynFunction`].
///
/// `DynG` is what the multi-function serving layer parameterizes its
/// substrate sketches with: it implements [`GFunction`] by delegation and
/// [`FunctionCodec`] by prefixing the inner function's parameters with its
/// kind tag, so `OnePassGSumSketch<DynG>` checkpoints are self-describing —
/// restore rebuilds the right concrete function through
/// [`decode_function`].
pub struct DynG(Box<dyn DynFunction>);

impl DynG {
    /// Wrap a concrete library function.
    pub fn new(g: impl DynFunction + 'static) -> Self {
        Self(Box::new(g))
    }

    /// Wrap an already-boxed function.
    pub fn from_boxed(g: Box<dyn DynFunction>) -> Self {
        Self(g)
    }

    /// The wrapped function's wire tag.
    pub fn kind_tag(&self) -> u16 {
        self.0.kind_tag()
    }
}

impl Clone for DynG {
    fn clone(&self) -> Self {
        Self(self.0.clone_dyn())
    }
}

impl std::fmt::Debug for DynG {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DynG({})", self.0.name())
    }
}

impl GFunction for DynG {
    fn name(&self) -> String {
        self.0.name()
    }
    fn eval(&self, x: u64) -> f64 {
        self.0.eval(x)
    }
    fn eval_signed(&self, v: i64) -> f64 {
        self.0.eval_signed(v)
    }
    fn is_in_class_g(&self, probe_limit: u64) -> bool {
        self.0.is_in_class_g(probe_limit)
    }
}

impl FunctionCodec for DynG {
    fn encode_params(&self) -> Vec<u8> {
        let mut out = self.kind_tag().to_le_bytes().to_vec();
        out.extend(self.0.params());
        out
    }
    fn decode_params(bytes: &[u8]) -> Option<Self> {
        let (tag, params) = (bytes.first_chunk::<2>()?, &bytes[2..]);
        decode_function(u16::from_le_bytes(*tag), params).map(Self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Vec<DynG> {
        vec![
            DynG::new(PowerFunction::new(2.0)),
            DynG::new(PowerFunction::new(0.5)),
            DynG::new(InversePowerFunction::new(1.0)),
            DynG::new(PolylogFunction::new(2.0)),
            DynG::new(ExponentialFunction),
            DynG::new(InverseLogFunction),
            DynG::new(SubpolyModulatedQuadratic),
            DynG::new(ExpSqrtLogFunction),
            DynG::new(OscillatingQuadratic::sqrt()),
            DynG::new(BoundedOscillation),
            DynG::new(GnpFunction::new()),
            DynG::new(PoissonMixtureNll::new(0.5, 0.5, 6.0)),
            DynG::new(SpamDiscountUtility::new(100)),
            DynG::new(CappedLinear::new(100)),
            DynG::new(HigherOrderEncoded::new(8, 3)),
        ]
    }

    #[test]
    fn every_library_function_roundtrips_through_its_wire_identity() {
        for g in catalog() {
            let bytes = g.encode_params();
            let back = DynG::decode_params(&bytes).expect("decode");
            assert_eq!(back.name(), g.name());
            assert_eq!(back.kind_tag(), g.kind_tag());
            for x in [0u64, 1, 2, 17, 1 << 20] {
                assert_eq!(back.eval(x).to_bits(), g.eval(x).to_bits(), "{}", g.name());
            }
        }
    }

    #[test]
    fn tags_are_unique_across_the_catalog() {
        let mut tags: Vec<u16> = catalog().iter().map(DynG::kind_tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 15 - 1, "one duplicate type (PowerFunction x2)");
    }

    #[test]
    fn evaluation_matches_the_monomorphic_function_bit_for_bit() {
        let mono = SpamDiscountUtility::new(100);
        let dynamic = DynG::new(mono);
        for v in [-1_000_000i64, -3, 0, 1, 99, 100, 101, 1 << 40] {
            assert_eq!(
                dynamic.eval_signed(v).to_bits(),
                mono.eval_signed(v).to_bits()
            );
        }
        assert_eq!(dynamic.name(), mono.name());
        assert!(dynamic.is_in_class_g(1 << 16));
    }

    #[test]
    fn malformed_wire_identities_are_rejected() {
        assert!(DynG::decode_params(&[]).is_none(), "no tag");
        assert!(DynG::decode_params(&[1]).is_none(), "truncated tag");
        assert!(DynG::decode_params(&[0xff, 0xff]).is_none(), "unknown tag");
        // PowerFunction with truncated parameter bytes.
        assert!(DynG::decode_params(&[1, 0, 1, 2, 3]).is_none());
        // A rejected parameter value (negative exponent).
        let mut bytes = 1u16.to_le_bytes().to_vec();
        bytes.extend((-1.0f64).to_bits().to_le_bytes());
        assert!(DynG::decode_params(&bytes).is_none());
    }

    #[test]
    fn clones_are_independent_but_identical() {
        let g = DynG::new(PowerFunction::new(1.5));
        let clone = g.clone();
        assert_eq!(clone.encode_params(), g.encode_params());
        assert_eq!(format!("{clone:?}"), "DynG(x^1.5)");
    }
}
