//! Sub-polynomial envelopes.
//!
//! Propositions 15 and 16 show that a slow-dropping, slow-jumping function
//! admits a single non-decreasing sub-polynomial function `H` with
//!
//! * `g(y) ≥ g(x) / H(y)` for all `x < y` (slow-dropping envelope), and
//! * `g(y) ≤ (y/x)² · H(y) · g(x)` for all `x < y` (slow-jumping envelope).
//!
//! The paper's algorithms are parameterized by `H(M)`: Algorithm 1 uses a
//! CountSketch for `λ / 2H(M)`-heavy hitters, Algorithm 2 for
//! `λ / 3H(M)`-heavy hitters with accuracy `ε / 2H(M)`.  This module computes
//! the tightest such constants over a finite window — the empirical stand-in
//! for `H(M)` that the `gsum-core` algorithms consume.

use super::{evaluate_probes, PropertyConfig};
use crate::GFunction;

/// The empirical envelope constants for a function over a window `[1, M]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubpolyEnvelope {
    /// Smallest `H` with `g(y) ≥ g(x)/H` for all probed `x < y ≤ M`
    /// (at least 1).
    pub drop_factor: f64,
    /// Smallest `H` with `g(y) ≤ (y/x)² H g(x)` for all probed `x < y ≤ M`
    /// (at least 1).
    pub jump_factor: f64,
    /// The window bound `M` the envelope was computed for.
    pub max_x: u64,
}

impl SubpolyEnvelope {
    /// The combined factor `H(M) = max(drop, jump)` used by the algorithms.
    pub fn combined(&self) -> f64 {
        self.drop_factor.max(self.jump_factor)
    }
}

/// Compute the empirical envelope of `g` over `[1, config.max_x]`.
pub fn estimate_envelope<G: GFunction + ?Sized>(g: &G, config: &PropertyConfig) -> SubpolyEnvelope {
    let probes = evaluate_probes(g, config);

    // Drop factor: max over y of (max_{x<y} g(x)) / g(y).
    let mut drop_factor = 1.0f64;
    let mut prefix_max = f64::NEG_INFINITY;
    for &(_, gy) in &probes {
        if prefix_max > 0.0 && gy > 0.0 {
            drop_factor = drop_factor.max(prefix_max / gy);
        }
        if gy > prefix_max {
            prefix_max = gy;
        }
    }

    // Jump factor: max over pairs of g(y)·x² / (y²·g(x)).  The minimum of
    // x²/g(x) over x < y is the binding constraint, so a single prefix scan
    // suffices.
    let mut jump_factor = 1.0f64;
    let mut prefix_min_ratio = f64::INFINITY; // min over x<y of x^2 g(x) ... see below
    for &(y, gy) in &probes {
        if prefix_min_ratio.is_finite() && gy > 0.0 {
            // We need max over x<y of gy * x^2 / (y^2 * gx)
            //   = gy / y^2 * max over x<y of x^2 / gx
            //   = gy / y^2 / (min over x<y of gx / x^2).
            let y2 = (y as f64) * (y as f64);
            jump_factor = jump_factor.max(gy / y2 / prefix_min_ratio);
        }
        if gy > 0.0 {
            let ratio = gy / ((y as f64) * (y as f64));
            if ratio < prefix_min_ratio {
                prefix_min_ratio = ratio;
            }
        }
    }

    SubpolyEnvelope {
        drop_factor,
        jump_factor,
        max_x: config.max_x,
    }
}

/// Heuristic check that a non-negative function is sub-polynomial
/// (Definition 4) over the probe window: the doubling ratio `f(2x)/f(x)` must
/// approach 1 towards the top of the window (either it is already within 2%
/// of 1, or its excess over 1 shrank noticeably between the middle and the
/// top of the window).
///
/// This is used only for diagnostics (e.g. sanity-checking envelope growth);
/// the classification logic never depends on it.
pub fn is_empirically_subpolynomial(f: impl Fn(u64) -> f64, max_x: u64) -> bool {
    let max_x = max_x.max(64);
    let top = max_x / 2;
    let mid = (max_x as f64).sqrt().max(8.0) as u64;

    let ratio_at = |x: u64| {
        let a = f(x);
        let b = f(2 * x);
        if a <= 0.0 || b <= 0.0 {
            return f64::INFINITY;
        }
        b / a
    };
    let r_top = ratio_at(top);
    let r_mid = ratio_at(mid);
    if !r_top.is_finite() || !r_mid.is_finite() {
        return false;
    }
    if (r_top - 1.0).abs() <= 0.02 {
        return true;
    }
    let excess_mid = (r_mid - 1.0).abs();
    let excess_top = (r_top - 1.0).abs();
    excess_top < 0.9 * excess_mid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::ClosureG;

    fn cfg() -> PropertyConfig {
        PropertyConfig::fast()
    }

    #[test]
    fn monotone_increasing_has_unit_drop_factor() {
        let g = ClosureG::new("x^2", |x| (x as f64).powi(2));
        let env = estimate_envelope(&g, &cfg());
        assert!((env.drop_factor - 1.0).abs() < 1e-9);
        assert!((env.jump_factor - 1.0).abs() < 1e-9);
        assert!((env.combined() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sub_quadratic_growth_has_unit_jump_factor() {
        let g = ClosureG::new("x", |x| x as f64);
        let env = estimate_envelope(&g, &cfg());
        // g(y)/g(x) = y/x ≤ (y/x)^2, so the quadratic envelope is never
        // binding.
        assert!(env.jump_factor <= 1.0 + 1e-9);
    }

    #[test]
    fn oscillation_shows_up_in_drop_factor() {
        let g = ClosureG::new("(2+sin x)x^2", |x| {
            (2.0 + (x as f64).sin()) * (x as f64).powi(2)
        });
        let env = estimate_envelope(&g, &cfg());
        // The drop factor is bounded by the oscillation amplitude ratio ~3,
        // give or take adjacent-argument effects.
        assert!(env.drop_factor > 1.0);
        assert!(env.drop_factor < 4.0, "drop factor {}", env.drop_factor);
    }

    #[test]
    fn super_quadratic_growth_inflates_jump_factor() {
        let g = ClosureG::new("x^3", |x| (x as f64).powi(3));
        let env = estimate_envelope(&g, &cfg());
        // g(y) x^2 / (y^2 g(x)) with x = 1 equals y, so the jump factor is on
        // the order of the window size.
        assert!(env.jump_factor > 1000.0);
    }

    #[test]
    fn polynomial_decay_inflates_drop_factor() {
        let g = ClosureG::new("1/x", |x| if x == 0 { 0.0 } else { 1.0 / x as f64 });
        let env = estimate_envelope(&g, &cfg());
        assert!(env.drop_factor > 1000.0);
    }

    #[test]
    fn subpolynomial_heuristic() {
        assert!(is_empirically_subpolynomial(
            |x| (1.0 + x as f64).ln().powi(2),
            1 << 16
        ));
        assert!(is_empirically_subpolynomial(|_| 5.0, 1 << 16));
        assert!(is_empirically_subpolynomial(
            |x| 2f64.powf((x as f64).max(1.0).log2().sqrt()),
            1 << 16
        ));
        assert!(!is_empirically_subpolynomial(
            |x| (x as f64).sqrt(),
            1 << 16
        ));
        assert!(!is_empirically_subpolynomial(|x| x as f64, 1 << 16));
        assert!(!is_empirically_subpolynomial(|_| 0.0, 1 << 16));
    }
}
