//! The slow-dropping analyzer (Definition 7).
//!
//! `g` is slow-dropping if for every `α > 0` there is an `N` such that for
//! all `x < y` with `y ≥ N` we have `g(y) ≥ g(x) / y^α` — i.e. the function
//! never drops by more than a sub-polynomial factor.  Functions with
//! polynomial decay (`x^{-p}`) are not slow-dropping; neither is the nearly
//! periodic `g_np` (it drops to `2^{-k}` at `y = 2^k`).

use super::{evaluate_probes, PropertyConfig, Witness};
use crate::GFunction;

/// Result of the slow-dropping analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowDroppingReport {
    /// Whether the property holds empirically (no violations past the tail
    /// cutoff for any tested `α`).
    pub holds: bool,
    /// A violation past the cutoff, if one was found (the one with the
    /// largest `y`).
    pub witness: Option<Witness>,
    /// Largest `y` at which a violation was observed for each tested `α`
    /// (0 if none); useful for diagnosing borderline cases.
    pub last_violation_per_alpha: Vec<(f64, u64)>,
}

/// Analyze the slow-dropping property of `g` under `config`.
pub fn analyze_slow_dropping<G: GFunction + ?Sized>(
    g: &G,
    config: &PropertyConfig,
) -> SlowDroppingReport {
    let probes = evaluate_probes(g, config);
    let cutoff = config.cutoff();

    let mut holds = true;
    let mut witness: Option<Witness> = None;
    let mut last_violation_per_alpha = Vec::with_capacity(config.alphas.len());

    for &alpha in &config.alphas {
        let mut last_violation = 0u64;
        // Running maximum of g over probes strictly below the current y, and
        // the argument achieving it (for the witness).
        let mut prefix_max = f64::NEG_INFINITY;
        let mut prefix_argmax = 0u64;
        for &(y, gy) in &probes {
            if prefix_max > 0.0 {
                let bound = gy * (y as f64).powf(alpha);
                if prefix_max > bound {
                    last_violation = y;
                    if y >= cutoff && witness.as_ref().map(|w| y > w.y).unwrap_or(true) {
                        witness = Some(Witness {
                            x: prefix_argmax,
                            y,
                            gx: prefix_max,
                            gy,
                            exponent: alpha,
                        });
                    }
                }
            }
            if gy > prefix_max {
                prefix_max = gy;
                prefix_argmax = y;
            }
        }
        if last_violation >= cutoff {
            holds = false;
        }
        last_violation_per_alpha.push((alpha, last_violation));
    }

    if holds {
        witness = None;
    }

    SlowDroppingReport {
        holds,
        witness,
        last_violation_per_alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::ClosureG;

    fn cfg() -> PropertyConfig {
        PropertyConfig::fast()
    }

    #[test]
    fn monotone_increasing_is_slow_dropping() {
        let g = ClosureG::new("x^2", |x| (x as f64).powi(2));
        let report = analyze_slow_dropping(&g, &cfg());
        assert!(report.holds);
        assert!(report.witness.is_none());
        assert!(report.last_violation_per_alpha.iter().all(|&(_, y)| y == 0));
    }

    #[test]
    fn polynomial_decay_is_not_slow_dropping() {
        let g = ClosureG::new("1/x", |x| if x == 0 { 0.0 } else { 1.0 / x as f64 });
        let report = analyze_slow_dropping(&g, &cfg());
        assert!(!report.holds);
        let w = report.witness.expect("witness expected");
        assert!(w.y >= cfg().cutoff());
        assert!(w.gx > w.gy * (w.y as f64).powf(w.exponent));
    }

    #[test]
    fn logarithmic_decay_is_slow_dropping() {
        let g = ClosureG::new("1/log2(1+x)", |x| {
            if x == 0 {
                0.0
            } else {
                1.0 / (1.0 + x as f64).log2()
            }
        });
        let report = analyze_slow_dropping(&g, &cfg());
        assert!(report.holds, "report: {report:?}");
    }

    #[test]
    fn lowest_set_bit_function_is_not_slow_dropping() {
        // g_np drops polynomially along powers of two.
        let g = ClosureG::new("gnp", |x| {
            if x == 0 {
                0.0
            } else {
                (0.5f64).powi(x.trailing_zeros() as i32)
            }
        });
        let report = analyze_slow_dropping(&g, &cfg());
        assert!(!report.holds);
    }

    #[test]
    fn early_violations_only_are_tolerated() {
        // A function that dips once at small arguments but is otherwise
        // increasing: the asymptotic definition is satisfied.
        let g = ClosureG::new("early-dip", |x| match x {
            0 => 0.0,
            1..=9 => 100.0,
            10..=20 => 0.001,
            _ => x as f64,
        });
        let report = analyze_slow_dropping(&g, &cfg());
        assert!(report.holds);
        // The dip is recorded in the diagnostics even though the property holds.
        assert!(report
            .last_violation_per_alpha
            .iter()
            .any(|&(_, y)| y > 0 && y < cfg().cutoff()));
    }
}
