//! Empirical analyzers for the paper's three structural properties
//! (Definitions 6, 7, 8) and the nearly-periodic conditions (Definition 9).
//!
//! The definitions are asymptotic ("for every α > 0 there exists N such that
//! for all y ≥ N ...").  An analyzer cannot decide an asymptotic statement,
//! so each one checks the defining inequality over a finite probe window
//! `[1, max_x]` for a small grid of `α` values and applies the following
//! decision rule: the property *holds empirically* if, for every tested `α`,
//! all violations of the defining inequality disappear before the *tail
//! cutoff* `max_x / cutoff_fraction` — i.e. a threshold `N` inside the window
//! exists beyond which the inequality is satisfied.  A violation beyond the
//! cutoff produces a *witness* explaining why the property fails.
//!
//! The analyzers are deliberately conservative about the probe grid (dense up
//! to `dense_limit`, geometric beyond) so that the classification of every
//! function in [`crate::registry`] matches its paper-derived ground truth;
//! the registry tests pin that agreement down.

mod nearly_periodic;
mod predictable;
mod slow_dropping;
mod slow_jumping;
mod subpoly;

pub use nearly_periodic::{analyze_nearly_periodic, NearlyPeriodicReport};
pub use predictable::{analyze_predictable, PredictableReport};
pub use slow_dropping::{analyze_slow_dropping, SlowDroppingReport};
pub use slow_jumping::{analyze_slow_jumping, SlowJumpingReport};
pub use subpoly::{estimate_envelope, is_empirically_subpolynomial, SubpolyEnvelope};

use crate::GFunction;

/// Configuration shared by the property analyzers.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyConfig {
    /// Upper end of the probe window (the empirical stand-in for "x → ∞").
    pub max_x: u64,
    /// All arguments up to this bound are probed densely; beyond it a
    /// geometric grid is used.
    pub dense_limit: u64,
    /// Violations at arguments above `max_x / cutoff_fraction` make a
    /// property fail; violations that die out below the cutoff are treated
    /// as "finitely many exceptions", which the asymptotic definitions allow.
    pub cutoff_fraction: u64,
    /// Grid of `α` values used by the slow-jumping / slow-dropping /
    /// nearly-periodic checks.
    pub alphas: Vec<f64>,
    /// The `γ` of the predictability definition.
    pub gamma: f64,
    /// The relative-accuracy `ε` of the predictability definition
    /// (`δ_ε(g, x)` membership).
    pub epsilon: f64,
    /// Number of geometric probe points per power of two.
    pub probes_per_octave: usize,
}

impl Default for PropertyConfig {
    fn default() -> Self {
        Self {
            max_x: 1 << 18,
            dense_limit: 1 << 11,
            cutoff_fraction: 8,
            alphas: vec![0.4, 0.8],
            gamma: 0.3,
            epsilon: 0.25,
            probes_per_octave: 12,
        }
    }
}

impl PropertyConfig {
    /// A configuration with a smaller window, convenient for unit tests.
    pub fn fast() -> Self {
        Self {
            max_x: 1 << 14,
            dense_limit: 1 << 9,
            cutoff_fraction: 8,
            ..Self::default()
        }
    }

    /// The tail cutoff: violations above this argument fail the property.
    pub fn cutoff(&self) -> u64 {
        (self.max_x / self.cutoff_fraction).max(1)
    }

    /// The probe set: every integer up to `dense_limit`, then a geometric
    /// grid with `probes_per_octave` points per doubling, up to `max_x`.
    /// Always includes `max_x` itself.  Sorted and de-duplicated.
    pub fn probe_points(&self) -> Vec<u64> {
        let mut pts: Vec<u64> = (1..=self.dense_limit.min(self.max_x)).collect();
        if self.max_x > self.dense_limit {
            let ratio = 2f64.powf(1.0 / self.probes_per_octave as f64);
            let mut x = self.dense_limit as f64;
            while x < self.max_x as f64 {
                x *= ratio;
                let xi = x.round() as u64;
                if xi > self.dense_limit && xi <= self.max_x {
                    pts.push(xi);
                }
            }
            pts.push(self.max_x);
        }
        pts.sort_unstable();
        pts.dedup();
        pts
    }
}

/// A violation witness: the pair `(x, y)` (and the `α` or `γ` in force) at
/// which the defining inequality failed, together with the two function
/// values involved.
#[derive(Debug, Clone, PartialEq)]
pub struct Witness {
    /// The smaller argument in the violated inequality.
    pub x: u64,
    /// The larger argument in the violated inequality.
    pub y: u64,
    /// `g(x)`.
    pub gx: f64,
    /// `g(y)`.
    pub gy: f64,
    /// The exponent (`α` or `γ`) under which the violation was found.
    pub exponent: f64,
}

/// Evaluate a function over the probe points, returning `(x, g(x))` pairs in
/// increasing order of `x`.  Shared by the analyzers.
pub(crate) fn evaluate_probes<G: GFunction + ?Sized>(
    g: &G,
    config: &PropertyConfig,
) -> Vec<(u64, f64)> {
    config
        .probe_points()
        .into_iter()
        .map(|x| (x, g.eval(x)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_points_dense_then_geometric() {
        let cfg = PropertyConfig {
            max_x: 1 << 12,
            dense_limit: 64,
            probes_per_octave: 4,
            ..PropertyConfig::default()
        };
        let pts = cfg.probe_points();
        // Dense prefix present.
        for x in 1..=64u64 {
            assert!(pts.binary_search(&x).is_ok());
        }
        // Strictly increasing, ends at max_x.
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*pts.last().unwrap(), 1 << 12);
        // Geometric part is sparse: far fewer than max_x points overall.
        assert!(pts.len() < 200);
    }

    #[test]
    fn probe_points_small_window_is_fully_dense() {
        let cfg = PropertyConfig {
            max_x: 32,
            dense_limit: 64,
            ..PropertyConfig::default()
        };
        assert_eq!(cfg.probe_points(), (1..=32u64).collect::<Vec<_>>());
    }

    #[test]
    fn cutoff_is_fraction_of_window() {
        let cfg = PropertyConfig::default();
        assert_eq!(cfg.cutoff(), (1 << 18) / 8);
        let fast = PropertyConfig::fast();
        assert_eq!(fast.cutoff(), (1 << 14) / 8);
    }
}
