//! The predictability analyzer (Definition 8).
//!
//! Let `δ_ε(g, x) = { y : |g(y) − g(x)| ≤ ε g(x) }`.  `g` is predictable if
//! for every `0 < γ < 1` and sub-polynomial `ε` there is an `N` such that for
//! all `x ≥ N` and `y ∈ [1, x^{1−γ})` with `x + y ∉ δ_ε(g, x)`:
//!
//! ```text
//! g(y) ≥ x^{-γ} · g(x)
//! ```
//!
//! Informally: a small additive error `y` in the argument either barely moves
//! `g(x)` (so an approximate frequency is good enough), or `g(y)` itself is
//! large on the scale of `g(x)` (so `y`, were it a frequency, would be a heavy
//! hitter and CountSketch's error is actually smaller than `y`).  Smooth
//! functions (`x²`, `x² lg(1+x)`) and bounded oscillations (`2 + sin x` for
//! `x > 0`) are predictable; growing oscillations (`(2 + sin x) x²`,
//! `(2 + sin √x) x²`) are not.
//!
//! The analyzer fixes `γ` and `ε` from the [`PropertyConfig`] (constants are
//! sub-polynomial functions, so this instantiates the definition) and reports
//! a violation witness if one persists past the tail cutoff.

use super::{evaluate_probes, PropertyConfig, Witness};
use crate::GFunction;

/// Result of the predictability analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictableReport {
    /// Whether the property holds empirically.
    pub holds: bool,
    /// A violation past the cutoff, if any: the witness stores the base
    /// argument in `x`, the perturbation in `y`, `g(x)` and `g(y)`, and the
    /// `γ` in force.
    pub witness: Option<Witness>,
    /// The largest base argument `x` at which any violation was observed
    /// (0 if none).
    pub last_violation_x: u64,
}

/// Perturbation probe grid for a base argument `x`: dense small values, then
/// a geometric grid up to (but excluding) `limit`.
fn perturbation_probes(limit: u64) -> Vec<u64> {
    let mut ys: Vec<u64> = (1..=64.min(limit.saturating_sub(1))).collect();
    let mut y = 64f64;
    while (y as u64) < limit {
        y *= 1.19; // about 4 points per octave, enough to land near any scale
        let yi = y as u64;
        if yi < limit {
            ys.push(yi);
        } else {
            break;
        }
    }
    ys.sort_unstable();
    ys.dedup();
    ys
}

/// Analyze the predictability of `g` under `config`.
pub fn analyze_predictable<G: GFunction + ?Sized>(
    g: &G,
    config: &PropertyConfig,
) -> PredictableReport {
    let gamma = config.gamma;
    let epsilon = config.epsilon;
    let cutoff = config.cutoff();
    let probes = evaluate_probes(g, config);

    let mut last_violation_x = 0u64;
    let mut witness: Option<Witness> = None;

    for &(x, gx) in probes.iter().rev() {
        if x < 4 || gx <= 0.0 {
            continue;
        }
        // y ranges over [1, x^{1-γ}).
        let limit = (x as f64).powf(1.0 - gamma).floor() as u64;
        if limit < 2 {
            continue;
        }
        let threshold = (x as f64).powf(-gamma) * gx;
        let mut found_here = false;
        for y in perturbation_probes(limit) {
            let gxy = g.eval(x + y);
            let outside_delta = (gxy - gx).abs() > epsilon * gx;
            if !outside_delta {
                continue;
            }
            let gy = g.eval(y);
            if gy < threshold {
                found_here = true;
                if x > last_violation_x {
                    last_violation_x = x;
                }
                if x >= cutoff && witness.as_ref().map(|w| x > w.x).unwrap_or(true) {
                    witness = Some(Witness {
                        x,
                        y,
                        gx,
                        gy,
                        exponent: gamma,
                    });
                }
                break;
            }
        }
        // Small optimization: once we have a violation past the cutoff we can
        // stop scanning (we iterate from the largest x downwards).
        if found_here && x >= cutoff {
            break;
        }
    }

    let holds = last_violation_x < cutoff;
    if holds {
        witness = None;
    }

    PredictableReport {
        holds,
        witness,
        last_violation_x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::ClosureG;

    fn cfg() -> PropertyConfig {
        PropertyConfig::fast()
    }

    #[test]
    fn smooth_quadratic_is_predictable() {
        let g = ClosureG::new("x^2", |x| (x as f64).powi(2));
        let report = analyze_predictable(&g, &cfg());
        assert!(report.holds, "{report:?}");
    }

    #[test]
    fn smooth_powers_are_predictable() {
        for p in [0.5, 1.0, 1.5, 2.0] {
            let g = ClosureG::new("x^p", move |x| (x as f64).powf(p));
            assert!(analyze_predictable(&g, &cfg()).holds, "p = {p}");
        }
    }

    #[test]
    fn bounded_oscillation_is_predictable() {
        // (2 + sin x)·1(x > 0): locally erratic but g(y) ≥ 1 which dominates
        // x^{-γ} g(x) for large x (the paper's own example after Definition 8).
        let g = ClosureG::new("2+sin x (bounded)", |x| {
            if x == 0 {
                0.0
            } else {
                2.0 + (x as f64).sin()
            }
        });
        let report = analyze_predictable(&g, &cfg());
        assert!(report.holds, "{report:?}");
    }

    #[test]
    fn oscillating_quadratic_is_not_predictable() {
        let g = ClosureG::new("(2+sin x)x^2", |x| {
            (2.0 + (x as f64).sin()) * (x as f64).powi(2)
        });
        let report = analyze_predictable(&g, &cfg());
        assert!(!report.holds, "{report:?}");
        let w = report.witness.expect("witness");
        assert!(w.x >= cfg().cutoff());
        // The witness indeed violates both clauses of the definition.
        let gxy = g.eval(w.x + w.y);
        assert!((gxy - w.gx).abs() > cfg().epsilon * w.gx);
        assert!(w.gy < (w.x as f64).powf(-cfg().gamma) * w.gx);
    }

    #[test]
    fn sqrt_oscillating_quadratic_is_not_predictable() {
        let g = ClosureG::new("(2+sin sqrt x)x^2", |x| {
            (2.0 + (x as f64).sqrt().sin()) * (x as f64).powi(2)
        });
        let report = analyze_predictable(&g, &cfg());
        assert!(!report.holds, "{report:?}");
    }

    #[test]
    fn log_oscillating_quadratic_is_predictable() {
        // (2 + sin log(1+x)) x² oscillates so slowly that small perturbations
        // never move the value by a constant factor: 1-pass tractable in §4.6.
        let g = ClosureG::new("(2+sin ln(1+x))x^2", |x| {
            (2.0 + (1.0 + x as f64).ln().sin()) * (x as f64).powi(2)
        });
        let report = analyze_predictable(&g, &cfg());
        assert!(report.holds, "{report:?}");
    }

    #[test]
    fn perturbation_probe_grid_shape() {
        let ys = perturbation_probes(10_000);
        assert!(ys.iter().all(|&y| (1..10_000).contains(&y)));
        assert!(ys.windows(2).all(|w| w[0] < w[1]));
        // Dense start.
        assert!(ys.contains(&1) && ys.contains(&37) && ys.contains(&64));
        // Contains values at every scale.
        assert!(ys.iter().any(|&y| (1000..2000).contains(&y)));
        let empty = perturbation_probes(1);
        assert!(empty.is_empty());
    }
}
