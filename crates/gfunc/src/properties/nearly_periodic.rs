//! The nearly-periodic analyzer (Definition 9).
//!
//! A function is *S-nearly periodic* if
//!
//! 1. it is **not** slow-dropping — there is an `α > 0` with arbitrarily
//!    large `α`-periods `y` (points where `g(y) ≤ g(x)/y^α` for some
//!    `x < y`), and
//! 2. around every large enough `α`-period the function *almost repeats
//!    itself*: for all `x < y` with `g(y) y^α ≤ g(x)`,
//!    `|g(x + y) − g(x)| ≤ min(g(x), g(x+y)) · h(y)` for every non-increasing
//!    sub-polynomial error function `h`.
//!
//! These are exactly the functions on which the INDEX reduction of Lemma 23
//! breaks down: the function drops enough that a heavy value could hide below
//! the noise, yet Bob cannot detect his own insertion because
//! `g(x + y) ≈ g(x)`.  The canonical example is `g_np(x) = 2^{-i_x}`
//! (Definition 52), which is nearly periodic yet 1-pass tractable through a
//! bespoke algorithm (Appendix D.1).
//!
//! Empirically, condition 2 is instantiated with the decreasing
//! sub-polynomial error `h(y) = 1 / ln(1 + y)`: the analyzer declares the
//! function nearly periodic if every large `α`-period past the tail cutoff
//! has all of its relative gaps below `h(y)`.

use super::{evaluate_probes, PropertyConfig, Witness};
use crate::GFunction;

/// Result of the nearly-periodic analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct NearlyPeriodicReport {
    /// Whether the function is empirically nearly periodic.
    pub nearly_periodic: bool,
    /// Whether condition 1 held (the function has large `α`-periods, i.e. it
    /// is not slow-dropping).
    pub has_periods: bool,
    /// The periods past the cutoff that were examined.
    pub examined_periods: Vec<u64>,
    /// If condition 2 failed, a witness `(x, y)` with a large relative gap
    /// `|g(x+y) − g(x)| / min(g(x), g(x+y))`.
    pub gap_witness: Option<Witness>,
    /// The largest relative gap observed at the examined periods.
    pub max_relative_gap: f64,
}

/// The non-increasing sub-polynomial error budget used to instantiate
/// condition 2.
fn error_budget(y: u64) -> f64 {
    1.0 / (1.0 + y as f64).ln()
}

/// Analyze whether `g` is (empirically) S-nearly periodic.
pub fn analyze_nearly_periodic<G: GFunction + ?Sized>(
    g: &G,
    config: &PropertyConfig,
) -> NearlyPeriodicReport {
    let alpha = config.alphas.first().copied().unwrap_or(0.4);
    let cutoff = config.cutoff();
    let probes = evaluate_probes(g, config);

    // Condition 1: find α-periods past the cutoff.
    let mut periods: Vec<(u64, f64)> = Vec::new();
    let mut prefix_max = f64::NEG_INFINITY;
    for &(y, gy) in &probes {
        if prefix_max > 0.0 && gy > 0.0 && y >= cutoff {
            let is_period = prefix_max >= gy * (y as f64).powf(alpha);
            if is_period {
                periods.push((y, gy));
            }
        }
        if gy > prefix_max {
            prefix_max = gy;
        }
    }

    if periods.is_empty() {
        return NearlyPeriodicReport {
            nearly_periodic: false,
            has_periods: false,
            examined_periods: Vec::new(),
            gap_witness: None,
            max_relative_gap: 0.0,
        };
    }

    // Examine the largest periods (they are the asymptotically relevant ones
    // and keep the pair loop cheap).
    let examine = 24.min(periods.len());
    let selected: Vec<(u64, f64)> = periods[periods.len() - examine..].to_vec();

    let mut max_gap = 0.0f64;
    let mut gap_witness: Option<Witness> = None;
    let mut condition_two = true;

    for &(y, gy) in &selected {
        let budget = error_budget(y);
        for &(x, gx) in &probes {
            if x >= y || gx <= 0.0 {
                continue;
            }
            // Only x with g(y)·y^α ≤ g(x) participate in condition 2.
            if gy * (y as f64).powf(alpha) > gx {
                continue;
            }
            let gxy = g.eval(x + y);
            let denom = gx.min(gxy);
            if denom <= 0.0 {
                continue;
            }
            let gap = (gxy - gx).abs() / denom;
            if gap > max_gap {
                max_gap = gap;
                gap_witness = Some(Witness {
                    x,
                    y,
                    gx,
                    gy: gxy,
                    exponent: alpha,
                });
            }
            if gap > budget {
                condition_two = false;
            }
        }
    }

    NearlyPeriodicReport {
        nearly_periodic: condition_two,
        has_periods: true,
        examined_periods: selected.iter().map(|&(y, _)| y).collect(),
        gap_witness,
        max_relative_gap: max_gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::ClosureG;

    fn cfg() -> PropertyConfig {
        PropertyConfig::fast()
    }

    fn gnp(x: u64) -> f64 {
        if x == 0 {
            0.0
        } else {
            (0.5f64).powi(x.trailing_zeros() as i32)
        }
    }

    #[test]
    fn gnp_is_nearly_periodic() {
        let g = ClosureG::new("gnp", gnp);
        let report = analyze_nearly_periodic(&g, &cfg());
        assert!(report.has_periods);
        assert!(report.nearly_periodic, "{report:?}");
        assert!(!report.examined_periods.is_empty());
        // For gnp the repeats are exact at the relevant x.
        assert!(report.max_relative_gap < 1e-9);
    }

    #[test]
    fn inverse_is_not_nearly_periodic() {
        // 1/x has periods (it is not slow-dropping) but fails condition 2:
        // g(x + y) differs from g(x) by a huge relative factor.
        let g = ClosureG::new("1/x", |x| if x == 0 { 0.0 } else { 1.0 / x as f64 });
        let report = analyze_nearly_periodic(&g, &cfg());
        assert!(report.has_periods);
        assert!(!report.nearly_periodic);
        assert!(report.gap_witness.is_some());
        assert!(report.max_relative_gap > 1.0);
    }

    #[test]
    fn increasing_functions_have_no_periods() {
        let g = ClosureG::new("x^2", |x| (x as f64).powi(2));
        let report = analyze_nearly_periodic(&g, &cfg());
        assert!(!report.has_periods);
        assert!(!report.nearly_periodic);
    }

    #[test]
    fn l_eta_of_gnp_is_not_nearly_periodic() {
        // Theorem 30: multiplying a nearly periodic function by log^η(1+x)
        // destroys the near-periodicity (the gaps become log-scale, which
        // exceeds any decreasing error budget).
        let g = ClosureG::new("L_1(gnp)", |x| gnp(x) * (1.0 + x as f64).ln());
        let report = analyze_nearly_periodic(&g, &cfg());
        assert!(report.has_periods, "{report:?}");
        assert!(!report.nearly_periodic, "{report:?}");
    }

    #[test]
    fn error_budget_is_decreasing() {
        assert!(error_budget(10) > error_budget(100));
        assert!(error_budget(100) > error_budget(10_000));
        assert!(error_budget(1 << 20) > 0.0);
    }
}
