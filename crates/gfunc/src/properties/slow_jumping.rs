//! The slow-jumping analyzer (Definition 6).
//!
//! `g` is slow-jumping if for every `α > 0` there is an `N` such that for all
//! `x < y` with `y ≥ N`:
//!
//! ```text
//! g(y) ≤ ⌊y/x⌋^{2+α} · x^α · g(x)
//! ```
//!
//! i.e. the function never grows much faster than quadratically at any scale.
//! `x^p` for `p ≤ 2`, `x² 2^{√log x}` and `(2 + sin x) x²` are slow-jumping;
//! `x^p` for `p > 2` (markedly so for `p ≥ 2.5`) and `2^x` are not.
//!
//! The pairwise check is quadratic in the number of probe points, so the
//! analyzer thins the probe set before forming pairs (keeping the dense
//! prefix partially and the geometric tail fully); the registry tests confirm
//! that the thinned grid still classifies every library function correctly.

use super::{evaluate_probes, PropertyConfig, Witness};
use crate::GFunction;

/// Result of the slow-jumping analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowJumpingReport {
    /// Whether the property holds empirically.
    pub holds: bool,
    /// A violation past the cutoff, if any (the one with the largest `y`).
    pub witness: Option<Witness>,
    /// Largest violating `y` for each tested `α` (0 if none).
    pub last_violation_per_alpha: Vec<(f64, u64)>,
}

/// Thin a sorted probe list down to at most `target` points, always keeping
/// the first and last.
fn thin_probes(probes: &[(u64, f64)], target: usize) -> Vec<(u64, f64)> {
    if probes.len() <= target || target < 2 {
        return probes.to_vec();
    }
    let step = probes.len() as f64 / target as f64;
    let mut out = Vec::with_capacity(target + 1);
    let mut idx = 0.0;
    while (idx as usize) < probes.len() {
        out.push(probes[idx as usize]);
        idx += step;
    }
    if out.last().map(|&(x, _)| x) != probes.last().map(|&(x, _)| x) {
        out.push(*probes.last().expect("non-empty probes"));
    }
    out
}

/// Analyze the slow-jumping property of `g` under `config`.
pub fn analyze_slow_jumping<G: GFunction + ?Sized>(
    g: &G,
    config: &PropertyConfig,
) -> SlowJumpingReport {
    let probes = evaluate_probes(g, config);
    // Keep the pair loop near 10^5-10^6 evaluations.
    let thinned = thin_probes(&probes, 700);
    let cutoff = config.cutoff();

    let mut holds = true;
    let mut witness: Option<Witness> = None;
    let mut last_violation_per_alpha = Vec::with_capacity(config.alphas.len());

    for &alpha in &config.alphas {
        let mut last_violation = 0u64;
        for (yi, &(y, gy)) in thinned.iter().enumerate() {
            if gy <= 0.0 {
                continue;
            }
            for &(x, gx) in &thinned[..yi] {
                if x >= y || gx <= 0.0 {
                    continue;
                }
                let ratio = (y / x) as f64; // ⌊y/x⌋ as the definition states
                let bound = ratio.powf(2.0 + alpha) * (x as f64).powf(alpha) * gx;
                if gy > bound * (1.0 + 1e-12) {
                    if y > last_violation {
                        last_violation = y;
                    }
                    if y >= cutoff && witness.as_ref().map(|w| y > w.y).unwrap_or(true) {
                        witness = Some(Witness {
                            x,
                            y,
                            gx,
                            gy,
                            exponent: alpha,
                        });
                    }
                }
            }
        }
        if last_violation >= cutoff {
            holds = false;
        }
        last_violation_per_alpha.push((alpha, last_violation));
    }

    if holds {
        witness = None;
    }

    SlowJumpingReport {
        holds,
        witness,
        last_violation_per_alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::ClosureG;

    fn cfg() -> PropertyConfig {
        PropertyConfig::fast()
    }

    #[test]
    fn quadratic_is_slow_jumping() {
        let g = ClosureG::new("x^2", |x| (x as f64).powi(2));
        let report = analyze_slow_jumping(&g, &cfg());
        assert!(report.holds, "{report:?}");
    }

    #[test]
    fn linear_and_sqrt_are_slow_jumping() {
        for p in [0.5, 1.0, 1.5] {
            let g = ClosureG::new("x^p", move |x| (x as f64).powf(p));
            assert!(analyze_slow_jumping(&g, &cfg()).holds, "p = {p}");
        }
    }

    #[test]
    fn cubic_is_not_slow_jumping() {
        let g = ClosureG::new("x^3", |x| (x as f64).powi(3));
        let report = analyze_slow_jumping(&g, &cfg());
        assert!(!report.holds);
        let w = report.witness.expect("witness");
        assert!(w.y >= cfg().cutoff());
        // The witness really violates the inequality.
        let bound =
            ((w.y / w.x) as f64).powf(2.0 + w.exponent) * (w.x as f64).powf(w.exponent) * w.gx;
        assert!(w.gy > bound);
    }

    #[test]
    fn exponential_is_not_slow_jumping() {
        // 2^x overflows quickly; cap the window.
        let g = ClosureG::new("2^x", |x| 2f64.powf((x as f64).min(900.0)));
        let cfg = PropertyConfig {
            max_x: 1 << 9,
            dense_limit: 1 << 9,
            ..PropertyConfig::fast()
        };
        assert!(!analyze_slow_jumping(&g, &cfg).holds);
    }

    #[test]
    fn subpoly_modulated_quadratic_is_slow_jumping() {
        // x^2 * 2^sqrt(log2 x): the modulation is sub-polynomial, so the
        // function is slow-jumping even though it grows faster than x^2.
        let g = ClosureG::new("x^2 2^sqrt(lg x)", |x| {
            if x == 0 {
                0.0
            } else {
                let lx = (x as f64).log2();
                (x as f64).powi(2) * 2f64.powf(lx.sqrt())
            }
        });
        let report = analyze_slow_jumping(&g, &cfg());
        assert!(report.holds, "{report:?}");
    }

    #[test]
    fn oscillating_quadratic_is_slow_jumping() {
        let g = ClosureG::new("(2+sin x)x^2", |x| {
            (2.0 + (x as f64).sin()) * (x as f64).powi(2)
        });
        assert!(analyze_slow_jumping(&g, &cfg()).holds);
    }

    #[test]
    fn thinning_keeps_endpoints() {
        let probes: Vec<(u64, f64)> = (1..=1000u64).map(|x| (x, x as f64)).collect();
        let thinned = thin_probes(&probes, 50);
        assert!(thinned.len() <= 60);
        assert_eq!(thinned.first().unwrap().0, 1);
        assert_eq!(thinned.last().unwrap().0, 1000);
    }
}
