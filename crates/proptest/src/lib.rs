//! A minimal, dependency-free stand-in for [proptest](https://docs.rs/proptest),
//! implementing the subset of its API used by this workspace's property
//! tests.
//!
//! The build environment for this repository has no network access, so the
//! real crate cannot be fetched.  This shim keeps the property tests honest:
//! inputs are generated from deterministic per-test seeds (derived from the
//! test's module path and name), every case runs the full assertion body, and
//! a failure reports the case index so it can be replayed.  What is missing
//! relative to real proptest is shrinking — a failing case is reported as
//! generated, not minimized.

use std::fmt;
use std::ops::Range;

/// Error produced by a failing `prop_assert!`-style check.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Create a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Configuration accepted by `proptest! { #![proptest_config(...)] ... }`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// FNV-1a hash of a string — used to derive a stable per-test master seed
/// from `module_path!()::test_name`.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod test_runner {
    /// The deterministic RNG handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded constructor.
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "empty range handed to TestRng::below");
            // Multiply-shift bounded sampling (bias negligible for test sizes).
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A value generator — the shim's notion of a proptest strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_unsigned_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}

macro_rules! impl_signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }
    )*};
}

impl_unsigned_range_strategy!(u8, u16, u32, u64, usize);
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Always produces a clone of the given value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s of values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirror of proptest's `prop` path prefix (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

/// Define property tests: each `#[test] fn name(binding in strategy, ...)`
/// runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let master = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut proptest_rng = $crate::test_runner::TestRng::new(
                    master ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut proptest_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("property failed at case {case}/{}: {e}", config.cases);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..1000 {
            let v = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let w = (-3i64..4).generate(&mut rng);
            assert!((-3..4).contains(&w));
        }
    }

    #[test]
    fn vec_and_map_strategies_compose() {
        let strat = prop::collection::vec((0u64..8, 1i64..5), 1..20).prop_map(|pairs| pairs.len());
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..100 {
            let len = strat.generate(&mut rng);
            assert!((1..20).contains(&len));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let strat = prop::collection::vec(0u64..1_000_000, 5..6);
        let a = strat.generate(&mut crate::test_runner::TestRng::new(9));
        let b = strat.generate(&mut crate::test_runner::TestRng::new(9));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_checks(x in 0u64..100, y in 1u64..50) {
            prop_assert!(x < 100);
            prop_assert!(y >= 1, "y was {}", y);
            prop_assert_eq!(x + y, y + x);
            prop_assert_ne!(x, x + y);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(v in prop::collection::vec(0i64..10, 0..5)) {
            prop_assert!(v.len() < 5);
        }
    }
}
