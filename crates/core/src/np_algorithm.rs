//! The bespoke 1-pass algorithm for the nearly periodic function `g_np`
//! (Proposition 54 / Appendix D.1).
//!
//! `g_np(x) = 2^{-i_x}` with `i_x` the index of the lowest set bit of `x`.
//! The function escapes the normal zero-one law (it is S-nearly periodic),
//! yet it is 1-pass tractable because the *lowest set bit of a sum* can be
//! tracked through linear counters:
//!
//! * split the stream into `C = O(λ^{-2})` substreams with a uniform hash, so
//!   that with constant probability the `≤ 2/λ` items of largest `g_np`-value
//!   land in distinct substreams;
//! * in each substream run `D = O(log n)` independent trials; trial `ℓ` keeps
//!   the counter `m_ℓ = Σ_j X_ℓ(j) · v_j` for pairwise-independent Bernoulli
//!   variables `X_ℓ(j)`;
//! * the value `2^{-i_{m_ℓ}}` equals `g_np` of the substream's heaviest item
//!   whenever that item is sampled (adding values with strictly higher
//!   trailing-zero count cannot change the lowest set bit), so the maximum
//!   over trials recovers `g_np(v_{j*})` and the sampling pattern of the
//!   maximizing trials identifies `j*` itself.
//!
//! Wrapping this heavy-hitter routine in the recursive sketch gives a 1-pass
//! `g_np`-SUM algorithm in `poly(λ^{-1} log n)` space.

use crate::config::{GSumConfig, DEFAULT_HINT_CAP};
use crate::gsum::{median_over_repetitions, GSumEstimator};
use crate::heavy_hitters::{GCover, HeavyHitterSketch};
use crate::hints::ReverseHints;
use crate::recursive_sketch::RecursiveSketch;
use gsum_gfunc::library::GnpFunction;
use gsum_gfunc::GFunction;
use gsum_hash::{derive_seeds, BucketHash, KWiseHash};
use gsum_streams::checkpoint::{self, kind, Checkpoint, CheckpointError};
use gsum_streams::{
    coalesce_into, IngestScratch, MergeError, MergeableSketch, StreamSink, TurnstileStream, Update,
};
use std::io::{Read, Write};

/// Reusable working memory for [`GnpHeavyHitter::update_batch`]: the
/// coalesce buffer plus the structure-of-arrays columns the batched pass
/// fills — distinct keys, their deltas, their substream indices, and the
/// per-trial sampler hash values.  Transient — never part of
/// checkpoint/merge/clone identity.
#[derive(Debug, Default)]
pub struct GnpScratch {
    coalesce: Vec<Update>,
    keys: Vec<u64>,
    deltas: Vec<i64>,
    subs: Vec<u64>,
    values: Vec<u64>,
}

/// The Proposition-54 heavy-hitter sketch for `g_np`.
#[derive(Debug, Clone)]
pub struct GnpHeavyHitter {
    substreams: usize,
    trials: usize,
    /// Per-substream reverse-hint cap.  A substream whose distinct observed
    /// items exceed the cap discards its hints ("saturates") and falls back
    /// to the original domain scan at query time, so the sketch's space
    /// stays bounded by `substreams × hint_cap` words regardless of the
    /// stream's support size — the sublinearity of Proposition 54 is
    /// preserved.
    hint_cap: usize,
    /// Counters `m[c][ℓ]`, stored row-major.
    counters: Vec<i64>,
    split: BucketHash,
    /// Trial sampling hashes (pairwise independent Bernoulli(1/2)).
    samplers: Vec<KWiseHash>,
    /// Reverse hints recorded at update time: the distinct items observed in
    /// each substream (up to `hint_cap`).  Identification at query time
    /// scans only these instead of the whole `n`-sized domain.
    hints: Vec<ReverseHints>,
    /// Construction seed, kept so merges can verify hash compatibility.
    seed: u64,
    /// Reused batch-ingestion scratch for `update_batch`.
    scratch: IngestScratch<GnpScratch>,
}

impl GnpHeavyHitter {
    /// Create the sketch with `substreams` hash buckets and `trials`
    /// independent trials per bucket, with the default reverse-hint cap
    /// ([`DEFAULT_HINT_CAP`] per substream).
    pub fn new(substreams: usize, trials: usize, seed: u64) -> Self {
        Self::with_hint_cap(substreams, trials, DEFAULT_HINT_CAP, seed)
    }

    /// Create the sketch with an explicit reverse-hint cap per substream —
    /// the space / identification-speed tradeoff knob (threaded from
    /// [`GSumConfig::hint_cap`] by [`NearlyPeriodicGSum`]).
    pub fn with_hint_cap(substreams: usize, trials: usize, hint_cap: usize, seed: u64) -> Self {
        assert!(substreams >= 1 && trials >= 1, "degenerate dimensions");
        assert!(hint_cap >= 1, "hint cap must be at least 1");
        let seeds = derive_seeds(seed ^ 0x6e9_0a16, trials + 1);
        Self {
            substreams,
            trials,
            hint_cap,
            counters: vec![0i64; substreams * trials],
            split: BucketHash::new(substreams as u64, seeds[trials]),
            samplers: seeds[..trials]
                .iter()
                .map(|&s| KWiseHash::new(2, s))
                .collect(),
            hints: vec![ReverseHints::new(hint_cap); substreams],
            seed,
            scratch: IngestScratch::default(),
        }
    }

    /// The reverse-hint cap per substream.
    pub fn hint_cap(&self) -> usize {
        self.hint_cap
    }

    #[inline]
    fn cell(&self, substream: usize, trial: usize) -> usize {
        substream * self.trials + trial
    }

    /// Recover the single candidate heavy hitter of a substream, if the
    /// trial pattern identifies one unambiguously.
    fn recover_substream(&self, substream: usize, domain: u64) -> Option<(u64, f64)> {
        // The best (largest) g_np value observed across trials.
        let mut best_value = 0.0f64;
        for trial in 0..self.trials {
            let m = self.counters[self.cell(substream, trial)];
            if m != 0 {
                let v = GnpFunction::new().eval(m.unsigned_abs());
                if v > best_value {
                    best_value = v;
                }
            }
        }
        if best_value <= 0.0 {
            return None;
        }
        // Trials achieving the maximum are exactly those that sampled the
        // heaviest item (when the hashing isolated it).
        let maximizing: Vec<bool> = (0..self.trials)
            .map(|trial| {
                let m = self.counters[self.cell(substream, trial)];
                m != 0 && (GnpFunction::new().eval(m.unsigned_abs()) - best_value).abs() < 1e-12
            })
            .collect();
        // A genuine single heavy hitter is sampled in about half the trials.
        let count = maximizing.iter().filter(|&&b| b).count();
        if count == 0 || count == self.trials {
            return None;
        }
        // Identify the unique item in this substream whose sampling pattern
        // matches the maximizing trials.  Only the items actually observed in
        // this substream (the reverse hints stored at update time) can carry
        // mass, so the scan is over the substream's support — not the whole
        // `n`-sized domain — unless the substream saturated its hint budget,
        // in which case we fall back to the domain scan.  The two scans are
        // deliberately not identical on noise cases: an *unobserved* item
        // whose sampling pattern happens to match (probability ~2^-trials)
        // can create a spurious ambiguity (or a spurious identification) in
        // the domain scan, while the hint scan correctly ignores it — a
        // genuinely heavy item is always observed, so the hint path only ever
        // improves identification.
        let pattern_matches = |item: u64| {
            (0..self.trials).all(|trial| {
                let sampled = self.samplers[trial].hash_to_bool(item);
                sampled == maximizing[trial]
            })
        };
        let mut found: Option<u64> = None;
        if self.hints[substream].is_saturated() {
            for item in 0..domain {
                if self.split.bucket(item) as usize != substream {
                    continue;
                }
                if pattern_matches(item) {
                    if found.is_some() {
                        return None; // ambiguous
                    }
                    found = Some(item);
                }
            }
        } else {
            for item in self.hints[substream].iter() {
                if item >= domain {
                    continue;
                }
                debug_assert_eq!(self.split.bucket(item) as usize, substream);
                if pattern_matches(item) {
                    if found.is_some() {
                        return None; // ambiguous
                    }
                    found = Some(item);
                }
            }
        }
        found.map(|item| (item, best_value))
    }
}

impl StreamSink for GnpHeavyHitter {
    fn update(&mut self, update: Update) {
        let substream = self.split.bucket(update.item) as usize;
        self.hints[substream].record(update.item);
        for trial in 0..self.trials {
            if self.samplers[trial].hash_to_bool(update.item) {
                let idx = self.cell(substream, trial);
                self.counters[idx] += update.delta;
            }
        }
    }

    /// Batched fast path: duplicate items coalesce exactly in `i64` (the
    /// counters are linear), then the whole batch runs in structure-of-arrays
    /// passes instead of a per-item loop — the split hash maps every distinct
    /// key to its substream in one hoisted-coefficient pass
    /// ([`BucketHash::bucket_many`]), hint recording is skipped outright once
    /// every substream has saturated (the steady state of over-cap streams),
    /// and each trial's pairwise sampler polynomial is evaluated over the
    /// whole key slice with coefficients hoisted ([`KWiseHash::hash_many`]).
    /// Counter adds are exact `i64` and hint saturation is a function of the
    /// distinct-item set, so reordering item-major work into trial-major
    /// passes is bit-identical to a per-update replay (`coalesce_updates`
    /// keeps net-zero items, so the observed support matches too).
    fn update_batch(&mut self, updates: &[Update]) {
        let GnpScratch {
            coalesce,
            keys,
            deltas,
            subs,
            values,
        } = &mut self.scratch.buf;
        let coalesced = coalesce_into(updates, coalesce);
        if coalesced.is_empty() {
            return;
        }
        keys.clear();
        deltas.clear();
        for u in coalesced {
            keys.push(u.item);
            deltas.push(u.delta);
        }
        self.split.bucket_many(keys, subs);
        if self.hints.iter().any(|h| !h.is_saturated()) {
            for (&sub, &item) in subs.iter().zip(keys.iter()) {
                self.hints[sub as usize].record(item);
            }
        }
        let trials = self.trials;
        for (trial, sampler) in self.samplers.iter().enumerate() {
            sampler.hash_many(keys, values);
            for t in 0..keys.len() {
                if values[t] & 1 == 1 {
                    self.counters[subs[t] as usize * trials + trial] += deltas[t];
                }
            }
        }
    }
}

/// The low-bit counters are linear in the frequency vector, so identically
/// seeded sketches merge by adding counters (and uniting the reverse hints).
impl MergeableSketch for GnpHeavyHitter {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.substreams != other.substreams
            || self.trials != other.trials
            || self.hint_cap != other.hint_cap
            || self.seed != other.seed
        {
            return Err(MergeError::new(
                "g_np heavy-hitter merge requires identical shape, hint cap and seed",
            ));
        }
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        // Unite the reverse hints.  Saturation is a function of the union of
        // distinct items, so the merged state matches what single-threaded
        // ingestion of the concatenated stream would have produced.
        for (mine, theirs) in self.hints.iter_mut().zip(other.hints.iter()) {
            mine.merge_from(theirs);
        }
        Ok(())
    }
}

impl HeavyHitterSketch for GnpHeavyHitter {
    fn cover(&self, domain: u64) -> GCover {
        let pairs = (0..self.substreams)
            .filter_map(|c| self.recover_substream(c, domain))
            .collect();
        GCover::from_pairs(pairs)
    }

    fn space_words(&self) -> usize {
        // Counters, hash descriptions, and the reverse hints (one word per
        // stored hint, capped at `hint_cap` per substream — the bounded
        // price of O(support) identification).
        self.counters.len()
            + 4 * (self.samplers.len() + 1)
            + self.hints.iter().map(ReverseHints::len).sum::<usize>()
    }
}

/// The g_np sketch's state is its linear low-bit counters, the seeds the
/// split/sampling hashes re-derive from, and the reverse hints.
impl Checkpoint for GnpHeavyHitter {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::GNP_HEAVY_HITTER)?;
        checkpoint::write_u64(w, self.substreams as u64)?;
        checkpoint::write_u64(w, self.trials as u64)?;
        checkpoint::write_u64(w, self.hint_cap as u64)?;
        checkpoint::write_u64(w, self.seed)?;
        checkpoint::write_i64_slice(w, &self.counters)?;
        for hints in &self.hints {
            hints.save_body(w)?;
        }
        Ok(())
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        checkpoint::read_header(r, kind::GNP_HEAVY_HITTER)?;
        let substreams = checkpoint::read_len(r)?;
        let trials = checkpoint::read_len(r)?;
        let hint_cap = checkpoint::read_len(r)?;
        let seed = checkpoint::read_u64(r)?;
        if substreams == 0 || trials == 0 || hint_cap == 0 {
            return Err(CheckpointError::Corrupt(
                "g_np sketch needs positive substreams, trials and hint cap".into(),
            ));
        }
        let cells = substreams
            .checked_mul(trials)
            .ok_or_else(|| CheckpointError::Corrupt("substreams × trials overflows".into()))?;
        let counters = checkpoint::read_i64_counters(r, cells, "g_np counters")?;
        let mut hints = Vec::with_capacity(substreams.min(1 << 16));
        for _ in 0..substreams {
            hints.push(ReverseHints::restore_body(r, hint_cap)?);
        }
        let mut sketch = Self::with_hint_cap(substreams, trials, hint_cap, seed);
        sketch.counters = counters;
        sketch.hints = hints;
        Ok(sketch)
    }
}

/// The 1-pass `g_np`-SUM estimator: the Proposition-54 heavy-hitter routine
/// inside the recursive sketch.
#[derive(Debug, Clone)]
pub struct NearlyPeriodicGSum {
    config: GSumConfig,
    substreams: usize,
    trials: usize,
}

impl NearlyPeriodicGSum {
    /// Create the estimator.  The number of substreams and trials per level
    /// are derived from the configured candidate budget.
    pub fn new(config: GSumConfig) -> Self {
        let substreams =
            (config.candidates_per_level * config.candidates_per_level).clamp(16, 4096);
        let trials = (2 * GSumConfig::default_levels(config.domain)).clamp(12, 40);
        Self {
            config,
            substreams,
            trials,
        }
    }

    /// Substreams per level.
    pub fn substreams(&self) -> usize {
        self.substreams
    }

    /// Trials per substream.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// A fresh long-lived push-based sketch state with an explicit seed: the
    /// Proposition-54 routine per level of the recursive reduction.  The
    /// returned sketch is a [`StreamSink`] and a
    /// [`MergeableSketch`], so it can absorb live updates and participate in
    /// sharded ingestion.
    pub fn sketch_with_seed(&self, seed: u64) -> RecursiveSketch<GnpHeavyHitter> {
        let substreams = self.substreams;
        let trials = self.trials;
        let hint_cap = self.config.hint_cap;
        RecursiveSketch::new(
            self.config.domain,
            self.config.levels,
            seed,
            move |_level, level_seed| {
                GnpHeavyHitter::with_hint_cap(substreams, trials, hint_cap, level_seed)
            },
        )
    }

    /// A fresh long-lived sketch state with the configured seed.
    pub fn sketch(&self) -> RecursiveSketch<GnpHeavyHitter> {
        self.sketch_with_seed(self.config.seed)
    }

    /// Estimate with an explicit seed override.
    pub fn estimate_with_seed(&self, stream: &TurnstileStream, seed: u64) -> f64 {
        let mut sketch = self.sketch_with_seed(seed);
        sketch.process_stream(stream);
        sketch.estimate().max(0.0)
    }
}

impl GSumEstimator for NearlyPeriodicGSum {
    fn estimate(&self, stream: &TurnstileStream) -> f64 {
        self.estimate_with_seed(stream, self.config.seed)
    }

    fn passes(&self) -> usize {
        1
    }

    fn space_words(&self) -> usize {
        self.sketch().space_words()
    }

    fn estimate_median(&self, stream: &TurnstileStream, repetitions: usize) -> f64 {
        median_over_repetitions(repetitions, |r| {
            self.estimate_with_seed(stream, self.config.seed.wrapping_add(r as u64 * 31))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsum::{exact_gsum, relative_error};
    use gsum_streams::{FrequencyPrescribedGenerator, StreamGenerator};

    /// A stream whose frequencies are powers of two and odd values — the
    /// regime where g_np actually varies.
    fn gnp_stream(domain: u64, seed: u64) -> TurnstileStream {
        FrequencyPrescribedGenerator::new(
            domain,
            vec![(1024, 1), (64, 3), (8, 10), (3, 40), (1, 100)],
            seed,
        )
        .with_bulk_updates()
        .generate()
    }

    #[test]
    fn heavy_hitter_routine_finds_the_gnp_heavy_item() {
        // One item with an odd frequency (g_np = 1) among items whose
        // frequencies are multiples of 64 (g_np ≤ 1/64): the odd item is a
        // strong g_np-heavy hitter.
        let domain = 256u64;
        let mut stream = TurnstileStream::new(domain);
        stream.push_delta(17, 5); // odd: g_np = 1
        for item in 30..40u64 {
            stream.push_delta(item, 64 * (item as i64 - 28));
        }
        let mut hh = GnpHeavyHitter::new(64, 20, 9);
        for &u in stream.iter() {
            hh.update(u);
        }
        let cover = hh.cover(domain);
        assert!(cover.contains(17), "cover {:?}", cover);
        assert!((cover.weight(17).unwrap() - 1.0).abs() < 1e-12);
        assert!(hh.space_words() >= 64 * 20);
    }

    #[test]
    fn hint_saturation_keeps_space_bounded_and_falls_back_to_domain_scan() {
        // One substream, far more distinct items than the hint cap: the
        // substream must saturate (hints freed, space bounded) and queries
        // must still work through the domain-scan fallback.
        let domain = 4096u64;
        let trials = 16usize;
        let mut hh = GnpHeavyHitter::new(1, trials, 3);
        for item in 0..2000u64 {
            hh.update(Update::new(item, 2)); // even: g_np ≤ 1/2 everywhere
        }
        let baseline = hh.space_words();
        assert!(
            baseline < trials + 4 * (trials + 1) + 600,
            "hints must stay capped: {baseline} words"
        );
        // More distinct items must not grow the hint storage further.
        for item in 2000..3000u64 {
            hh.update(Update::new(item, 2));
        }
        assert_eq!(hh.space_words(), baseline);
        // The cover query still runs (domain-scan fallback), no panic.
        let _ = hh.cover(domain);
    }

    #[test]
    fn hint_cap_is_tunable_and_checked_by_merge() {
        let mut tight = GnpHeavyHitter::with_hint_cap(1, 8, 4, 3);
        assert_eq!(tight.hint_cap(), 4);
        for item in 0..16u64 {
            tight.update(Update::new(item, 2));
        }
        // A cap of 4 saturates immediately on 16 distinct items...
        let saturated_space = tight.space_words();
        for item in 16..32u64 {
            tight.update(Update::new(item, 2));
        }
        assert_eq!(tight.space_words(), saturated_space);
        // ...and merges refuse a differently-capped sketch.
        let default_cap = GnpHeavyHitter::new(1, 8, 3);
        assert_eq!(default_cap.hint_cap(), DEFAULT_HINT_CAP);
        assert!(tight.merge(&default_cap).is_err());
    }

    #[test]
    fn checkpoint_roundtrip_preserves_cover_and_hints() {
        let domain = 256u64;
        let mut stream = TurnstileStream::new(domain);
        stream.push_delta(17, 5);
        for item in 30..40u64 {
            stream.push_delta(item, 64 * (item as i64 - 28));
        }
        let mut hh = GnpHeavyHitter::new(64, 20, 9);
        hh.process_stream(&stream);
        let bytes = hh.to_checkpoint_bytes().unwrap();
        let restored = GnpHeavyHitter::from_checkpoint_bytes(&bytes).unwrap();
        assert_eq!(restored.cover(domain), hh.cover(domain));
        assert_eq!(restored.space_words(), hh.space_words());
        assert_eq!(restored.hint_cap(), hh.hint_cap());
        // Truncations fail instead of panicking.
        assert!(GnpHeavyHitter::from_checkpoint_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn gnp_sum_estimate_tracks_truth() {
        let domain = 1u64 << 10;
        let stream = gnp_stream(domain, 5);
        let truth = exact_gsum(&GnpFunction::new(), &stream.frequency_vector());
        let est = NearlyPeriodicGSum::new(GSumConfig::with_space_budget(domain, 0.2, 256, 7));
        let approx = est.estimate_median(&stream, 5);
        let rel = relative_error(approx, truth);
        assert!(
            rel < 0.4,
            "estimate {approx} vs truth {truth} (relative error {rel})"
        );
    }

    #[test]
    fn estimator_metadata() {
        let est = NearlyPeriodicGSum::new(GSumConfig::with_space_budget(256, 0.2, 64, 1));
        assert_eq!(est.passes(), 1);
        assert!(est.substreams() >= 16);
        assert!(est.trials() >= 12);
        assert!(est.space_words() > est.substreams() * est.trials());
    }

    #[test]
    fn empty_stream_estimates_zero() {
        let est = NearlyPeriodicGSum::new(GSumConfig::with_space_budget(64, 0.2, 64, 1));
        assert_eq!(est.estimate(&TurnstileStream::new(64)), 0.0);
    }
}
