//! `(g, λ, ε, δ)`-heavy-hitter algorithms (Definitions 11–12, Algorithms 1–2).
//!
//! An item `j` is a `(g, λ)`-heavy hitter of `V` if
//! `g(|v_j|) ≥ λ Σ_{i≠j} g(|v_i|)`.  A `(g, λ, ε)`-cover is a set of pairs
//! `(i, w)` that contains every `(g, λ)`-heavy hitter and whose weights are
//! `(1 ± ε)`-approximations of `g(|v_i|)`.  The recursive sketch of
//! Theorem 13 reduces g-SUM to producing such covers.

pub mod one_pass;
pub mod two_pass;

pub use one_pass::{OnePassHeavyHitter, OnePassHeavyHitterConfig};
pub use two_pass::{TwoPassHeavyHitter, TwoPassHeavyHitterConfig};

use gsum_streams::{FrequencyVector, StreamSink};

/// A `(g, λ, ε)`-cover: `(item, approximate g-value)` pairs
/// (Definition 12).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GCover {
    entries: Vec<(u64, f64)>,
}

impl GCover {
    /// Create an empty cover.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a cover from raw pairs.
    pub fn from_pairs(mut entries: Vec<(u64, f64)>) -> Self {
        entries.sort_unstable_by_key(|&(i, _)| i);
        entries.dedup_by_key(|&mut (i, _)| i);
        Self { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cover is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the cover contains an item.
    pub fn contains(&self, item: u64) -> bool {
        self.entries
            .binary_search_by_key(&item, |&(i, _)| i)
            .is_ok()
    }

    /// The approximate g-value recorded for an item, if present.
    pub fn weight(&self, item: u64) -> Option<f64> {
        self.entries
            .binary_search_by_key(&item, |&(i, _)| i)
            .ok()
            .map(|idx| self.entries[idx].1)
    }

    /// Iterate over `(item, weight)` pairs in increasing item order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Sum of the recorded weights.
    pub fn total_weight(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w).sum()
    }
}

/// A one-pass streaming algorithm producing a `(g, λ, ε)`-cover.
///
/// Updates are pushed through the [`StreamSink`] supertrait.
/// Implementations are *linear sketches over a fixed hash seed*: processing a
/// stream and then querying gives the cover of the stream's frequency vector,
/// and the same structure can be reused across recursion levels of the
/// recursive sketch.
///
/// **Linearity is a requirement, not a convention.**  The recursive sketch's
/// batched ingestion path coalesces duplicate items (summing their deltas in
/// `i64`, reordering by item) before routing a batch to the level sketches —
/// exact for any sketch whose state is a linear function of the frequency
/// vector, which is what [Li–Nguyen–Woodruff 2014] shows is WLOG for
/// turnstile algorithms.  An implementation that is order- or
/// occurrence-sensitive (per-update decay, update counting, max-delta
/// tracking, ...) would observe different batches than a per-update replay
/// and must not be driven through
/// [`RecursiveSketch`](crate::RecursiveSketch) batching.
pub trait HeavyHitterSketch: StreamSink {
    /// Produce a cover of the stream processed so far.  `domain` bounds the
    /// item identifiers that may be reported.
    fn cover(&self, domain: u64) -> GCover;

    /// Number of 64-bit words of state (the space the zero-one laws count).
    fn space_words(&self) -> usize;
}

/// The exact `(g, λ)`-heavy hitters of a frequency vector, used as ground
/// truth in tests and experiments (Definition 11).
pub fn exact_heavy_hitters<G: gsum_gfunc::GFunction + ?Sized>(
    g: &G,
    vector: &FrequencyVector,
    lambda: f64,
) -> Vec<u64> {
    let total: f64 = vector.iter().map(|(_, v)| g.eval_signed(v)).sum();
    let mut out: Vec<u64> = vector
        .iter()
        .filter(|&(_, v)| {
            let gv = g.eval_signed(v);
            gv >= lambda * (total - gv)
        })
        .map(|(i, _)| i)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_gfunc::library::PowerFunction;

    #[test]
    fn cover_basic_operations() {
        let cover = GCover::from_pairs(vec![(5, 10.0), (1, 2.0), (5, 11.0), (9, 3.0)]);
        assert_eq!(cover.len(), 3);
        assert!(cover.contains(1) && cover.contains(5) && cover.contains(9));
        assert!(!cover.contains(2));
        assert_eq!(cover.weight(1), Some(2.0));
        assert_eq!(cover.weight(2), None);
        assert!((cover.total_weight() - 15.0).abs() < 1e-12);
        let items: Vec<u64> = cover.iter().map(|(i, _)| i).collect();
        assert_eq!(items, vec![1, 5, 9]);
    }

    #[test]
    fn empty_cover() {
        let cover = GCover::new();
        assert!(cover.is_empty());
        assert_eq!(cover.len(), 0);
        assert_eq!(cover.total_weight(), 0.0);
    }

    #[test]
    fn exact_heavy_hitters_ground_truth() {
        let g = PowerFunction::new(2.0);
        let mut fv = FrequencyVector::new(100);
        fv.apply(7, 100);
        for i in 10..30 {
            fv.apply(i, 2);
        }
        // g(100) = 10^4, rest = 20·4 = 80; item 7 is heavy for λ up to 125.
        assert_eq!(exact_heavy_hitters(&g, &fv, 0.1), vec![7]);
        assert_eq!(exact_heavy_hitters(&g, &fv, 100.0), vec![7]);
        assert!(exact_heavy_hitters(&g, &fv, 200.0).is_empty());
        // With a tiny λ everything is heavy.
        assert_eq!(exact_heavy_hitters(&g, &fv, 1e-9).len(), 21);
    }
}
