//! Algorithm 1: the 2-pass `(g, λ, 0, δ)`-heavy-hitter algorithm.
//!
//! ```text
//! 2-Pass Heavy Hitters(g, λ, ε, δ):
//!   First pass:  S ← CountSketch(λ / 2H(M), 1/3, δ), keep the identities of
//!                the top O(H(M)/λ) estimated items, discard the estimates
//!   Second pass: tabulate v_j exactly for every j ∈ S
//!   return (j, g(v_j)) for j ∈ S
//! ```
//!
//! Because the second pass measures the candidate frequencies exactly, local
//! variability of `g` is irrelevant — this is precisely why predictability
//! drops out of the two-pass zero-one law (Theorem 3).

use super::{GCover, HeavyHitterSketch};
use crate::config::invalid;
use crate::error::CoreError;
use crate::hints::ReverseHints;
use gsum_gfunc::{FunctionCodec, GFunction};
use gsum_hash::HashBackend;
use gsum_sketch::{CountSketch, CountSketchConfig, FrequencySketch};
use gsum_streams::checkpoint::{self, kind, Checkpoint, CheckpointError};
use gsum_streams::{IngestScratch, MergeError, MergeableSketch, StreamSink, Update};
use std::collections::HashMap;
use std::io::{Read, Write};

/// Configuration knobs for [`TwoPassHeavyHitter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPassHeavyHitterConfig {
    /// CountSketch rows (first pass).
    pub rows: usize,
    /// CountSketch columns (first pass).
    pub columns: usize,
    /// Number of candidates whose frequencies the second pass tabulates.
    pub candidates: usize,
    /// Hash family for the first-pass CountSketch rows.
    pub backend: HashBackend,
    /// Cap on the reverse hints (distinct observed items) kept during the
    /// first pass: under the cap, [`begin_second_pass`](TwoPassHeavyHitter::begin_second_pass)
    /// picks its candidates by scanning the observed support instead of the
    /// whole domain; past it the sketch saturates and falls back to the
    /// domain scan.  Defaults to [`crate::config::DEFAULT_HINT_CAP`] when
    /// derived from a [`crate::GSumConfig`].
    pub hint_cap: usize,
}

impl TwoPassHeavyHitterConfig {
    /// Shape constructor with the default backend and hint cap.
    ///
    /// # Panics
    /// Panics on degenerate dimensions; use [`try_new`](Self::try_new) for a
    /// fallible constructor.
    pub fn new(rows: usize, columns: usize, candidates: usize) -> Self {
        Self::try_new(rows, columns, candidates).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects zero rows, columns, or candidates with
    /// a typed [`CoreError`].
    pub fn try_new(rows: usize, columns: usize, candidates: usize) -> Result<Self, CoreError> {
        if rows == 0 {
            return Err(invalid("rows", "need at least one row"));
        }
        if columns == 0 {
            return Err(invalid("columns", "need at least one column"));
        }
        if candidates == 0 {
            return Err(invalid("candidates", "need at least one candidate"));
        }
        Ok(Self {
            rows,
            columns,
            candidates,
            backend: HashBackend::default(),
            hint_cap: crate::config::DEFAULT_HINT_CAP,
        })
    }

    /// Select the hash backend.
    pub fn with_backend(mut self, backend: HashBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Set the reverse-hint cap.
    ///
    /// # Panics
    /// Panics if `hint_cap == 0`; use
    /// [`try_with_hint_cap`](Self::try_with_hint_cap) for a fallible setter.
    pub fn with_hint_cap(self, hint_cap: usize) -> Self {
        self.try_with_hint_cap(hint_cap)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible hint-cap setter: rejects a zero cap with a typed
    /// [`CoreError`].
    pub fn try_with_hint_cap(mut self, hint_cap: usize) -> Result<Self, CoreError> {
        if hint_cap == 0 {
            return Err(invalid("hint_cap", "hint cap must be at least 1"));
        }
        self.hint_cap = hint_cap;
        Ok(self)
    }
}

/// Which pass the algorithm is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    First,
    Second,
}

/// The Algorithm-1 heavy-hitter algorithm for a function `g`.
///
/// Unlike the one-pass sketch this type is driven through
/// [`TwoPassHeavyHitter::update_pass1`], [`TwoPassHeavyHitter::begin_second_pass`]
/// and [`TwoPassHeavyHitter::update_pass2`]; the [`HeavyHitterSketch`]
/// implementation maps `update` onto the current phase so the recursive
/// sketch can drive it uniformly.
#[derive(Debug, Clone)]
pub struct TwoPassHeavyHitter<G> {
    g: G,
    config: TwoPassHeavyHitterConfig,
    countsketch: CountSketch,
    phase: Phase,
    /// Exact counters for the candidate set (second pass).
    exact: HashMap<u64, i64>,
    /// Distinct items observed during the first pass, capped at
    /// `config.hint_cap`: the phase transition scans these instead of the
    /// whole domain when picking candidates.
    hints: ReverseHints,
    /// Reused coalesce scratch for first-pass `update_batch`.
    scratch: IngestScratch<Vec<Update>>,
}

impl<G: GFunction> TwoPassHeavyHitter<G> {
    /// Create the algorithm.
    pub fn new(g: G, config: TwoPassHeavyHitterConfig, seed: u64) -> Self {
        let cs_config =
            CountSketchConfig::new(config.rows, config.columns).with_backend(config.backend);
        let countsketch = CountSketch::new(cs_config, seed ^ 0x2da5_5e1f);
        Self::from_parts(
            g,
            config,
            countsketch,
            Phase::First,
            HashMap::new(),
            ReverseHints::new(config.hint_cap),
        )
    }

    /// Assemble the algorithm from explicit components — the single code
    /// path shared by fresh construction ([`new`](Self::new)) and checkpoint
    /// rehydration ([`Checkpoint::restore`]).
    fn from_parts(
        g: G,
        config: TwoPassHeavyHitterConfig,
        countsketch: CountSketch,
        phase: Phase,
        exact: HashMap<u64, i64>,
        hints: ReverseHints,
    ) -> Self {
        Self {
            g,
            config,
            countsketch,
            phase,
            exact,
            hints,
            scratch: IngestScratch::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> TwoPassHeavyHitterConfig {
        self.config
    }

    /// Process an update during the first pass.
    pub fn update_pass1(&mut self, update: Update) {
        debug_assert_eq!(self.phase, Phase::First, "first pass already closed");
        self.hints.record(update.item);
        self.countsketch.update(update);
    }

    /// Close the first pass: fix the candidate set whose frequencies the
    /// second pass will tabulate exactly (identities only; the CountSketch
    /// estimates are discarded, as in the paper).  Candidate identification
    /// scans the observed support (the reverse hints) when the hint budget
    /// held, falling back to the domain scan after saturation.
    pub fn begin_second_pass(&mut self, domain: u64) {
        if self.phase == Phase::Second {
            return;
        }
        let candidates = if self.hints.is_saturated() {
            self.countsketch
                .top_candidates(0..domain, self.config.candidates)
        } else {
            self.countsketch.top_candidates(
                self.hints.iter().filter(|&item| item < domain),
                self.config.candidates,
            )
        };
        self.exact = candidates.into_iter().map(|(i, _)| (i, 0i64)).collect();
        // Nothing reads the hints after the candidate set is frozen: free
        // them so the second pass (and every frozen-state checkpoint the
        // sharded coordinator broadcasts) does not carry dead state.
        self.hints = ReverseHints::new(self.config.hint_cap);
        self.phase = Phase::Second;
    }

    /// Process an update during the second pass (only candidate items are
    /// counted).
    pub fn update_pass2(&mut self, update: Update) {
        debug_assert_eq!(self.phase, Phase::Second, "second pass not started");
        if let Some(count) = self.exact.get_mut(&update.item) {
            *count += update.delta;
        }
    }

    /// Whether the first pass has been closed.
    pub fn in_second_pass(&self) -> bool {
        self.phase == Phase::Second
    }

    /// The candidate set fixed at the end of the first pass.
    pub fn candidates(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.exact.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

impl<G: GFunction> StreamSink for TwoPassHeavyHitter<G> {
    fn update(&mut self, update: Update) {
        match self.phase {
            Phase::First => self.update_pass1(update),
            Phase::Second => self.update_pass2(update),
        }
    }

    /// Phase-aware batching: the first pass coalesces once, records the
    /// distinct items as reverse hints in one batch insert (a single
    /// saturation check covers the whole batch) and forwards the coalesced
    /// batch to the CountSketch's fast path; the second pass tabulates in
    /// exact `i64` arithmetic where batching has nothing left to amortize.
    fn update_batch(&mut self, updates: &[Update]) {
        match self.phase {
            Phase::First => {
                let coalesced = gsum_streams::coalesce_into(updates, &mut self.scratch.buf);
                self.hints.record_batch(coalesced.iter().map(|u| u.item));
                self.countsketch.update_batch(coalesced);
            }
            Phase::Second => {
                for &u in updates {
                    self.update_pass2(u);
                }
            }
        }
    }
}

/// Both phases are mergeable: first-pass states merge their CountSketches;
/// second-pass states merge their exact tabulations, provided the candidate
/// sets (fixed when the first pass closed) agree.
///
/// In the second phase the CountSketch is deliberately *not* summed: the
/// sharding protocol clones one post-transition state per worker, so both
/// sides already hold the identical full first-pass counters, and adding
/// them would double every frequency.  Pass-2 updates never touch the
/// CountSketch, so keeping `self`'s copy preserves exactly the
/// single-threaded state.
impl<G: GFunction> MergeableSketch for TwoPassHeavyHitter<G> {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.config != other.config {
            return Err(MergeError::new(
                "two-pass heavy-hitter merge requires identical configuration",
            ));
        }
        if self.phase != other.phase {
            return Err(MergeError::new(
                "two-pass heavy-hitter merge requires matching phases",
            ));
        }
        match self.phase {
            Phase::First => {
                self.countsketch.merge(&other.countsketch)?;
                self.hints.merge_from(&other.hints);
            }
            Phase::Second => {
                if self.exact.len() != other.exact.len()
                    || !other.exact.keys().all(|k| self.exact.contains_key(k))
                {
                    return Err(MergeError::new(
                        "second-pass merge requires identical candidate sets",
                    ));
                }
                for (item, v) in &other.exact {
                    *self.exact.get_mut(item).expect("checked above") += v;
                }
            }
        }
        Ok(())
    }
}

impl<G: GFunction> HeavyHitterSketch for TwoPassHeavyHitter<G> {
    fn cover(&self, _domain: u64) -> GCover {
        // Exact frequencies, hence exact g-values (the ε = 0 of Algorithm 1).
        let pairs = self
            .exact
            .iter()
            .filter(|(_, &v)| v != 0)
            .map(|(&i, &v)| (i, self.g.eval_signed(v)))
            .collect();
        GCover::from_pairs(pairs)
    }

    fn space_words(&self) -> usize {
        self.countsketch.space_words() + 2 * self.config.candidates + self.hints.len()
    }
}

/// The two-pass state is seeds + counters + **phase**: the checkpoint
/// records which pass the algorithm is in and, once the first pass has been
/// closed, the frozen candidate set with its exact tabulations — so a state
/// saved between the passes (or mid-second-pass) rehydrates ready to
/// continue exactly where it stopped.  The function checkpoints as its
/// [`FunctionCodec`] parameters.
impl<G: GFunction + FunctionCodec> Checkpoint for TwoPassHeavyHitter<G> {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::TWO_PASS_HEAVY_HITTER)?;
        checkpoint::write_u64(w, self.config.rows as u64)?;
        checkpoint::write_u64(w, self.config.columns as u64)?;
        checkpoint::write_u64(w, self.config.candidates as u64)?;
        checkpoint::write_backend(w, self.config.backend)?;
        checkpoint::write_u64(w, self.config.hint_cap as u64)?;
        checkpoint::write_bytes(w, &self.g.encode_params())?;
        self.countsketch.save(w)?;
        checkpoint::write_u8(w, u8::from(self.phase == Phase::Second))?;
        let mut frozen: Vec<(u64, i64)> = self.exact.iter().map(|(&i, &v)| (i, v)).collect();
        frozen.sort_unstable_by_key(|&(i, _)| i);
        checkpoint::write_len(w, frozen.len())?;
        for (item, count) in frozen {
            checkpoint::write_u64(w, item)?;
            checkpoint::write_i64(w, count)?;
        }
        self.hints.save_body(w)?;
        Ok(())
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        checkpoint::read_header(r, kind::TWO_PASS_HEAVY_HITTER)?;
        let config = TwoPassHeavyHitterConfig {
            rows: checkpoint::read_len(r)?,
            columns: checkpoint::read_len(r)?,
            candidates: checkpoint::read_len(r)?,
            backend: checkpoint::read_backend(r)?,
            hint_cap: checkpoint::read_len(r)?,
        };
        let params = checkpoint::read_bounded_bytes(r, 1 << 16, "function parameters")?;
        let g = G::decode_params(&params)
            .ok_or_else(|| CheckpointError::Corrupt("invalid function parameters".into()))?;
        let countsketch = CountSketch::restore(r)?;
        let phase = match checkpoint::read_u8(r)? {
            0 => Phase::First,
            1 => Phase::Second,
            tag => {
                return Err(CheckpointError::Corrupt(format!(
                    "invalid two-pass phase tag {tag}"
                )))
            }
        };
        let frozen_len = checkpoint::read_len(r)?;
        if phase == Phase::First && frozen_len != 0 {
            return Err(CheckpointError::Corrupt(
                "first-pass state cannot carry frozen candidates".into(),
            ));
        }
        let mut exact = HashMap::with_capacity(frozen_len.min(1 << 16));
        for _ in 0..frozen_len {
            let item = checkpoint::read_u64(r)?;
            let count = checkpoint::read_i64(r)?;
            if exact.insert(item, count).is_some() {
                return Err(CheckpointError::Corrupt(format!(
                    "duplicate frozen candidate {item}"
                )));
            }
        }
        let hints = ReverseHints::restore_body(r, config.hint_cap)?;
        let cs_config = countsketch.config();
        if cs_config.rows != config.rows
            || cs_config.columns != config.columns
            || cs_config.backend != config.backend
        {
            return Err(CheckpointError::Corrupt(
                "nested CountSketch disagrees with the heavy-hitter configuration".into(),
            ));
        }
        Ok(Self::from_parts(
            g,
            config,
            countsketch,
            phase,
            exact,
            hints,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heavy_hitters::exact_heavy_hitters;
    use gsum_gfunc::library::{OscillatingQuadratic, PowerFunction};
    use gsum_streams::{PlantedStreamGenerator, StreamConfig, StreamGenerator};

    fn config() -> TwoPassHeavyHitterConfig {
        TwoPassHeavyHitterConfig {
            rows: 5,
            columns: 256,
            candidates: 24,
            backend: gsum_hash::HashBackend::Polynomial,
            hint_cap: crate::config::DEFAULT_HINT_CAP,
        }
    }

    #[test]
    fn two_passes_report_exact_values_even_for_erratic_functions() {
        // The whole point of Algorithm 1: the reported weights are exact, so
        // even an unpredictable function gets a perfect cover.
        let stream = PlantedStreamGenerator::new(
            StreamConfig::new(1 << 10, 20_000),
            vec![(100, 4000), (321, 2500)],
            13,
        )
        .generate();
        let fv = stream.frequency_vector();
        let g = OscillatingQuadratic::direct();

        let mut hh = TwoPassHeavyHitter::new(g, config(), 99);
        for &u in stream.iter() {
            hh.update_pass1(u);
        }
        hh.begin_second_pass(1 << 10);
        assert!(hh.in_second_pass());
        for &u in stream.iter() {
            hh.update_pass2(u);
        }
        let cover = hh.cover(1 << 10);

        for item in exact_heavy_hitters(&OscillatingQuadratic::direct(), &fv, 0.05) {
            assert!(cover.contains(item), "missing heavy hitter {item}");
            let truth = OscillatingQuadratic::direct().eval_signed(fv.get(item));
            let w = cover.weight(item).unwrap();
            assert!(
                (w - truth).abs() < 1e-9,
                "two-pass weight should be exact: {w} vs {truth}"
            );
        }
    }

    #[test]
    fn trait_driver_switches_phase() {
        let stream = PlantedStreamGenerator::new(StreamConfig::new(256, 2_000), vec![(7, 500)], 3)
            .generate();
        let mut hh = TwoPassHeavyHitter::new(PowerFunction::new(2.0), config(), 5);
        for &u in stream.iter() {
            StreamSink::update(&mut hh, u);
        }
        hh.begin_second_pass(256);
        for &u in stream.iter() {
            StreamSink::update(&mut hh, u);
        }
        let cover = hh.cover(256);
        assert!(cover.contains(7));
        let truth = PowerFunction::new(2.0).eval_signed(stream.frequency_vector().get(7));
        assert!((cover.weight(7).unwrap() - truth).abs() < 1e-9);
    }

    #[test]
    fn candidate_set_bounded() {
        let stream =
            PlantedStreamGenerator::new(StreamConfig::new(1 << 12, 8_000), vec![(1, 100)], 5)
                .generate();
        let mut hh = TwoPassHeavyHitter::new(PowerFunction::new(2.0), config(), 1);
        for &u in stream.iter() {
            hh.update_pass1(u);
        }
        hh.begin_second_pass(1 << 12);
        assert!(hh.candidates().len() <= config().candidates);
        assert!(hh.space_words() > 0);
    }

    #[test]
    fn begin_second_pass_is_idempotent() {
        let mut hh = TwoPassHeavyHitter::new(PowerFunction::new(2.0), config(), 1);
        hh.update_pass1(Update::new(3, 10));
        hh.begin_second_pass(16);
        let before = hh.candidates();
        hh.begin_second_pass(16);
        assert_eq!(before, hh.candidates());
    }

    #[test]
    fn cover_before_second_pass_is_empty() {
        let mut hh = TwoPassHeavyHitter::new(PowerFunction::new(2.0), config(), 1);
        hh.update_pass1(Update::new(3, 10));
        // No second pass yet: no exact counts, so no cover entries.
        assert!(hh.cover(16).is_empty());
    }

    #[test]
    fn capped_hints_fall_back_to_the_domain_scan_for_candidates() {
        let stream = PlantedStreamGenerator::new(
            StreamConfig::new(1 << 10, 20_000),
            vec![(100, 4000), (321, 2500)],
            13,
        )
        .generate();
        let mut capped_cfg = config();
        capped_cfg.hint_cap = 2; // saturates immediately
        let mut capped = TwoPassHeavyHitter::new(PowerFunction::new(2.0), capped_cfg, 99);
        let mut uncapped = TwoPassHeavyHitter::new(PowerFunction::new(2.0), config(), 99);
        for &u in stream.iter() {
            capped.update_pass1(u);
            uncapped.update_pass1(u);
        }
        capped.begin_second_pass(1 << 10);
        uncapped.begin_second_pass(1 << 10);
        // Planted heavy hitters survive either identification path.
        for candidates in [capped.candidates(), uncapped.candidates()] {
            assert!(candidates.contains(&100) && candidates.contains(&321));
        }
    }

    #[test]
    fn checkpoint_roundtrip_in_both_phases() {
        let stream = PlantedStreamGenerator::new(StreamConfig::new(256, 4_000), vec![(7, 900)], 5)
            .generate();
        let mut hh = TwoPassHeavyHitter::new(PowerFunction::new(2.0), config(), 3);
        for &u in stream.iter() {
            hh.update_pass1(u);
        }
        // Mid-pass-1 checkpoint: restore and finish the protocol.
        let bytes = hh.to_checkpoint_bytes().unwrap();
        let mut restored =
            TwoPassHeavyHitter::<PowerFunction>::from_checkpoint_bytes(&bytes).unwrap();
        assert!(!restored.in_second_pass());
        restored.begin_second_pass(256);
        hh.begin_second_pass(256);
        assert_eq!(restored.candidates(), hh.candidates());

        // Between-pass checkpoint: the frozen candidate set survives.
        let frozen = hh.to_checkpoint_bytes().unwrap();
        let mut rehydrated =
            TwoPassHeavyHitter::<PowerFunction>::from_checkpoint_bytes(&frozen).unwrap();
        assert!(rehydrated.in_second_pass());
        for &u in stream.iter() {
            rehydrated.update_pass2(u);
            restored.update_pass2(u);
            hh.update_pass2(u);
        }
        assert_eq!(rehydrated.cover(256), hh.cover(256));
        assert_eq!(restored.cover(256), hh.cover(256));
    }
}
