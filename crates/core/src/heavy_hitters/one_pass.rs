//! Algorithm 2: the 1-pass `(g, λ, ε, δ)`-heavy-hitter algorithm.
//!
//! ```text
//! 1-Pass Heavy Hitters(g, λ, ε, δ):
//!   Ŝ, V̂ ← CountSketch(λ / 3H(M), ε / 2H(M), δ/2)
//!   F̂₂  ← AMS(ε, δ/2)
//!   S ← { i ∈ Ŝ : |g(v̂_i) − g(v̂_i + y)| ≤ ε g(v̂_i + y)
//!                   for all |y| ≤ (ε / 2H(M)) √F̂₂ }
//!   return (j, g(v̂_j)) for j ∈ S
//! ```
//!
//! The CountSketch identifies every `λ`-heavy hitter for `g` because a
//! slow-jumping, slow-dropping function makes each of them `λ/H(M)`-heavy for
//! `F₂` (Lemma 17/18).  The pruning stage is where predictability enters: an
//! item survives only if `g` is stable under the CountSketch's frequency
//! error, which Theorem 2's proof shows is guaranteed for every genuine heavy
//! hitter when `g` is predictable.  For unpredictable functions the pruning
//! may discard genuine heavy hitters (or keep items whose reported weight is
//! off), which is exactly the failure mode experiment E3 measures.

use super::{GCover, HeavyHitterSketch};
use crate::config::invalid;
use crate::error::CoreError;
use crate::hints::ReverseHints;
use gsum_gfunc::{FunctionCodec, GFunction};
use gsum_hash::{HashBackend, SignFamily};
use gsum_sketch::{AmsF2Sketch, CountSketch, CountSketchConfig, FrequencySketch};
use gsum_streams::checkpoint::{self, kind, Checkpoint, CheckpointError};
use gsum_streams::{IngestScratch, MergeError, MergeableSketch, StreamSink, Update};
use std::io::{Read, Write};

/// Configuration knobs for [`OnePassHeavyHitter`] (usually derived from
/// [`crate::GSumConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnePassHeavyHitterConfig {
    /// CountSketch rows.
    pub rows: usize,
    /// CountSketch columns.
    pub columns: usize,
    /// Number of candidate items extracted from the CountSketch.
    pub candidates: usize,
    /// The pruning accuracy `ε`.
    pub epsilon: f64,
    /// The envelope factor `H(M)` scaling the tolerated frequency error.
    pub envelope_factor: f64,
    /// Hash family for the CountSketch rows.
    pub backend: HashBackend,
    /// Sign family for the embedded AMS tug-of-war bank (4-wise polynomial
    /// by default; tabulation trades the provable variance constant for
    /// speed — see `gsum_hash::sign`).
    pub sign_family: SignFamily,
    /// Cap on the reverse hints (distinct observed items) kept for candidate
    /// identification: under the cap, [`cover`](HeavyHitterSketch::cover)
    /// scans the observed support instead of the whole domain; past it the
    /// sketch saturates and falls back to the domain scan.  Defaults to
    /// [`crate::config::DEFAULT_HINT_CAP`] when derived from a
    /// [`crate::GSumConfig`].
    pub hint_cap: usize,
}

impl OnePassHeavyHitterConfig {
    /// Shape constructor with the default backend, default hint cap, and the
    /// given pruning parameters.
    ///
    /// # Panics
    /// Panics on degenerate dimensions; use [`try_new`](Self::try_new) for a
    /// fallible constructor.
    pub fn new(
        rows: usize,
        columns: usize,
        candidates: usize,
        epsilon: f64,
        envelope_factor: f64,
    ) -> Self {
        Self::try_new(rows, columns, candidates, epsilon, envelope_factor)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects zero rows/columns/candidates, an
    /// `epsilon` outside `(0, 1)`, and an envelope factor below 1 with a
    /// typed [`CoreError`].
    pub fn try_new(
        rows: usize,
        columns: usize,
        candidates: usize,
        epsilon: f64,
        envelope_factor: f64,
    ) -> Result<Self, CoreError> {
        if rows == 0 {
            return Err(invalid("rows", "need at least one row"));
        }
        if columns == 0 {
            return Err(invalid("columns", "need at least one column"));
        }
        if candidates == 0 {
            return Err(invalid("candidates", "need at least one candidate"));
        }
        if epsilon.is_nan() || epsilon <= 0.0 || epsilon >= 1.0 {
            return Err(invalid("epsilon", "epsilon must be in (0,1)"));
        }
        if envelope_factor.is_nan() || envelope_factor < 1.0 {
            return Err(invalid(
                "envelope_factor",
                "the envelope factor is at least 1",
            ));
        }
        Ok(Self {
            rows,
            columns,
            candidates,
            epsilon,
            envelope_factor,
            backend: HashBackend::default(),
            sign_family: SignFamily::default(),
            hint_cap: crate::config::DEFAULT_HINT_CAP,
        })
    }

    /// Select the hash backend.
    pub fn with_backend(mut self, backend: HashBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Select the AMS sign family.
    pub fn with_sign_family(mut self, family: SignFamily) -> Self {
        self.sign_family = family;
        self
    }

    /// Set the reverse-hint cap.
    ///
    /// # Panics
    /// Panics if `hint_cap == 0`; use
    /// [`try_with_hint_cap`](Self::try_with_hint_cap) for a fallible setter.
    pub fn with_hint_cap(self, hint_cap: usize) -> Self {
        self.try_with_hint_cap(hint_cap)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible hint-cap setter: rejects a zero cap with a typed
    /// [`CoreError`].
    pub fn try_with_hint_cap(mut self, hint_cap: usize) -> Result<Self, CoreError> {
        if hint_cap == 0 {
            return Err(invalid("hint_cap", "hint cap must be at least 1"));
        }
        self.hint_cap = hint_cap;
        Ok(self)
    }
}

/// The Algorithm-2 heavy-hitter sketch for a function `g`.
#[derive(Debug, Clone)]
pub struct OnePassHeavyHitter<G> {
    g: G,
    config: OnePassHeavyHitterConfig,
    countsketch: CountSketch,
    ams: AmsF2Sketch,
    /// Distinct items observed at update time, capped at
    /// `config.hint_cap`: candidate identification scans these instead of
    /// the whole domain until the sketch saturates.
    hints: ReverseHints,
    /// Reused coalesce scratch for `update_batch`.
    scratch: IngestScratch<Vec<Update>>,
}

impl<G: GFunction> OnePassHeavyHitter<G> {
    /// Create the sketch.
    ///
    /// # Panics
    /// Panics if the CountSketch or AMS dimensions or the hint cap are
    /// degenerate.
    pub fn new(g: G, config: OnePassHeavyHitterConfig, seed: u64) -> Self {
        let cs_config =
            CountSketchConfig::new(config.rows, config.columns).with_backend(config.backend);
        let countsketch = CountSketch::new(cs_config, seed ^ 0x0c5e_7c11);
        // A fixed, modest AMS sketch: the F2 estimate only calibrates the
        // pruning tolerance, so ±25% accuracy is plenty.
        let ams = AmsF2Sketch::with_sign_family(64, 5, seed ^ 0xa355_f2f2, config.sign_family)
            .expect("valid AMS dimensions");
        Self::from_parts(
            g,
            config,
            countsketch,
            ams,
            ReverseHints::new(config.hint_cap),
        )
    }

    /// Assemble the sketch from explicit components — the single code path
    /// shared by fresh construction ([`new`](Self::new)) and checkpoint
    /// rehydration ([`Checkpoint::restore`]).
    fn from_parts(
        g: G,
        config: OnePassHeavyHitterConfig,
        countsketch: CountSketch,
        ams: AmsF2Sketch,
        hints: ReverseHints,
    ) -> Self {
        Self {
            g,
            config,
            countsketch,
            ams,
            hints,
            scratch: IngestScratch::default(),
        }
    }

    /// The wrapped function.
    pub fn function(&self) -> &G {
        &self.g
    }

    /// The configuration in force.
    pub fn config(&self) -> OnePassHeavyHitterConfig {
        self.config
    }

    /// A conservative additive frequency-error bound for the CountSketch:
    /// `2·√(F̂₂ / b) + 1`, i.e. twice the root-mean-square mass landing in a
    /// single bucket.  [`cover`](HeavyHitterSketch::cover) tightens this by
    /// subtracting the candidates' own contribution from `F̂₂` (the residual
    /// `F₂^{res}` that the CountSketch guarantee is actually stated in terms
    /// of).
    pub fn frequency_error_bound(&self) -> f64 {
        let f2 = self.ams.estimate_f2().max(0.0);
        2.0 * (f2 / self.config.columns as f64).sqrt() + 1.0
    }

    /// The residual-aware error bound: like
    /// [`frequency_error_bound`](Self::frequency_error_bound) but computed
    /// from the CountSketch's own counters with the candidate items' buckets
    /// removed, matching the `√(λ F₂^{res})`-type error the paper's analysis
    /// uses (and avoiding the AMS sketch's additive noise, which scales with
    /// the *full* `F₂`).
    fn residual_error_bound(&self, candidates: &[(u64, f64)]) -> f64 {
        let excluded: Vec<u64> = candidates.iter().map(|&(i, _)| i).collect();
        let residual = self.countsketch.residual_f2_excluding(&excluded).max(0.0);
        2.0 * (residual / self.config.columns as f64).sqrt()
    }

    /// Whether `g` is stable (within relative `ε`) around the estimated
    /// frequency `v̂` under perturbations of size up to `error`.
    fn is_stable<F: GFunction + ?Sized>(&self, g: &F, v_hat: i64, error: f64) -> bool {
        let base = g.eval_signed(v_hat);
        if base <= 0.0 {
            // g(0) = 0 items contribute nothing; keep them out of the cover.
            return false;
        }
        let eps = self.config.epsilon;
        // An error below half a unit means the rounded estimate is the exact
        // integer frequency, so the reported weight is exact and no pruning
        // is needed.
        if error < 0.5 {
            return true;
        }
        let err = error.ceil() as i64;
        // Probe a handful of perturbations across the error interval,
        // including its endpoints (the worst case for monotone-ish g).
        let probes = [-err, -(err / 2).max(1), -1, 1, (err / 2).max(1), err];
        for &y in &probes {
            let shifted = g.eval_signed(v_hat + y);
            if (base - shifted).abs() > eps * shifted.max(base) {
                return false;
            }
        }
        true
    }

    /// [`cover`](HeavyHitterSketch::cover) evaluated under an *external*
    /// function instead of the wrapped one.
    ///
    /// The ingest path never touches `g` — the CountSketch, AMS sketch and
    /// reverse hints are pure frequency structure — so one absorbed substream
    /// can answer the heavy-hitter question for any function in `G`.  This is
    /// the primitive the serving layer's multi-function registry builds on:
    /// one shared substrate, K query-time functions.
    pub fn cover_with<F: GFunction + ?Sized>(&self, g: &F, domain: u64) -> GCover {
        // Candidate identification scans the observed support (the reverse
        // hints) instead of the whole domain whenever the hint budget held;
        // only the items that actually carry mass can be heavy, and
        // `top_candidates` imposes a total order, so the selection is
        // deterministic regardless of hint iteration order.  A saturated
        // sketch falls back to the exhaustive domain scan.
        let candidates = if self.hints.is_saturated() {
            self.countsketch
                .top_candidates(0..domain, self.config.candidates)
        } else {
            self.countsketch.top_candidates(
                self.hints.iter().filter(|&item| item < domain),
                self.config.candidates,
            )
        };
        let error = self.residual_error_bound(&candidates);
        let mut pairs = Vec::with_capacity(candidates.len());
        for (item, estimate) in candidates {
            let v_hat = estimate.round() as i64;
            if v_hat == 0 {
                continue;
            }
            if self.is_stable(g, v_hat, error) {
                pairs.push((item, g.eval_signed(v_hat)));
            }
        }
        GCover::from_pairs(pairs)
    }

    /// [`Checkpoint::save`] with the function-parameter bytes replaced by
    /// `params`.
    ///
    /// The state bytes (counters, seeds, hints) are function-independent, so
    /// substituting another function's [`FunctionCodec`] encoding yields
    /// exactly the checkpoint a sketch *built with that function* would have
    /// written after the same stream — the bit-exactness contract behind the
    /// serving registry's per-function checkpoints.
    pub fn save_with_params(
        &self,
        w: &mut impl Write,
        params: &[u8],
    ) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::ONE_PASS_HEAVY_HITTER)?;
        checkpoint::write_u64(w, self.config.rows as u64)?;
        checkpoint::write_u64(w, self.config.columns as u64)?;
        checkpoint::write_u64(w, self.config.candidates as u64)?;
        checkpoint::write_f64(w, self.config.epsilon)?;
        checkpoint::write_f64(w, self.config.envelope_factor)?;
        checkpoint::write_backend(w, self.config.backend)?;
        checkpoint::write_sign_family(w, self.config.sign_family)?;
        checkpoint::write_u64(w, self.config.hint_cap as u64)?;
        checkpoint::write_bytes(w, params)?;
        self.countsketch.save(w)?;
        self.ams.save(w)?;
        self.hints.save_body(w)?;
        Ok(())
    }
}

impl<G: GFunction> StreamSink for OnePassHeavyHitter<G> {
    fn update(&mut self, update: Update) {
        self.hints.record(update.item);
        self.countsketch.update(update);
        self.ams.update(update);
    }

    /// Forward the batch to both component sketches so their coalescing
    /// fast paths engage (instead of degrading to per-update dispatch).
    /// Coalescing happens at most once on this path: the item→delta map is
    /// built here (unless the caller — e.g. the recursive sketch — already
    /// passed a coalesced batch), and the inner sketches detect the
    /// coalesced form and use it as-is.  Hints are recorded once per
    /// coalesced batch with a single saturation check (a saturated sketch —
    /// the steady state of any over-cap stream — skips the pass outright);
    /// coalescing keeps net-zero items and saturation is order-insensitive,
    /// so the observed set matches a per-update replay exactly.
    fn update_batch(&mut self, updates: &[Update]) {
        let coalesced = gsum_streams::coalesce_into(updates, &mut self.scratch.buf);
        self.hints.record_batch(coalesced.iter().map(|u| u.item));
        self.countsketch.update_batch(coalesced);
        self.ams.update_batch(coalesced);
    }
}

/// Algorithm 2's state is a pair of linear sketches, so it merges
/// component-wise (the two sketches enforce seed/shape compatibility).
impl<G: GFunction> MergeableSketch for OnePassHeavyHitter<G> {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.config != other.config {
            return Err(MergeError::new(
                "one-pass heavy-hitter merge requires identical configuration",
            ));
        }
        self.countsketch.merge(&other.countsketch)?;
        self.ams.merge(&other.ams)?;
        self.hints.merge_from(&other.hints);
        Ok(())
    }
}

impl<G: GFunction> HeavyHitterSketch for OnePassHeavyHitter<G> {
    fn cover(&self, domain: u64) -> GCover {
        self.cover_with(&self.g, domain)
    }

    fn space_words(&self) -> usize {
        self.countsketch.space_words() + self.ams.space_words() + self.hints.len()
    }
}

/// Algorithm 2's state is its two linear sketches plus the reverse hints;
/// the function itself is configuration and checkpoints as its
/// [`FunctionCodec`] parameters, so restore is fully self-contained.
impl<G: GFunction + FunctionCodec> Checkpoint for OnePassHeavyHitter<G> {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        self.save_with_params(w, &self.g.encode_params())
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        checkpoint::read_header(r, kind::ONE_PASS_HEAVY_HITTER)?;
        let config = OnePassHeavyHitterConfig {
            rows: checkpoint::read_len(r)?,
            columns: checkpoint::read_len(r)?,
            candidates: checkpoint::read_len(r)?,
            epsilon: checkpoint::read_f64(r)?,
            envelope_factor: checkpoint::read_f64(r)?,
            backend: checkpoint::read_backend(r)?,
            sign_family: checkpoint::read_sign_family(r)?,
            hint_cap: checkpoint::read_len(r)?,
        };
        let params = checkpoint::read_bounded_bytes(r, 1 << 16, "function parameters")?;
        let g = G::decode_params(&params)
            .ok_or_else(|| CheckpointError::Corrupt("invalid function parameters".into()))?;
        let countsketch = CountSketch::restore(r)?;
        let ams = AmsF2Sketch::restore(r)?;
        let hints = ReverseHints::restore_body(r, config.hint_cap)?;
        let cs_config = countsketch.config();
        if cs_config.rows != config.rows
            || cs_config.columns != config.columns
            || cs_config.backend != config.backend
        {
            return Err(CheckpointError::Corrupt(
                "nested CountSketch disagrees with the heavy-hitter configuration".into(),
            ));
        }
        if ams.sign_family() != config.sign_family {
            return Err(CheckpointError::Corrupt(
                "nested AMS sign family disagrees with the heavy-hitter configuration".into(),
            ));
        }
        Ok(Self::from_parts(g, config, countsketch, ams, hints))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heavy_hitters::exact_heavy_hitters;
    use gsum_gfunc::library::{OscillatingQuadratic, PowerFunction};
    use gsum_streams::{PlantedStreamGenerator, StreamConfig, StreamGenerator, TurnstileStream};

    fn config() -> OnePassHeavyHitterConfig {
        OnePassHeavyHitterConfig {
            rows: 5,
            columns: 512,
            candidates: 32,
            epsilon: 0.2,
            envelope_factor: 1.0,
            backend: gsum_hash::HashBackend::Polynomial,
            sign_family: SignFamily::Polynomial4,
            hint_cap: crate::config::DEFAULT_HINT_CAP,
        }
    }

    fn planted_stream() -> TurnstileStream {
        PlantedStreamGenerator::new(
            StreamConfig::new(1 << 10, 20_000),
            vec![(100, 4000), (200, 2500)],
            9,
        )
        .generate()
    }

    #[test]
    fn finds_planted_heavy_hitters_for_quadratic() {
        let stream = planted_stream();
        let fv = stream.frequency_vector();
        let g = PowerFunction::new(2.0);

        let mut hh = OnePassHeavyHitter::new(g, config(), 41);
        for &u in stream.iter() {
            hh.update(u);
        }
        let cover = hh.cover(1 << 10);

        // Every true (g, 0.05)-heavy hitter must appear with an accurate weight.
        for item in exact_heavy_hitters(&PowerFunction::new(2.0), &fv, 0.05) {
            assert!(cover.contains(item), "missing heavy hitter {item}");
            let truth = PowerFunction::new(2.0).eval_signed(fv.get(item));
            let w = cover.weight(item).unwrap();
            assert!(
                (w - truth).abs() <= 0.25 * truth,
                "weight {w} far from {truth} for item {item}"
            );
        }
    }

    #[test]
    fn cover_size_bounded_by_candidates() {
        let stream = planted_stream();
        let mut hh = OnePassHeavyHitter::new(PowerFunction::new(2.0), config(), 5);
        for &u in stream.iter() {
            hh.update(u);
        }
        assert!(hh.cover(1 << 10).len() <= config().candidates);
    }

    #[test]
    fn unpredictable_function_drops_unstable_items() {
        // (2 + sin x) x² swings by a constant factor under ±1 frequency
        // error, so the pruning stage rejects items whose estimate is not
        // exact. Plant noise so the CountSketch error is non-zero.
        let stream =
            PlantedStreamGenerator::new(StreamConfig::new(1 << 10, 60_000), vec![(100, 3000)], 3)
                .generate();
        let g = OscillatingQuadratic::direct();
        let mut cfg = config();
        cfg.columns = 32; // deliberately tight: estimates carry error
        let mut hh = OnePassHeavyHitter::new(g, cfg, 7);
        for &u in stream.iter() {
            hh.update(u);
        }
        let cover = hh.cover(1 << 10);
        // Either the heavy item was dropped, or (if kept) its weight may be
        // unreliable — the point of E3. We only check the sketch ran and the
        // pruning machinery engaged (the cover is not the full candidate set).
        assert!(cover.len() < cfg.candidates);
    }

    #[test]
    fn empty_stream_gives_empty_cover() {
        let hh = OnePassHeavyHitter::new(PowerFunction::new(2.0), config(), 1);
        assert!(hh.cover(1 << 10).is_empty());
        assert!(hh.space_words() > 0);
    }

    #[test]
    fn frequency_error_bound_grows_with_stream_mass() {
        let mut hh = OnePassHeavyHitter::new(PowerFunction::new(2.0), config(), 1);
        let before = hh.frequency_error_bound();
        for i in 0..200u64 {
            hh.update(Update::new(i, 50));
        }
        let after = hh.frequency_error_bound();
        assert!(after > before);
    }

    #[test]
    fn hint_scan_and_domain_scan_agree_on_heavy_items() {
        // A tight hint cap forces saturation; the saturated (domain-scan)
        // cover and an uncapped (hint-scan) cover must both report the
        // planted heavy hitters.
        let stream = planted_stream();
        let fv = stream.frequency_vector();
        let mut capped_cfg = config();
        capped_cfg.hint_cap = 4; // far below the stream's support: saturates
        let mut capped = OnePassHeavyHitter::new(PowerFunction::new(2.0), capped_cfg, 41);
        let mut uncapped = OnePassHeavyHitter::new(PowerFunction::new(2.0), config(), 41);
        for &u in stream.iter() {
            capped.update(u);
            uncapped.update(u);
        }
        let capped_cover = capped.cover(1 << 10);
        let uncapped_cover = uncapped.cover(1 << 10);
        for item in exact_heavy_hitters(&PowerFunction::new(2.0), &fv, 0.05) {
            assert!(capped_cover.contains(item), "saturated cover lost {item}");
            assert!(uncapped_cover.contains(item), "hint cover lost {item}");
            assert_eq!(capped_cover.weight(item), uncapped_cover.weight(item));
        }
    }

    #[test]
    fn checkpoint_roundtrip_preserves_cover_and_bounds() {
        let stream = planted_stream();
        let mut hh = OnePassHeavyHitter::new(PowerFunction::new(2.0), config(), 41);
        for &u in stream.iter() {
            hh.update(u);
        }
        let bytes = hh.to_checkpoint_bytes().unwrap();
        let restored = OnePassHeavyHitter::<PowerFunction>::from_checkpoint_bytes(&bytes).unwrap();
        assert_eq!(restored.cover(1 << 10), hh.cover(1 << 10));
        assert_eq!(
            restored.frequency_error_bound().to_bits(),
            hh.frequency_error_bound().to_bits()
        );
        assert_eq!(restored.space_words(), hh.space_words());
        assert_eq!(restored.config(), hh.config());
    }
}
