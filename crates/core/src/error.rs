//! Error type for the g-SUM algorithm configuration.

use std::fmt;

/// Errors raised when configuring the g-SUM estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration parameter was invalid.
    InvalidParameter {
        /// Which parameter.
        parameter: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// A sketch-level error bubbled up.
    Sketch(gsum_sketch::SketchError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { parameter, reason } => {
                write!(f, "invalid parameter `{parameter}`: {reason}")
            }
            CoreError::Sketch(e) => write!(f, "sketch error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<gsum_sketch::SketchError> for CoreError {
    fn from(e: gsum_sketch::SketchError) -> Self {
        CoreError::Sketch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = CoreError::InvalidParameter {
            parameter: "epsilon",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("epsilon"));

        let s = gsum_sketch::SketchError::EmptyDimension { parameter: "rows" };
        let converted: CoreError = s.into();
        assert!(converted.to_string().contains("rows"));
    }
}
