//! The `(a, b, c)`-DIST counter algorithm (Proposition 49).
//!
//! ShortLinearCombination asks: the frequency vector is promised to take
//! values only in `{0, ±a, ±b}`, except possibly one coordinate that takes
//! the value `±c`; decide whether such a coordinate exists.  Writing
//! `c = p·a + q·b` with `q` of minimum total magnitude, Theorem 48 proves an
//! `Ω(n/q²)` space lower bound and Proposition 49 matches it:
//!
//! * partition the universe into `t = Θ̃(n / q²)` pieces;
//! * for each piece keep the signed counter `C_i = Σ_{h(l)=i} ξ_l v_l` with
//!   4-wise independent signs `ξ`;
//! * with high probability each piece's signed multiplicity of `b`-valued
//!   coordinates stays below `|q|/4`, in which case the residue `C_i mod a`
//!   lands in a set that is disjoint between the "no `c`" and "some `c`"
//!   cases (by the minimality of `q`), so reading the residues decides the
//!   problem.

use gsum_hash::{derive_seeds, BucketHash, SignHash};
use gsum_streams::checkpoint::{self, kind, Checkpoint, CheckpointError};
use gsum_streams::{IngestScratch, MergeError, MergeableSketch, StreamSink, Update};
use std::collections::BTreeSet;
use std::io::{Read, Write};

/// The verdict of the DIST decision procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistVerdict {
    /// Some coordinate has frequency `±c`.
    HasTargetFrequency,
    /// All coordinates have frequencies in `{0, ±a, ±b}`.
    NoTargetFrequency,
}

/// The streaming counter structure of Proposition 49.
#[derive(Debug, Clone)]
pub struct DistCounter {
    a: i64,
    b: i64,
    c: i64,
    /// Minimal-coefficient `q` with `p·a + q·b = c`.
    q: i64,
    pieces: usize,
    counters: Vec<i64>,
    split: BucketHash,
    signs: SignHash,
    /// Construction seed, kept so merges can verify hash compatibility.
    seed: u64,
    /// Residues of `z·b (mod a)` for `|z| ≤ |q|/4` — the values compatible
    /// with "no `c` present".
    allowed_residues: BTreeSet<i64>,
    /// Reused coalesce scratch for `update_batch`.
    scratch: IngestScratch<Vec<Update>>,
}

impl DistCounter {
    /// Create the structure for the `(a, b, c)`-DIST problem over a domain of
    /// size `domain`, with the number of pieces chosen as
    /// `t = min(domain, ⌈κ · domain · ln(domain+2) / q²⌉)` for the given
    /// oversampling constant `κ` (use [`DistCounter::new`] for the default).
    ///
    /// # Panics
    /// Panics if `a, b, c` are not positive and distinct, or if `c` is not an
    /// integer combination of `a` and `b` (i.e. `gcd(a, b) ∤ c`).
    pub fn with_oversampling(domain: u64, a: u64, b: u64, c: u64, kappa: f64, seed: u64) -> Self {
        assert!(a > 0 && b > 0 && c > 0, "frequencies must be positive");
        assert!(c != a && c != b, "c must differ from a and b");
        assert!(domain > 0, "domain must be positive");
        let (a, b, c) = (a as i64, b as i64, c as i64);
        let q = Self::minimal_q(a, b, c)
            .expect("c must be an integer combination of a and b (gcd(a,b) divides c)");
        let q_abs = q.unsigned_abs().max(1);
        let pieces = ((kappa * domain as f64 * ((domain + 2) as f64).ln()
            / (q_abs as f64 * q_abs as f64))
            .ceil() as u64)
            .clamp(1, domain) as usize;
        Self::from_parts(a, b, c, pieces, seed).expect("q already verified to exist")
    }

    /// Assemble the structure from `(a, b, c)`, an explicit piece count and
    /// the seed, re-deriving `q`, the residue set and the hash functions —
    /// the single code path shared by [`with_oversampling`](Self::with_oversampling)
    /// and checkpoint rehydration.  `None` when `c` is not an integer
    /// combination of `a` and `b`.
    fn from_parts(a: i64, b: i64, c: i64, pieces: usize, seed: u64) -> Option<Self> {
        let q = Self::minimal_q(a, b, c)?;
        let seeds = derive_seeds(seed ^ 0xd157_c047, 2);
        let allowed_residues = Self::residue_set(a, b, q);
        Some(Self {
            a,
            b,
            c,
            q,
            pieces,
            counters: vec![0i64; pieces],
            split: BucketHash::new(pieces as u64, seeds[0]),
            signs: SignHash::new(seeds[1]),
            seed,
            allowed_residues,
            scratch: IngestScratch::default(),
        })
    }

    /// Create the structure with the default oversampling constant (32).
    pub fn new(domain: u64, a: u64, b: u64, c: u64, seed: u64) -> Self {
        Self::with_oversampling(domain, a, b, c, 32.0, seed)
    }

    /// The minimal-|q| integer with `p·a + q·b = c` for some integer `p`
    /// (ties broken towards positive `q`), or `None` if no combination
    /// exists.
    pub fn minimal_q(a: i64, b: i64, c: i64) -> Option<i64> {
        // Search |q| = 0, 1, 2, ... and check whether (c − q b) is divisible
        // by a.  The minimal |q| is at most a (Lemma 47), so the search is
        // bounded.
        for mag in 0..=a.unsigned_abs() {
            for &q in &[mag as i64, -(mag as i64)] {
                if (c - q * b).rem_euclid(a) == 0 {
                    return Some(q);
                }
            }
        }
        None
    }

    /// Residues `z·b mod a` compatible with "no c present".
    ///
    /// Disjointness of the two cases needs the signed per-piece multiplicity
    /// of `b`-valued coordinates to stay within a margin `B` with
    /// `2B < |q|` (two multiplicities differing by less than `|q|` cannot
    /// bridge the residue `c`, by the minimality of `q`); the largest such
    /// margin is `B = ⌊(|q| − 1)/2⌋`.  For `|q| ≤ 2` the margin is zero and
    /// the problem genuinely requires near-linear space, exactly as the
    /// Ω(n/q²) lower bound of Theorem 48 says.
    fn residue_set(a: i64, b: i64, q: i64) -> BTreeSet<i64> {
        let bound = (q.abs() - 1) / 2;
        (-bound..=bound).map(|z| (z * b).rem_euclid(a)).collect()
    }

    /// The minimal coefficient `q` (its square is the space lower bound's
    /// denominator).
    pub fn q(&self) -> i64 {
        self.q
    }

    /// The number of pieces (counters) — the algorithm's space, up to the two
    /// hash functions.
    pub fn pieces(&self) -> usize {
        self.pieces
    }

    /// Number of 64-bit words of state.
    pub fn space_words(&self) -> usize {
        self.counters.len() + 8 + self.allowed_residues.len()
    }

    /// Decide whether a `±c` coordinate is present.
    pub fn verdict(&self) -> DistVerdict {
        for &counter in &self.counters {
            let residue = counter.rem_euclid(self.a);
            if !self.allowed_residues.contains(&residue) {
                return DistVerdict::HasTargetFrequency;
            }
        }
        DistVerdict::NoTargetFrequency
    }

    /// The `(a, b, c)` triple.
    pub fn frequencies(&self) -> (i64, i64, i64) {
        (self.a, self.b, self.c)
    }
}

impl StreamSink for DistCounter {
    fn update(&mut self, update: Update) {
        let piece = self.split.bucket(update.item) as usize;
        self.counters[piece] += self.signs.sign(update.item) * update.delta;
    }

    /// Batched fast path: the signed piece counters are linear in `i64`, so
    /// duplicate items coalesce exactly and are hashed once per batch.
    fn update_batch(&mut self, updates: &[Update]) {
        // Detach the reusable buffer so `self.update` can borrow all of
        // `self` inside the loop; put it back (capacity intact) when done.
        let mut buf = std::mem::take(&mut self.scratch.buf);
        for &u in gsum_streams::coalesce_into(updates, &mut buf) {
            self.update(u);
        }
        self.scratch.buf = buf;
    }
}

/// The signed piece counters are linear in the frequency vector, so
/// identically configured counters merge by addition.
impl MergeableSketch for DistCounter {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if (self.a, self.b, self.c) != (other.a, other.b, other.c)
            || self.pieces != other.pieces
            || self.seed != other.seed
        {
            return Err(MergeError::new(
                "DIST-counter merge requires identical (a, b, c), pieces and seed",
            ));
        }
        for (mine, theirs) in self.counters.iter_mut().zip(other.counters.iter()) {
            *mine += theirs;
        }
        Ok(())
    }
}

/// The DIST counter's state is its signed piece counters plus the
/// `(a, b, c, pieces, seed)` tuple everything else (`q`, the residue set,
/// both hash functions) re-derives from.
impl Checkpoint for DistCounter {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::DIST_COUNTER)?;
        checkpoint::write_i64(w, self.a)?;
        checkpoint::write_i64(w, self.b)?;
        checkpoint::write_i64(w, self.c)?;
        checkpoint::write_u64(w, self.pieces as u64)?;
        checkpoint::write_u64(w, self.seed)?;
        checkpoint::write_i64_slice(w, &self.counters)?;
        Ok(())
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        checkpoint::read_header(r, kind::DIST_COUNTER)?;
        let a = checkpoint::read_i64(r)?;
        let b = checkpoint::read_i64(r)?;
        let c = checkpoint::read_i64(r)?;
        let pieces = checkpoint::read_len(r)?;
        let seed = checkpoint::read_u64(r)?;
        if a <= 0 || b <= 0 || c <= 0 || c == a || c == b || pieces == 0 {
            return Err(CheckpointError::Corrupt(
                "invalid (a, b, c) or piece count".into(),
            ));
        }
        let counters = checkpoint::read_i64_counters(r, pieces, "DIST counters")?;
        let mut counter = Self::from_parts(a, b, c, pieces, seed).ok_or_else(|| {
            CheckpointError::Corrupt("c is not an integer combination of a and b".into())
        })?;
        counter.counters = counters;
        Ok(counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_hash::Xoshiro256;
    use gsum_streams::TurnstileStream;

    /// Build a V0 / V1 instance: `count_a` coordinates at ±a, `count_b` at
    /// ±b, and optionally one coordinate at ±c.
    #[allow(clippy::too_many_arguments)]
    fn instance(
        domain: u64,
        a: i64,
        b: i64,
        c: i64,
        count_a: u64,
        count_b: u64,
        plant_c: bool,
        seed: u64,
    ) -> TurnstileStream {
        let mut rng = Xoshiro256::new(seed);
        let mut stream = TurnstileStream::new(domain);
        let mut used = std::collections::HashSet::new();
        let fresh_item = |rng: &mut Xoshiro256, used: &mut std::collections::HashSet<u64>| loop {
            let i = rng.next_below(domain);
            if used.insert(i) {
                return i;
            }
        };
        for _ in 0..count_a {
            let item = fresh_item(&mut rng, &mut used);
            let sign = if rng.next_bool() { 1 } else { -1 };
            stream.push_delta(item, sign * a);
        }
        for _ in 0..count_b {
            let item = fresh_item(&mut rng, &mut used);
            let sign = if rng.next_bool() { 1 } else { -1 };
            stream.push_delta(item, sign * b);
        }
        if plant_c {
            let item = fresh_item(&mut rng, &mut used);
            let sign = if rng.next_bool() { 1 } else { -1 };
            stream.push_delta(item, sign * c);
        }
        stream
    }

    #[test]
    fn minimal_q_examples() {
        // gcd(5,3)=1: 1 = 2*3 - 1*5 → c=1: q = 2 (p = -1) or q=-1? check:
        // (1 - q*3) % 5 == 0: q=2 → 1-6=-5 ✓; q=-3 → 10 ✓; smallest |q| among
        // {..}: q = 2? also q = -1 → 4 % 5 ≠ 0; q = 1 → -2 % 5 ≠ 0. So 2.
        assert_eq!(DistCounter::minimal_q(5, 3, 1), Some(2));
        // c = 8 = 1*5 + 1*3: q = 1.
        assert_eq!(DistCounter::minimal_q(5, 3, 8), Some(1));
        // a = 6, b = 4: gcd 2; c = 7 odd → impossible.
        assert_eq!(DistCounter::minimal_q(6, 4, 7), None);
        // a = 6, b = 4, c = 2: 2 = 1*6 - 1*4 → |q| = 1.
        assert_eq!(DistCounter::minimal_q(6, 4, 2).map(i64::abs), Some(1));
        // a = 100, b = 99, c = 1: 1 = 1*100 - 1*99 → q = -1.
        assert_eq!(DistCounter::minimal_q(100, 99, 1).map(i64::abs), Some(1));
    }

    #[test]
    #[should_panic(expected = "combination")]
    fn impossible_target_panics() {
        let _ = DistCounter::new(100, 6, 4, 7, 1);
    }

    #[test]
    fn detects_planted_target_frequency() {
        // (a, b, c) = (11, 9, 1): 9·5 = 45 ≡ 1 (mod 11), so q = 5 and the
        // residue margin is 2 — comfortably achievable with n/q² pieces.
        let domain = 1u64 << 12;
        let (a, b, c) = (11u64, 9u64, 1u64);
        assert_eq!(DistCounter::minimal_q(11, 9, 1).map(i64::abs), Some(5));
        let mut errors = 0;
        for seed in 0..10u64 {
            let with_c = instance(domain, 11, 9, 1, 200, 200, true, seed);
            let without_c = instance(domain, 11, 9, 1, 200, 200, false, seed + 100);

            let mut d1 = DistCounter::new(domain, a, b, c, seed * 3 + 1);
            d1.process_stream(&with_c);
            if d1.verdict() != DistVerdict::HasTargetFrequency {
                errors += 1;
            }

            let mut d0 = DistCounter::new(domain, a, b, c, seed * 3 + 2);
            d0.process_stream(&without_c);
            if d0.verdict() != DistVerdict::NoTargetFrequency {
                errors += 1;
            }
        }
        // The algorithm succeeds with probability ≥ 2/3 per instance; over 20
        // decisions a handful of errors would already be suspicious.
        assert!(errors <= 3, "too many DIST errors: {errors}/20");
    }

    #[test]
    fn space_scales_inversely_with_q_squared() {
        let domain = 1u64 << 14;
        // Smaller minimal coefficient ⇒ more pieces (more space), matching
        // the Θ(n/q²) bound: (5, 3, 1) has q = 2, (11, 9, 1) has q = 5.
        let d_small_q = DistCounter::new(domain, 5, 3, 1, 3); // q = 2
        let d_large_q = DistCounter::new(domain, 11, 9, 1, 3); // q = 5
        assert_eq!(d_small_q.q().abs(), 2);
        assert_eq!(d_large_q.q().abs(), 5);
        assert!(d_small_q.pieces() >= d_large_q.pieces());
        // Pieces never exceed the domain (exact counting fallback).
        assert!(d_small_q.pieces() as u64 <= domain);
        assert!(d_small_q.space_words() >= d_small_q.pieces());
    }

    #[test]
    fn empty_stream_reports_no_target() {
        let d = DistCounter::new(256, 5, 3, 1, 9);
        assert_eq!(d.verdict(), DistVerdict::NoTargetFrequency);
        assert_eq!(d.frequencies(), (5, 3, 1));
    }

    #[test]
    fn sharded_halves_merge_to_the_same_verdict_state() {
        let domain = 1u64 << 10;
        let stream = instance(domain, 11, 9, 1, 100, 100, true, 33);
        let mut whole = DistCounter::new(domain, 11, 9, 1, 5);
        whole.process_stream(&stream);

        let (front, back) = stream.updates().split_at(stream.len() / 2);
        let mut a = DistCounter::new(domain, 11, 9, 1, 5);
        a.update_batch(front);
        let mut b = DistCounter::new(domain, 11, 9, 1, 5);
        b.update_batch(back);
        a.merge(&b).unwrap();

        assert_eq!(a.counters, whole.counters);
        assert_eq!(a.verdict(), whole.verdict());

        // Seed or parameter mismatches are rejected.
        let other_seed = DistCounter::new(domain, 11, 9, 1, 6);
        assert!(a.merge(&other_seed).is_err());
    }

    #[test]
    fn single_c_coordinate_alone_is_detected() {
        let mut d = DistCounter::new(256, 11, 9, 1, 4);
        d.update(Update::new(42, 1));
        assert_eq!(d.verdict(), DistVerdict::HasTargetFrequency);
    }

    #[test]
    fn larger_coefficient_targets_still_detected_with_enough_pieces() {
        // (a, b, c) = (7, 5, 1): 1 = 3*5 - 2*7 → q = 3.
        assert_eq!(DistCounter::minimal_q(7, 5, 1).map(i64::abs), Some(3));
        let domain = 1u64 << 12;
        let with_c = instance(domain, 7, 5, 1, 150, 150, true, 11);
        let mut d = DistCounter::new(domain, 7, 5, 1, 21);
        d.process_stream(&with_c);
        assert_eq!(d.verdict(), DistVerdict::HasTargetFrequency);
    }
}
