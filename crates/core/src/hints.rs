//! Capped reverse hints: the distinct items a sketch has observed.
//!
//! The heavy-hitter sketches face the same identification problem: their
//! counters summarize frequencies, but reporting a cover (or freezing a
//! candidate set) needs item *identities*, and scanning the whole `[0, n)`
//! domain for them costs `O(n)` at query time.  Reverse hints fix that: each
//! sketch remembers the distinct items it has seen, capped at a configurable
//! budget.  While under the cap, identification scans the observed support;
//! a sketch that crosses the cap *saturates* — its hints are discarded (the
//! memory is freed) and queries fall back to the domain scan, so the space
//! stays bounded by the cap regardless of the stream's support size.
//!
//! Saturation depends only on the **set** of distinct items observed, never
//! on arrival order, so batched, sharded and per-update ingestion agree
//! bit-for-bit, and [`merge_from`](ReverseHints::merge_from) reproduces
//! exactly the state single-threaded ingestion of the concatenated stream
//! reaches.

use gsum_streams::checkpoint::{self, CheckpointError};
use std::collections::HashSet;
use std::io::{Read, Write};

/// A capped set of distinct observed items with saturation fallback.
#[derive(Debug, Clone, PartialEq)]
pub struct ReverseHints {
    cap: usize,
    seen: HashSet<u64>,
    saturated: bool,
}

impl ReverseHints {
    /// Create an empty hint set with the given cap.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "hint cap must be at least 1");
        Self {
            cap,
            seen: HashSet::new(),
            saturated: false,
        }
    }

    /// The cap this hint set was built with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Record an observed item, saturating (and freeing the hint memory)
    /// once the number of distinct items crosses the cap.
    pub fn record(&mut self, item: u64) {
        if self.saturated {
            return;
        }
        self.seen.insert(item);
        if self.seen.len() > self.cap {
            self.seen = HashSet::new();
            self.saturated = true;
        }
    }

    /// Record a batch of observed items with one saturation early-exit for
    /// the whole batch: once saturated, recording is O(1) per *batch* — no
    /// per-item call, no hash-set probe — which is the steady state of any
    /// stream whose support exceeds the cap.  Saturation depends only on the
    /// distinct-item set, so this is state-identical to per-item
    /// [`record`](Self::record) in any order.
    pub fn record_batch(&mut self, items: impl IntoIterator<Item = u64>) {
        if self.saturated {
            return;
        }
        for item in items {
            self.seen.insert(item);
            if self.seen.len() > self.cap {
                self.seen = HashSet::new();
                self.saturated = true;
                return;
            }
        }
    }

    /// Whether the hint budget was exhausted (queries must fall back to the
    /// domain scan).
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Number of stored hints (zero once saturated).
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no hints are stored.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Iterate over the stored hints (arbitrary order; callers that need
    /// determinism must impose their own total order, as
    /// `CountSketch::top_candidates` does).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.seen.iter().copied()
    }

    /// Unite another hint set into this one.  Saturation is a function of
    /// the union of distinct items, so the merged state matches what
    /// single-threaded ingestion of the concatenated stream would have
    /// produced.  Callers must have verified the caps agree (it is part of
    /// the sketches' configuration equality check).
    pub fn merge_from(&mut self, other: &Self) {
        debug_assert_eq!(self.cap, other.cap, "hint caps must agree");
        if other.saturated {
            self.seen = HashSet::new();
            self.saturated = true;
        } else if !self.saturated {
            for &item in &other.seen {
                self.record(item);
            }
        }
    }

    /// Serialize the hint body (saturation flag plus the sorted items).  The
    /// cap itself is part of the owning sketch's configuration and is
    /// written by the caller.
    pub fn save_body(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_u8(w, u8::from(self.saturated))?;
        let mut items: Vec<u64> = self.seen.iter().copied().collect();
        items.sort_unstable();
        checkpoint::write_len(w, items.len())?;
        for item in items {
            checkpoint::write_u64(w, item)?;
        }
        Ok(())
    }

    /// Restore a hint body written by [`save_body`](Self::save_body) under
    /// the given cap.
    pub fn restore_body(r: &mut impl Read, cap: usize) -> Result<Self, CheckpointError> {
        if cap == 0 {
            return Err(CheckpointError::Corrupt("zero hint cap".into()));
        }
        let saturated = match checkpoint::read_u8(r)? {
            0 => false,
            1 => true,
            tag => {
                return Err(CheckpointError::Corrupt(format!(
                    "invalid hint saturation flag {tag}"
                )))
            }
        };
        let len = checkpoint::read_len(r)?;
        if saturated && len != 0 {
            return Err(CheckpointError::Corrupt(
                "saturated hint set must be empty".into(),
            ));
        }
        if len > cap {
            return Err(CheckpointError::Corrupt(format!(
                "{len} hints exceed the cap {cap}"
            )));
        }
        let mut seen = HashSet::with_capacity(len);
        for _ in 0..len {
            seen.insert(checkpoint::read_u64(r)?);
        }
        Ok(Self {
            cap,
            seen,
            saturated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_until_cap_then_saturates_and_frees() {
        let mut hints = ReverseHints::new(4);
        for item in 0..4 {
            hints.record(item);
        }
        assert!(!hints.is_saturated());
        assert_eq!(hints.len(), 4);
        // Re-recording known items never saturates.
        hints.record(2);
        assert!(!hints.is_saturated());
        // A fifth distinct item crosses the cap.
        hints.record(99);
        assert!(hints.is_saturated());
        assert!(hints.is_empty());
        hints.record(100); // no-op
        assert!(hints.is_empty());
    }

    #[test]
    fn exactly_cap_distinct_items_does_not_saturate() {
        // The boundary contract: saturation triggers strictly *past* the cap.
        let cap = 7;
        let mut single = ReverseHints::new(cap);
        let mut batched = ReverseHints::new(cap);
        for item in 0..cap as u64 {
            single.record(item);
        }
        batched.record_batch(0..cap as u64);
        for hints in [&single, &batched] {
            assert!(!hints.is_saturated());
            assert_eq!(hints.len(), cap);
            let mut items: Vec<u64> = hints.iter().collect();
            items.sort_unstable();
            assert_eq!(items, (0..cap as u64).collect::<Vec<_>>());
        }
        assert_eq!(single, batched);
        // One more distinct item tips both over; duplicates never do.
        single.record(3);
        batched.record_batch([3, 3, 0]);
        assert!(!single.is_saturated() && !batched.is_saturated());
        single.record(cap as u64);
        batched.record_batch([cap as u64]);
        assert!(single.is_saturated() && batched.is_saturated());
        assert!(single.is_empty() && batched.is_empty());
        assert_eq!(single, batched);
    }

    #[test]
    fn record_batch_matches_per_item_recording() {
        for upper in [0u64, 1, 5, 6, 7, 30] {
            let mut per_item = ReverseHints::new(6);
            let mut batch = ReverseHints::new(6);
            let items: Vec<u64> = (0..upper).map(|i| i % 11).collect();
            for &item in &items {
                per_item.record(item);
            }
            batch.record_batch(items.iter().copied());
            assert_eq!(per_item, batch, "upper = {upper}");
            // A further item keeps the two in lockstep, whether it lands in
            // an unsaturated set or no-ops against a saturated one.
            per_item.record(999);
            batch.record_batch([999]);
            assert_eq!(per_item, batch, "upper = {upper} after extra item");
        }
    }

    #[test]
    fn merge_matches_sequential_recording() {
        for (left, right) in [(0u64..3, 3u64..6), (0..5, 2..9), (0..1, 0..1)] {
            let mut sequential = ReverseHints::new(6);
            let mut a = ReverseHints::new(6);
            let mut b = ReverseHints::new(6);
            for item in left.clone() {
                sequential.record(item);
                a.record(item);
            }
            for item in right.clone() {
                sequential.record(item);
                b.record(item);
            }
            a.merge_from(&b);
            assert_eq!(a, sequential, "{left:?} ++ {right:?}");
        }
    }

    #[test]
    fn merge_propagates_saturation() {
        let mut saturated = ReverseHints::new(2);
        for item in 0..5 {
            saturated.record(item);
        }
        let mut fresh = ReverseHints::new(2);
        fresh.record(9);
        fresh.merge_from(&saturated);
        assert!(fresh.is_saturated());
        assert!(fresh.is_empty());
    }

    #[test]
    fn body_roundtrips() {
        let mut hints = ReverseHints::new(8);
        for item in [5u64, 1, 7] {
            hints.record(item);
        }
        let mut bytes = Vec::new();
        hints.save_body(&mut bytes).unwrap();
        let restored = ReverseHints::restore_body(&mut bytes.as_slice(), 8).unwrap();
        assert_eq!(hints, restored);

        // Saturated state roundtrips too.
        for item in 0..20 {
            hints.record(item);
        }
        assert!(hints.is_saturated());
        let mut bytes = Vec::new();
        hints.save_body(&mut bytes).unwrap();
        let restored = ReverseHints::restore_body(&mut bytes.as_slice(), 8).unwrap();
        assert_eq!(hints, restored);
    }

    #[test]
    fn corrupt_bodies_are_rejected() {
        let mut hints = ReverseHints::new(2);
        hints.record(1);
        let mut bytes = Vec::new();
        hints.save_body(&mut bytes).unwrap();
        // Truncations fail.
        for cut in 0..bytes.len() {
            assert!(ReverseHints::restore_body(&mut &bytes[..cut], 2).is_err());
        }
        // A hint count above the cap is corrupt.
        assert!(ReverseHints::restore_body(&mut bytes.as_slice(), 0).is_err());
        let mut flagged = bytes.clone();
        flagged[0] = 7;
        assert!(ReverseHints::restore_body(&mut flagged.as_slice(), 2).is_err());
    }
}
