//! Configuration shared by the g-SUM estimators.

use crate::error::CoreError;
use gsum_hash::{HashBackend, SignFamily};

pub(crate) fn invalid(parameter: &'static str, reason: &str) -> CoreError {
    CoreError::InvalidParameter {
        parameter,
        reason: reason.into(),
    }
}

/// Configuration for the one-pass and two-pass g-SUM estimators.
///
/// The paper's theoretical parameterization (Theorem 13 plus Algorithms 1/2)
/// sets the heaviness to `λ = ε² / log³ n` and sizes the per-level CountSketch
/// as `CountSketch(λ / Θ(H(M)), ε / Θ(H(M)), δ)`.  Plugging realistic `n` into
/// those formulas produces sketches far larger than the streams used in a
/// laptop-scale evaluation, so the constructors expose two modes:
///
/// * [`GSumConfig::theoretical`] — the faithful parameterization (capped so it
///   stays runnable), used when demonstrating the asymptotic claims;
/// * [`GSumConfig::with_space_budget`] — an explicit space budget (CountSketch
///   columns), used by the experiments that sweep accuracy against space.
#[derive(Debug, Clone, PartialEq)]
pub struct GSumConfig {
    /// Domain size `n`.
    pub domain: u64,
    /// Target relative accuracy `ε`.
    pub epsilon: f64,
    /// Failure probability budget `δ` (per estimator invocation).
    pub delta: f64,
    /// The sub-polynomial envelope factor `H(M)` of Propositions 15/16.  The
    /// caller can compute it with `gsum_gfunc::properties::estimate_envelope`;
    /// `1.0` corresponds to a monotone function growing at most quadratically.
    pub envelope_factor: f64,
    /// Number of subsampling levels of the recursive sketch
    /// (`≈ log₂ n + 1`).
    pub levels: usize,
    /// CountSketch columns per level.
    pub countsketch_columns: usize,
    /// CountSketch rows per level.
    pub countsketch_rows: usize,
    /// Number of candidates extracted from each level's CountSketch
    /// (the `O(H(M)/λ)` of Lemma 18).
    pub candidates_per_level: usize,
    /// Hash family for the per-level CountSketch rows (polynomial by
    /// default; tabulation trades provable independence for speed).
    pub hash_backend: HashBackend,
    /// Sign family for the AMS tug-of-war banks inside the one-pass
    /// heavy-hitter sketches.  The 4-wise polynomial default carries the
    /// paper's `Var[Z²] ≤ 2F₂²` bound; tabulation is 3-wise (the mean is
    /// still exact, the variance constant becomes heuristic) but cheaper per
    /// evaluation.  Sketches of different families refuse to merge.
    pub sign_family: SignFamily,
    /// Cap on the reverse hints (distinct observed items) each heavy-hitter
    /// sketch stores for candidate identification.  Identification scans the
    /// observed support instead of the whole domain while a sketch stays
    /// under the cap; past it the hints are discarded and queries fall back
    /// to the domain scan.  Larger caps trade space for identification
    /// speed on wide domains; [`DEFAULT_HINT_CAP`] words per sketch keeps the
    /// state sublinear.
    pub hint_cap: usize,
    /// Master seed for all hash functions.
    pub seed: u64,
}

/// The default reverse-hint cap (distinct observed items remembered per
/// heavy-hitter sketch, and per `g_np` substream).
pub const DEFAULT_HINT_CAP: usize = 512;

impl GSumConfig {
    /// The faithful (capped) theoretical parameterization for accuracy `ε`.
    ///
    /// # Panics
    /// Panics on a degenerate domain or accuracy; use
    /// [`try_theoretical`](Self::try_theoretical) for a fallible constructor.
    pub fn theoretical(domain: u64, epsilon: f64, seed: u64) -> Self {
        Self::try_theoretical(domain, epsilon, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`theoretical`](Self::theoretical): rejects `domain == 0`
    /// and `ε ∉ (0, 1)` with a typed [`CoreError`].
    pub fn try_theoretical(domain: u64, epsilon: f64, seed: u64) -> Result<Self, CoreError> {
        if domain == 0 {
            return Err(invalid("domain", "domain must be positive"));
        }
        if epsilon.is_nan() || epsilon <= 0.0 || epsilon >= 1.0 {
            return Err(invalid("epsilon", "epsilon must be in (0,1)"));
        }
        let log_n = (domain.max(2) as f64).log2();
        let lambda = (epsilon * epsilon / log_n.powi(3)).max(1e-6);
        let columns = ((6.0 / (lambda * epsilon * epsilon)).ceil() as usize).min(1 << 14);
        let candidates = ((3.0 / lambda).ceil() as usize).min(columns / 2).max(8);
        Ok(Self {
            domain,
            epsilon,
            delta: 0.1,
            envelope_factor: 1.0,
            levels: Self::default_levels(domain),
            countsketch_columns: columns.max(16),
            countsketch_rows: 5,
            candidates_per_level: candidates,
            hash_backend: HashBackend::default(),
            sign_family: SignFamily::default(),
            hint_cap: DEFAULT_HINT_CAP,
            seed,
        })
    }

    /// A configuration with an explicit space budget: `columns` CountSketch
    /// columns per level (the dominant space term).
    ///
    /// # Panics
    /// Panics on a degenerate domain, accuracy or budget; use
    /// [`try_with_space_budget`](Self::try_with_space_budget) for a fallible
    /// constructor.
    pub fn with_space_budget(domain: u64, epsilon: f64, columns: usize, seed: u64) -> Self {
        Self::try_with_space_budget(domain, epsilon, columns, seed)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`with_space_budget`](Self::with_space_budget): rejects
    /// `domain == 0`, `ε ∉ (0, 1)` and `columns < 4` with a typed
    /// [`CoreError`].
    pub fn try_with_space_budget(
        domain: u64,
        epsilon: f64,
        columns: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if domain == 0 {
            return Err(invalid("domain", "domain must be positive"));
        }
        if epsilon.is_nan() || epsilon <= 0.0 || epsilon >= 1.0 {
            return Err(invalid("epsilon", "epsilon must be in (0,1)"));
        }
        if columns < 4 {
            return Err(invalid("columns", "need at least 4 CountSketch columns"));
        }
        Ok(Self {
            domain,
            epsilon,
            delta: 0.1,
            envelope_factor: 1.0,
            levels: Self::default_levels(domain),
            countsketch_columns: columns,
            countsketch_rows: 5,
            candidates_per_level: (columns / 4).max(4),
            hash_backend: HashBackend::default(),
            sign_family: SignFamily::default(),
            hint_cap: DEFAULT_HINT_CAP,
            seed,
        })
    }

    /// Override the envelope factor `H(M)` (e.g. with the empirical value
    /// from `gsum_gfunc::properties::estimate_envelope`).
    ///
    /// # Panics
    /// Panics if `factor < 1`; use
    /// [`try_with_envelope_factor`](Self::try_with_envelope_factor) for a
    /// fallible builder.
    pub fn with_envelope_factor(self, factor: f64) -> Self {
        self.try_with_envelope_factor(factor)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible builder: rejects `factor < 1` (and NaN).
    pub fn try_with_envelope_factor(mut self, factor: f64) -> Result<Self, CoreError> {
        if factor.is_nan() || factor < 1.0 {
            return Err(invalid(
                "envelope_factor",
                "the envelope factor is at least 1",
            ));
        }
        self.envelope_factor = factor;
        Ok(self)
    }

    /// Select the hash backend for every sketch in the estimator stack.
    pub fn with_hash_backend(mut self, backend: HashBackend) -> Self {
        self.hash_backend = backend;
        self
    }

    /// Select the sign family for the AMS tug-of-war banks (see the
    /// [`sign_family`](Self::sign_family) field for the independence
    /// trade-off).
    pub fn with_sign_family(mut self, family: SignFamily) -> Self {
        self.sign_family = family;
        self
    }

    /// Override the reverse-hint cap for every heavy-hitter sketch in the
    /// estimator stack (the space / identification-speed tradeoff knob).
    ///
    /// # Panics
    /// Panics if `hint_cap == 0` (a sketch must be able to remember at least
    /// one observed item before saturating); use
    /// [`try_with_hint_cap`](Self::try_with_hint_cap) for a fallible builder.
    pub fn with_hint_cap(self, hint_cap: usize) -> Self {
        self.try_with_hint_cap(hint_cap)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible builder: rejects `hint_cap == 0`.
    pub fn try_with_hint_cap(mut self, hint_cap: usize) -> Result<Self, CoreError> {
        if hint_cap == 0 {
            return Err(invalid("hint_cap", "hint cap must be at least 1"));
        }
        self.hint_cap = hint_cap;
        Ok(self)
    }

    /// Override the number of recursion levels.
    ///
    /// # Panics
    /// Panics if `levels == 0`; use [`try_with_levels`](Self::try_with_levels)
    /// for a fallible builder.
    pub fn with_levels(self, levels: usize) -> Self {
        self.try_with_levels(levels)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible builder: rejects `levels == 0`.
    pub fn try_with_levels(mut self, levels: usize) -> Result<Self, CoreError> {
        if levels == 0 {
            return Err(invalid("levels", "need at least one level"));
        }
        self.levels = levels;
        Ok(self)
    }

    /// Override the number of CountSketch rows per level.
    ///
    /// # Panics
    /// Panics if `rows == 0`; use [`try_with_rows`](Self::try_with_rows) for
    /// a fallible builder.
    pub fn with_rows(self, rows: usize) -> Self {
        self.try_with_rows(rows).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible builder: rejects `rows == 0`.
    pub fn try_with_rows(mut self, rows: usize) -> Result<Self, CoreError> {
        if rows == 0 {
            return Err(invalid("rows", "need at least one row"));
        }
        self.countsketch_rows = rows;
        Ok(self)
    }

    /// The default level count: `⌈log₂ n⌉ + 1`, capped at 24.
    pub fn default_levels(domain: u64) -> usize {
        let lg = (64 - domain.max(2).leading_zeros()) as usize;
        (lg + 1).min(24)
    }

    /// The per-level heaviness parameter `λ = ε² / log³ n` of Theorem 13
    /// (floored to keep the candidate count finite).
    pub fn lambda(&self) -> f64 {
        let log_n = (self.domain.max(2) as f64).log2();
        (self.epsilon * self.epsilon / log_n.powi(3)).max(1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theoretical_configuration_shapes() {
        let cfg = GSumConfig::theoretical(1 << 12, 0.2, 7);
        assert_eq!(cfg.domain, 1 << 12);
        assert_eq!(cfg.levels, 13 + 1);
        assert!(cfg.countsketch_columns <= 1 << 14);
        assert!(cfg.candidates_per_level >= 8);
        assert!(cfg.lambda() > 0.0);
    }

    #[test]
    fn space_budget_configuration() {
        let cfg = GSumConfig::with_space_budget(1 << 10, 0.1, 256, 3);
        assert_eq!(cfg.countsketch_columns, 256);
        assert_eq!(cfg.candidates_per_level, 64);
        let cfg = cfg.with_envelope_factor(3.0).with_levels(5).with_rows(7);
        assert_eq!(cfg.envelope_factor, 3.0);
        assert_eq!(cfg.levels, 5);
        assert_eq!(cfg.countsketch_rows, 7);
    }

    #[test]
    fn hint_cap_defaults_and_overrides() {
        let cfg = GSumConfig::with_space_budget(1 << 10, 0.1, 256, 3);
        assert_eq!(cfg.hint_cap, DEFAULT_HINT_CAP);
        assert_eq!(
            GSumConfig::theoretical(1 << 10, 0.2, 1).hint_cap,
            DEFAULT_HINT_CAP
        );
        assert_eq!(cfg.with_hint_cap(64).hint_cap, 64);
    }

    #[test]
    fn sign_family_defaults_and_overrides() {
        let cfg = GSumConfig::with_space_budget(1 << 10, 0.1, 256, 3);
        assert_eq!(cfg.sign_family, SignFamily::Polynomial4);
        assert_eq!(
            GSumConfig::theoretical(1 << 10, 0.2, 1).sign_family,
            SignFamily::Polynomial4
        );
        assert_eq!(
            cfg.with_sign_family(SignFamily::Tabulation).sign_family,
            SignFamily::Tabulation
        );
    }

    #[test]
    #[should_panic(expected = "hint cap")]
    fn zero_hint_cap_rejected() {
        let _ = GSumConfig::with_space_budget(64, 0.1, 16, 0).with_hint_cap(0);
    }

    #[test]
    fn default_levels_scale_with_domain() {
        assert_eq!(GSumConfig::default_levels(2), 3);
        assert_eq!(GSumConfig::default_levels(1 << 10), 12);
        assert_eq!(GSumConfig::default_levels(u64::MAX), 24);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let _ = GSumConfig::theoretical(8, 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn rejects_tiny_budget() {
        let _ = GSumConfig::with_space_budget(8, 0.1, 2, 0);
    }

    /// The fallible constructors reject exactly what the panicking wrappers
    /// panic on, with the same message carried in the typed error.
    #[test]
    fn try_constructors_return_typed_errors() {
        let reason = |r: Result<GSumConfig, CoreError>| r.unwrap_err().to_string();
        assert!(reason(GSumConfig::try_theoretical(0, 0.2, 1)).contains("domain"));
        assert!(reason(GSumConfig::try_theoretical(8, f64::NAN, 1)).contains("epsilon"));
        assert!(reason(GSumConfig::try_with_space_budget(8, 0.2, 3, 1)).contains("columns"));
        let cfg = GSumConfig::try_with_space_budget(64, 0.2, 16, 1).expect("valid");
        assert_eq!(
            cfg,
            GSumConfig::with_space_budget(64, 0.2, 16, 1),
            "fallible and panicking constructors agree on valid input"
        );
        assert!(reason(cfg.clone().try_with_envelope_factor(0.5)).contains("envelope"));
        assert!(reason(cfg.clone().try_with_hint_cap(0)).contains("hint cap"));
        assert!(reason(cfg.clone().try_with_levels(0)).contains("level"));
        assert!(reason(cfg.clone().try_with_rows(0)).contains("row"));
        let tuned = cfg
            .try_with_envelope_factor(2.0)
            .and_then(|c| c.try_with_hint_cap(32))
            .and_then(|c| c.try_with_levels(4))
            .and_then(|c| c.try_with_rows(3))
            .expect("valid chain");
        assert_eq!(tuned.envelope_factor, 2.0);
        assert_eq!(tuned.hint_cap, 32);
        assert_eq!(tuned.levels, 4);
        assert_eq!(tuned.countsketch_rows, 3);
    }
}
