//! Configuration shared by the g-SUM estimators.

use gsum_hash::HashBackend;

/// Configuration for the one-pass and two-pass g-SUM estimators.
///
/// The paper's theoretical parameterization (Theorem 13 plus Algorithms 1/2)
/// sets the heaviness to `λ = ε² / log³ n` and sizes the per-level CountSketch
/// as `CountSketch(λ / Θ(H(M)), ε / Θ(H(M)), δ)`.  Plugging realistic `n` into
/// those formulas produces sketches far larger than the streams used in a
/// laptop-scale evaluation, so the constructors expose two modes:
///
/// * [`GSumConfig::theoretical`] — the faithful parameterization (capped so it
///   stays runnable), used when demonstrating the asymptotic claims;
/// * [`GSumConfig::with_space_budget`] — an explicit space budget (CountSketch
///   columns), used by the experiments that sweep accuracy against space.
#[derive(Debug, Clone, PartialEq)]
pub struct GSumConfig {
    /// Domain size `n`.
    pub domain: u64,
    /// Target relative accuracy `ε`.
    pub epsilon: f64,
    /// Failure probability budget `δ` (per estimator invocation).
    pub delta: f64,
    /// The sub-polynomial envelope factor `H(M)` of Propositions 15/16.  The
    /// caller can compute it with `gsum_gfunc::properties::estimate_envelope`;
    /// `1.0` corresponds to a monotone function growing at most quadratically.
    pub envelope_factor: f64,
    /// Number of subsampling levels of the recursive sketch
    /// (`≈ log₂ n + 1`).
    pub levels: usize,
    /// CountSketch columns per level.
    pub countsketch_columns: usize,
    /// CountSketch rows per level.
    pub countsketch_rows: usize,
    /// Number of candidates extracted from each level's CountSketch
    /// (the `O(H(M)/λ)` of Lemma 18).
    pub candidates_per_level: usize,
    /// Hash family for the per-level CountSketch rows (polynomial by
    /// default; tabulation trades provable independence for speed).
    pub hash_backend: HashBackend,
    /// Cap on the reverse hints (distinct observed items) each heavy-hitter
    /// sketch stores for candidate identification.  Identification scans the
    /// observed support instead of the whole domain while a sketch stays
    /// under the cap; past it the hints are discarded and queries fall back
    /// to the domain scan.  Larger caps trade space for identification
    /// speed on wide domains; [`DEFAULT_HINT_CAP`] words per sketch keeps the
    /// state sublinear.
    pub hint_cap: usize,
    /// Master seed for all hash functions.
    pub seed: u64,
}

/// The default reverse-hint cap (distinct observed items remembered per
/// heavy-hitter sketch, and per `g_np` substream).
pub const DEFAULT_HINT_CAP: usize = 512;

impl GSumConfig {
    /// The faithful (capped) theoretical parameterization for accuracy `ε`.
    pub fn theoretical(domain: u64, epsilon: f64, seed: u64) -> Self {
        assert!(domain > 0, "domain must be positive");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        let log_n = (domain.max(2) as f64).log2();
        let lambda = (epsilon * epsilon / log_n.powi(3)).max(1e-6);
        let columns = ((6.0 / (lambda * epsilon * epsilon)).ceil() as usize).min(1 << 14);
        let candidates = ((3.0 / lambda).ceil() as usize).min(columns / 2).max(8);
        Self {
            domain,
            epsilon,
            delta: 0.1,
            envelope_factor: 1.0,
            levels: Self::default_levels(domain),
            countsketch_columns: columns.max(16),
            countsketch_rows: 5,
            candidates_per_level: candidates,
            hash_backend: HashBackend::default(),
            hint_cap: DEFAULT_HINT_CAP,
            seed,
        }
    }

    /// A configuration with an explicit space budget: `columns` CountSketch
    /// columns per level (the dominant space term).
    pub fn with_space_budget(domain: u64, epsilon: f64, columns: usize, seed: u64) -> Self {
        assert!(domain > 0, "domain must be positive");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        assert!(columns >= 4, "need at least 4 CountSketch columns");
        Self {
            domain,
            epsilon,
            delta: 0.1,
            envelope_factor: 1.0,
            levels: Self::default_levels(domain),
            countsketch_columns: columns,
            countsketch_rows: 5,
            candidates_per_level: (columns / 4).max(4),
            hash_backend: HashBackend::default(),
            hint_cap: DEFAULT_HINT_CAP,
            seed,
        }
    }

    /// Override the envelope factor `H(M)` (e.g. with the empirical value
    /// from `gsum_gfunc::properties::estimate_envelope`).
    pub fn with_envelope_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "the envelope factor is at least 1");
        self.envelope_factor = factor;
        self
    }

    /// Select the hash backend for every sketch in the estimator stack.
    pub fn with_hash_backend(mut self, backend: HashBackend) -> Self {
        self.hash_backend = backend;
        self
    }

    /// Override the reverse-hint cap for every heavy-hitter sketch in the
    /// estimator stack (the space / identification-speed tradeoff knob).
    ///
    /// # Panics
    /// Panics if `hint_cap == 0` (a sketch must be able to remember at least
    /// one observed item before saturating).
    pub fn with_hint_cap(mut self, hint_cap: usize) -> Self {
        assert!(hint_cap >= 1, "hint cap must be at least 1");
        self.hint_cap = hint_cap;
        self
    }

    /// Override the number of recursion levels.
    pub fn with_levels(mut self, levels: usize) -> Self {
        assert!(levels >= 1, "need at least one level");
        self.levels = levels;
        self
    }

    /// Override the number of CountSketch rows per level.
    pub fn with_rows(mut self, rows: usize) -> Self {
        assert!(rows >= 1, "need at least one row");
        self.countsketch_rows = rows;
        self
    }

    /// The default level count: `⌈log₂ n⌉ + 1`, capped at 24.
    pub fn default_levels(domain: u64) -> usize {
        let lg = (64 - domain.max(2).leading_zeros()) as usize;
        (lg + 1).min(24)
    }

    /// The per-level heaviness parameter `λ = ε² / log³ n` of Theorem 13
    /// (floored to keep the candidate count finite).
    pub fn lambda(&self) -> f64 {
        let log_n = (self.domain.max(2) as f64).log2();
        (self.epsilon * self.epsilon / log_n.powi(3)).max(1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theoretical_configuration_shapes() {
        let cfg = GSumConfig::theoretical(1 << 12, 0.2, 7);
        assert_eq!(cfg.domain, 1 << 12);
        assert_eq!(cfg.levels, 13 + 1);
        assert!(cfg.countsketch_columns <= 1 << 14);
        assert!(cfg.candidates_per_level >= 8);
        assert!(cfg.lambda() > 0.0);
    }

    #[test]
    fn space_budget_configuration() {
        let cfg = GSumConfig::with_space_budget(1 << 10, 0.1, 256, 3);
        assert_eq!(cfg.countsketch_columns, 256);
        assert_eq!(cfg.candidates_per_level, 64);
        let cfg = cfg.with_envelope_factor(3.0).with_levels(5).with_rows(7);
        assert_eq!(cfg.envelope_factor, 3.0);
        assert_eq!(cfg.levels, 5);
        assert_eq!(cfg.countsketch_rows, 7);
    }

    #[test]
    fn hint_cap_defaults_and_overrides() {
        let cfg = GSumConfig::with_space_budget(1 << 10, 0.1, 256, 3);
        assert_eq!(cfg.hint_cap, DEFAULT_HINT_CAP);
        assert_eq!(
            GSumConfig::theoretical(1 << 10, 0.2, 1).hint_cap,
            DEFAULT_HINT_CAP
        );
        assert_eq!(cfg.with_hint_cap(64).hint_cap, 64);
    }

    #[test]
    #[should_panic(expected = "hint cap")]
    fn zero_hint_cap_rejected() {
        let _ = GSumConfig::with_space_budget(64, 0.1, 16, 0).with_hint_cap(0);
    }

    #[test]
    fn default_levels_scale_with_domain() {
        assert_eq!(GSumConfig::default_levels(2), 3);
        assert_eq!(GSumConfig::default_levels(1 << 10), 12);
        assert_eq!(GSumConfig::default_levels(u64::MAX), 24);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let _ = GSumConfig::theoretical(8, 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn rejects_tiny_budget() {
        let _ = GSumConfig::with_space_budget(8, 0.1, 2, 0);
    }
}
