//! Frequency-moment (`F_k`) estimation — the historical special case
//! (`g(x) = x^k`) that motivated the whole line of work.
//!
//! For `k ≤ 2` the universal sketch applies (the power function is
//! slow-jumping); for `k = 2` the AMS sketch is the specialized alternative;
//! for `k > 2` the zero-one law says sub-polynomial space is impossible, and
//! experiment E8 confirms the estimator degrades.

use crate::config::GSumConfig;
use crate::gsum::{GSumEstimator, OnePassGSum, OnePassGSumSketch};
use gsum_gfunc::library::PowerFunction;
use gsum_sketch::AmsF2Sketch;
use gsum_streams::{StreamSink, TurnstileStream};

/// Convenience wrapper estimating `F_k = Σ |v_i|^k`.
#[derive(Debug, Clone)]
pub struct MomentEstimator {
    k: f64,
    inner: OnePassGSum<PowerFunction>,
}

impl MomentEstimator {
    /// Create an `F_k` estimator (`k ≥ 0`).
    pub fn new(k: f64, config: GSumConfig) -> Self {
        Self {
            k,
            inner: OnePassGSum::new(PowerFunction::new(k), config),
        }
    }

    /// The moment order `k`.
    pub fn order(&self) -> f64 {
        self.k
    }

    /// A fresh long-lived push-based sketch state for `F_k`: updates can be
    /// pushed as they arrive and the estimate queried at any prefix.
    pub fn sketch(&self) -> OnePassGSumSketch<PowerFunction> {
        self.inner.sketch()
    }

    /// Estimate `F_k` via the universal sketch.
    pub fn estimate(&self, stream: &TurnstileStream) -> f64 {
        self.inner.estimate(stream)
    }

    /// Median-amplified estimate.
    pub fn estimate_median(&self, stream: &TurnstileStream, repetitions: usize) -> f64 {
        self.inner.estimate_median(stream, repetitions)
    }

    /// Estimate `F_2` with the specialized AMS sketch (for the E8
    /// comparison).
    pub fn estimate_f2_ams(stream: &TurnstileStream, epsilon: f64, seed: u64) -> f64 {
        let mut ams =
            AmsF2Sketch::with_guarantee(epsilon, 0.1, seed).expect("valid AMS parameters");
        ams.process_stream(stream);
        ams.estimate_f2()
    }

    /// The exact `F_k` of a stream (ground truth).
    pub fn exact(stream: &TurnstileStream, k: f64) -> f64 {
        stream.frequency_vector().moment(k)
    }

    /// Sketch space in words.
    pub fn space_words(&self) -> usize {
        self.inner.space_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_streams::{StreamConfig, StreamGenerator, ZipfStreamGenerator};

    fn stream() -> TurnstileStream {
        ZipfStreamGenerator::new(StreamConfig::new(1 << 10, 30_000), 1.2, 13).generate()
    }

    #[test]
    fn tracks_low_moments() {
        let s = stream();
        for k in [0.5f64, 1.0, 1.5, 2.0] {
            let est = MomentEstimator::new(k, GSumConfig::with_space_budget(1 << 10, 0.2, 1024, 3));
            let truth = MomentEstimator::exact(&s, k);
            let approx = est.estimate_median(&s, 3);
            let rel = (approx - truth).abs() / truth;
            assert!(rel < 0.35, "F_{k}: {approx} vs {truth} (rel {rel})");
            assert_eq!(est.order(), k);
        }
    }

    #[test]
    fn f1_is_exact_for_insertion_only_streams_in_truth() {
        let s = stream();
        assert_eq!(MomentEstimator::exact(&s, 1.0), s.len() as f64);
    }

    #[test]
    fn ams_comparison_path() {
        let s = stream();
        let truth = MomentEstimator::exact(&s, 2.0);
        let ams = MomentEstimator::estimate_f2_ams(&s, 0.15, 5);
        assert!((ams - truth).abs() / truth < 0.25);
    }

    #[test]
    fn space_reporting() {
        let est = MomentEstimator::new(2.0, GSumConfig::with_space_budget(256, 0.2, 64, 1));
        assert!(est.space_words() > 0);
    }
}
