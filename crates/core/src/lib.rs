//! # gsum-core
//!
//! The paper's algorithms: everything needed to go from a turnstile stream to
//! a `(1 ± ε)`-approximation of `g(V) = Σ_i g(|v_i|)`.
//!
//! ## Architecture (mirrors §3.1 and §4 of the paper)
//!
//! ```text
//!                        ┌────────────────────────────┐
//!   stream updates ────▶ │ per-level heavy-hitter      │   L = O(log n) levels,
//!                        │ sketches (Algorithm 1 or 2, │   level j sees items
//!                        │ or the g_np routine)        │   subsampled w.p. 2^-j
//!                        └───────────┬────────────────┘
//!                                    │ (g, λ, ε)-covers
//!                                    ▼
//!                        ┌────────────────────────────┐
//!                        │ Recursive Sketch            │  Theorem 13: g-SUM with
//!                        │ (Braverman–Ostrovsky)       │  O(log n) overhead
//!                        └───────────┬────────────────┘
//!                                    ▼
//!                               ĝ ≈ Σ g(|v_i|)
//! ```
//!
//! * [`heavy_hitters`] — the `(g, λ, ε, δ)`-heavy-hitter algorithms:
//!   [`OnePassHeavyHitter`] (Algorithm 2: CountSketch + AMS + predictability
//!   pruning) and [`TwoPassHeavyHitter`] (Algorithm 1: CountSketch candidates,
//!   exact second-pass tabulation), plus the [`HeavyHitterSketch`] trait and
//!   the [`GCover`] type (Definition 12).
//! * [`recursive_sketch`] — the recursive estimator combining per-level
//!   covers into a g-SUM estimate.
//! * [`gsum`] — user-facing estimators: [`OnePassGSum`], [`TwoPassGSum`],
//!   [`exact_gsum`] and the [`GSumEstimator`] trait.
//! * [`np_algorithm`] — the bespoke 1-pass algorithm for the nearly periodic
//!   function `g_np` (Proposition 54).
//! * [`dist_counter`] — the `O(n/q²)`-space algorithm for the
//!   ShortLinearCombination problem (Proposition 49).
//! * [`moments`] — frequency-moment (`F_k`) convenience wrappers.
//! * [`apps`] — the §1.1 applications: approximate MLE over a parameter grid,
//!   utility aggregates, sketchable distances and the higher-order encoding.

pub mod apps;
pub mod config;
pub mod dist_counter;
pub mod error;
pub mod gsum;
pub mod heavy_hitters;
pub mod moments;
pub mod np_algorithm;
pub mod recursive_sketch;

pub use config::GSumConfig;
pub use dist_counter::{DistCounter, DistVerdict};
pub use error::CoreError;
pub use gsum::{exact_gsum, GSumEstimator, OnePassGSum, TwoPassGSum};
pub use heavy_hitters::{GCover, HeavyHitterSketch, OnePassHeavyHitter, TwoPassHeavyHitter};
pub use moments::MomentEstimator;
pub use np_algorithm::NearlyPeriodicGSum;
pub use recursive_sketch::RecursiveSketch;
