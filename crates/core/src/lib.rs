//! # gsum-core
//!
//! The paper's algorithms: everything needed to go from a turnstile stream to
//! a `(1 ± ε)`-approximation of `g(V) = Σ_i g(|v_i|)`.
//!
//! ## Architecture (mirrors §3.1 and §4 of the paper)
//!
//! Everything is *push-based*: estimator state objects implement
//! [`StreamSink`] (`update` / `update_batch`), absorb live updates in
//! constant work per update, and answer [`estimate`](OnePassGSumSketch::estimate)
//! queries at any prefix.  Linear states also implement [`MergeableSketch`],
//! so N ingest workers can each feed a clone and merge
//! ([`ShardedIngest`]).
//!
//! ```text
//!  UpdateSource (lazy generators, live traffic, stream replay)
//!       │ update(i, δ)                          ... shard 1..N ─┐
//!       ▼                                                       ▼
//!  ┌───────────────────────────────────────────────┐   ┌────────────────┐
//!  │ OnePassGSumSketch / TwoPassGSumSketch /       │   │ clone sketches │
//!  │ NearlyPeriodicGSum::sketch()                  │◀──│ …then merge()  │
//!  │                                               │   └────────────────┘
//!  │  RecursiveSketch: routes the update to every  │
//!  │  level j whose substream samples the item     │   L = O(log n) levels,
//!  │  (inclusion probability 2^-j, nested)         │   Theorem 13
//!  │        │                                      │
//!  │        ▼                                      │
//!  │  per-level heavy-hitter sketches              │   Algorithm 1 or 2,
//!  │  (CountSketch + AMS + pruning, or g_np)       │   or Proposition 54
//!  └───────────────────┬───────────────────────────┘
//!                      │ cover() → (g, λ, ε)-covers   (query time, any prefix)
//!                      ▼
//!              ĝ ≈ Σ g(|v_i|)
//! ```
//!
//! * [`heavy_hitters`] — the `(g, λ, ε, δ)`-heavy-hitter algorithms:
//!   [`OnePassHeavyHitter`] (Algorithm 2: CountSketch + AMS + predictability
//!   pruning) and [`TwoPassHeavyHitter`] (Algorithm 1: CountSketch candidates,
//!   exact second-pass tabulation), plus the [`HeavyHitterSketch`] trait and
//!   the [`GCover`] type (Definition 12).
//! * [`recursive_sketch`] — the recursive estimator combining per-level
//!   covers into a g-SUM estimate; a [`StreamSink`] and (over mergeable
//!   levels) a [`MergeableSketch`].
//! * [`gsum`] — the long-lived sketch states [`OnePassGSumSketch`] /
//!   [`TwoPassGSumSketch`] plus the batch wrappers [`OnePassGSum`] /
//!   [`TwoPassGSum`], [`exact_gsum`] and the [`GSumEstimator`] trait.
//! * [`np_algorithm`] — the bespoke 1-pass algorithm for the nearly periodic
//!   function `g_np` (Proposition 54).
//! * [`dist_counter`] — the `O(n/q²)`-space algorithm for the
//!   ShortLinearCombination problem (Proposition 49); push-based and
//!   mergeable like the rest.
//! * [`moments`] — frequency-moment (`F_k`) convenience wrappers.
//! * [`apps`] — the §1.1 applications: approximate MLE over a parameter grid,
//!   utility aggregates, sketchable distances and the higher-order encoding.

pub mod apps;
pub mod config;
pub mod dist_counter;
pub mod error;
pub mod gsum;
pub mod heavy_hitters;
pub mod hints;
pub mod moments;
pub mod np_algorithm;
pub mod recursive_sketch;

pub use config::{GSumConfig, DEFAULT_HINT_CAP};
pub use dist_counter::{DistCounter, DistVerdict};
pub use error::CoreError;
pub use gsum::{
    exact_gsum, GSumEstimator, OnePassGSum, OnePassGSumSketch, TwoPassGSum, TwoPassGSumSketch,
};
pub use heavy_hitters::{
    GCover, HeavyHitterSketch, OnePassHeavyHitter, OnePassHeavyHitterConfig, TwoPassHeavyHitter,
    TwoPassHeavyHitterConfig,
};
pub use hints::ReverseHints;
pub use moments::MomentEstimator;
pub use np_algorithm::{GnpHeavyHitter, NearlyPeriodicGSum};
pub use recursive_sketch::RecursiveSketch;

// The push-based ingestion contract and the snapshot/restore layer,
// re-exported so estimator users need only this crate.
pub use gsum_streams::{
    Checkpoint, CheckpointError, MergeError, MergeableSketch, ShardedIngest,
    ShardedTwoPassCoordinator, StreamSink, TwoPhaseSketch, UpdateSource,
};
