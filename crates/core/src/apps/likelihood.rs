//! Approximate maximum-likelihood estimation from a universal sketch
//! (§1.1.1).
//!
//! The stream's coordinates are i.i.d. samples from a discrete distribution
//! `p(·; θ)`; the negative log-likelihood of parameter `θ` is
//! `ℓ(θ; v) = −Σ_{i=1}^n ln p(v_i; θ)`.  Writing `g_θ` for the centred NLL
//! (`g_θ(x) = ln p(0;θ) − ln p(x;θ)`, so `g_θ(0) = 0`),
//!
//! ```text
//! ℓ(θ; v) = n · (−ln p(0; θ)) + Σ_i g_θ(|v_i|)
//! ```
//!
//! The first term is known exactly (the number of samples `n` is known); the
//! second is a g-SUM, estimated by the one-pass universal sketch.  Crucially,
//! the *sketch is oblivious to `θ`*: one CountSketch/AMS pass over the data
//! serves every candidate parameter, which is what makes grid search over
//! `Θ` cheap (the paper's `O(log |Θ|)` overhead remark).
//!
//! In this implementation each candidate still re-processes the stream
//! through its own estimator object (the sketches share structure but not
//! state); the space per candidate is what the paper's analysis counts, and
//! the observation that the linear sketch itself is `θ`-independent is
//! demonstrated by `sketch_is_function_independent` in the tests.

use crate::config::GSumConfig;
use crate::gsum::{exact_gsum, GSumEstimator, OnePassGSum};
use gsum_gfunc::library::PoissonMixtureNll;
use gsum_hash::Xoshiro256;
use gsum_streams::TurnstileStream;

/// Draws i.i.d. samples from a two-component Poisson mixture and encodes
/// them as a turnstile stream (coordinate `i` holds the `i`-th sample).
#[derive(Debug, Clone)]
pub struct MixtureSampler {
    model: PoissonMixtureNll,
    rng: Xoshiro256,
}

impl MixtureSampler {
    /// Create a sampler for the given true model.
    pub fn new(model: PoissonMixtureNll, seed: u64) -> Self {
        Self {
            model,
            rng: Xoshiro256::new(seed),
        }
    }

    /// Draw one sample by inverse-CDF over the mixture pmf.
    pub fn sample(&mut self) -> u64 {
        let u = self.rng.next_f64();
        let mut acc = 0.0;
        for x in 0..10_000u64 {
            acc += self.model.pmf(x);
            if u <= acc {
                return x;
            }
        }
        10_000
    }

    /// Draw `n` samples and encode them as a stream over domain `n`
    /// (coordinate `i` receives a single bulk update equal to the sample).
    pub fn sample_stream(&mut self, n: u64) -> TurnstileStream {
        let mut stream = TurnstileStream::new(n.max(1));
        for i in 0..n {
            let value = self.sample();
            if value > 0 {
                stream.push_delta(i, value as i64);
            }
        }
        stream
    }
}

/// The result of an (approximate or exact) grid MLE.
#[derive(Debug, Clone)]
pub struct MleEstimate {
    /// Index into the candidate grid of the chosen parameter.
    pub best_index: usize,
    /// Negative log-likelihood value of every candidate, in grid order.
    pub nll_values: Vec<f64>,
}

impl MleEstimate {
    /// The minimizing NLL value.
    pub fn best_value(&self) -> f64 {
        self.nll_values[self.best_index]
    }
}

/// Grid-search maximum-likelihood estimation, exactly or from the universal
/// sketch.
#[derive(Debug, Clone)]
pub struct MleEstimator {
    candidates: Vec<PoissonMixtureNll>,
    config: GSumConfig,
}

impl MleEstimator {
    /// Create the estimator for a grid of candidate models.
    ///
    /// # Panics
    /// Panics if the grid is empty.
    pub fn new(candidates: Vec<PoissonMixtureNll>, config: GSumConfig) -> Self {
        assert!(
            !candidates.is_empty(),
            "the candidate grid must be non-empty"
        );
        Self { candidates, config }
    }

    /// The candidate grid.
    pub fn candidates(&self) -> &[PoissonMixtureNll] {
        &self.candidates
    }

    /// The exact negative log-likelihood of candidate `theta` on `stream`
    /// (number of samples = stream domain).
    pub fn exact_nll(&self, theta: &PoissonMixtureNll, stream: &TurnstileStream) -> f64 {
        let n = stream.domain() as f64;
        let base = n * theta.raw_nll(0);
        base + exact_gsum(theta, &stream.frequency_vector())
    }

    /// Exact grid MLE (ground truth).
    pub fn exact(&self, stream: &TurnstileStream) -> MleEstimate {
        let values: Vec<f64> = self
            .candidates
            .iter()
            .map(|theta| self.exact_nll(theta, stream))
            .collect();
        Self::argmin(values)
    }

    /// Approximate grid MLE from the one-pass universal sketch, with
    /// `repetitions`-fold median amplification per candidate.
    pub fn approximate(&self, stream: &TurnstileStream, repetitions: usize) -> MleEstimate {
        let n = stream.domain() as f64;
        let values: Vec<f64> = self
            .candidates
            .iter()
            .map(|theta| {
                let estimator = OnePassGSum::new(*theta, self.config.clone());
                n * theta.raw_nll(0) + estimator.estimate_median(stream, repetitions)
            })
            .collect();
        Self::argmin(values)
    }

    fn argmin(values: Vec<f64>) -> MleEstimate {
        let best_index = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite NLL"))
            .map(|(i, _)| i)
            .expect("non-empty grid");
        MleEstimate {
            best_index,
            nll_values: values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<PoissonMixtureNll> {
        // Vary the second rate; the true model uses rate 6.
        [2.0f64, 4.0, 6.0, 8.0]
            .iter()
            .map(|&beta| PoissonMixtureNll::new(0.5, 0.5, beta))
            .collect()
    }

    #[test]
    fn sampler_matches_model_mean_roughly() {
        let model = PoissonMixtureNll::new(0.5, 0.5, 6.0);
        let mut sampler = MixtureSampler::new(model, 3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| sampler.sample() as f64).sum::<f64>() / n as f64;
        let expect = 0.5 * 0.5 + 0.5 * 6.0;
        assert!(
            (mean - expect).abs() < 0.15,
            "sample mean {mean} vs {expect}"
        );
    }

    #[test]
    fn exact_mle_recovers_true_parameter() {
        let true_model = PoissonMixtureNll::new(0.5, 0.5, 6.0);
        let stream = MixtureSampler::new(true_model, 7).sample_stream(4_000);
        let est = MleEstimator::new(grid(), GSumConfig::with_space_budget(4_000, 0.2, 512, 5));
        let exact = est.exact(&stream);
        assert_eq!(exact.best_index, 2, "nll values: {:?}", exact.nll_values);
    }

    #[test]
    fn approximate_mle_is_close_to_exact() {
        let true_model = PoissonMixtureNll::new(0.5, 0.5, 6.0);
        let stream = MixtureSampler::new(true_model, 11).sample_stream(2_000);
        let est = MleEstimator::new(grid(), GSumConfig::with_space_budget(2_000, 0.2, 1024, 9));
        let exact = est.exact(&stream);
        let approx = est.approximate(&stream, 3);
        // The paper's guarantee: ℓ(θ̂_approx) ≤ (1+ε) ℓ(θ̂_exact). Allow a
        // generous ε here.
        let chosen_exact_nll = exact.nll_values[approx.best_index];
        assert!(
            chosen_exact_nll <= 1.15 * exact.best_value(),
            "approximate MLE picked a poor candidate: {} vs best {}",
            chosen_exact_nll,
            exact.best_value()
        );
        assert_eq!(approx.nll_values.len(), 4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_panics() {
        let _ = MleEstimator::new(vec![], GSumConfig::with_space_budget(16, 0.2, 16, 1));
    }

    #[test]
    fn stream_encoding_uses_one_coordinate_per_sample() {
        let model = PoissonMixtureNll::new(0.5, 0.5, 6.0);
        let stream = MixtureSampler::new(model, 1).sample_stream(500);
        assert_eq!(stream.domain(), 500);
        // Every non-zero coordinate holds one sample value.
        assert!(stream.frequency_vector().support_size() <= 500);
    }
}
