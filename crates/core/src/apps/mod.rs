//! The paper's applications (§1.1), built on top of the g-SUM estimators.

mod distance;
mod higher_order;
mod likelihood;
mod utility;

pub use distance::{exact_distance, sketched_distance};
pub use higher_order::{HigherOrderStream, TwoAttributeRecord};
pub use likelihood::{MixtureSampler, MleEstimate, MleEstimator};
pub use utility::{BillingReport, ClickBilling};
