//! Sketchable distances (§1.1 and the Guha–Indyk question): distances of the
//! form `d(u, v) = Σ_i g(|u_i − v_i|)`.
//!
//! Because the estimators consume turnstile streams, the difference vector
//! `u − v` is obtained for free: stream `u`'s updates followed by `v`'s
//! updates with negated deltas.  The zero-one laws then characterize which
//! such distances are sketchable — exactly those whose `g` is tractable.

use crate::gsum::{exact_gsum, GSumEstimator};
use gsum_gfunc::GFunction;
use gsum_streams::{TurnstileStream, Update};

/// Build the turnstile stream whose frequency vector is `u − v`.
fn difference_stream(u: &TurnstileStream, v: &TurnstileStream) -> TurnstileStream {
    assert_eq!(u.domain(), v.domain(), "domain mismatch");
    let mut out = TurnstileStream::new(u.domain());
    for &upd in u.iter() {
        out.push(upd);
    }
    for &upd in v.iter() {
        out.push(Update::new(upd.item, -upd.delta));
    }
    out
}

/// The exact distance `Σ_i g(|u_i − v_i|)`.
pub fn exact_distance<G: GFunction + ?Sized>(
    g: &G,
    u: &TurnstileStream,
    v: &TurnstileStream,
) -> f64 {
    let diff = u.frequency_vector().difference(&v.frequency_vector());
    exact_gsum(g, &diff)
}

/// The sketched distance: feed the difference stream through any
/// `(g, ε)`-SUM estimator.
pub fn sketched_distance<E: GSumEstimator>(
    estimator: &E,
    u: &TurnstileStream,
    v: &TurnstileStream,
    repetitions: usize,
) -> f64 {
    let diff = difference_stream(u, v);
    estimator.estimate_median(&diff, repetitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GSumConfig;
    use crate::gsum::OnePassGSum;
    use gsum_gfunc::library::PowerFunction;
    use gsum_streams::{StreamConfig, StreamGenerator, ZipfStreamGenerator};

    fn streams() -> (TurnstileStream, TurnstileStream) {
        let u = ZipfStreamGenerator::new(StreamConfig::new(1 << 10, 20_000), 1.2, 5).generate();
        let v = ZipfStreamGenerator::new(StreamConfig::new(1 << 10, 20_000), 1.2, 99).generate();
        (u, v)
    }

    #[test]
    fn identical_streams_have_zero_distance() {
        let (u, _) = streams();
        let g = PowerFunction::new(2.0);
        assert_eq!(exact_distance(&g, &u, &u), 0.0);
        let est = OnePassGSum::new(g, GSumConfig::with_space_budget(1 << 10, 0.2, 256, 3));
        assert_eq!(sketched_distance(&est, &u, &u, 1), 0.0);
    }

    #[test]
    fn squared_euclidean_distance_is_sketched_accurately() {
        let (u, v) = streams();
        let g = PowerFunction::new(2.0);
        let truth = exact_distance(&g, &u, &v);
        let est = OnePassGSum::new(g, GSumConfig::with_space_budget(1 << 10, 0.2, 1024, 7));
        let approx = sketched_distance(&est, &u, &v, 3);
        let rel = (approx - truth).abs() / truth;
        assert!(
            rel < 0.35,
            "distance estimate {approx} vs {truth} (rel {rel})"
        );
    }

    #[test]
    fn distance_is_symmetric_in_truth() {
        let (u, v) = streams();
        let g = PowerFunction::new(1.0);
        assert!((exact_distance(&g, &u, &v) - exact_distance(&g, &v, &u)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "domain mismatch")]
    fn mismatched_domains_panic() {
        let u = TurnstileStream::new(8);
        let v = TurnstileStream::new(16);
        let _ = exact_distance(&PowerFunction::new(2.0), &u, &v);
    }
}
