//! Utility aggregates (§1.1.2): spam-discounted click billing.
//!
//! Each stream update is one ad click attributed to a user; the fee owed for
//! a user with `x` clicks is the non-monotone utility `g(x)` (linear up to a
//! spam threshold, slowly discounted beyond it).  The total fee
//! `Σ_users g(clicks)` is a g-SUM, estimated in one pass by the universal
//! sketch.

use crate::config::GSumConfig;
use crate::gsum::{exact_gsum, GSumEstimator, OnePassGSum};
use gsum_gfunc::library::{CappedLinear, SpamDiscountUtility};
use gsum_streams::TurnstileStream;

/// A billing summary for one click stream.
#[derive(Debug, Clone, PartialEq)]
pub struct BillingReport {
    /// Exact total fee under the spam-discounted schedule.
    pub exact_discounted: f64,
    /// Sketch-estimated total fee under the spam-discounted schedule.
    pub estimated_discounted: f64,
    /// Exact total fee under the naive capped-linear schedule (what the
    /// customer would be billed if spam were merely capped, not discounted).
    pub exact_capped: f64,
    /// Relative error of the sketched estimate.
    pub relative_error: f64,
}

/// The billing pipeline: a spam threshold plus a sketch configuration.
#[derive(Debug, Clone)]
pub struct ClickBilling {
    utility: SpamDiscountUtility,
    capped: CappedLinear,
    config: GSumConfig,
}

impl ClickBilling {
    /// Create the pipeline with the given spam threshold.
    pub fn new(threshold: u64, config: GSumConfig) -> Self {
        Self {
            utility: SpamDiscountUtility::new(threshold),
            capped: CappedLinear::new(threshold),
            config,
        }
    }

    /// The spam threshold.
    pub fn threshold(&self) -> u64 {
        self.utility.threshold()
    }

    /// Produce the billing report for a click stream (item = user id, one
    /// update per click).
    pub fn bill(&self, clicks: &TurnstileStream, repetitions: usize) -> BillingReport {
        let fv = clicks.frequency_vector();
        let exact_discounted = exact_gsum(&self.utility, &fv);
        let exact_capped = exact_gsum(&self.capped, &fv);
        let estimator = OnePassGSum::new(self.utility, self.config.clone());
        let estimated_discounted = estimator.estimate_median(clicks, repetitions);
        let relative_error =
            (estimated_discounted - exact_discounted).abs() / exact_discounted.max(1e-12);
        BillingReport {
            exact_discounted,
            estimated_discounted,
            exact_capped,
            relative_error,
        }
    }

    /// Sketch space in 64-bit words.
    pub fn space_words(&self) -> usize {
        OnePassGSum::new(self.utility, self.config.clone()).space_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_streams::{PlantedStreamGenerator, StreamConfig, StreamGenerator};

    /// Click workload: many ordinary users plus a handful of click-bots.
    fn click_stream() -> TurnstileStream {
        PlantedStreamGenerator::new(
            StreamConfig::new(1 << 10, 40_000),
            vec![(3, 20_000), (77, 9_000)], // two bots
            17,
        )
        .generate()
    }

    #[test]
    fn spam_discount_reduces_the_bill() {
        let billing = ClickBilling::new(100, GSumConfig::with_space_budget(1 << 10, 0.2, 1024, 3));
        let report = billing.bill(&click_stream(), 3);
        // Bots are discounted, so the discounted bill is below the capped one
        // plus bot caps... in fact discounted < capped because g(x) < min(x,T)
        // for x > T.
        assert!(report.exact_discounted < report.exact_capped);
        assert!(report.exact_discounted > 0.0);
    }

    #[test]
    fn sketched_bill_is_accurate() {
        let billing = ClickBilling::new(100, GSumConfig::with_space_budget(1 << 10, 0.2, 1024, 7));
        let report = billing.bill(&click_stream(), 3);
        assert!(
            report.relative_error < 0.3,
            "billing error {} too large ({} vs {})",
            report.relative_error,
            report.estimated_discounted,
            report.exact_discounted
        );
    }

    #[test]
    fn metadata() {
        let billing = ClickBilling::new(50, GSumConfig::with_space_budget(256, 0.2, 64, 1));
        assert_eq!(billing.threshold(), 50);
        assert!(billing.space_words() > 0);
    }
}
