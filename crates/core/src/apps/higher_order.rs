//! Higher-order function encoding (§1.1.4).
//!
//! A record with two bounded attributes `(f₁, f₂)`, `0 ≤ f_j < b`, is folded
//! into a single frequency by streaming attribute-`j` updates with weight
//! `b^j`.  A two-variable query `g(f₁, f₂)` then becomes a one-variable
//! g'-SUM for the digit-decoding function `g'` — which, as the paper warns,
//! is locally erratic, so the two-pass algorithm is the right tool.

use gsum_gfunc::library::HigherOrderEncoded;
use gsum_gfunc::GFunction;
use gsum_streams::{TurnstileStream, Update};

/// One two-attribute record update: record `id` gains `delta` on attribute
/// `attribute` (0 or 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoAttributeRecord {
    /// Record identifier.
    pub id: u64,
    /// Which attribute is updated (0 or 1).
    pub attribute: u8,
    /// The additive change (must keep each attribute in `[0, b)`).
    pub delta: i64,
}

/// Encoder maintaining the folded turnstile stream.
#[derive(Debug, Clone)]
pub struct HigherOrderStream {
    base: u64,
    stream: TurnstileStream,
}

impl HigherOrderStream {
    /// Create an encoder over `domain` records with digit base `base`.
    pub fn new(domain: u64, base: u64) -> Self {
        assert!(base >= 2, "base must be at least 2");
        Self {
            base,
            stream: TurnstileStream::new(domain),
        }
    }

    /// The digit base `b`.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Encode one record update into the folded stream.
    pub fn push(&mut self, record: TwoAttributeRecord) {
        assert!(record.attribute < 2, "only two attributes are supported");
        let weight = if record.attribute == 0 {
            1
        } else {
            self.base as i64
        };
        self.stream
            .push(Update::new(record.id, record.delta * weight));
    }

    /// The folded turnstile stream.
    pub fn stream(&self) -> &TurnstileStream {
        &self.stream
    }

    /// Consume the encoder and return the stream.
    pub fn into_stream(self) -> TurnstileStream {
        self.stream
    }

    /// The exact value of the encoded filter-sum query (ground truth).
    pub fn exact_query(&self, query: &HigherOrderEncoded) -> f64 {
        self.stream
            .frequency_vector()
            .iter()
            .map(|(_, v)| query.eval(v.unsigned_abs()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GSumConfig;
    use crate::gsum::GSumEstimator;
    use crate::gsum::TwoPassGSum;
    use gsum_hash::Xoshiro256;

    fn build_workload(domain: u64, base: u64, seed: u64) -> HigherOrderStream {
        let mut enc = HigherOrderStream::new(domain, base);
        let mut rng = Xoshiro256::new(seed);
        for id in 0..domain {
            let attr1 = rng.next_below(base);
            let attr2 = rng.next_below(base);
            if attr1 > 0 {
                enc.push(TwoAttributeRecord {
                    id,
                    attribute: 0,
                    delta: attr1 as i64,
                });
            }
            if attr2 > 0 {
                enc.push(TwoAttributeRecord {
                    id,
                    attribute: 1,
                    delta: attr2 as i64,
                });
            }
        }
        enc
    }

    #[test]
    fn encoding_round_trips_through_digits() {
        let base = 16u64;
        let query = HigherOrderEncoded::new(base, 7);
        let mut enc = HigherOrderStream::new(8, base);
        enc.push(TwoAttributeRecord {
            id: 3,
            attribute: 0,
            delta: 5,
        });
        enc.push(TwoAttributeRecord {
            id: 3,
            attribute: 1,
            delta: 9,
        });
        let v = enc.stream().frequency_vector().get(3) as u64;
        assert_eq!(query.decode(v), (5, 9));
        // attribute 2 = 9 > filter 7, so the record is filtered out.
        assert_eq!(enc.exact_query(&query), 0.0);
        assert_eq!(enc.base(), 16);
    }

    #[test]
    fn filter_sum_counts_only_passing_records() {
        let base = 8u64;
        let query = HigherOrderEncoded::new(base, 3);
        let mut enc = HigherOrderStream::new(4, base);
        // Record 0: (6, 2) passes -> contributes 6.
        enc.push(TwoAttributeRecord {
            id: 0,
            attribute: 0,
            delta: 6,
        });
        enc.push(TwoAttributeRecord {
            id: 0,
            attribute: 1,
            delta: 2,
        });
        // Record 1: (5, 7) filtered out.
        enc.push(TwoAttributeRecord {
            id: 1,
            attribute: 0,
            delta: 5,
        });
        enc.push(TwoAttributeRecord {
            id: 1,
            attribute: 1,
            delta: 7,
        });
        assert_eq!(enc.exact_query(&query), 6.0);
    }

    #[test]
    fn two_pass_estimator_handles_the_encoded_function() {
        // The encoded function is locally erratic; the two-pass algorithm
        // measures candidate frequencies exactly and so decodes them
        // correctly.  With a planted dominant record, the estimate must be
        // close to the truth.
        let base = 32u64;
        let domain = 512u64;
        let query = HigherOrderEncoded::new(base, 15);
        let mut enc = build_workload(domain, base, 3);
        // Plant a dominant record that passes the filter: attributes (31, 10).
        enc.push(TwoAttributeRecord {
            id: 7,
            attribute: 0,
            delta: 31
                - enc
                    .stream()
                    .frequency_vector()
                    .get(7)
                    .rem_euclid(base as i64),
        });
        let truth = enc.exact_query(&query);
        let est = TwoPassGSum::new(query, GSumConfig::with_space_budget(domain, 0.2, 512, 11));
        let approx = est.estimate_median(enc.stream(), 3);
        let rel = (approx - truth).abs() / truth.max(1.0);
        assert!(rel < 0.5, "estimate {approx} vs truth {truth}");
    }

    #[test]
    #[should_panic(expected = "two attributes")]
    fn third_attribute_rejected() {
        let mut enc = HigherOrderStream::new(8, 4);
        enc.push(TwoAttributeRecord {
            id: 0,
            attribute: 2,
            delta: 1,
        });
    }
}
