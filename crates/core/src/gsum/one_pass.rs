//! The one-pass g-SUM estimator (Theorem 2's upper bound): Algorithm 2 per
//! level inside the recursive sketch.

use super::GSumEstimator;
use crate::config::GSumConfig;
use crate::heavy_hitters::{OnePassHeavyHitter, OnePassHeavyHitterConfig};
use crate::recursive_sketch::RecursiveSketch;
use gsum_gfunc::GFunction;
use gsum_streams::TurnstileStream;

/// One-pass `(g, ε)`-SUM estimator for a slow-jumping, slow-dropping,
/// predictable function.
///
/// The estimator is stateless across calls: each [`estimate`](GSumEstimator::estimate)
/// builds the level sketches from the configured seed, streams the input
/// through them once, and combines the covers.  This makes it cheap to sweep
/// configurations in the experiments and keeps repeated estimates independent
/// given different seeds.
#[derive(Debug, Clone)]
pub struct OnePassGSum<G> {
    g: G,
    config: GSumConfig,
}

impl<G: GFunction + Clone> OnePassGSum<G> {
    /// Create the estimator for function `g` under `config`.
    pub fn new(g: G, config: GSumConfig) -> Self {
        Self { g, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GSumConfig {
        &self.config
    }

    fn hh_config(&self) -> OnePassHeavyHitterConfig {
        OnePassHeavyHitterConfig {
            rows: self.config.countsketch_rows,
            columns: self.config.countsketch_columns,
            candidates: self.config.candidates_per_level,
            epsilon: self.config.epsilon,
            envelope_factor: self.config.envelope_factor,
        }
    }

    fn build(&self, seed: u64) -> RecursiveSketch<OnePassHeavyHitter<G>> {
        let hh_config = self.hh_config();
        let g = self.g.clone();
        RecursiveSketch::new(
            self.config.domain,
            self.config.levels,
            seed,
            move |_level, level_seed| OnePassHeavyHitter::new(g.clone(), hh_config, level_seed),
        )
    }

    /// Estimate with an explicit seed override (used by the median
    /// amplification and by the experiments' repeated trials).
    pub fn estimate_with_seed(&self, stream: &TurnstileStream, seed: u64) -> f64 {
        let mut sketch = self.build(seed);
        sketch.process_stream(stream);
        sketch.estimate().max(0.0)
    }
}

impl<G: GFunction + Clone> GSumEstimator for OnePassGSum<G> {
    fn estimate(&self, stream: &TurnstileStream) -> f64 {
        self.estimate_with_seed(stream, self.config.seed)
    }

    fn passes(&self) -> usize {
        1
    }

    fn space_words(&self) -> usize {
        self.build(self.config.seed).space_words()
    }

    fn estimate_median(&self, stream: &TurnstileStream, repetitions: usize) -> f64 {
        let reps = repetitions.max(1);
        let mut estimates: Vec<f64> = (0..reps)
            .map(|r| self.estimate_with_seed(stream, self.config.seed.wrapping_add(r as u64 * 7919)))
            .collect();
        estimates.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
        estimates[reps / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsum::{exact_gsum, relative_error};
    use gsum_gfunc::library::{PowerFunction, SpamDiscountUtility};
    use gsum_streams::{StreamConfig, StreamGenerator, ZipfStreamGenerator};

    fn zipf_stream(domain: u64, len: usize, seed: u64) -> gsum_streams::TurnstileStream {
        ZipfStreamGenerator::new(StreamConfig::new(domain, len), 1.2, seed).generate()
    }

    #[test]
    fn approximates_f2_on_skewed_stream() {
        let stream = zipf_stream(1 << 10, 30_000, 3);
        let g = PowerFunction::new(2.0);
        let truth = exact_gsum(&g, &stream.frequency_vector());
        let est = OnePassGSum::new(g, GSumConfig::with_space_budget(1 << 10, 0.2, 1024, 11));
        let approx = est.estimate_median(&stream, 3);
        let rel = relative_error(approx, truth);
        assert!(rel < 0.3, "relative error {rel} too large ({approx} vs {truth})");
    }

    #[test]
    fn approximates_sqrt_moment() {
        let stream = zipf_stream(1 << 10, 30_000, 5);
        let g = PowerFunction::new(0.5);
        let truth = exact_gsum(&g, &stream.frequency_vector());
        let est = OnePassGSum::new(g, GSumConfig::with_space_budget(1 << 10, 0.2, 1024, 17));
        let approx = est.estimate_median(&stream, 3);
        let rel = relative_error(approx, truth);
        assert!(rel < 0.35, "relative error {rel} too large ({approx} vs {truth})");
    }

    #[test]
    fn approximates_non_monotone_utility() {
        let stream = zipf_stream(1 << 10, 30_000, 9);
        let g = SpamDiscountUtility::new(20);
        let truth = exact_gsum(&g, &stream.frequency_vector());
        let est = OnePassGSum::new(g, GSumConfig::with_space_budget(1 << 10, 0.2, 1024, 23));
        let approx = est.estimate_median(&stream, 3);
        let rel = relative_error(approx, truth);
        assert!(rel < 0.35, "relative error {rel} too large ({approx} vs {truth})");
    }

    #[test]
    fn uses_one_pass_and_reports_space() {
        let g = PowerFunction::new(2.0);
        let est = OnePassGSum::new(g, GSumConfig::with_space_budget(256, 0.2, 64, 1));
        assert_eq!(est.passes(), 1);
        // Space scales with levels × (columns + AMS); far below the domain
        // for wide domains, but positive.
        assert!(est.space_words() > 64);
        assert_eq!(est.config().countsketch_columns, 64);
    }

    #[test]
    fn empty_stream_estimates_zero() {
        let g = PowerFunction::new(2.0);
        let est = OnePassGSum::new(g, GSumConfig::with_space_budget(64, 0.2, 64, 1));
        let stream = gsum_streams::TurnstileStream::new(64);
        assert_eq!(est.estimate(&stream), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = zipf_stream(256, 5_000, 2);
        let g = PowerFunction::new(1.5);
        let est = OnePassGSum::new(g, GSumConfig::with_space_budget(256, 0.2, 256, 5));
        assert_eq!(est.estimate(&stream), est.estimate(&stream));
        assert_ne!(
            est.estimate_with_seed(&stream, 1),
            est.estimate_with_seed(&stream, 2)
        );
    }
}
