//! The one-pass g-SUM estimator (Theorem 2's upper bound): Algorithm 2 per
//! level inside the recursive sketch.

use super::{median_over_repetitions, GSumEstimator};
use crate::config::GSumConfig;
use crate::heavy_hitters::{OnePassHeavyHitter, OnePassHeavyHitterConfig};
use crate::recursive_sketch::RecursiveSketch;
use gsum_gfunc::{FunctionCodec, GFunction};
use gsum_streams::checkpoint::{self, kind, Checkpoint, CheckpointError};
use gsum_streams::{MergeError, MergeableSketch, StreamSink, TurnstileStream, Update};
use std::io::{Read, Write};

/// Long-lived one-pass g-SUM state: the per-level Algorithm-2 sketches inside
/// the recursive reduction, driven push-style.
///
/// Updates are pushed through [`StreamSink`]; [`estimate`](Self::estimate)
/// can be queried at any prefix.  Clones share hash seeds, so clones that
/// absorbed disjoint shards of a stream [`merge`](MergeableSketch::merge)
/// into exactly the state a single sketch would have reached — the backbone
/// of [`gsum_streams::ShardedIngest`] ingestion.
#[derive(Debug, Clone)]
pub struct OnePassGSumSketch<G> {
    inner: RecursiveSketch<OnePassHeavyHitter<G>>,
}

impl<G: GFunction + Clone> OnePassGSumSketch<G> {
    /// Build the sketch state for function `g` under `config`, with an
    /// explicit seed.
    pub fn with_seed(g: G, config: &GSumConfig, seed: u64) -> Self {
        let hh_config = OnePassHeavyHitterConfig {
            rows: config.countsketch_rows,
            columns: config.countsketch_columns,
            candidates: config.candidates_per_level,
            epsilon: config.epsilon,
            envelope_factor: config.envelope_factor,
            backend: config.hash_backend,
            sign_family: config.sign_family,
            hint_cap: config.hint_cap,
        };
        let inner = RecursiveSketch::new(
            config.domain,
            config.levels,
            seed,
            move |_level, level_seed| OnePassHeavyHitter::new(g.clone(), hh_config, level_seed),
        );
        Self { inner }
    }

    /// Build the sketch state with the configuration's own seed.
    pub fn new(g: G, config: &GSumConfig) -> Self {
        Self::with_seed(g, config, config.seed)
    }

    /// The g-SUM estimate of the prefix absorbed so far (clamped at zero —
    /// `g ≥ 0` so negative combinations are pure noise).
    pub fn estimate(&self) -> f64 {
        self.inner.estimate().max(0.0)
    }

    /// The g-SUM estimate under an *external* function instead of the
    /// wrapped one.
    ///
    /// The absorbed state is pure frequency structure — the wrapped `g`
    /// enters only at query time, inside the per-level covers — so a single
    /// substrate can answer for any function in the class.  For the wrapped
    /// function this is bit-identical to [`estimate`](Self::estimate).
    pub fn estimate_with<F: GFunction + ?Sized>(&self, g: &F) -> f64 {
        let domain = self.inner.domain();
        let covers: Vec<_> = self
            .inner
            .level_sketches()
            .iter()
            .map(|level| level.cover_with(g, domain))
            .collect();
        self.inner.estimate_from_covers(&covers).max(0.0)
    }

    /// The wrapped function.
    pub fn function(&self) -> &G {
        self.inner.level_sketches()[0].function()
    }

    /// [`Checkpoint::save`] with the function-parameter bytes replaced by
    /// `params` in every level.
    ///
    /// Because the counters, seeds and hints are function-independent, the
    /// output is exactly the checkpoint a sketch *built with that function*
    /// (same configuration, same seed) would write after the same stream —
    /// how the serving registry emits per-function checkpoints from one
    /// shared substrate.
    pub fn save_with_params(
        &self,
        w: &mut impl Write,
        params: &[u8],
    ) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::ONE_PASS_GSUM)?;
        self.inner
            .save_levels_with(w, |level, w| level.save_with_params(w, params))
    }

    /// The domain size.
    pub fn domain(&self) -> u64 {
        self.inner.domain()
    }

    /// Sketch state in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.inner.space_words()
    }
}

impl<G: GFunction + Clone> StreamSink for OnePassGSumSketch<G> {
    fn update(&mut self, update: Update) {
        self.inner.update(update);
    }

    fn update_batch(&mut self, updates: &[Update]) {
        self.inner.update_batch(updates);
    }
}

impl<G: GFunction + Clone> MergeableSketch for OnePassGSumSketch<G> {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        self.inner.merge(&other.inner)
    }
}

/// The whole estimator state — every level's CountSketch + AMS counters,
/// their seeds, and the function's parameters — serializes through the
/// nested recursive-sketch checkpoint, so a long-running ingestion can be
/// snapshotted at any prefix and resumed bit-for-bit (see
/// `gsum_streams::ShardedIngest::resume`).
impl<G: GFunction + Clone + FunctionCodec> Checkpoint for OnePassGSumSketch<G> {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::ONE_PASS_GSUM)?;
        self.inner.save(w)
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        checkpoint::read_header(r, kind::ONE_PASS_GSUM)?;
        Ok(Self {
            inner: RecursiveSketch::restore(r)?,
        })
    }
}

/// One-pass `(g, ε)`-SUM estimator for a slow-jumping, slow-dropping,
/// predictable function.
///
/// This is the batch-world wrapper around [`OnePassGSumSketch`]: each
/// [`estimate`](GSumEstimator::estimate) builds a fresh sketch from the
/// configured seed, pushes the input through it once, and queries it.  This
/// makes it cheap to sweep configurations in the experiments and keeps
/// repeated estimates independent given different seeds.  Live ingestion
/// should hold an [`OnePassGSumSketch`] instead and push updates as they
/// arrive.
#[derive(Debug, Clone)]
pub struct OnePassGSum<G> {
    g: G,
    config: GSumConfig,
}

impl<G: GFunction + Clone> OnePassGSum<G> {
    /// Create the estimator for function `g` under `config`.
    pub fn new(g: G, config: GSumConfig) -> Self {
        Self { g, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GSumConfig {
        &self.config
    }

    /// A fresh long-lived sketch state with the configured seed (the
    /// push-based entry point).
    pub fn sketch(&self) -> OnePassGSumSketch<G> {
        self.sketch_with_seed(self.config.seed)
    }

    /// A fresh long-lived sketch state with an explicit seed.
    pub fn sketch_with_seed(&self, seed: u64) -> OnePassGSumSketch<G> {
        OnePassGSumSketch::with_seed(self.g.clone(), &self.config, seed)
    }

    /// Estimate with an explicit seed override (used by the median
    /// amplification and by the experiments' repeated trials).
    pub fn estimate_with_seed(&self, stream: &TurnstileStream, seed: u64) -> f64 {
        let mut sketch = self.sketch_with_seed(seed);
        sketch.process_stream(stream);
        sketch.estimate()
    }
}

impl<G: GFunction + Clone> GSumEstimator for OnePassGSum<G> {
    fn estimate(&self, stream: &TurnstileStream) -> f64 {
        self.estimate_with_seed(stream, self.config.seed)
    }

    fn passes(&self) -> usize {
        1
    }

    fn space_words(&self) -> usize {
        self.sketch().space_words()
    }

    fn estimate_median(&self, stream: &TurnstileStream, repetitions: usize) -> f64 {
        median_over_repetitions(repetitions, |r| {
            self.estimate_with_seed(stream, self.config.seed.wrapping_add(r as u64 * 7919))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsum::{exact_gsum, relative_error};
    use gsum_gfunc::library::{PowerFunction, SpamDiscountUtility};
    use gsum_streams::{StreamConfig, StreamGenerator, ZipfStreamGenerator};

    fn zipf_stream(domain: u64, len: usize, seed: u64) -> gsum_streams::TurnstileStream {
        ZipfStreamGenerator::new(StreamConfig::new(domain, len), 1.2, seed).generate()
    }

    #[test]
    fn approximates_f2_on_skewed_stream() {
        let stream = zipf_stream(1 << 10, 30_000, 3);
        let g = PowerFunction::new(2.0);
        let truth = exact_gsum(&g, &stream.frequency_vector());
        let est = OnePassGSum::new(g, GSumConfig::with_space_budget(1 << 10, 0.2, 1024, 11));
        let approx = est.estimate_median(&stream, 3);
        let rel = relative_error(approx, truth);
        assert!(
            rel < 0.3,
            "relative error {rel} too large ({approx} vs {truth})"
        );
    }

    #[test]
    fn approximates_sqrt_moment() {
        let stream = zipf_stream(1 << 10, 30_000, 5);
        let g = PowerFunction::new(0.5);
        let truth = exact_gsum(&g, &stream.frequency_vector());
        let est = OnePassGSum::new(g, GSumConfig::with_space_budget(1 << 10, 0.2, 1024, 17));
        let approx = est.estimate_median(&stream, 3);
        let rel = relative_error(approx, truth);
        assert!(
            rel < 0.35,
            "relative error {rel} too large ({approx} vs {truth})"
        );
    }

    #[test]
    fn approximates_non_monotone_utility() {
        let stream = zipf_stream(1 << 10, 30_000, 9);
        let g = SpamDiscountUtility::new(20);
        let truth = exact_gsum(&g, &stream.frequency_vector());
        let est = OnePassGSum::new(g, GSumConfig::with_space_budget(1 << 10, 0.2, 1024, 23));
        let approx = est.estimate_median(&stream, 3);
        let rel = relative_error(approx, truth);
        assert!(
            rel < 0.35,
            "relative error {rel} too large ({approx} vs {truth})"
        );
    }

    #[test]
    fn uses_one_pass_and_reports_space() {
        let g = PowerFunction::new(2.0);
        let est = OnePassGSum::new(g, GSumConfig::with_space_budget(256, 0.2, 64, 1));
        assert_eq!(est.passes(), 1);
        // Space scales with levels × (columns + AMS); far below the domain
        // for wide domains, but positive.
        assert!(est.space_words() > 64);
        assert_eq!(est.config().countsketch_columns, 64);
    }

    #[test]
    fn empty_stream_estimates_zero() {
        let g = PowerFunction::new(2.0);
        let est = OnePassGSum::new(g, GSumConfig::with_space_budget(64, 0.2, 64, 1));
        let stream = gsum_streams::TurnstileStream::new(64);
        assert_eq!(est.estimate(&stream), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = zipf_stream(256, 5_000, 2);
        let g = PowerFunction::new(1.5);
        let est = OnePassGSum::new(g, GSumConfig::with_space_budget(256, 0.2, 256, 5));
        assert_eq!(est.estimate(&stream), est.estimate(&stream));
        assert_ne!(
            est.estimate_with_seed(&stream, 1),
            est.estimate_with_seed(&stream, 2)
        );
    }

    /// The acceptance criterion of the push refactor: feeding updates one at
    /// a time through the long-lived sketch — never materializing a stream on
    /// the estimator side — matches the batch wrapper bit for bit.
    #[test]
    fn incremental_updates_match_batch_estimate_bit_for_bit() {
        let stream = zipf_stream(512, 8_000, 7);
        let g = PowerFunction::new(2.0);
        let config = GSumConfig::with_space_budget(512, 0.2, 256, 13);
        let batch = OnePassGSum::new(g, config.clone()).estimate(&stream);

        let mut sketch = OnePassGSumSketch::new(g, &config);
        for &u in stream.iter() {
            sketch.update(u);
        }
        assert_eq!(sketch.estimate().to_bits(), batch.to_bits());
    }

    #[test]
    fn estimate_at_prefixes_is_monotone_in_information() {
        // Queries at any prefix are legal; the empty prefix estimates zero.
        let g = PowerFunction::new(2.0);
        let config = GSumConfig::with_space_budget(64, 0.2, 64, 3);
        let mut sketch = OnePassGSumSketch::new(g, &config);
        assert_eq!(sketch.estimate(), 0.0);
        sketch.update(gsum_streams::Update::new(5, 10));
        assert!(sketch.estimate() > 0.0);
        assert_eq!(sketch.domain(), 64);
    }

    #[test]
    fn sharded_clones_merge_to_the_single_threaded_state() {
        let stream = zipf_stream(256, 6_000, 9);
        let g = PowerFunction::new(2.0);
        let config = GSumConfig::with_space_budget(256, 0.2, 128, 17);

        let mut whole = OnePassGSumSketch::new(g, &config);
        whole.process_stream(&stream);

        let prototype = OnePassGSumSketch::new(g, &config);
        let (front, back) = stream.updates().split_at(stream.len() / 3);
        let mut a = prototype.clone();
        a.update_batch(front);
        let mut b = prototype;
        b.update_batch(back);
        a.merge(&b).unwrap();

        assert_eq!(a.estimate().to_bits(), whole.estimate().to_bits());
    }

    #[test]
    fn merge_rejects_different_seeds() {
        let g = PowerFunction::new(2.0);
        let config = GSumConfig::with_space_budget(64, 0.2, 64, 3);
        let mut a = OnePassGSumSketch::with_seed(g, &config, 1);
        let b = OnePassGSumSketch::with_seed(g, &config, 2);
        assert!(a.merge(&b).is_err());
    }
}
