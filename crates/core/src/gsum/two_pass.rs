//! The two-pass g-SUM estimator (Theorem 3's upper bound): Algorithm 1 per
//! level inside the recursive sketch.

use super::{median_over_repetitions, GSumEstimator};
use crate::config::GSumConfig;
use crate::heavy_hitters::two_pass::TwoPassHeavyHitterConfig;
use crate::heavy_hitters::TwoPassHeavyHitter;
use crate::recursive_sketch::RecursiveSketch;
use gsum_gfunc::{FunctionCodec, GFunction};
use gsum_streams::checkpoint::{self, kind, Checkpoint, CheckpointError};
use gsum_streams::{
    MergeError, MergeableSketch, StreamSink, TurnstileStream, TwoPhaseSketch, Update,
};
use std::io::{Read, Write};

/// Long-lived two-pass g-SUM state: Algorithm-1 level sketches inside the
/// recursive reduction, driven push-style.
///
/// The state machine mirrors the two passes: push the first pass's updates,
/// call [`begin_second_pass`](Self::begin_second_pass) to freeze each level's
/// candidate set, push the second pass's updates (the same stream, replayed),
/// then [`estimate`](Self::estimate).  Merging requires both sketches to be
/// in the same phase.
#[derive(Debug, Clone)]
pub struct TwoPassGSumSketch<G> {
    inner: RecursiveSketch<TwoPassHeavyHitter<G>>,
}

impl<G: GFunction + Clone> TwoPassGSumSketch<G> {
    /// Build the sketch state for function `g` under `config`, with an
    /// explicit seed.
    pub fn with_seed(g: G, config: &GSumConfig, seed: u64) -> Self {
        let hh_config = TwoPassHeavyHitterConfig {
            rows: config.countsketch_rows,
            columns: config.countsketch_columns,
            candidates: config.candidates_per_level,
            backend: config.hash_backend,
            hint_cap: config.hint_cap,
        };
        let inner = RecursiveSketch::new(
            config.domain,
            config.levels,
            seed,
            move |_level, level_seed| TwoPassHeavyHitter::new(g.clone(), hh_config, level_seed),
        );
        Self { inner }
    }

    /// Build the sketch state with the configuration's own seed.
    pub fn new(g: G, config: &GSumConfig) -> Self {
        Self::with_seed(g, config, config.seed)
    }

    /// Close the first pass: freeze each level's candidate set, after which
    /// pushed updates tabulate candidate frequencies exactly.  Idempotent.
    pub fn begin_second_pass(&mut self) {
        let domain = self.inner.domain();
        for level in self.inner.levels_mut() {
            level.begin_second_pass(domain);
        }
    }

    /// Whether the first pass has been closed.
    pub fn in_second_pass(&self) -> bool {
        self.inner
            .level_sketches()
            .first()
            .map(|l| l.in_second_pass())
            .unwrap_or(false)
    }

    /// The g-SUM estimate of the prefix absorbed so far (meaningful after the
    /// second pass; clamped at zero).
    pub fn estimate(&self) -> f64 {
        self.inner.estimate().max(0.0)
    }

    /// The domain size.
    pub fn domain(&self) -> u64 {
        self.inner.domain()
    }

    /// Sketch state in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.inner.space_words()
    }
}

impl<G: GFunction + Clone> StreamSink for TwoPassGSumSketch<G> {
    fn update(&mut self, update: Update) {
        self.inner.update(update);
    }

    fn update_batch(&mut self, updates: &[Update]) {
        self.inner.update_batch(updates);
    }
}

impl<G: GFunction + Clone> MergeableSketch for TwoPassGSumSketch<G> {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        self.inner.merge(&other.inner)
    }
}

/// The two-phase contract the sharded coordinator
/// (`gsum_streams::ShardedTwoPassCoordinator`) drives: one transition on the
/// merged phase-1 state, phase-2 workers rehydrated from its checkpoint.
impl<G: GFunction + Clone> TwoPhaseSketch for TwoPassGSumSketch<G> {
    fn begin_second_pass(&mut self) {
        TwoPassGSumSketch::begin_second_pass(self);
    }

    fn in_second_pass(&self) -> bool {
        TwoPassGSumSketch::in_second_pass(self)
    }
}

/// Seeds + counters + **phase**: each level's checkpoint carries its phase
/// tag and (after the transition) its frozen candidate set, so a state saved
/// between the passes rehydrates ready for the second pass — the
/// clone-after-transition distribution the sharded coordinator performs.
impl<G: GFunction + Clone + FunctionCodec> Checkpoint for TwoPassGSumSketch<G> {
    fn save(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        checkpoint::write_header(w, kind::TWO_PASS_GSUM)?;
        self.inner.save(w)
    }

    fn restore(r: &mut impl Read) -> Result<Self, CheckpointError> {
        checkpoint::read_header(r, kind::TWO_PASS_GSUM)?;
        let inner: RecursiveSketch<TwoPassHeavyHitter<G>> = RecursiveSketch::restore(r)?;
        // A valid checkpoint has every level in the same phase (the
        // transition is atomic across levels).
        let phases: Vec<bool> = inner
            .level_sketches()
            .iter()
            .map(|l| l.in_second_pass())
            .collect();
        if phases.windows(2).any(|w| w[0] != w[1]) {
            return Err(CheckpointError::Corrupt(
                "levels disagree about the two-pass phase".into(),
            ));
        }
        Ok(Self { inner })
    }
}

/// Two-pass `(g, ε)`-SUM estimator for a slow-jumping, slow-dropping function
/// (predictability not required — the second pass tabulates candidate
/// frequencies exactly).
///
/// Batch wrapper around [`TwoPassGSumSketch`]: it drives the two passes over
/// a materialized stream.  Live ingestion with a replayable source should
/// hold a [`TwoPassGSumSketch`] and drive the phase transition itself.
#[derive(Debug, Clone)]
pub struct TwoPassGSum<G> {
    g: G,
    config: GSumConfig,
}

impl<G: GFunction + Clone> TwoPassGSum<G> {
    /// Create the estimator for function `g` under `config`.
    pub fn new(g: G, config: GSumConfig) -> Self {
        Self { g, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GSumConfig {
        &self.config
    }

    /// A fresh long-lived sketch state with the configured seed (the
    /// push-based entry point).
    pub fn sketch(&self) -> TwoPassGSumSketch<G> {
        self.sketch_with_seed(self.config.seed)
    }

    /// A fresh long-lived sketch state with an explicit seed.
    pub fn sketch_with_seed(&self, seed: u64) -> TwoPassGSumSketch<G> {
        TwoPassGSumSketch::with_seed(self.g.clone(), &self.config, seed)
    }

    /// Estimate with an explicit seed override.
    pub fn estimate_with_seed(&self, stream: &TurnstileStream, seed: u64) -> f64 {
        let mut sketch = self.sketch_with_seed(seed);
        // Pass 1: CountSketch per level.
        sketch.process_stream(stream);
        // Between passes: fix each level's candidate set.
        sketch.begin_second_pass();
        // Pass 2: exact tabulation of the candidates (the recursive sketch
        // routes each update to the levels whose substream contains it, and
        // the level sketches are now in their second phase).
        sketch.process_stream(stream);
        sketch.estimate()
    }
}

impl<G: GFunction + Clone> GSumEstimator for TwoPassGSum<G> {
    fn estimate(&self, stream: &TurnstileStream) -> f64 {
        self.estimate_with_seed(stream, self.config.seed)
    }

    fn passes(&self) -> usize {
        2
    }

    fn space_words(&self) -> usize {
        self.sketch().space_words()
    }

    fn estimate_median(&self, stream: &TurnstileStream, repetitions: usize) -> f64 {
        median_over_repetitions(repetitions, |r| {
            self.estimate_with_seed(stream, self.config.seed.wrapping_add(r as u64 * 104_729))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsum::{exact_gsum, relative_error, OnePassGSum};
    use gsum_gfunc::library::{OscillatingQuadratic, PowerFunction};
    use gsum_streams::{
        PlantedStreamGenerator, StreamConfig, StreamGenerator, ZipfStreamGenerator,
    };

    #[test]
    fn approximates_quadratic_sum() {
        let stream =
            ZipfStreamGenerator::new(StreamConfig::new(1 << 10, 30_000), 1.2, 7).generate();
        let g = PowerFunction::new(2.0);
        let truth = exact_gsum(&g, &stream.frequency_vector());
        let est = TwoPassGSum::new(g, GSumConfig::with_space_budget(1 << 10, 0.2, 1024, 3));
        let rel = relative_error(est.estimate_median(&stream, 3), truth);
        assert!(rel < 0.3, "relative error {rel}");
    }

    #[test]
    fn handles_unpredictable_function_better_than_one_pass_on_adversarial_input() {
        // A stream dominated by one huge item whose frequency the one-pass
        // CountSketch can only estimate approximately. For the erratic
        // (2 + sin x)x² even a ±1 error changes g by a constant factor, while
        // the two-pass algorithm measures the frequency exactly.
        let domain = 1u64 << 10;
        let stream =
            PlantedStreamGenerator::new(StreamConfig::new(domain, 50_000), vec![(5, 100_000)], 21)
                .generate();
        let g = OscillatingQuadratic::direct();
        let truth = exact_gsum(&g, &stream.frequency_vector());

        // Modest space so the one-pass frequency estimates carry error.
        let cfg = GSumConfig::with_space_budget(domain, 0.1, 128, 5);
        let two_pass = TwoPassGSum::new(g, cfg.clone());
        let one_pass = OnePassGSum::new(OscillatingQuadratic::direct(), cfg);

        let two_err = relative_error(two_pass.estimate_median(&stream, 3), truth);
        let one_err = relative_error(one_pass.estimate_median(&stream, 3), truth);
        assert!(
            two_err < 0.25,
            "two-pass error {two_err} should be small (truth {truth})"
        );
        // The one-pass estimator is allowed to fail here; it must not beat
        // the two-pass algorithm by much (sanity check of the separation).
        assert!(two_err <= one_err + 0.05, "one: {one_err}, two: {two_err}");
    }

    #[test]
    fn passes_and_space() {
        let g = PowerFunction::new(2.0);
        let est = TwoPassGSum::new(g, GSumConfig::with_space_budget(256, 0.2, 64, 1));
        assert_eq!(est.passes(), 2);
        assert!(est.space_words() > 64);
    }

    #[test]
    fn empty_stream_estimates_zero() {
        let g = PowerFunction::new(2.0);
        let est = TwoPassGSum::new(g, GSumConfig::with_space_budget(64, 0.2, 64, 1));
        assert_eq!(est.estimate(&gsum_streams::TurnstileStream::new(64)), 0.0);
    }

    /// Driving the passes by hand through the long-lived sketch matches the
    /// batch wrapper bit for bit.
    #[test]
    fn incremental_two_pass_matches_batch_estimate_bit_for_bit() {
        let stream = ZipfStreamGenerator::new(StreamConfig::new(512, 8_000), 1.2, 3).generate();
        let g = PowerFunction::new(2.0);
        let config = GSumConfig::with_space_budget(512, 0.2, 128, 19);
        let batch = TwoPassGSum::new(g, config.clone()).estimate(&stream);

        let mut sketch = TwoPassGSumSketch::new(g, &config);
        assert!(!sketch.in_second_pass());
        for &u in stream.iter() {
            sketch.update(u);
        }
        sketch.begin_second_pass();
        assert!(sketch.in_second_pass());
        for &u in stream.iter() {
            sketch.update(u);
        }
        assert_eq!(sketch.estimate().to_bits(), batch.to_bits());
    }

    /// Sharded first and second passes merge to the single-threaded state
    /// (merging is phase-aware: both shards close their first pass before
    /// merging second-pass tabulations).
    #[test]
    fn sharded_two_pass_merges_per_phase() {
        let stream = ZipfStreamGenerator::new(StreamConfig::new(256, 6_000), 1.2, 5).generate();
        let g = PowerFunction::new(2.0);
        let config = GSumConfig::with_space_budget(256, 0.2, 128, 23);

        let mut whole = TwoPassGSumSketch::new(g, &config);
        whole.process_stream(&stream);
        whole.begin_second_pass();
        whole.process_stream(&stream);

        // Phase 1 sharded.
        let prototype = TwoPassGSumSketch::new(g, &config);
        let (front, back) = stream.updates().split_at(stream.len() / 2);
        let mut a = prototype.clone();
        a.update_batch(front);
        let mut b = prototype.clone();
        b.update_batch(back);
        a.merge(&b).unwrap();
        // Phase transition on the merged state, then phase 2 sharded from
        // clones of it (so the candidate sets agree).
        a.begin_second_pass();
        let mut p2a = a.clone();
        p2a.update_batch(front);
        let mut p2b = a.clone();
        p2b.update_batch(back);
        p2a.merge(&p2b).unwrap();

        assert_eq!(p2a.estimate().to_bits(), whole.estimate().to_bits());

        // Mixed-phase merges are rejected.
        let mut fresh = prototype.clone();
        assert!(fresh.merge(&p2a).is_err());
    }
}
