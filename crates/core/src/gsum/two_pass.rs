//! The two-pass g-SUM estimator (Theorem 3's upper bound): Algorithm 1 per
//! level inside the recursive sketch.

use super::GSumEstimator;
use crate::config::GSumConfig;
use crate::heavy_hitters::{TwoPassHeavyHitter, HeavyHitterSketch};
use crate::heavy_hitters::two_pass::TwoPassHeavyHitterConfig;
use crate::recursive_sketch::RecursiveSketch;
use gsum_gfunc::GFunction;
use gsum_streams::TurnstileStream;

/// Two-pass `(g, ε)`-SUM estimator for a slow-jumping, slow-dropping function
/// (predictability not required — the second pass tabulates candidate
/// frequencies exactly).
#[derive(Debug, Clone)]
pub struct TwoPassGSum<G> {
    g: G,
    config: GSumConfig,
}

impl<G: GFunction + Clone> TwoPassGSum<G> {
    /// Create the estimator for function `g` under `config`.
    pub fn new(g: G, config: GSumConfig) -> Self {
        Self { g, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GSumConfig {
        &self.config
    }

    fn build(&self, seed: u64) -> RecursiveSketch<TwoPassHeavyHitter<G>> {
        let hh_config = TwoPassHeavyHitterConfig {
            rows: self.config.countsketch_rows,
            columns: self.config.countsketch_columns,
            candidates: self.config.candidates_per_level,
        };
        let g = self.g.clone();
        RecursiveSketch::new(
            self.config.domain,
            self.config.levels,
            seed,
            move |_level, level_seed| TwoPassHeavyHitter::new(g.clone(), hh_config, level_seed),
        )
    }

    /// Estimate with an explicit seed override.
    pub fn estimate_with_seed(&self, stream: &TurnstileStream, seed: u64) -> f64 {
        let mut sketch = self.build(seed);
        // Pass 1: CountSketch per level.
        sketch.process_stream(stream);
        // Between passes: fix each level's candidate set.
        let domain = self.config.domain;
        for level in sketch.levels_mut() {
            level.begin_second_pass(domain);
        }
        // Pass 2: exact tabulation of the candidates (the recursive sketch
        // routes each update to the levels whose substream contains it, and
        // the level sketches are now in their second phase).
        sketch.process_stream(stream);
        sketch.estimate().max(0.0)
    }

    /// Total sketch space, in 64-bit words.
    fn built_space(&self) -> usize {
        self.build(self.config.seed)
            .levels_mut()
            .iter()
            .map(|l| l.space_words())
            .sum()
    }
}

impl<G: GFunction + Clone> GSumEstimator for TwoPassGSum<G> {
    fn estimate(&self, stream: &TurnstileStream) -> f64 {
        self.estimate_with_seed(stream, self.config.seed)
    }

    fn passes(&self) -> usize {
        2
    }

    fn space_words(&self) -> usize {
        self.built_space()
    }

    fn estimate_median(&self, stream: &TurnstileStream, repetitions: usize) -> f64 {
        let reps = repetitions.max(1);
        let mut estimates: Vec<f64> = (0..reps)
            .map(|r| self.estimate_with_seed(stream, self.config.seed.wrapping_add(r as u64 * 104_729)))
            .collect();
        estimates.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
        estimates[reps / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsum::{exact_gsum, relative_error, OnePassGSum};
    use gsum_gfunc::library::{OscillatingQuadratic, PowerFunction};
    use gsum_streams::{
        PlantedStreamGenerator, StreamConfig, StreamGenerator, ZipfStreamGenerator,
    };

    #[test]
    fn approximates_quadratic_sum() {
        let stream =
            ZipfStreamGenerator::new(StreamConfig::new(1 << 10, 30_000), 1.2, 7).generate();
        let g = PowerFunction::new(2.0);
        let truth = exact_gsum(&g, &stream.frequency_vector());
        let est = TwoPassGSum::new(g, GSumConfig::with_space_budget(1 << 10, 0.2, 1024, 3));
        let rel = relative_error(est.estimate_median(&stream, 3), truth);
        assert!(rel < 0.3, "relative error {rel}");
    }

    #[test]
    fn handles_unpredictable_function_better_than_one_pass_on_adversarial_input() {
        // A stream dominated by one huge item whose frequency the one-pass
        // CountSketch can only estimate approximately. For the erratic
        // (2 + sin x)x² even a ±1 error changes g by a constant factor, while
        // the two-pass algorithm measures the frequency exactly.
        let domain = 1u64 << 10;
        let stream = PlantedStreamGenerator::new(
            StreamConfig::new(domain, 50_000),
            vec![(5, 100_000)],
            21,
        )
        .generate();
        let g = OscillatingQuadratic::direct();
        let truth = exact_gsum(&g, &stream.frequency_vector());

        // Modest space so the one-pass frequency estimates carry error.
        let cfg = GSumConfig::with_space_budget(domain, 0.1, 128, 5);
        let two_pass = TwoPassGSum::new(g, cfg.clone());
        let one_pass = OnePassGSum::new(OscillatingQuadratic::direct(), cfg);

        let two_err = relative_error(two_pass.estimate_median(&stream, 3), truth);
        let one_err = relative_error(one_pass.estimate_median(&stream, 3), truth);
        assert!(
            two_err < 0.25,
            "two-pass error {two_err} should be small (truth {truth})"
        );
        // The one-pass estimator is allowed to fail here; it must not beat
        // the two-pass algorithm by much (sanity check of the separation).
        assert!(two_err <= one_err + 0.05, "one: {one_err}, two: {two_err}");
    }

    #[test]
    fn passes_and_space() {
        let g = PowerFunction::new(2.0);
        let est = TwoPassGSum::new(g, GSumConfig::with_space_budget(256, 0.2, 64, 1));
        assert_eq!(est.passes(), 2);
        assert!(est.space_words() > 64);
    }

    #[test]
    fn empty_stream_estimates_zero() {
        let g = PowerFunction::new(2.0);
        let est = TwoPassGSum::new(g, GSumConfig::with_space_budget(64, 0.2, 64, 1));
        assert_eq!(est.estimate(&gsum_streams::TurnstileStream::new(64)), 0.0);
    }
}
