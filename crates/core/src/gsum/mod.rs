//! User-facing g-SUM estimators.

mod one_pass;
mod two_pass;

pub use one_pass::{OnePassGSum, OnePassGSumSketch};
pub use two_pass::{TwoPassGSum, TwoPassGSumSketch};

use gsum_gfunc::GFunction;
use gsum_streams::{FrequencyVector, TurnstileStream};

/// The exact value of `g(V) = Σ_i g(|v_i|)` — the ground truth every
/// estimator is compared against.
pub fn exact_gsum<G: GFunction + ?Sized>(g: &G, vector: &FrequencyVector) -> f64 {
    vector.iter().map(|(_, v)| g.eval_signed(v)).sum()
}

/// A `(g, ε)`-SUM estimator (Definition 1): produces an estimate `Ĝ` of
/// `g(V(D))` from (one or more passes over) a turnstile stream.
pub trait GSumEstimator {
    /// Estimate `Σ_i g(|v_i|)` for the given stream.
    fn estimate(&self, stream: &TurnstileStream) -> f64;

    /// Number of passes over the stream the estimator makes.
    fn passes(&self) -> usize;

    /// Number of 64-bit words of state the estimator's sketches occupy
    /// (the "space" of the zero-one laws; excludes the input stream itself).
    fn space_words(&self) -> usize;

    /// Run the estimator `repetitions` times with independently derived seeds
    /// and return the median estimate — the standard success-probability
    /// amplification the paper applies after Definition 1.
    fn estimate_median(&self, stream: &TurnstileStream, _repetitions: usize) -> f64 {
        // The default implementation simply calls `estimate`; estimators that
        // support re-seeding override this.
        self.estimate(stream)
    }
}

/// The relative error `|estimate − truth| / max(truth, floor)` used throughout
/// the experiment harness (the floor avoids dividing by ~0 for empty
/// streams).
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    (estimate - truth).abs() / truth.abs().max(1e-12)
}

/// Median-of-repetitions success amplification: run `estimate_one` for each
/// repetition index and return the middle estimate (upper median), sorting
/// with a NaN-safe total order.
///
/// This is the one shared implementation behind every estimator's
/// `estimate_median` — the repetition-to-seed mapping stays with the caller,
/// the selection logic lives here.
pub(crate) fn median_over_repetitions(
    repetitions: usize,
    mut estimate_one: impl FnMut(usize) -> f64,
) -> f64 {
    let reps = repetitions.max(1);
    let mut estimates: Vec<f64> = (0..reps).map(&mut estimate_one).collect();
    estimates.sort_unstable_by(f64::total_cmp);
    estimates[reps / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsum_gfunc::library::PowerFunction;

    #[test]
    fn exact_gsum_sums_g_of_magnitudes() {
        let g = PowerFunction::new(2.0);
        let mut fv = FrequencyVector::new(10);
        fv.apply(0, 3);
        fv.apply(5, -4);
        assert_eq!(exact_gsum(&g, &fv), 9.0 + 16.0);
        assert_eq!(exact_gsum(&g, &FrequencyVector::new(10)), 0.0);
    }

    #[test]
    fn relative_error_basics() {
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(90.0, 100.0) - 0.1).abs() < 1e-12);
        assert!(relative_error(0.0, 0.0) < 1e-9);
        assert!(relative_error(5.0, 0.0) > 1.0);
    }
}
